#!/usr/bin/env python3
"""Design-space comparison: all six configurations under rising load.

Reproduces the flavour of the paper's Sec. 4.2 evaluation in one script:
sweeps uniform-random injection across 2DB, 3DB, 3DM(NC), 3DM, 3DM-E(NC)
and 3DM-E, and prints latency, power, and PDP tables plus the headline
ratios the paper reports.

Run:  python examples/design_space_sweep.py
"""

from repro import ExperimentSettings, standard_configs
from repro.experiments.latency import fig11a_uniform_latency
from repro.experiments.report import sweep_table


def main() -> None:
    settings = ExperimentSettings.quick()
    configs = standard_configs()
    print(f"sweeping {len(configs)} architectures at rates "
          f"{list(settings.uniform_rates)} (flits/node/cycle)\n")

    sweep = fig11a_uniform_latency(settings, configs)

    print("average latency (cycles)")
    print(sweep_table(sweep, "avg_latency"))
    print()
    print("network power (W)")
    print(sweep_table(sweep, "total_power_w"))
    print()
    print("power-delay product (W*s)")
    print(sweep_table(sweep, "pdp"))
    print()

    top_rate_idx = len(settings.uniform_rates) - 1
    lat = {a: s[top_rate_idx][1].avg_latency for a, s in sweep.items()}
    pwr = {a: s[top_rate_idx][1].total_power_w for a, s in sweep.items()}
    rate = settings.uniform_rates[top_rate_idx]
    print(f"headline ratios at {rate:g} flits/node/cycle "
          f"(paper: up to 51% latency / 42% power vs 2DB):")
    for arch in ("3DM", "3DM-E"):
        print(f"  {arch:6s} latency -{(1 - lat[arch] / lat['2DB']) * 100:5.1f}% "
              f"power -{(1 - pwr[arch] / pwr['2DB']) * 100:5.1f}%  vs 2DB")
    print(f"  3DM-E  latency -{(1 - lat['3DM-E'] / lat['3DB']) * 100:5.1f}% "
          f"power -{(1 - pwr['3DM-E'] / pwr['3DB']) * 100:5.1f}%  vs 3DB "
          f"(paper: 26% / 37%)")


if __name__ == "__main__":
    main()
