#!/usr/bin/env python3
"""Tour of the beyond-the-paper extensions.

The paper names QoS provisioning and fault tolerance as alternative uses
of the 3DM bandwidth (Sec. 3.3), describes the advanced pipeline
organisations of Fig. 8b/c without evaluating them, and builds on the
frequent-pattern compression study [18].  This example exercises all of
them plus transient thermal analysis:

1. advanced pipelines (speculative SA + look-ahead routing),
2. QoS priority classes,
3. express-channel fault tolerance,
4. FPC compression vs layer shutdown,
5. a transient temperature trace from sampled router activity.

Run:  python examples/extensions_tour.py
"""

from repro import ExperimentSettings, make_3dm, make_3dme
from repro.core.fault import (
    both_directions,
    build_fault_tolerant_network,
    single_failure_coverage,
)
from repro.experiments.ablations import ablate_qos
from repro.experiments.compression_exp import compression_vs_shutdown
from repro.experiments.runner import run_uniform_point
from repro.noc.simulator import Simulator
from repro.thermal.transient import transient_temperatures
from repro.topology.express_mesh import ExpressMesh
from repro.traffic.synthetic import UniformRandomTraffic


def pipelines(settings) -> None:
    print("1. advanced pipelines (Fig. 8b/c) on the 3DM router")
    base = run_uniform_point(make_3dm(), 0.2, settings)
    turbo = run_uniform_point(
        make_3dm().with_pipeline_options(speculative_sa=True, lookahead_rc=True),
        0.2,
        settings,
    )
    print(f"   merged ST+LT            : {base.avg_latency:6.2f} cycles")
    print(f"   + speculation/look-ahead: {turbo.avg_latency:6.2f} cycles\n")


def qos(settings) -> None:
    print("2. QoS priority arbitration (20% high-priority packets)")
    results = ablate_qos(settings, rate=0.3)
    for mode in ("fifo", "qos"):
        lat = results[mode]
        print(f"   {mode:4s}: high-prio {lat[1]:6.2f}  low-prio {lat[0]:6.2f} cycles")
    print()


def fault_tolerance(settings) -> None:
    print("3. express-channel fault tolerance")
    config = make_3dme()
    mesh = ExpressMesh(4, 4, pitch_mm=config.pitch_mm)
    coverage = single_failure_coverage(mesh)
    print(f"   single-failure coverage (4x4 express mesh): {coverage:.0%}")
    victim = ExpressMesh(6, 6, pitch_mm=config.pitch_mm).link_between(14, 15)
    network = build_fault_tolerant_network(
        config, both_directions(victim.src, victim.dst)
    )
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=36, flit_rate=0.15, seed=5),
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
        drain_cycles=settings.drain_cycles,
    )
    result = sim.run()
    print(f"   latency with link 14<->15 dead: {result.avg_latency:.2f} cycles "
          f"(saturated: {result.saturated})\n")


def compression(settings) -> None:
    print("4. FPC compression vs layer shutdown (multimedia trace)")
    results = compression_vs_shutdown(settings, workload="multimedia")
    for label in ("baseline", "shutdown", "fpc"):
        point = results[label]
        print(f"   {label:8s}: {point.avg_latency:6.2f} cycles, "
              f"{point.total_power_w:.3f} W")
    print()


def transient(settings) -> None:
    print("5. transient thermal trace (sampled router activity)")
    config = make_3dm()
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=36, flit_rate=0.2, seed=5),
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=2000,
        drain_cycles=settings.drain_cycles,
        sample_interval=400,
    )
    result = sim.run()
    temps = transient_temperatures(config, result, sample_interval=400)
    series = " -> ".join(f"{t:.2f}" for t in temps)
    print(f"   avg chip temperature (K): {series}")


def main() -> None:
    settings = ExperimentSettings.quick()
    pipelines(settings)
    qos(settings)
    fault_tolerance(settings)
    compression(settings)
    transient(settings)


if __name__ == "__main__":
    main()
