#!/usr/bin/env python3
"""Saturation and bottleneck analysis across the design space.

Uses the analysis toolkit to answer the questions the paper's fixed
sweeps leave open: at what injection rate does each design saturate, and
which channels bottleneck first?  Also demonstrates the packet tracer on
a single route.

Run:  python examples/saturation_analysis.py
"""

from repro import ExperimentSettings, make_2db, make_3db, make_3dm, make_3dme
from repro.analysis import find_saturation_rate, hottest_channels
from repro.experiments.runner import run_uniform_point
from repro.noc.simulator import Simulator
from repro.noc.tracer import PacketTracer
from repro.traffic.base import ScheduledTraffic
from repro.noc.packet import data_packet


def saturation_sweep(settings) -> None:
    print("saturation search (uniform random, bisection):")
    for make in (make_2db, make_3db, make_3dm, make_3dme):
        config = make()
        result = find_saturation_rate(config, settings, tolerance=0.05)
        print(f"  {config.name:6s} saturates near "
              f"{result.saturation_rate:.2f} flits/node/cycle "
              f"(zero-load {result.zero_load_latency:.1f} cycles, "
              f"{len(result.probes)} probes)")
    print()


def bottlenecks(settings) -> None:
    print("hottest channels, 2DB @ 0.25 flits/node/cycle (X-Y routing")
    print("concentrates uniform traffic on the centre columns):")
    point = run_uniform_point(make_2db(), 0.25, settings)
    for (src, dst), utilisation in hottest_channels(point, count=5):
        sx, sy = src % 6, src // 6
        dx, dy = dst % 6, dst // 6
        print(f"  ({sx},{sy}) -> ({dx},{dy}): {utilisation:.2f} flits/cycle")
    print()


def trace_one_packet() -> None:
    print("packet trace, 3DM-E corner-to-corner (express channels visible):")
    config = make_3dme()
    network = config.build_network()
    packet = data_packet(0, 35, created_cycle=0)
    with PacketTracer(network) as tracer:
        sim = Simulator(network, ScheduledTraffic([packet]),
                        warmup_cycles=0, measure_cycles=200, drain_cycles=500)
        sim.run()
        route = tracer.packet_route(packet.pid)
    coords = " -> ".join(f"({n % 6},{n // 6})" for n in route)
    print(f"  route: {coords}")
    print(f"  hops : {packet.hops}, latency {packet.latency} cycles")


def main() -> None:
    settings = ExperimentSettings.quick()
    saturation_sweep(settings)
    bottlenecks(settings)
    trace_one_packet()


if __name__ == "__main__":
    main()
