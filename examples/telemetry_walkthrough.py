#!/usr/bin/env python3
"""Telemetry walkthrough: windowed metrics + a Perfetto lifecycle trace.

Runs a 3DM uniform-random simulation with half-short-flit traffic (so
the layer-shutdown signal has something to show), streaming windowed
metrics to ``telemetry_out/metrics.jsonl`` and packet lifecycles to
``telemetry_out/trace.json``, then summarises the stream: how the
active-layer fraction, occupancy, and windowed p95 latency evolved.

Open the trace at https://ui.perfetto.dev to see each packet's
inject -> per-hop RC/VA/SA/ST -> eject spans and the sampler's counter
tracks.  See docs/OBSERVABILITY.md for the full metric catalogue.

Run:  python examples/telemetry_walkthrough.py
"""

import json

from repro import ExperimentSettings, make_architecture, Architecture
from repro.experiments.runner import run_uniform_point
from repro.telemetry import TelemetryConfig

OUT = "telemetry_out"


def main() -> None:
    config = make_architecture(Architecture.MIRA_3DM)
    telemetry = TelemetryConfig(
        interval=100,
        metrics_path=f"{OUT}/metrics.jsonl",
        trace_path=f"{OUT}/trace.json",
        arch_config=config,  # adds the windowed energy gauges
    )
    point = run_uniform_point(
        config, 0.2, ExperimentSettings.quick(),
        short_flit_fraction=0.5, shutdown_enabled=True,
        telemetry=telemetry,
    )
    print(point.sim.telemetry.format())
    print()

    samples = [
        record
        for record in map(
            json.loads, open(f"{OUT}/metrics.jsonl", encoding="utf-8")
        )
        if record["type"] == "sample"
    ]
    print(f"{'cycle':>6} {'occ':>6} {'layers':>7} {'p95 lat':>8} "
          f"{'thr':>7} {'mW':>7}")
    for sample in samples:
        gauges = sample["gauges"]
        latency = sample["histograms"]["latency.cycles"]
        layers = gauges["layers.active_fraction"]
        print(
            f"{sample['cycle']:>6} "
            f"{gauges['occupancy.total']:>6.0f} "
            f"{'-' if layers is None else format(layers, '.3f'):>7} "
            f"{latency.get('p95', '-'):>8} "
            f"{gauges['rate.throughput']:>7.3f} "
            f"{gauges['energy.total_w'] * 1e3:>7.1f}"
        )
    print(f"\nnow load {OUT}/trace.json at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
