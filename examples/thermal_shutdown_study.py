#!/usr/bin/env python3
"""Layer-shutdown thermal study (the Sec. 4.2.3 flow, end to end).

For the 3DM design: simulate the same uniform-random load with 0% and
50% short flits, price the event streams with the Orion-style energy
model, feed the per-node router powers into the HotSpot-style stacked
thermal solver, and report the temperature drop the shutdown technique
buys — plus the per-layer temperature profile of the stack.

Run:  python examples/thermal_shutdown_study.py
"""

from repro import Architecture, ExperimentSettings, make_architecture
from repro.experiments.runner import run_uniform_point
from repro.power.gating import shutdown_saving
from repro.thermal.hotspot import steady_state


def main() -> None:
    config = make_architecture(Architecture.MIRA_3DM)
    settings = ExperimentSettings.quick()

    print("analytic shutdown model (Fig. 13b):")
    for short in (0.25, 0.50):
        saving = shutdown_saving(config, short)
        print(f"  {short:.0%} short flits -> {saving.saving_fraction:.1%} "
              "dynamic power saved")
    print()

    for rate in settings.uniform_rates[:3]:
        base = run_uniform_point(
            config, rate, settings, short_flit_fraction=0.0,
            shutdown_enabled=True,
        )
        gated = run_uniform_point(
            config, rate, settings, short_flit_fraction=0.5,
            shutdown_enabled=True,
        )
        hot = steady_state(config, base.router_power_per_node())
        cool = steady_state(config, gated.router_power_per_node())
        print(f"injection {rate:g} flits/node/cycle:")
        print(f"  router power: {base.total_power_w:.3f} W -> "
              f"{gated.total_power_w:.3f} W "
              f"(-{(1 - gated.total_power_w / base.total_power_w) * 100:.1f}%)")
        print(f"  avg temp    : {hot.avg_k:.3f} K -> {cool.avg_k:.3f} K "
              f"(drop {hot.avg_k - cool.avg_k:.3f} K)")
        layers = " / ".join(f"{t:.2f}" for t in hot.per_layer_avg_k)
        print(f"  per-layer avg (top->bottom, 0% short): {layers} K")
        print()


if __name__ == "__main__":
    main()
