#!/usr/bin/env python3
"""Run a NUCA CMP workload through the full stack, closed loop.

This exercises the deepest path in the library: 8 CPUs with private L1s
issue memory references (TPC-W model), misses become MESI coherence
messages, messages ride the cycle-accurate 3DM NoC, and responses unblock
the MSHRs — the network and the memory hierarchy advance in lock-step.

Also demonstrates the offline (trace) mode the MP-trace experiments use,
and compares the two.

Run:  python examples/nuca_cmp_workload.py [workload] (default: tpcw)
"""

import sys

from repro import Architecture, make_architecture
from repro.cache.hierarchy import CmpTraffic, generate_trace
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_trace_point
from repro.noc.simulator import Simulator
from repro.power.energy import power_report
from repro.traffic.workloads import WORKLOADS

HORIZON = 20000


def closed_loop(config, profile) -> None:
    print("== closed-loop mode: hierarchy coupled to the cycle-accurate NoC ==")
    traffic = CmpTraffic(config, profile, seed=7, issue_horizon=HORIZON)
    network = config.build_network(shutdown_enabled=True)
    sim = Simulator(
        network, traffic, warmup_cycles=500, measure_cycles=HORIZON - 500,
        drain_cycles=30000, drain_to_quiescence=True,
    )
    result = sim.run()
    stats = traffic.system.stats
    print(f"  references        : {stats.references}")
    print(f"  L1 miss rate      : {stats.l1_miss_rate:.3f}")
    print(f"  avg miss latency  : {stats.avg_miss_latency:.1f} cycles "
          "(includes DRAM fills)")
    print(f"  messages          : {sum(stats.messages_by_type.values())} "
          f"({stats.ctrl_packet_fraction:.0%} control)")
    print(f"  avg packet latency: {result.avg_latency:.2f} cycles")
    report = power_report(config, result.events, result.window_cycles,
                          shutdown_enabled=True)
    print(f"  network power     : {report.total_w:.3f} W")
    print(f"  short-flit hops   : {result.events.short_flit_fraction:.0%}")


def trace_mode(config, profile) -> None:
    print("== offline mode: generate an MP trace, then replay it ==")
    records, stats = generate_trace(config, profile, cycles=HORIZON, seed=7)
    print(f"  trace length      : {len(records)} packets")
    print(f"  L1 miss rate      : {stats.l1_miss_rate:.3f}")
    settings = ExperimentSettings.quick()
    point = run_trace_point(config, records, settings, label=profile.name)
    print(f"  avg packet latency: {point.avg_latency:.2f} cycles")
    print(f"  network power     : {point.total_power_w:.3f} W")
    print(f"  avg hop count     : {point.avg_hops:.2f}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tpcw"
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")
    profile = WORKLOADS[name]
    config = make_architecture(Architecture.MIRA_3DM)
    print(f"workload {profile.name}: request rate {profile.request_rate}/CPU/cycle, "
          f"short flits {profile.short_flit_fraction:.0%}\n")
    closed_loop(config, profile)
    print()
    trace_mode(config, profile)


if __name__ == "__main__":
    main()
