#!/usr/bin/env python3
"""Quickstart: simulate one MIRA router architecture in a few lines.

Builds the paper's 36-node 3DM-E network (6x6 mesh of four-layer stacked
routers with express channels), offers it uniform random traffic, and
prints latency, hop count, and power.

Run:  python examples/quickstart.py
"""

from repro import (
    Architecture,
    ExperimentSettings,
    make_architecture,
    simulate,
)


def main() -> None:
    config = make_architecture(Architecture.MIRA_3DM_E)
    print(f"architecture : {config.name}")
    print(f"topology     : {config.dims[0]}x{config.dims[1]} mesh, "
          f"express span {config.express_span}")
    print(f"router       : {config.ports} ports, {config.vcs} VCs, "
          f"{config.layers} stacked layers")
    print(f"pipeline     : ST+LT merged = {config.combined_st_lt}")
    print()

    settings = ExperimentSettings.quick()
    result = simulate(config, flit_rate=0.2, settings=settings)

    print(f"avg packet latency : {result.avg_latency:6.2f} cycles")
    print(f"avg hop count      : {result.avg_hops:6.2f}")
    print(f"network power      : {result.total_power_w:6.3f} W "
          f"(dynamic {result.power.dynamic_w:.3f} W "
          f"+ leakage {result.power.leakage_w:.3f} W)")
    print(f"power-delay product: {result.pdp * 1e9:6.3f} W*ns")
    print(f"saturated          : {result.sim.saturated}")


if __name__ == "__main__":
    main()
