"""QoS (priority-aware switch allocation) tests."""

import pytest

from repro.core.arch import make_3dme
from repro.noc.allocator import SARequest, SwitchAllocator
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass, data_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import BaseTraffic, ScheduledTraffic


class TestPriorityAllocator:
    def test_high_priority_wins_stage2(self):
        sa = SwitchAllocator(3, 2)
        requests = [SARequest(0, 0, 2), SARequest(1, 0, 2)]
        priorities = {(0, 0): 0, (1, 0): 5}
        for _ in range(10):
            grants = sa.allocate(requests, priorities)
            assert grants == [SARequest(1, 0, 2)]

    def test_high_priority_wins_stage1(self):
        sa = SwitchAllocator(3, 2)
        requests = [SARequest(0, 0, 1), SARequest(0, 1, 2)]
        priorities = {(0, 0): 1, (0, 1): 9}
        for _ in range(10):
            grants = sa.allocate(requests, priorities)
            assert grants == [SARequest(0, 1, 2)]

    def test_equal_priority_round_robins(self):
        sa = SwitchAllocator(2, 1)
        requests = [SARequest(0, 0, 1), SARequest(1, 0, 1)]
        priorities = {(0, 0): 3, (1, 0): 3}
        winners = [sa.allocate(requests, priorities)[0].in_port for _ in range(6)]
        assert set(winners) == {0, 1}

    def test_no_priorities_behaves_as_before(self):
        sa = SwitchAllocator(2, 1)
        requests = [SARequest(0, 0, 1), SARequest(1, 0, 1)]
        winners = [sa.allocate(requests, None)[0].in_port for _ in range(4)]
        assert winners == [0, 1, 0, 1]

    def test_missing_priority_defaults_to_zero(self):
        sa = SwitchAllocator(2, 1)
        requests = [SARequest(0, 0, 1), SARequest(1, 0, 1)]
        grants = sa.allocate(requests, {(1, 0): 2})
        assert grants == [SARequest(1, 0, 1)]


class _TwoClassTraffic(BaseTraffic):
    """Two flows to one sink: priority 1 from node 0, priority 0 from 2."""

    def packets_for_cycle(self, cycle):
        if cycle >= 1500 or cycle % 2:
            return ()
        high = data_packet(0, 1, created_cycle=cycle)
        high.priority = 1
        low = data_packet(2, 1, created_cycle=cycle)
        low.priority = 0
        return [high, low]


def _run_two_class(qos_enabled):
    network = Network(Mesh2D(3, 1, pitch_mm=1.0), qos_enabled=qos_enabled)
    sim = Simulator(network, _TwoClassTraffic(), warmup_cycles=200,
                    measure_cycles=1200, drain_cycles=30000)
    sim.run()
    return network.stats


class TestQosEndToEnd:
    def test_priority_class_gets_lower_latency(self):
        stats = _run_two_class(qos_enabled=True)
        high = stats.avg_latency_for_priority(1)
        low = stats.avg_latency_for_priority(0)
        assert high < low

    def test_without_qos_classes_are_symmetric(self):
        stats = _run_two_class(qos_enabled=False)
        high = stats.avg_latency_for_priority(1)
        low = stats.avg_latency_for_priority(0)
        assert high == pytest.approx(low, rel=0.25)

    def test_qos_sharpens_the_gap(self):
        with_qos = _run_two_class(qos_enabled=True)
        without = _run_two_class(qos_enabled=False)
        gap_with = (
            with_qos.avg_latency_for_priority(0)
            - with_qos.avg_latency_for_priority(1)
        )
        gap_without = (
            without.avg_latency_for_priority(0)
            - without.avg_latency_for_priority(1)
        )
        assert gap_with > gap_without

    def test_low_priority_still_delivered(self):
        stats = _run_two_class(qos_enabled=True)
        assert len(stats.latencies_by_priority[0]) > 0
        assert stats.measured_outstanding == 0

    def test_qos_network_from_config(self):
        config = make_3dme()
        network = Network(
            config.build_topology(), qos_enabled=True,
            combined_st_lt=config.combined_st_lt,
        )
        packet = Packet(src=0, dst=5, size_flits=1, klass=PacketClass.CTRL,
                        created_cycle=0, priority=3)
        sim = Simulator(network, ScheduledTraffic([packet]),
                        warmup_cycles=0, measure_cycles=100, drain_cycles=200)
        result = sim.run()
        assert result.packets_delivered == 1
