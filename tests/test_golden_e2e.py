"""Golden end-to-end digests for all six architectures.

Each case runs a tiny, fully deterministic simulation and hashes the
complete stats surface (latency/hops/throughput/percentiles, power
breakdown, event counters, per-node activity) into one digest compared
against ``tests/golden/e2e_digests.json``.  Any hot-path change that
perturbs results — however slightly, on any architecture — fails here
loudly, with the fixture's summary stats showing what moved.

To refresh after an *intentional* behaviour change::

    REPRO_REFRESH_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_e2e.py

then review the diff of the fixture and commit it (see docs/TESTING.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.core.arch import make_2db, make_3dm, make_chiplet, make_ring, standard_configs
from repro.experiments.config import ExperimentSettings
from repro.experiments.export import point_to_dict
from repro.experiments.runner import PointResult, run_point_spec
from repro.experiments.store import PointSpec, canonical_json

FIXTURE = Path(__file__).parent / "golden" / "e2e_digests.json"

#: Budgets are deliberately tiny: large enough to exercise warm-up,
#: measurement, and drain on every architecture; small enough that all
#: eight sims run in a few seconds.
SETTINGS = ExperimentSettings(
    warmup_cycles=100,
    measure_cycles=400,
    drain_cycles=3000,
    uniform_rates=(0.1,),
    nuca_rates=(0.1,),
    trace_cycles=3000,
    workloads=("tpcw",),
    seed=7,
)


def _cases() -> Dict[str, PointSpec]:
    """Uniform traffic on all six architectures, plus NUCA on the two
    ends of the design space (2DB and 3DM) for request/response coverage,
    plus the table-routed substrate fabrics (ring and chiplet)."""
    cases = {
        f"{config.name}:uniform": PointSpec(config, "uniform", 0.1)
        for config in standard_configs()
    }
    cases["2DB:nuca"] = PointSpec(make_2db(), "nuca", 0.1)
    cases["3DM:nuca"] = PointSpec(make_3dm(), "nuca", 0.1)
    cases["RING:uniform"] = PointSpec(make_ring(), "uniform", 0.1)
    cases["CHIPLET:uniform"] = PointSpec(make_chiplet(), "uniform", 0.1)
    return cases


CASES = _cases()


def digest_payload(point: PointResult) -> Dict[str, Any]:
    """Everything the digest covers: the export surface plus the raw
    event counters and per-node activity shares."""
    events = point.sim.events
    return {
        "point": point_to_dict(point),
        "events": {
            "flit_hops": events.flit_hops,
            "short_flit_hops": events.short_flit_hops,
            "buffer_writes": events.buffer_writes,
            "buffer_reads": events.buffer_reads,
            "xbar_traversals": events.xbar_traversals,
            "rc_computations": events.rc_computations,
            "va_allocations": events.va_allocations,
            "sa_allocations": events.sa_allocations,
            "link_flits": dict(events.link_flits),
            "buffer_writes_by_layers": dict(events.buffer_writes_by_layers),
            "buffer_reads_by_layers": dict(events.buffer_reads_by_layers),
            "xbar_traversals_by_layers": dict(events.xbar_traversals_by_layers),
            "flit_hops_by_layers": dict(events.flit_hops_by_layers),
            "link_mm_by_layers": dict(events.link_mm_by_layers),
        },
        "node_activity": list(point.node_activity),
        "node_layer_activity": [list(row) for row in point.node_layer_activity],
        "layer_dynamic_w": list(point.layer_power.layer_dynamic_w),
        "accepted_throughput": point.sim.accepted_throughput,
        "cycles": point.sim.cycles,
    }


def compute_digest(point: PointResult) -> str:
    text = canonical_json(digest_payload(point))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _summary(point: PointResult) -> Dict[str, Any]:
    """Human-oriented excerpt committed beside each digest, so a golden
    failure's fixture diff shows *what* moved, not just that it moved."""
    return {
        "avg_latency": point.avg_latency,
        "avg_hops": point.avg_hops,
        "packets_measured": point.sim.packets_measured,
        "flit_hops": point.sim.events.flit_hops,
        "total_power_w": point.total_power_w,
    }


@pytest.fixture(scope="module")
def computed():
    return {
        name: run_point_spec(spec, SETTINGS) for name, spec in CASES.items()
    }


@pytest.fixture(scope="module")
def golden(computed):
    if os.environ.get("REPRO_REFRESH_GOLDEN", "") not in ("", "0"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "settings": {
                "warmup_cycles": SETTINGS.warmup_cycles,
                "measure_cycles": SETTINGS.measure_cycles,
                "drain_cycles": SETTINGS.drain_cycles,
                "seed": SETTINGS.seed,
            },
            "cases": {
                name: {
                    "digest": compute_digest(point),
                    "summary": _summary(point),
                }
                for name, point in computed.items()
            },
        }
        FIXTURE.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if not FIXTURE.exists():
        pytest.fail(
            "golden fixture missing; generate it with "
            "REPRO_REFRESH_GOLDEN=1 (see docs/TESTING.md)"
        )
    return json.loads(FIXTURE.read_text(encoding="utf-8"))


def test_fixture_covers_exactly_the_cases(golden):
    assert set(golden["cases"]) == set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_digest(name, computed, golden):
    point = computed[name]
    expected = golden["cases"][name]
    measured = _summary(point)
    assert compute_digest(point) == expected["digest"], (
        f"{name}: simulator output drifted from the committed golden "
        f"digest.\n  committed summary: {expected['summary']}\n"
        f"  measured summary : {measured}\n"
        "If the change is intentional, refresh with "
        "REPRO_REFRESH_GOLDEN=1 and commit the fixture diff "
        "(docs/TESTING.md)."
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_summary_matches_digest_source(name, computed, golden):
    """The committed summaries stay in sync with the committed digests
    (a hand-edited fixture can't pass silently)."""
    assert golden["cases"][name]["summary"] == _summary(computed[name])


def test_digest_is_reproducible_within_process(computed):
    name = "2DB:uniform"
    again = run_point_spec(CASES[name], SETTINGS)
    assert compute_digest(again) == compute_digest(computed[name])
