"""Ablation-harness tests (sensitivity of the paper's fixed choices)."""

import pytest

from repro.experiments.ablations import (
    ablate_buffer_depth,
    ablate_express_span,
    ablate_link_failures,
    ablate_pipeline_depth,
    ablate_qos,
    ablate_vc_count,
)


@pytest.fixture(scope="module")
def settings(request):
    from repro.experiments.config import ExperimentSettings

    return ExperimentSettings(
        warmup_cycles=300,
        measure_cycles=1500,
        drain_cycles=10000,
        uniform_rates=(0.2,),
        nuca_rates=(0.1,),
        trace_cycles=5000,
        workloads=("tpcw",),
        seed=7,
    )


def test_pipeline_depth_monotone(settings):
    results = ablate_pipeline_depth(settings, rate=0.15)
    lat = {label: p.avg_latency for label, p in results.items()}
    assert lat["2DB +spec SA (Fig.8b, 4cyc/hop)"] < lat["2DB 4-stage (Fig.8a, 5cyc/hop)"]
    assert (
        lat["2DB +lookahead (Fig.8c, 3cyc/hop)"]
        < lat["2DB +spec SA (Fig.8b, 4cyc/hop)"]
    )
    assert (
        lat["3DM merged+spec+lookahead (2cyc/hop)"]
        == min(lat.values())
    )


def test_vc_count_two_is_sweet_spot_at_low_load(settings):
    """More VCs help at saturation but the paper's 2 suffices at NUCA-like
    loads: going 2 -> 4 must change latency far less than 1 -> 2 helps or
    costs."""
    results = ablate_vc_count(settings, rate=0.2, counts=(1, 2, 4))
    lat = {vcs: p.avg_latency for vcs, p in results.items()}
    assert lat[2] <= lat[1] * 1.05
    assert abs(lat[4] - lat[2]) / lat[2] < 0.1


def test_buffer_depth_diminishing_returns(settings):
    results = ablate_buffer_depth(settings, rate=0.2, depths=(2, 8, 16))
    lat = {d: p.avg_latency for d, p in results.items()}
    assert lat[8] <= lat[2]
    gain_2_to_8 = lat[2] - lat[8]
    gain_8_to_16 = lat[8] - lat[16]
    assert gain_8_to_16 <= gain_2_to_8 + 0.5


def test_express_span_tradeoff(settings):
    """On a 6x6 mesh span 2 strictly dominates span 3: it covers the
    distance distribution better (fewer hops) AND keeps the ST+LT merge
    (span-3 channels exceed the 500 ps stage) — the paper's choice."""
    results = ablate_express_span(settings, rate=0.2, spans=(2, 3))
    assert results[2].avg_hops <= results[3].avg_hops + 0.05
    assert results[2].avg_latency < results[3].avg_latency


def test_span3_forfeits_pipeline_merge():
    from repro.core.arch import make_3dme

    assert make_3dme(span=2).combined_st_lt
    assert not make_3dme(span=3).combined_st_lt


def test_qos_separates_classes(settings):
    results = ablate_qos(settings, rate=0.3, high_priority_fraction=0.2)
    assert results["qos"][1] < results["qos"][0]
    qos_gap = results["qos"][0] - results["qos"][1]
    fifo_gap = results["fifo"][0] - results["fifo"][1]
    assert qos_gap > fifo_gap


def test_link_failures_degrade_gracefully(settings):
    results = ablate_link_failures(settings, rate=0.12,
                                   failure_counts=(0, 2, 4))
    assert results[0] <= results[2] * 1.02
    # Four dead full-duplex links cost well under 50% extra latency.
    assert results[4] < results[0] * 1.5


def test_link_failures_validates_count(settings):
    with pytest.raises(ValueError):
        ablate_link_failures(settings, failure_counts=(99,))
