"""CLI tests (direct invocation of the argparse entry point)."""

import pytest

from repro.cli import main


def test_area_command(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "Crossbar" in out
    assert "230,400" in out


def test_delays_command(capsys):
    assert main(["delays"]) == 0
    out = capsys.readouterr().out
    assert "378.56" in out
    assert "Yes" in out and "No" in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "tpcw" in out and "multimedia" in out


def test_simulate_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert main(["simulate", "--arch", "3DM-E", "--rate", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "avg latency" in out
    assert "3DM-E" in out


def test_simulate_nuca_with_short_flits(capsys):
    assert main([
        "simulate", "--arch", "3DM", "--traffic", "nuca",
        "--rate", "0.05", "--short-flits", "0.5",
    ]) == 0
    out = capsys.readouterr().out
    assert "NUCA" in out


def test_simulate_unknown_arch_exits():
    with pytest.raises(SystemExit):
        main(["simulate", "--arch", "bogus"])


def test_trace_command(tmp_path, capsys):
    output = tmp_path / "trace.txt"
    assert main([
        "trace", "--workload", "tpcw", "--cycles", "5000",
        "--output", str(output),
    ]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert output.exists()
    from repro.traffic.traces import read_trace

    assert len(read_trace(output)) > 0


def test_trace_unknown_workload_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "--workload", "nope", "--output",
              str(tmp_path / "t.txt")])


def test_experiment_fig9(capsys):
    assert main(["experiment", "fig9"]) == 0
    out = capsys.readouterr().out
    assert "crossbar" in out


def test_experiment_unknown_exits():
    with pytest.raises(SystemExit):
        main(["experiment", "nope"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_report_command(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "table1_area.txt").write_text("areas\n")
    assert main(["report", "--results", str(results)]) == 0
    assert (results / "REPORT.md").exists()


def test_report_command_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["report", "--results", str(tmp_path / "nope")])


def test_simulate_telemetry_flags(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_SCALE", "quick")
    metrics = tmp_path / "metrics.jsonl"
    trace = tmp_path / "trace.json"
    assert main([
        "simulate", "--arch", "3DM", "--rate", "0.1",
        "--short-flits", "0.5",
        "--metrics-out", str(metrics),
        "--trace-out", str(trace),
        "--metrics-interval", "50",
    ]) == 0
    out = capsys.readouterr().out
    assert "--- telemetry ---" in out
    assert "windows sampled" in out

    records = [json.loads(l) for l in metrics.read_text().splitlines()]
    assert records[0]["type"] == "meta"
    assert records[0]["interval"] == 50
    assert records[-1]["type"] == "end"
    payload = json.loads(trace.read_text())
    assert payload["traceEvents"]
    assert payload["otherData"]["ts_unit"] == "simulation cycles"


def test_simulate_without_telemetry_flags_prints_no_block(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert main(["simulate", "--arch", "2DB", "--rate", "0.05"]) == 0
    assert "--- telemetry ---" not in capsys.readouterr().out


def test_sweep_command_cache_and_resume(tmp_path, capsys):
    import json

    args = [
        "sweep", "--archs", "2DB", "--rates", "0.05", "--processes", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--journal", str(tmp_path / "run.jsonl"),
        "--out", str(tmp_path / "sweep.json"),
        "--stats-out", str(tmp_path / "stats.json"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "--- sweep engine ---" in out
    assert "cache hits        : 0" in out
    stats = json.loads((tmp_path / "stats.json").read_text())["stats"]
    assert stats["executed"] == 1 and stats["cache_hits"] == 0

    exported = json.loads((tmp_path / "sweep.json").read_text())
    assert exported["2DB"][0]["rate"] == 0.05

    # Resume: the one point comes straight from the cache.
    assert main(args + ["--resume"]) == 0
    stats = json.loads((tmp_path / "stats.json").read_text())["stats"]
    assert stats["executed"] == 0 and stats["cache_hits"] == 1
    resumed = json.loads((tmp_path / "sweep.json").read_text())
    assert resumed == exported  # bit-identical through the cache
    assert (tmp_path / "run.jsonl").read_text().count('"run-start"') == 2


def test_sweep_command_unknown_arch_exits():
    with pytest.raises(SystemExit):
        main(["sweep", "--archs", "5DX", "--rates", "0.05"])


def test_experiment_accepts_cache_dir(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "quick")
    # fig13a runs trace generation only (no per-point cache use), but
    # must accept the flag; the store is created up front.
    assert main([
        "experiment", "fig13a", "--cache-dir", str(tmp_path / "cache")
    ]) == 0
    assert (tmp_path / "cache").is_dir()
