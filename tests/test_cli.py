"""CLI tests (direct invocation of the argparse entry point)."""

import pytest

from repro.cli import main


def test_area_command(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "Crossbar" in out
    assert "230,400" in out


def test_delays_command(capsys):
    assert main(["delays"]) == 0
    out = capsys.readouterr().out
    assert "378.56" in out
    assert "Yes" in out and "No" in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "tpcw" in out and "multimedia" in out


def test_simulate_command(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert main(["simulate", "--arch", "3DM-E", "--rate", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "avg latency" in out
    assert "3DM-E" in out


def test_simulate_nuca_with_short_flits(capsys):
    assert main([
        "simulate", "--arch", "3DM", "--traffic", "nuca",
        "--rate", "0.05", "--short-flits", "0.5",
    ]) == 0
    out = capsys.readouterr().out
    assert "NUCA" in out


def test_simulate_unknown_arch_exits():
    with pytest.raises(SystemExit):
        main(["simulate", "--arch", "bogus"])


def test_trace_command(tmp_path, capsys):
    output = tmp_path / "trace.txt"
    assert main([
        "trace", "--workload", "tpcw", "--cycles", "5000",
        "--output", str(output),
    ]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert output.exists()
    from repro.traffic.traces import read_trace

    assert len(read_trace(output)) > 0


def test_trace_unknown_workload_exits(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "--workload", "nope", "--output",
              str(tmp_path / "t.txt")])


def test_experiment_fig9(capsys):
    assert main(["experiment", "fig9"]) == 0
    out = capsys.readouterr().out
    assert "crossbar" in out


def test_experiment_unknown_exits():
    with pytest.raises(SystemExit):
        main(["experiment", "nope"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_report_command(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "table1_area.txt").write_text("areas\n")
    assert main(["report", "--results", str(results)]) == 0
    assert (results / "REPORT.md").exists()


def test_report_command_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["report", "--results", str(tmp_path / "nope")])


def test_simulate_telemetry_flags(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_SCALE", "quick")
    metrics = tmp_path / "metrics.jsonl"
    trace = tmp_path / "trace.json"
    assert main([
        "simulate", "--arch", "3DM", "--rate", "0.1",
        "--short-flits", "0.5",
        "--metrics-out", str(metrics),
        "--trace-out", str(trace),
        "--metrics-interval", "50",
    ]) == 0
    out = capsys.readouterr().out
    assert "--- telemetry ---" in out
    assert "windows sampled" in out

    records = [json.loads(l) for l in metrics.read_text().splitlines()]
    assert records[0]["type"] == "meta"
    assert records[0]["interval"] == 50
    assert records[-1]["type"] == "end"
    payload = json.loads(trace.read_text())
    assert payload["traceEvents"]
    assert payload["otherData"]["ts_unit"] == "simulation cycles"


def test_simulate_without_telemetry_flags_prints_no_block(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert main(["simulate", "--arch", "2DB", "--rate", "0.05"]) == 0
    assert "--- telemetry ---" not in capsys.readouterr().out
