"""3DB CPU-placement ablation tests (the Sec. 3.1 thermal argument)."""

import pytest

from repro.core.arch import make_3db
from repro.experiments.ablations import ablate_3db_cpu_placement
from repro.experiments.config import ExperimentSettings


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=300,
        measure_cycles=1500,
        drain_cycles=10000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=5000,
        workloads=("tpcw",),
        seed=7,
    )


class TestPlacementFactory:
    def test_top_placement_is_default(self):
        assert make_3db().cpu_nodes == make_3db(cpu_placement="top").cpu_nodes

    def test_top_cpus_on_heat_sink_layer(self):
        config = make_3db(cpu_placement="top")
        assert all(node // 9 == 3 for node in config.cpu_nodes)

    def test_spread_cpus_on_multiple_layers(self):
        config = make_3db(cpu_placement="spread")
        layers = {node // 9 for node in config.cpu_nodes}
        assert len(layers) >= 3

    def test_spread_cpu_count_correct(self):
        config = make_3db(cpu_placement="spread")
        assert len(config.cpu_nodes) == 8
        assert len(set(config.cpu_nodes)) == 8
        assert not set(config.cpu_nodes) & set(config.cache_nodes)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            make_3db(cpu_placement="bogus")


class TestPlacementTradeoff:
    @pytest.fixture(scope="class")
    def results(self, settings):
        return ablate_3db_cpu_placement(settings)

    def test_spread_improves_nuca_hops(self, results):
        """Distributing CPUs shortens CPU-cache paths (what 3DB-top
        sacrifices, per Fig. 11d's discussion)."""
        assert results["spread"]["avg_hops"] < results["top"]["avg_hops"]

    def test_spread_improves_latency(self, results):
        assert results["spread"]["avg_latency"] < results["top"]["avg_latency"]

    def test_spread_runs_hotter(self, results):
        """...but stacks 8 W cores away from the heat sink (Sec. 3.1:
        'such a design would significantly increase the on-chip
        temperature')."""
        assert results["spread"]["max_temp_k"] > results["top"]["max_temp_k"] + 2
        assert results["spread"]["avg_temp_k"] > results["top"]["avg_temp_k"]
