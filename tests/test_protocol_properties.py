"""Property-based coherence-protocol testing.

Hypothesis drives the CMP hierarchy with arbitrary access interleavings
(offline transport, drained to quiescence each time) and checks the MESI
safety invariants: single writer, directory/L1 agreement, no stuck
transactions.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.cache.cachesim import LineState
from repro.cache.directory import DirState
from repro.cache.hierarchy import CmpSystem
from repro.core.arch import make_2db
from repro.traffic.workloads import WORKLOADS

#: Small line pool so Hypothesis finds real sharing conflicts.
LINE_POOL = [0x40 * i for i in range(12)]

#: A fast-issuing profile (the streams aren't used; accesses come from
#: Hypothesis), with a small working set.
PROFILE = dataclasses.replace(
    WORKLOADS["barnes"], working_set_lines=1024
)

access_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),       # cpu
        st.sampled_from(LINE_POOL),                  # line address
        st.booleans(),                               # is_write
    ),
    min_size=1,
    max_size=60,
)


def _drain(system: CmpSystem, limit: int = 200000) -> None:
    while (system.pending_events() or system.outbox) and system.now < limit:
        for _, msg in system.drain_outbox(system.now):
            system.schedule(system.now + 8, lambda m=msg: system.dispatch(m))
        if not system.pending_events():
            break
        nxt = system._events[0][0]
        system.advance_to(nxt)


def _fresh_system() -> CmpSystem:
    config = make_2db(width=4, height=4, num_cpus=4)
    system = CmpSystem(config, PROFILE, seed=3)
    # Silence the autonomous CPU streams: only Hypothesis issues accesses.
    system.set_issue_horizon(0)
    system._events.clear()
    return system


@settings(max_examples=40, deadline=None)
@given(access_strategy)
def test_property_single_writer(accesses):
    system = _fresh_system()
    for cpu, line, is_write in accesses:
        system.l1s[cpu].access(line, is_write)
        system.advance_to(system.now + 3)
    _drain(system)
    assert system.outstanding_mshrs() == 0, "stuck transaction"
    owners = {}
    for cpu, l1 in enumerate(system.l1s):
        for line, state in l1.cache.resident_lines().items():
            if state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                assert line not in owners, (
                    f"line {line:#x}: two exclusive holders"
                )
                owners[line] = cpu


@settings(max_examples=25, deadline=None)
@given(access_strategy)
def test_property_directory_agrees_with_l1s(accesses):
    system = _fresh_system()
    for cpu, line, is_write in accesses:
        system.l1s[cpu].access(line, is_write)
        system.advance_to(system.now + 3)
    _drain(system)
    holders = {}
    for cpu, l1 in enumerate(system.l1s):
        for line, state in l1.cache.resident_lines().items():
            holders.setdefault(line, {})[cpu] = state
    for bank in system.banks:
        bank.check_invariants()
        for line, entry in bank.entries.items():
            if entry.busy:
                continue
            for cpu, state in holders.get(line, {}).items():
                if entry.state is DirState.SHARED:
                    assert cpu in entry.sharers
                    assert state is LineState.SHARED
                elif entry.state is DirState.EXCLUSIVE:
                    assert cpu == entry.owner
                else:  # INVALID with residents would be a leak
                    raise AssertionError(
                        f"L1 {cpu} holds {line:#x} but directory says I"
                    )


@settings(max_examples=25, deadline=None)
@given(access_strategy)
def test_property_shared_lines_never_modified(accesses):
    """A SHARED directory line must not be dirty anywhere."""
    system = _fresh_system()
    for cpu, line, is_write in accesses:
        system.l1s[cpu].access(line, is_write)
        system.advance_to(system.now + 3)
    _drain(system)
    for bank in system.banks:
        for line, entry in bank.entries.items():
            if entry.state is not DirState.SHARED or entry.busy:
                continue
            for l1 in system.l1s:
                resident = l1.cache.resident_lines().get(line)
                assert resident is not LineState.MODIFIED
                assert resident is not LineState.EXCLUSIVE
