"""Power-model scaling properties across load and architecture."""

import pytest

from repro.core.arch import make_2db, make_3dm
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_uniform_point


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=300,
        measure_cycles=1500,
        drain_cycles=10000,
        uniform_rates=(0.05, 0.1, 0.2),
        nuca_rates=(0.1,),
        trace_cycles=5000,
        workloads=("tpcw",),
        seed=23,
    )


@pytest.fixture(scope="module")
def points(settings):
    return {
        rate: run_uniform_point(make_2db(), rate, settings)
        for rate in (0.05, 0.1, 0.2)
    }


def test_dynamic_power_monotone_in_load(points):
    dyn = [points[r].power.dynamic_w for r in (0.05, 0.1, 0.2)]
    assert dyn == sorted(dyn)


def test_dynamic_power_roughly_linear_below_saturation(points):
    """Below saturation, delivered flits scale with rate, so dynamic
    power should double when the rate doubles (within noise)."""
    ratio = points[0.2].power.dynamic_w / points[0.1].power.dynamic_w
    assert ratio == pytest.approx(2.0, rel=0.12)


def test_leakage_independent_of_load(points):
    leak = {points[r].power.leakage_w for r in (0.05, 0.1, 0.2)}
    assert len(leak) == 1


def test_breakdown_shares_stable_across_load(points):
    def shares(point):
        bd = point.power.breakdown_w
        total = sum(bd.values())
        return {k: v / total for k, v in bd.items()}

    lo, hi = shares(points[0.05]), shares(points[0.2])
    for component in lo:
        assert lo[component] == pytest.approx(hi[component], abs=0.03), component


def test_link_dominates_2db_budget(points):
    """Fig. 9's structure: 2DB spends most dynamic energy on wires."""
    bd = points[0.2].power.breakdown_w
    assert bd["link"] == max(bd.values())


def test_3dm_power_advantage_grows_with_load(settings):
    """The separable-wire savings scale with traffic, leakage doesn't,
    so 3DM's *absolute* advantage widens with injection rate."""
    gaps = []
    for rate in (0.05, 0.2):
        p2 = run_uniform_point(make_2db(), rate, settings)
        p3 = run_uniform_point(make_3dm(), rate, settings)
        gaps.append(p2.total_power_w - p3.total_power_w)
    assert gaps[1] > gaps[0]


def test_pdp_units_sane(points):
    """PDP = power x latency-in-seconds: tens of nanowatt-seconds here."""
    pdp = points[0.1].pdp
    latency_s = points[0.1].avg_latency * 0.5e-9
    assert pdp == pytest.approx(points[0.1].total_power_w * latency_s)
