"""Analytic layer-shutdown saving tests (Fig. 13b)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.arch import make_2db, make_3dm, make_3dme
from repro.power.gating import separable_share, shutdown_saving


def test_separable_share_dominates():
    """Buffers + crossbar + links carry most of the flit energy."""
    for make in (make_2db(), make_3dm(), make_3dme()):
        share = separable_share(make)
        assert 0.75 <= share <= 0.95


def test_headline_saving_at_50pct():
    """Sec. 4.2.2: 'up to 36% power' saved at 50% short flits — the
    total-dynamic saving lands in the 25-36% band once the
    non-separable share damps it."""
    for config in (make_2db(), make_3dm(), make_3dme()):
        saving = shutdown_saving(config, 0.50).saving_fraction
        assert 0.25 <= saving <= 0.37, config.name


def test_saving_at_25pct_roughly_half_of_50pct():
    config = make_3dm()
    s25 = shutdown_saving(config, 0.25).saving_fraction
    s50 = shutdown_saving(config, 0.50).saving_fraction
    assert s25 == pytest.approx(s50 / 2, rel=0.15)


def test_zero_short_fraction_costs_overhead():
    saving = shutdown_saving(make_3dm(), 0.0)
    assert saving.saving_fraction == pytest.approx(-0.01 * saving.separable_share, abs=1e-9)


def test_result_carries_inputs():
    saving = shutdown_saving(make_3dm(), 0.25)
    assert saving.name == "3DM"
    assert saving.short_fraction == 0.25
    assert saving.power_factor == pytest.approx(
        saving.separable_share * (0.75 + 0.25 / 4 + 0.01)
        + (1 - saving.separable_share)
    )


@given(st.floats(min_value=0.0, max_value=1.0))
def test_property_factor_in_unit_range(short):
    saving = shutdown_saving(make_3dm(), short)
    assert 0.2 <= saving.power_factor <= 1.01


@given(st.integers(min_value=0, max_value=10))
def test_property_saving_monotone(tenths):
    config = make_3dme()
    lo = shutdown_saving(config, tenths / 10).saving_fraction
    hi = shutdown_saving(config, min(1.0, tenths / 10 + 0.1)).saving_fraction
    assert hi >= lo
