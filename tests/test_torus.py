"""2D torus topology + dateline-VC routing tests."""

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.core.express import average_hops, hop_count, route_path
from repro.noc.network import Network
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.routing import TorusXYRouting
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import EAST, Mesh2D, WEST
from repro.topology.torus import Torus2D
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


@pytest.fixture
def torus():
    return Torus2D(5, 5, pitch_mm=1.0)


class TestTopology:
    def test_every_router_has_full_radix(self, torus):
        for node in torus.iter_nodes():
            assert torus.degree(node) == 4
        assert torus.max_radix() == 5

    def test_wrap_channel_count(self, torus):
        wraps = [l for l in torus.links if l.wrap]
        # 2 per row (E and W wrap) + 2 per column.
        assert len(wraps) == 2 * 5 + 2 * 5

    def test_wrap_connects_edges(self, torus):
        link = torus.out_ports[torus.node_at((4, 2))][EAST]
        assert link.wrap
        assert torus.coordinates(link.dst) == (0, 2)

    def test_folded_torus_channel_length(self, torus):
        for link in torus.links:
            assert link.length_mm == pytest.approx(2.0)

    def test_small_dimension_rejected(self):
        with pytest.raises(ValueError):
            Torus2D(2, 5, pitch_mm=1.0)

    def test_coordinates_roundtrip(self, torus):
        for node in torus.iter_nodes():
            assert torus.node_at(torus.coordinates(node)) == node


class TestRouting:
    def test_takes_shorter_way_around(self, torus):
        routing = TorusXYRouting(torus)
        # (0,0) -> (4,0): 1 hop west beats 4 hops east.
        assert routing.output_port(0, torus.node_at((4, 0))) == WEST

    def test_tie_goes_forward(self):
        torus = Torus2D(4, 4, pitch_mm=1.0)
        routing = TorusXYRouting(torus)
        # Distance 2 both ways on a 4-ring: prefer east.
        assert routing.output_port(0, torus.node_at((2, 0))) == EAST

    def test_hop_count_uses_ring_distance(self, torus):
        src = torus.node_at((0, 0))
        dst = torus.node_at((4, 4))
        # 1 west + 1 north via wraps.
        assert hop_count(torus, src, dst) == 2

    def test_average_hops_below_mesh(self, torus):
        mesh = Mesh2D(5, 5, pitch_mm=1.0)
        assert average_hops(torus) < average_hops(mesh)

    def test_requires_torus(self):
        with pytest.raises(TypeError):
            TorusXYRouting(Mesh2D(4, 4, pitch_mm=1.0))

    @hyp_settings(max_examples=60)
    @given(st.integers(0, 24), st.integers(0, 24))
    def test_property_all_pairs_routable_minimal(self, src, dst):
        torus = Torus2D(5, 5, pitch_mm=1.0)
        if src == dst:
            return
        path = route_path(torus, src, dst)
        assert path[-1] == dst
        sx, sy = torus.coordinates(src)
        dx, dy = torus.coordinates(dst)
        ring = lambda a, b, k: min((b - a) % k, (a - b) % k)
        assert len(path) - 1 == ring(sx, dx, 5) + ring(sy, dy, 5)


class TestDateline:
    def _deliver(self, packets, cycles=3000):
        network = Network(Torus2D(5, 5, pitch_mm=1.0))
        sim = Simulator(network, ScheduledTraffic(packets), warmup_cycles=0,
                        measure_cycles=cycles, drain_cycles=cycles * 5)
        result = sim.run()
        return network, result

    def test_wrapping_packet_delivered(self):
        torus = Torus2D(5, 5, pitch_mm=1.0)
        packet = ctrl_packet(torus.node_at((4, 4)), torus.node_at((0, 0)),
                             created_cycle=0)
        _, result = self._deliver([packet])
        assert packet.delivered_cycle is not None
        assert packet.hops == 2

    def test_dateline_state_set_after_wrap(self):
        torus = Torus2D(5, 5, pitch_mm=1.0)
        packet = data_packet(torus.node_at((4, 0)), torus.node_at((1, 0)),
                             created_cycle=0)
        self._deliver([packet])
        flits = []  # the head flit keeps its state post-run
        # Re-run with direct flit access.
        network = Network(Torus2D(5, 5, pitch_mm=1.0))
        p = data_packet(torus.node_at((4, 0)), torus.node_at((1, 0)),
                        created_cycle=0)
        sim = Simulator(network, ScheduledTraffic([p]), warmup_cycles=0,
                        measure_cycles=200, drain_cycles=1000)
        sim.run()
        assert p.delivered_cycle is not None
        del flits

    def test_dateline_vc_assignment(self):
        """Channels before the wrap are claimed on VC 0, after on VC 1."""
        from repro.noc.tracer import PacketTracer

        torus = Torus2D(5, 5, pitch_mm=1.0)
        network = Network(torus)
        # (4,0) -E wrap-> (0,0) -E-> (1,0): crosses the dateline mid-path.
        src, dst = torus.node_at((4, 0)), torus.node_at((1, 0))
        packet = ctrl_packet(src, dst, created_cycle=0)
        vc_claims = {}

        original = network.routers[0].__class__._traverse_flat

        def spy(router, i, in_port, cycle):
            fifo = router.vc_fifos[i]
            flit = fifo[0] if fifo else None
            if flit is not None and flit.packet is packet:
                vc_claims[router.node] = router.vc_out_vc[i]
            return original(router, i, in_port, cycle)

        for router in network.routers:
            router._traverse_flat = spy.__get__(router)
        sim = Simulator(network, ScheduledTraffic([packet]), warmup_cycles=0,
                        measure_cycles=200, drain_cycles=1000)
        sim.run()
        assert vc_claims[torus.node_at((4, 0))] == 0  # the wrap channel
        assert vc_claims[torus.node_at((0, 0))] == 1  # post-dateline

    def test_no_deadlock_under_heavy_load(self):
        """The dateline discipline keeps a saturated torus live."""
        network = Network(Torus2D(5, 5, pitch_mm=1.0))
        sim = Simulator(
            network,
            UniformRandomTraffic(num_nodes=25, flit_rate=0.45, seed=13),
            warmup_cycles=300, measure_cycles=3000, drain_cycles=2000,
        )
        result = sim.run()
        assert result.packets_delivered > 1500

    def test_uniform_traffic_all_delivered(self):
        network = Network(Torus2D(5, 5, pitch_mm=1.0))
        sim = Simulator(
            network,
            UniformRandomTraffic(num_nodes=25, flit_rate=0.15, seed=13),
            warmup_cycles=300, measure_cycles=2000, drain_cycles=15000,
        )
        result = sim.run()
        assert not result.saturated
        assert result.avg_hops < average_hops(Mesh2D(5, 5, pitch_mm=1.0))

    def test_vc_by_class_conflicts_with_discipline(self):
        with pytest.raises(ValueError):
            Network(Torus2D(5, 5, pitch_mm=1.0), vc_by_class=True)

    def test_needs_two_vcs(self):
        with pytest.raises(ValueError):
            Network(Torus2D(5, 5, pitch_mm=1.0), num_vcs=1)
