"""NoC sanitizer tests: clean runs, seeded faults, watchdog.

Three layers:

* clean runs — every standard architecture, uniform (low and
  near-saturation) and NUCA traffic, with the sanitizer auditing every
  cycle: nothing may raise, and sanitized runs must be bit-identical to
  bare runs (the sanitizer never mutates state);
* seeded faults — corrupt a credit counter, drop a buffered flit, wedge
  a VC: the audit must catch each one and attribute it to the exact
  (cycle, node, port, VC, packet);
* plumbing — snapshot wiring through SimulationResult, interval gating,
  argument validation.
"""

from __future__ import annotations

import pytest

from repro.core.arch import make_2db, make_3dme, standard_configs
from repro.noc.sanitizer import (
    NetworkSanitizer,
    SanityError,
    SanitySnapshot,
    WatchdogReport,
)
from repro.noc.simulator import Simulator
from repro.traffic.nuca import NucaUniformTraffic
from repro.traffic.synthetic import UniformRandomTraffic

CONFIGS = {config.name: config for config in standard_configs()}


def _uniform_sim(config, rate, *, seed=11, measure=250, drain=2500,
                 interval=1):
    network = config.build_network()
    return Simulator(
        network,
        UniformRandomTraffic(config.num_nodes, rate, seed=seed),
        warmup_cycles=50,
        measure_cycles=measure,
        drain_cycles=drain,
        sanitize=True,
        sanitize_interval=interval,
    )


def _warmed_network(rate=0.25, cycles=300, seed=5, **sanitizer_kwargs):
    """A 2DB network driven *cycles* cycles with live traffic, with a
    manually attached sanitizer (so tests can corrupt state and audit)."""
    config = make_2db()
    network = config.build_network()
    network.sanitizer = NetworkSanitizer(network, **sanitizer_kwargs)
    sim = Simulator(
        network,
        UniformRandomTraffic(config.num_nodes, rate, seed=seed),
        warmup_cycles=0,
        measure_cycles=max(cycles, 1),
        drain_cycles=4000,
    )
    for _ in range(cycles):
        sim._tick(generate=True)
    return network, sim


class TestCleanRuns:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_uniform_low_load(self, name):
        result = _uniform_sim(CONFIGS[name], 0.05).run()
        assert isinstance(result.sanity, SanitySnapshot)
        assert result.sanity.audits > 0
        assert result.sanity.flits_checked > 0
        assert result.sanity.credits_checked > 0

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_uniform_near_saturation(self, name):
        result = _uniform_sim(
            CONFIGS[name], 0.32, measure=250, drain=1200, interval=5
        ).run()
        assert result.sanity.audits > 0
        assert result.sanity.vcs_checked > 0

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_nuca_traffic(self, name):
        config = CONFIGS[name]
        network = config.build_network()
        sim = Simulator(
            network,
            NucaUniformTraffic(
                cpu_nodes=config.cpu_nodes,
                cache_nodes=config.cache_nodes,
                request_rate=0.1,
                seed=13,
            ),
            warmup_cycles=50,
            measure_cycles=250,
            drain_cycles=2500,
            sanitize=True,
        )
        result = sim.run()
        assert result.sanity.audits > 0

    def test_sanitized_run_bit_identical_to_bare(self):
        config = make_2db()

        def run(sanitize):
            network = config.build_network()
            network.sanitizer = None  # isolate from REPRO_SANITIZE runs
            sim = Simulator(
                network,
                UniformRandomTraffic(config.num_nodes, 0.2, seed=21),
                warmup_cycles=100,
                measure_cycles=400,
                drain_cycles=4000,
                sanitize=sanitize,
            )
            return sim.run()

        bare, sanitized = run(False), run(True)
        assert bare.sanity is None
        assert sanitized.sanity is not None
        assert sanitized.avg_latency == bare.avg_latency
        assert sanitized.cycles == bare.cycles
        assert sanitized.flits_delivered == bare.flits_delivered
        assert sanitized.packets_delivered == bare.packets_delivered

    def test_profiler_reports_sanitize_phase(self):
        config = make_2db()
        sim = Simulator(
            config.build_network(),
            UniformRandomTraffic(config.num_nodes, 0.1, seed=3),
            warmup_cycles=20,
            measure_cycles=100,
            drain_cycles=2000,
            profile=True,
            sanitize=True,
        )
        result = sim.run()
        assert result.profile.phase_wall_s["sanitize"] > 0.0


class TestSeededFaults:
    def test_corrupted_credit_counter_attributed(self):
        network, _ = _warmed_network()
        router = next(
            r for r in network.routers
            if any(c is not None for c in r.credits)
        )
        port = next(
            i for i, c in enumerate(router.credits) if c is not None
        )
        router.credits[port][0] += 1  # phantom credit

        with pytest.raises(SanityError) as excinfo:
            network.sanitizer.audit(network.cycle)
        err = excinfo.value
        assert err.check == "credit-accounting"
        assert err.cycle == network.cycle
        assert err.node == router.node
        assert err.port == port
        assert err.port_name == router.port_names[port]
        assert err.vc == 0
        assert f"node {router.node}" in str(err)

    def test_dropped_flit_attributed(self):
        network, sim = _warmed_network(rate=0.3, cycles=0, seed=9)

        def droppable():
            for router in network.routers:
                for unit in router.in_vcs:
                    flits = unit.buffer.flits()
                    # An interior flit flanked by same-packet neighbours:
                    # removing it leaves the seq gap inside this buffer,
                    # so the audit can attribute it exactly.
                    for i in range(1, len(flits) - 1):
                        if (flits[i - 1].packet.pid == flits[i].packet.pid
                                == flits[i + 1].packet.pid):
                            return router, unit, i
            return None

        found = None
        for _ in range(2000):
            sim._tick(generate=True)
            found = droppable()
            if found:
                break
        assert found, "traffic never built a 3-flit same-packet run"
        router, unit, index = found
        victim = unit.buffer.flits()[index]
        del unit.buffer.fifo[index]

        with pytest.raises(SanityError) as excinfo:
            network.sanitizer.audit(network.cycle)
        err = excinfo.value
        assert err.check == "flit-conservation"
        assert "gap" in str(err)
        assert err.cycle == network.cycle
        assert err.node == router.node
        assert err.port == unit.port
        assert err.port_name == router.port_names[unit.port]
        assert err.vc == unit.vc
        assert err.pid == victim.packet.pid

    def test_wedged_vc_produces_watchdog_report(self):
        network, sim = _warmed_network(
            rate=0.2, cycles=250, seed=7, watchdog_window=120
        )
        wedged = next(
            unit for router in network.routers for unit in router.in_vcs
            if len(unit.buffer) > 0
        )
        wedged_node = next(
            r.node for r in network.routers if wedged in r.in_vcs
        )
        wedged.ready_cycle = 10 ** 9  # VC never becomes ready again

        # Stop generating; everything not stuck behind the wedge drains,
        # then deliveries cease and the watchdog window starts counting.
        for _ in range(800):
            sim._tick(generate=False)

        reports = network.sanitizer.watchdog_reports
        assert len(reports) == 1  # one stall, one report (no spam)
        report = reports[0]
        assert isinstance(report, WatchdogReport)
        assert report.stalled_cycles >= 120
        assert report.flits_in_network > 0
        assert any(
            s.node == wedged_node
            and s.port == wedged.port
            and s.vc == wedged.vc
            for s in report.stalled_vcs
        )
        assert report.flit_hops_in_window == 0
        assert "suspected deadlock" in report.format()
        # The report rides along on the snapshot / SimulationResult.
        snap = network.sanitizer.snapshot()
        assert snap.watchdog_reports == (report,)
        assert "watchdog" in snap.format()

    def test_watchdog_does_not_fire_on_healthy_drain(self):
        network, sim = _warmed_network(
            rate=0.15, cycles=200, seed=3, watchdog_window=120
        )
        for _ in range(800):
            sim._tick(generate=False)
        assert network.idle()
        assert network.sanitizer.watchdog_reports == []


class TestPlumbing:
    def test_unsanitized_result_has_no_snapshot(self):
        config = make_2db()
        network = config.build_network()
        network.sanitizer = None  # isolate from REPRO_SANITIZE runs
        sim = Simulator(
            network,
            UniformRandomTraffic(config.num_nodes, 0.05, seed=2),
            warmup_cycles=10,
            measure_cycles=50,
            drain_cycles=1000,
        )
        result = sim.run()
        assert result.sanity is None
        assert sim.network.sanitizer is None

    def test_interval_gates_audit_frequency(self):
        network, _ = _warmed_network(cycles=200, interval=10)
        every_cycle, _ = _warmed_network(cycles=200, interval=1)
        assert 0 < network.sanitizer.audits <= 21
        assert every_cycle.sanitizer.audits == 200

    def test_simulator_keeps_existing_sanitizer(self):
        config = make_3dme()
        network = config.build_network()
        own = NetworkSanitizer(network, interval=4)
        network.sanitizer = own
        sim = Simulator(
            network,
            UniformRandomTraffic(config.num_nodes, 0.05, seed=2),
            warmup_cycles=5,
            measure_cycles=20,
            drain_cycles=500,
            sanitize=True,
        )
        assert network.sanitizer is own
        assert sim.network.sanitizer.interval == 4

    def test_snapshot_format_mentions_counts(self):
        network, _ = _warmed_network(cycles=50)
        text = network.sanitizer.snapshot().format()
        assert "audits run" in text
        assert "flits checked" in text
        assert "watchdog reports" in text

    def test_validation(self):
        network = make_2db().build_network()
        with pytest.raises(ValueError):
            NetworkSanitizer(network, interval=0)
        with pytest.raises(ValueError):
            NetworkSanitizer(network, watchdog_window=0)

    def test_cli_sanitize_flag(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main([
            "simulate", "--arch", "2DB", "--rate", "0.05",
            "--sanitize", "--sanitize-interval", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "sanitizer" in out
        assert "audits run" in out

    def test_sanity_error_location_formatting(self):
        err = SanityError(
            "credit-accounting", "boom", 42,
            node=3, port=1, port_name="E", vc=2, pid=77,
        )
        text = str(err)
        assert "[credit-accounting] cycle 42" in text
        assert "node 3" in text
        assert "port 'E'" in text
        assert "vc 2" in text
        assert "pid 77" in text
