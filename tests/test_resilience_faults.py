"""Fault-injector tests: plans, link kills, stuck VCs, drop accounting.

Covers the runtime damage machinery of :mod:`repro.resilience.faults`:
scheduled and seeded-random link kills in both failure modes, the
credit-confiscation ledger the sanitizer balances against, stuck-VC
freezing, graceful drop accounting (satellite: ``UnroutableError``
context + counted drops instead of aborts), and sanitize-clean injected
runs on every architecture family the injector touches.
"""

import pytest

from repro.core.arch import make_2db, make_3dm, make_3dme
from repro.noc.routing import UnroutableError
from repro.noc.simulator import Simulator
from repro.resilience.faults import (
    STUCK_READY_CYCLE,
    FaultInjector,
    FaultPlan,
    LinkFault,
    StuckVCFault,
)
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


def _sim(config, plan, *, rate=0.1, seed=11, measure=250, drain=2500,
         sanitize=True):
    network = config.build_network()
    return network, Simulator(
        network,
        UniformRandomTraffic(config.num_nodes, rate, seed=seed),
        warmup_cycles=50,
        measure_cycles=measure,
        drain_cycles=drain,
        sanitize=sanitize,
        faults=plan,
    )


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(links=(LinkFault(0, 0, 1),))
        assert FaultPlan(vcs=(StuckVCFault(0, 0, 0, 0),))

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(mode="soft")

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(-1, 0, 1)
        with pytest.raises(ValueError):
            StuckVCFault(-1, 0, 0, 0)

    def test_random_links_deterministic_and_valid(self):
        topology = make_3dme().build_topology()
        plan = FaultPlan.random_links(topology, 4, seed=9, cycle=12,
                                      mode="drain")
        again = FaultPlan.random_links(topology, 4, seed=9, cycle=12,
                                       mode="drain")
        assert plan == again
        assert len(plan.links) == 4
        assert plan.mode == "drain"
        channels = {(link.src, link.dst) for link in topology.links}
        for fault in plan.links:
            assert fault.cycle == 12
            assert (fault.src, fault.dst) in channels
        # Distinct channels, different seed -> (almost surely) different.
        assert len({(f.src, f.dst) for f in plan.links}) == 4
        other = FaultPlan.random_links(topology, 4, seed=10)
        assert {(f.src, f.dst) for f in other.links} != {
            (f.src, f.dst) for f in plan.links
        }

    def test_random_links_overdraw_rejected(self):
        topology = make_2db().build_topology()
        with pytest.raises(ValueError):
            FaultPlan.random_links(topology, len(topology.links) + 1, seed=0)


class TestAttach:
    def test_attach_registers_and_rejects_double(self):
        network = make_2db().build_network()
        injector = FaultInjector(FaultPlan()).attach(network)
        assert network.fault_injector is injector
        with pytest.raises(RuntimeError):
            FaultInjector(FaultPlan()).attach(network)

    def test_express_mesh_gets_fault_aware_routing(self):
        from repro.core.fault import FaultTolerantExpressRouting

        network = make_3dme().build_network()
        plan = FaultPlan(links=(LinkFault(0, 0, 1),), mode="drain")
        FaultInjector(plan).attach(network)
        assert isinstance(network.routing, FaultTolerantExpressRouting)
        for router in network.routers:
            assert router.routing is network.routing

    def test_empty_plan_keeps_plain_routing(self):
        from repro.noc.routing import ExpressXYRouting

        network = make_3dme().build_network()
        FaultInjector(FaultPlan()).attach(network)
        assert isinstance(network.routing, ExpressXYRouting)


class TestLinkKill:
    def test_scheduled_kill_applies_at_cycle(self):
        network = make_2db().build_network()
        link = network.topology.links[0]
        plan = FaultPlan(links=(LinkFault(5, link.src, link.dst),),
                         mode="drain")
        injector = FaultInjector(plan).attach(network)
        for _ in range(5):
            network.step()
        assert injector.failed == set()
        network.step()  # cycle 5 processes the event
        assert injector.failed == {(link.src, link.dst)}
        assert injector.links_killed == 1
        router = network.routers[link.src]
        assert router.port_index[link.src_port] in router._dead_out

    def test_hard_mode_confiscates_held_credits(self):
        network = make_2db().build_network()
        link = network.topology.links[0]
        router = network.routers[link.src]
        port = router.port_index[link.src_port]
        held_before = sum(router.credits[port])
        assert held_before > 0  # idle network: all credits held upstream
        plan = FaultPlan(links=(LinkFault(0, link.src, link.dst),))
        injector = FaultInjector(plan).attach(network)
        network.step()
        assert injector.credits_confiscated == held_before
        assert sum(router.credits[port]) == 0
        assert sum(injector.confiscated.values()) == held_before
        assert (link.src, port) in injector.dead_credit_targets

    def test_drain_mode_leaves_credits_alone(self):
        network = make_2db().build_network()
        link = network.topology.links[0]
        router = network.routers[link.src]
        port = router.port_index[link.src_port]
        held_before = list(router.credits[port])
        plan = FaultPlan(links=(LinkFault(0, link.src, link.dst),),
                         mode="drain")
        injector = FaultInjector(plan).attach(network)
        network.step()
        assert injector.credits_confiscated == 0
        assert list(router.credits[port]) == held_before
        assert injector.dead_credit_targets == set()

    def test_duplicate_kill_is_idempotent(self):
        network = make_2db().build_network()
        link = network.topology.links[0]
        plan = FaultPlan(
            links=(
                LinkFault(0, link.src, link.dst),
                LinkFault(1, link.src, link.dst),
            ),
        )
        injector = FaultInjector(plan).attach(network)
        for _ in range(3):
            network.step()
        assert injector.links_killed == 1


class TestStuckVC:
    def test_freeze_survives_flit_reception(self):
        """receive_flit re-stamps vc_ready; on_cycle must re-freeze the
        unit after arrivals land, every cycle."""
        config = make_2db()
        network = config.build_network()
        router = network.routers[0]
        plan = FaultPlan(vcs=(StuckVCFault(0, 0, 0, 0),))
        FaultInjector(plan).attach(network)
        sim = Simulator(
            network,
            UniformRandomTraffic(config.num_nodes, 0.2, seed=3),
            warmup_cycles=0,
            measure_cycles=100,
            drain_cycles=0,
        )
        sim.run()
        assert router.vc_ready[0] == STUCK_READY_CYCLE

    def test_bad_port_or_vc_rejected(self):
        network = make_2db().build_network()
        bad_port = FaultPlan(vcs=(StuckVCFault(0, 0, 99, 0),))
        with pytest.raises(ValueError):
            FaultInjector(bad_port).attach(network)
            network.step()
        network2 = make_2db().build_network()
        bad_vc = FaultPlan(vcs=(StuckVCFault(0, 0, 0, 99),))
        with pytest.raises(ValueError):
            FaultInjector(bad_vc).attach(network2)
            network2.step()


class TestUnroutableContext:
    def test_error_carries_node_dst_and_failure_set(self):
        from repro.core.fault import FaultTolerantExpressRouting
        from repro.topology.express_mesh import ExpressMesh

        mesh = ExpressMesh(4, 4, pitch_mm=1.0, span=2)
        # Kill every eastward exit of the north-west corner node.
        corner = mesh.node_at((0, 0))
        dead = [
            (link.src, link.dst)
            for port, link in mesh.out_ports[corner].items()
            if port in ("E", "EE")
        ]
        routing = FaultTolerantExpressRouting(mesh, dead)
        dst = mesh.node_at((3, 0))
        with pytest.raises(UnroutableError) as excinfo:
            routing.output_port(corner, dst)
        err = excinfo.value
        assert err.node == corner
        assert err.dst == dst
        assert err.failed == frozenset(dead)


class TestGracefulDrops:
    def test_unroutable_packets_become_counted_drops(self):
        """Kill both exits of a corner: traffic out of it drops, the run
        completes, the sanitizer stays green, and stats balance."""
        config = make_3dme(width=4, height=4)
        mesh = config.build_topology()
        corner = mesh.node_at((0, 0))
        dead = tuple(
            LinkFault(0, link.src, link.dst)
            for link in mesh.out_ports[corner].values()
            if link.dst != corner
        )
        plan = FaultPlan(links=dead, mode="drain")
        network, sim = _sim(config, plan, rate=0.1, measure=200)
        result = sim.run()
        stats = network.stats
        assert stats.packets_dropped > 0
        assert result.packets_dropped == stats.packets_dropped
        assert result.flits_dropped == stats.flits_dropped
        # Every drop is charged to the marooned corner node.
        assert set(stats.drops_by_node) == {corner}
        assert sum(stats.drops_by_node.values()) == stats.packets_dropped
        # The run still delivered the rest and audited clean.
        assert result.packets_delivered > 0
        assert result.sanity is not None
        assert result.sanity.audits > 0
        assert result.sanity.watchdog_reports == ()

    def test_drop_statistics_from_direct_enqueue(self):
        from repro.noc.packet import ctrl_packet

        config = make_3dme(width=4, height=4)
        network = config.build_network()
        mesh = network.topology
        corner = mesh.node_at((0, 0))
        dead = tuple(
            LinkFault(0, link.src, link.dst)
            for link in mesh.out_ports[corner].values()
            if link.dst != corner
        )
        FaultInjector(FaultPlan(links=dead, mode="drain")).attach(network)
        dst = mesh.node_at((2, 2))
        sim = Simulator(
            network,
            ScheduledTraffic([ctrl_packet(corner, dst, created_cycle=0)]),
            warmup_cycles=0,
            measure_cycles=10,
            drain_cycles=100,
        )
        sim.run()
        assert network.stats.packets_dropped == 1
        assert network.stats.packets_delivered == 0


class TestInjectedRunsSanitizeClean:
    @pytest.mark.parametrize("mode", ["hard", "drain"])
    def test_2db_single_link_kill(self, mode):
        config = make_2db()
        plan = FaultPlan.random_links(
            config.build_topology(), 1, seed=4, cycle=50, mode=mode
        )
        network, sim = _sim(config, plan)
        result = sim.run()
        assert result.fault_summary["links_killed"] == 1
        assert result.fault_summary["mode"] == mode
        assert result.sanity.audits > 0
        # Conservation ledger balances even with drops/wedged flits.
        stats = network.stats
        assert (
            stats.packets_injected
            >= stats.packets_delivered + stats.packets_dropped
        )

    def test_3dme_reroutes_without_drops_in_drain_mode(self):
        """Express siblings bypass two random dead links: everything
        still delivers (Sec. 3.3's fault-tolerance argument)."""
        config = make_3dme()
        plan = FaultPlan.random_links(
            config.build_topology(), 2, seed=4, cycle=50, mode="drain"
        )
        network, sim = _sim(config, plan)
        result = sim.run()
        assert result.fault_summary["links_killed"] == 2
        assert result.packets_dropped == 0
        assert not result.saturated
        assert result.sanity.watchdog_reports == ()

    def test_3dm_stuck_vc_wedges_but_audits_clean(self):
        config = make_3dm()
        plan = FaultPlan(vcs=(StuckVCFault(100, 7, 1, 0),))
        network, sim = _sim(config, plan, rate=0.15, drain=1500)
        result = sim.run()
        assert result.fault_summary["vcs_stuck"] == 1
        # Flits wedge behind the frozen VC: the drain cap is hit, but
        # every audit along the way passed (no exception => clean).
        assert result.saturated
        assert result.sanity.audits > 0

    def test_fault_summary_none_without_injector(self):
        config = make_2db()
        network, sim = _sim(config, None, measure=50, drain=500)
        result = sim.run()
        assert result.fault_summary is None
        assert network.fault_injector is None
