"""Regression tests for simulator correctness fixes.

Covers three bugs fixed together with the active-set scheduler work:

* ``Simulator.__init__`` double-registering delivery hooks when two
  simulators drive the same network in sequence,
* the trailing partial activity window being silently dropped when
  ``measure_cycles`` is not a multiple of ``sample_interval``,
* ``NetworkStats.latency_percentile`` misrounding the nearest rank
  through float arithmetic.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arch import make_2db
from repro.noc.simulator import Simulator
from repro.noc.stats import NetworkStats
from repro.traffic.synthetic import UniformRandomTraffic


def _traffic(config, seed=3, rate=0.05):
    return UniformRandomTraffic(
        num_nodes=config.num_nodes, flit_rate=rate, seed=seed
    )


def _sim(network, config, **kwargs):
    kwargs.setdefault("warmup_cycles", 20)
    kwargs.setdefault("measure_cycles", 100)
    kwargs.setdefault("drain_cycles", 2000)
    return Simulator(network, _traffic(config), **kwargs)


# -- delivery-hook registration ------------------------------------------


def test_second_simulator_replaces_predecessors_hook():
    config = make_2db()
    network = config.build_network()
    first = _sim(network, config)
    assert network.delivery_callbacks.count(first._deliver_hook) == 1

    second = _sim(network, config)
    # The first simulator's hook is gone, not accumulated.
    assert first._deliver_hook not in network.delivery_callbacks
    assert network.delivery_callbacks.count(second._deliver_hook) == 1
    # Bound methods compare by identity of the underlying object, not
    # the method-object reference (fresh on each attribute access).
    assert network.simulator_hook == second._deliver_hook


def test_foreign_callbacks_survive_simulator_registration():
    config = make_2db()
    network = config.build_network()
    seen = []
    network.delivery_callbacks.append(lambda packet, cycle: seen.append(packet))
    _sim(network, config)
    _sim(network, config)
    # One user callback + exactly one simulator hook.
    assert len(network.delivery_callbacks) == 2


def test_detach_deregisters_hook():
    config = make_2db()
    network = config.build_network()
    sim = _sim(network, config)
    sim.detach()
    assert sim._deliver_hook not in network.delivery_callbacks
    assert network.simulator_hook is None
    # Detaching twice is harmless.
    sim.detach()


def test_sequential_simulators_deliver_each_packet_once():
    """With the double-registered hook, closed-loop sources saw every
    delivery twice; on an open-loop source the symptom is simply two
    hook invocations per packet."""
    config = make_2db()
    network = config.build_network()
    _sim(network, config)  # stale simulator, never run
    sim = _sim(network, config)

    calls = []
    original = sim._deliver_hook

    def counting_hook(packet, cycle):
        calls.append(packet.pid)
        original(packet, cycle)

    # Re-register the counting wrapper through the same dedup path.
    network.delivery_callbacks.remove(original)
    network.delivery_callbacks.append(counting_hook)
    network.simulator_hook = counting_hook
    sim.run()
    assert len(calls) == len(set(calls))


# -- trailing partial activity window ------------------------------------


def test_partial_activity_window_is_emitted():
    config = make_2db()
    sim = _sim(
        config.build_network(), config,
        measure_cycles=1000, sample_interval=400,
    )
    result = sim.run()
    assert len(result.activity_windows) == 3
    assert result.activity_window_cycles == [400, 400, 200]


def test_partial_window_counts_match_finer_sampling():
    config = make_2db()
    coarse = _sim(
        config.build_network(), config,
        measure_cycles=1000, sample_interval=400,
    ).run()
    fine = _sim(
        config.build_network(), config,
        measure_cycles=1000, sample_interval=200,
    ).run()
    assert fine.activity_window_cycles == [200] * 5

    def totals(result):
        return [sum(per_router) for per_router in zip(*result.activity_windows)]

    # Identical seeds: the full measurement window switches the same
    # flits regardless of how it is sliced.
    assert totals(coarse) == totals(fine)


def test_exact_multiple_has_no_partial_window():
    config = make_2db()
    result = _sim(
        config.build_network(), config,
        measure_cycles=800, sample_interval=400,
    ).run()
    assert result.activity_window_cycles == [400, 400]


def test_power_trace_scales_partial_window_by_true_span():
    from repro.thermal.transient import power_trace_from_activity

    config = make_2db()
    result = _sim(
        config.build_network(), config,
        measure_cycles=1000, sample_interval=400,
    ).run()
    trace = power_trace_from_activity(config, result, sample_interval=400)
    assert len(trace) == 3
    # The partial window divides by its true (shorter) span: pretending
    # it spanned the nominal interval dilutes the same activity to half
    # the dynamic power.
    assert sum(sum(w) for w in result.activity_windows[-1:]) > 0
    result.activity_window_cycles = [400, 400, 400]
    diluted = power_trace_from_activity(config, result, sample_interval=400)
    assert trace[-1].sum() > diluted[-1].sum()


# -- latency percentile nearest-rank math --------------------------------


def _reference_percentile(latencies, percentile):
    """Nearest-rank by definition: the smallest sample such that at
    least p% of the samples are <= it, in exact decimal arithmetic."""
    ordered = sorted(latencies)
    n = len(ordered)
    target = Fraction(str(percentile)) / 100
    for i, value in enumerate(ordered):
        if Fraction(i + 1, n) >= target:
            return float(value)
    return float(ordered[-1])


def _stats_with(latencies):
    stats = NetworkStats()
    stats.latencies = list(latencies)
    return stats


@settings(max_examples=200, deadline=None)
@given(
    latencies=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                       max_size=400),
    percentile=st.one_of(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False,
                  allow_infinity=False),
        st.integers(min_value=1, max_value=100).map(float),
        st.integers(min_value=1, max_value=1000).map(lambda k: k / 10.0),
    ),
)
def test_percentile_matches_reference(latencies, percentile):
    stats = _stats_with(latencies)
    assert stats.latency_percentile(percentile) == _reference_percentile(
        latencies, percentile
    )


def test_percentile_float_boundary_regression():
    """8.8% of 375 samples is exactly rank 33, but float arithmetic says
    375 * 8.8 = 3300.0000000000005 and ceils to rank 34."""
    assert 375 * 8.8 != 3300  # the float hazard this guards against
    stats = _stats_with(range(375))
    assert stats.latency_percentile(8.8) == 32.0  # rank 33, 0-indexed 32


def test_percentile_edge_cases():
    stats = _stats_with([7])
    assert stats.latency_percentile(0.5) == 7.0
    assert stats.latency_percentile(100.0) == 7.0

    stats = _stats_with([1, 2, 3, 4])
    assert stats.latency_percentile(100.0) == 4.0
    assert stats.latency_percentile(25.0) == 1.0
    assert stats.latency_percentile(25.1) == 2.0

    ties = _stats_with([5, 5, 5, 5, 9])
    assert ties.latency_percentile(80.0) == 5.0
    assert ties.latency_percentile(80.1) == 9.0

    assert _stats_with([]).latency_percentile(50.0) == 0.0
    with pytest.raises(ValueError):
        _stats_with([1]).latency_percentile(0.0)
    with pytest.raises(ValueError):
        _stats_with([1]).latency_percentile(100.5)
