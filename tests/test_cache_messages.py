"""Coherence-message vocabulary and packet-mapping tests."""

import pytest

from repro.cache.messages import (
    CoherenceMessage,
    DATA_MESSAGES,
    MessageType,
)
from repro.noc.packet import PacketClass


def _msg(mtype, groups=None):
    return CoherenceMessage(
        mtype=mtype, src=3, dst=17, address=0x1C0, requester=1,
        payload_groups=groups,
    )


def test_data_message_set():
    assert MessageType.DATA_S in DATA_MESSAGES
    assert MessageType.DATA_E in DATA_MESSAGES
    assert MessageType.WB_DATA in DATA_MESSAGES
    assert MessageType.GETS not in DATA_MESSAGES
    assert MessageType.INV not in DATA_MESSAGES


@pytest.mark.parametrize("mtype", list(MessageType))
def test_size_matches_class(mtype):
    msg = _msg(mtype)
    if msg.is_data:
        assert msg.size_flits == 5
    else:
        assert msg.size_flits == 1


def test_to_packet_control():
    packet = _msg(MessageType.GETS).to_packet(created_cycle=42)
    assert packet.klass is PacketClass.CTRL
    assert packet.size_flits == 1
    assert (packet.src, packet.dst) == (3, 17)
    assert packet.created_cycle == 42


def test_to_packet_data_with_payload():
    packet = _msg(
        MessageType.DATA_S, groups=[1, 4, 1, 4, 1]
    ).to_packet(created_cycle=7)
    assert packet.klass is PacketClass.DATA
    assert packet.payload_groups == [1, 4, 1, 4, 1]


def test_reply_tag_carries_message():
    msg = _msg(MessageType.DATA_E, groups=[1, 4, 4, 4, 4])
    packet = msg.to_packet(created_cycle=0)
    assert packet.reply_tag is msg


def test_message_types_cover_protocol():
    """Sec. 4.1.2: invalidates, requests, responses, write backs, acks."""
    values = {m.value for m in MessageType}
    assert {"GetS", "GetM", "Data", "Inv", "InvAck", "WbData", "WbAck"} <= values
