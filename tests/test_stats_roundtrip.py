"""EventCounts copy()/delta() round-trip coverage.

The implementations are field-generic (``dataclasses.fields``), and these
tests pin that: a counter added to EventCounts is automatically covered,
and the fixture below fails loudly if it isn't populated here.
"""

from dataclasses import fields

from repro.noc.stats import EventCounts


def _populated() -> EventCounts:
    ev = EventCounts()
    ev.buffer_writes = 7
    ev.buffer_reads = 5
    ev.buffer_writes_weighted = 1.5
    ev.buffer_reads_weighted = 0.75
    ev.xbar_traversals = 9
    ev.xbar_traversals_weighted = 4.5
    ev.rc_computations = 3
    ev.va_allocations = 2
    ev.sa_allocations = 8
    ev.link_flits = {"normal": 11, "express": 2}
    ev.link_mm_weighted = {"normal": 6.5, "express": 3.25}
    ev.channel_flits = {(0, 1): 4, (1, 2): 1}
    ev.short_flit_hops = 6
    ev.flit_hops = 13
    ev.buffer_writes_by_layers = {1: 4, 4: 3}
    ev.buffer_reads_by_layers = {1: 3, 4: 2}
    ev.xbar_traversals_by_layers = {2: 6, 4: 3}
    ev.flit_hops_by_layers = {1: 6, 4: 7}
    ev.link_mm_by_layers = {1: 2.5, 4: 4.0}
    return ev


def test_fixture_exercises_every_field():
    ev = _populated()
    for f in fields(ev):
        assert getattr(ev, f.name), (
            f"field {f.name!r} left at its default: add it to _populated() "
            "so the copy/delta round-trip keeps covering every counter"
        )


def test_copy_round_trips_every_field():
    ev = _populated()
    clone = ev.copy()
    for f in fields(ev):
        assert getattr(clone, f.name) == getattr(ev, f.name), f.name


def test_copy_dicts_are_independent():
    ev = _populated()
    clone = ev.copy()
    clone.link_flits["normal"] += 1
    clone.link_mm_weighted["vertical"] = 9.0
    clone.channel_flits[(9, 9)] = 1
    assert ev.link_flits["normal"] == 11
    assert "vertical" not in ev.link_mm_weighted
    assert (9, 9) not in ev.channel_flits


def test_delta_round_trips_every_field():
    earlier = _populated()
    later = earlier.copy()
    later.buffer_writes += 3
    later.buffer_reads_weighted += 0.5
    later.link_flits["vertical"] = 5
    later.channel_flits[(2, 3)] = 2
    later.flit_hops += 4

    diff = later.delta(earlier)
    assert diff.buffer_writes == 3
    assert diff.buffer_reads_weighted == 0.5
    assert diff.link_flits == {"normal": 0, "express": 0, "vertical": 5}
    assert diff.channel_flits == {(0, 1): 0, (1, 2): 0, (2, 3): 2}
    assert diff.flit_hops == 4

    # self - self is zero in every field (dict fields: zero per key).
    zero = earlier.delta(earlier)
    for f in fields(zero):
        value = getattr(zero, f.name)
        if isinstance(value, dict):
            assert all(v == 0 for v in value.values()), f.name
        else:
            assert value == 0, f.name


def test_count_link_typed_channel():
    ev = EventCounts()
    ev.count_link("normal", 1.0, 0.5)  # channel omitted: no channel entry
    ev.count_link("normal", 1.0, 0.5, channel=(3, 4))
    assert ev.link_flits == {"normal": 2}
    assert ev.channel_flits == {(3, 4): 1}


# ---------------------------------------------------------------------------
# StatsCursor: incremental windows over a live NetworkStats


def _note(stats, latency, flits=1):
    from repro.noc.packet import ctrl_packet, data_packet

    make = data_packet if flits > 1 else ctrl_packet
    packet = make(0, 1, created_cycle=0)
    packet.injected_cycle = 0
    packet.delivered_cycle = latency
    stats.note_injected(packet)
    stats.note_delivered(packet)
    return packet


def test_stats_cursor_first_window_covers_since_construction():
    from repro.noc.stats import NetworkStats, StatsCursor

    stats = NetworkStats()
    _note(stats, 10)
    cursor = StatsCursor(stats)  # packet above predates the cursor
    _note(stats, 20)
    _note(stats, 30)
    window = cursor.advance()
    assert window.packets_injected == 2
    assert window.packets_delivered == 2
    assert window.latencies == (20, 30)
    assert window.avg_latency == 25.0


def test_stats_cursor_windows_are_disjoint_and_sum_to_totals():
    from repro.noc.stats import NetworkStats, StatsCursor

    stats = NetworkStats()
    cursor = StatsCursor(stats)
    latencies = [7, 11, 13, 17, 19]
    windows = []
    for i, latency in enumerate(latencies):
        _note(stats, latency)
        if i % 2 == 1:
            windows.append(cursor.advance())
    windows.append(cursor.advance())

    seen = [lat for w in windows for lat in w.latencies]
    assert seen == latencies  # disjoint, ordered, nothing dropped
    assert sum(w.packets_delivered for w in windows) == (
        stats.packets_delivered
    )
    assert sum(w.flits_delivered for w in windows) == stats.flits_delivered
    assert sum(w.measured_flits for w in windows) == stats.measured_flits


def test_stats_cursor_empty_window():
    from repro.noc.stats import NetworkStats, StatsCursor

    stats = NetworkStats()
    cursor = StatsCursor(stats)
    window = cursor.advance()
    assert window.packets_injected == 0
    assert window.latencies == ()
    assert window.avg_latency == 0.0
    assert window.latency_percentile(99) == 0.0


def test_stats_cursor_never_mutates_stats():
    from repro.noc.stats import NetworkStats, StatsCursor

    stats = NetworkStats()
    _note(stats, 12)
    before = (stats.packets_delivered, list(stats.latencies))
    StatsCursor(stats).advance()
    assert (stats.packets_delivered, list(stats.latencies)) == before


def test_stats_window_percentiles_match_global_helper():
    from repro.noc.stats import (
        NetworkStats,
        StatsCursor,
        nearest_rank_percentile,
    )

    stats = NetworkStats()
    cursor = StatsCursor(stats)
    for latency in (5, 1, 9, 3, 7):
        _note(stats, latency)
    window = cursor.advance()
    assert window.latency_percentile(50) == nearest_rank_percentile(
        [1, 3, 5, 7, 9], 50
    )
    assert window.latency_percentile(100) == 9


# ---------------------------------------------------------------------------
# nearest_rank_percentile boundary ranks


def test_percentile_tiny_p_clamps_to_first_rank():
    """p -> 0+ : ceil of a tiny positive rank is 1, the minimum."""
    from repro.noc.stats import nearest_rank_percentile

    ordered = list(range(10, 110))
    assert nearest_rank_percentile(ordered, 1e-9) == 10.0
    assert nearest_rank_percentile(ordered, 0.001) == 10.0


def test_percentile_100_is_last_rank():
    from repro.noc.stats import nearest_rank_percentile

    ordered = list(range(10, 110))
    assert nearest_rank_percentile(ordered, 100.0) == 109.0


def test_percentile_single_sample_any_p():
    from repro.noc.stats import nearest_rank_percentile

    for p in (1e-9, 0.5, 50.0, 99.9, 100.0):
        assert nearest_rank_percentile([42], p) == 42.0


def test_percentile_rejects_out_of_domain_p():
    import pytest

    from repro.noc.stats import nearest_rank_percentile

    for p in (0.0, -1.0, 100.0001):
        with pytest.raises(ValueError):
            nearest_rank_percentile([1, 2, 3], p)


def test_percentile_empty_sample_is_zero():
    from repro.noc.stats import nearest_rank_percentile

    assert nearest_rank_percentile([], 50.0) == 0.0


def test_multi_cursor_independence_on_live_run():
    """Two cursors over the same live run never perturb each other: an
    eagerly-advanced cursor's windows re-sum to the lazy cursor's one
    big window, latency tuples included."""
    from repro.noc.network import Network
    from repro.noc.stats import StatsCursor
    from repro.topology.mesh2d import Mesh2D
    from repro.traffic.synthetic import UniformRandomTraffic

    network = Network(Mesh2D(4, 4, pitch_mm=1.0))
    traffic = UniformRandomTraffic(num_nodes=16, flit_rate=0.25, seed=11)
    network.stats.set_window(0, 400)
    fast = StatsCursor(network.stats)  # advanced every 50 cycles
    slow = StatsCursor(network.stats)  # advanced once at the end
    fast_windows = []
    for cycle in range(400):
        for packet in traffic.packets_for_cycle(cycle):
            network.enqueue_packet(packet)
        network.step()
        if (cycle + 1) % 50 == 0:
            fast_windows.append(fast.advance())
    total = slow.advance()
    assert total.packets_delivered > 0
    for field_name in (
        "packets_injected",
        "packets_delivered",
        "flits_delivered",
        "measured_packets",
        "measured_flits",
    ):
        assert sum(getattr(w, field_name) for w in fast_windows) == (
            getattr(total, field_name)
        ), field_name
    assert tuple(
        latency for w in fast_windows for latency in w.latencies
    ) == total.latencies
