"""EventCounts copy()/delta() round-trip coverage.

The implementations are field-generic (``dataclasses.fields``), and these
tests pin that: a counter added to EventCounts is automatically covered,
and the fixture below fails loudly if it isn't populated here.
"""

from dataclasses import fields

from repro.noc.stats import EventCounts


def _populated() -> EventCounts:
    ev = EventCounts()
    ev.buffer_writes = 7
    ev.buffer_reads = 5
    ev.buffer_writes_weighted = 1.5
    ev.buffer_reads_weighted = 0.75
    ev.xbar_traversals = 9
    ev.xbar_traversals_weighted = 4.5
    ev.rc_computations = 3
    ev.va_allocations = 2
    ev.sa_allocations = 8
    ev.link_flits = {"normal": 11, "express": 2}
    ev.link_mm_weighted = {"normal": 6.5, "express": 3.25}
    ev.channel_flits = {(0, 1): 4, (1, 2): 1}
    ev.short_flit_hops = 6
    ev.flit_hops = 13
    return ev


def test_fixture_exercises_every_field():
    ev = _populated()
    for f in fields(ev):
        assert getattr(ev, f.name), (
            f"field {f.name!r} left at its default: add it to _populated() "
            "so the copy/delta round-trip keeps covering every counter"
        )


def test_copy_round_trips_every_field():
    ev = _populated()
    clone = ev.copy()
    for f in fields(ev):
        assert getattr(clone, f.name) == getattr(ev, f.name), f.name


def test_copy_dicts_are_independent():
    ev = _populated()
    clone = ev.copy()
    clone.link_flits["normal"] += 1
    clone.link_mm_weighted["vertical"] = 9.0
    clone.channel_flits[(9, 9)] = 1
    assert ev.link_flits["normal"] == 11
    assert "vertical" not in ev.link_mm_weighted
    assert (9, 9) not in ev.channel_flits


def test_delta_round_trips_every_field():
    earlier = _populated()
    later = earlier.copy()
    later.buffer_writes += 3
    later.buffer_reads_weighted += 0.5
    later.link_flits["vertical"] = 5
    later.channel_flits[(2, 3)] = 2
    later.flit_hops += 4

    diff = later.delta(earlier)
    assert diff.buffer_writes == 3
    assert diff.buffer_reads_weighted == 0.5
    assert diff.link_flits == {"normal": 0, "express": 0, "vertical": 5}
    assert diff.channel_flits == {(0, 1): 0, (1, 2): 0, (2, 3): 2}
    assert diff.flit_hops == 4

    # self - self is zero in every field (dict fields: zero per key).
    zero = earlier.delta(earlier)
    for f in fields(zero):
        value = getattr(zero, f.name)
        if isinstance(value, dict):
            assert all(v == 0 for v in value.values()), f.name
        else:
            assert value == 0, f.name


def test_count_link_typed_channel():
    ev = EventCounts()
    ev.count_link("normal", 1.0, 0.5)  # channel omitted: no channel entry
    ev.count_link("normal", 1.0, 0.5, channel=(3, 4))
    assert ev.link_flits == {"normal": 2}
    assert ev.channel_flits == {(3, 4): 1}
