"""Frequent-pattern classifier tests (Fig. 1 machinery)."""

import pytest
from hypothesis import given, strategies as st

from repro.traffic.patterns import (
    PatternKind,
    WORD_MASK,
    classify_line,
    classify_word,
    flit_active_groups,
    is_short_flit,
    line_active_groups,
)


class TestClassifyWord:
    def test_zero(self):
        assert classify_word(0) is PatternKind.ZERO

    def test_all_ones(self):
        assert classify_word(WORD_MASK) is PatternKind.ONE

    def test_small_positive_is_sign8(self):
        assert classify_word(42) is PatternKind.SIGN8

    def test_small_negative_is_sign8(self):
        assert classify_word((-42) & WORD_MASK) is PatternKind.SIGN8

    def test_halfword_is_sign16(self):
        assert classify_word(30000) is PatternKind.SIGN16

    def test_negative_halfword_is_sign16(self):
        assert classify_word((-30000) & WORD_MASK) is PatternKind.SIGN16

    def test_repeated_byte(self):
        assert classify_word(0xABABABAB) is PatternKind.REPEATED

    def test_random(self):
        assert classify_word(0x12345678) is PatternKind.RANDOM

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            classify_word(-1)
        with pytest.raises(ValueError):
            classify_word(1 << 32)

    def test_boundary_sign8(self):
        assert classify_word(127) is PatternKind.SIGN8
        assert classify_word(128) is PatternKind.SIGN16
        assert classify_word((-128) & WORD_MASK) is PatternKind.SIGN8


class TestActiveGroups:
    def test_all_zero_lower_words_is_short(self):
        assert flit_active_groups([5, 0, 0, 0]) == 1
        assert is_short_flit([5, 0, 0, 0])

    def test_all_ones_lower_words_is_short(self):
        assert flit_active_groups([5, WORD_MASK, WORD_MASK, WORD_MASK]) == 1

    def test_mixed_redundant_lower_words_is_short(self):
        assert flit_active_groups([7, 0, WORD_MASK, 0]) == 1

    def test_full_flit(self):
        assert flit_active_groups([1, 2, 3, 4]) == 4
        assert not is_short_flit([1, 2, 3, 4])

    def test_partial_activity(self):
        assert flit_active_groups([1, 9, 0, 0]) == 2
        assert flit_active_groups([1, 0, 9, 0]) == 3

    def test_top_word_always_counts(self):
        assert flit_active_groups([0, 0, 0, 0]) == 1

    def test_live_bottom_word_forces_full(self):
        assert flit_active_groups([0, 0, 0, 9]) == 4

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            flit_active_groups([1, 2, 3])

    def test_line_active_groups_per_flit(self):
        line = [5, 0, 0, 0] + [1, 2, 3, 4] + [9, 7, 0, 0] + [0, 0, 0, 0]
        assert line_active_groups(line) == [1, 4, 2, 1]

    def test_line_length_validated(self):
        with pytest.raises(ValueError):
            line_active_groups([0] * 15)

    def test_classify_line(self):
        kinds = classify_line([0, WORD_MASK, 5, 0x13572468])
        assert kinds == [
            PatternKind.ZERO,
            PatternKind.ONE,
            PatternKind.SIGN8,
            PatternKind.RANDOM,
        ]


@given(st.lists(st.integers(min_value=0, max_value=WORD_MASK), min_size=4, max_size=4))
def test_property_active_groups_bounds(words):
    active = flit_active_groups(words)
    assert 1 <= active <= 4


@given(st.lists(st.integers(min_value=0, max_value=WORD_MASK), min_size=4, max_size=4))
def test_property_short_iff_lower_words_redundant(words):
    lower_redundant = all(w in (0, WORD_MASK) for w in words[1:])
    assert is_short_flit(words) == lower_redundant


@given(st.integers(min_value=0, max_value=WORD_MASK))
def test_property_every_word_classified(word):
    assert classify_word(word) in PatternKind
