"""Trace format and replay tests."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.packet import PacketClass
from repro.traffic.traces import (
    TraceRecord,
    TraceTraffic,
    read_trace,
    write_trace,
)


def _record(cycle=0, src=0, dst=1, klass=PacketClass.CTRL, groups=None):
    return TraceRecord(
        cycle=cycle, src=src, dst=dst, klass=klass, payload_groups=groups
    )


def test_size_from_class():
    assert _record(klass=PacketClass.CTRL).size_flits == 1
    assert _record(klass=PacketClass.DATA).size_flits == 5


def test_size_from_groups():
    record = _record(klass=PacketClass.DATA, groups=(1, 4, 4, 1, 1))
    assert record.size_flits == 5


def test_to_packet_roundtrip():
    record = _record(cycle=9, src=3, dst=7, klass=PacketClass.DATA,
                     groups=(1, 2, 3, 4, 1))
    packet = record.to_packet()
    assert (packet.src, packet.dst) == (3, 7)
    assert packet.created_cycle == 9
    assert packet.payload_groups == [1, 2, 3, 4, 1]
    assert packet.klass is PacketClass.DATA


def test_line_roundtrip():
    record = _record(cycle=5, src=2, dst=9, klass=PacketClass.DATA,
                     groups=(1, 4, 1, 4, 4))
    assert TraceRecord.from_line(record.to_line()) == record


def test_line_roundtrip_no_groups():
    record = _record(cycle=5, src=2, dst=9, klass=PacketClass.CTRL)
    assert TraceRecord.from_line(record.to_line()) == record


def test_malformed_line_rejected():
    with pytest.raises(ValueError):
        TraceRecord.from_line("1,2,3")


def test_file_roundtrip(tmp_path):
    records = [
        _record(cycle=i, src=i % 4, dst=(i + 1) % 4,
                klass=PacketClass.DATA if i % 2 else PacketClass.CTRL,
                groups=(1, 1, 4, 4, 1) if i % 2 else None)
        for i in range(20)
    ]
    path = tmp_path / "trace.txt"
    written = write_trace(path, records)
    assert written == 20
    assert read_trace(path) == records


def test_file_comments_and_blanks_skipped(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n\n3,0,1,ctrl,\n")
    records = read_trace(path)
    assert records == [_record(cycle=3, src=0, dst=1)]


def test_replay_emits_in_cycle_order():
    records = [_record(cycle=c, src=0, dst=1) for c in (2, 2, 5)]
    traffic = TraceTraffic(records)
    assert len(list(traffic.packets_for_cycle(1))) == 0
    assert len(list(traffic.packets_for_cycle(2))) == 2
    assert len(list(traffic.packets_for_cycle(4))) == 0
    assert len(list(traffic.packets_for_cycle(5))) == 1
    assert traffic.finished(6)


def test_replay_catches_up_after_gap():
    """Records whose cycle was skipped are emitted at the next poll."""
    records = [_record(cycle=3, src=0, dst=1)]
    traffic = TraceTraffic(records)
    assert len(list(traffic.packets_for_cycle(10))) == 1


def test_unsorted_trace_rejected():
    records = [_record(cycle=5, src=0, dst=1), _record(cycle=2, src=0, dst=1)]
    with pytest.raises(ValueError):
        TraceTraffic(records)


def test_from_file(tmp_path):
    path = tmp_path / "trace.txt"
    write_trace(path, [_record(cycle=1, src=0, dst=3)])
    traffic = TraceTraffic.from_file(path)
    packets = list(traffic.packets_for_cycle(1))
    assert len(packets) == 1 and packets[0].dst == 3


@given(
    st.lists(
        st.tuples(
            st.integers(0, 500), st.integers(0, 35), st.integers(0, 35),
            st.booleans(),
        ),
        max_size=30,
    )
)
def test_property_file_roundtrip(tmp_path_factory, specs):
    records = sorted(
        (
            TraceRecord(
                cycle=c, src=s, dst=d,
                klass=PacketClass.DATA if is_data else PacketClass.CTRL,
                payload_groups=(1, 2, 3, 4, 1) if is_data else None,
            )
            for c, s, d, is_data in specs
        ),
        key=lambda r: r.cycle,
    )
    path = tmp_path_factory.mktemp("traces") / "t.txt"
    write_trace(path, records)
    assert read_trace(path) == records
