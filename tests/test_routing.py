"""Routing-function tests: correctness, dimension order, express usage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.express import average_hops, hop_count, route_path
from repro.noc.routing import (
    ExpressXYRouting,
    XYRouting,
    XYZRouting,
    routing_for_topology,
)
from repro.topology.base import LOCAL_PORT
from repro.topology.express_mesh import ExpressMesh
from repro.topology.mesh2d import EAST, Mesh2D, SOUTH
from repro.topology.mesh3d import Mesh3D


@pytest.fixture
def mesh():
    return Mesh2D(6, 6, pitch_mm=1.0)


@pytest.fixture
def mesh3d():
    return Mesh3D(3, 3, 4, pitch_mm=1.0)


@pytest.fixture
def express():
    return ExpressMesh(6, 6, pitch_mm=1.0, span=2)


def test_factory_picks_correct_function(mesh, mesh3d, express):
    assert isinstance(routing_for_topology(mesh), XYRouting)
    assert isinstance(routing_for_topology(mesh3d), XYZRouting)
    assert isinstance(routing_for_topology(express), ExpressXYRouting)


def test_xy_local_at_destination(mesh):
    routing = XYRouting(mesh)
    assert routing.output_port(7, 7) == LOCAL_PORT


def test_xy_goes_east_first(mesh):
    routing = XYRouting(mesh)
    # From (0,0) to (3,3): X first.
    assert routing.output_port(0, mesh.node_at((3, 3))) == EAST


def test_xy_goes_south_when_x_done(mesh):
    routing = XYRouting(mesh)
    src = mesh.node_at((3, 0))
    dst = mesh.node_at((3, 3))
    assert routing.output_port(src, dst) == SOUTH


def test_xy_path_is_manhattan(mesh):
    src, dst = mesh.node_at((1, 1)), mesh.node_at((4, 5))
    assert hop_count(mesh, src, dst) == 3 + 4


def test_xyz_serves_all_pairs(mesh3d):
    routing = XYZRouting(mesh3d)
    for src in range(0, mesh3d.num_nodes, 7):
        for dst in range(mesh3d.num_nodes):
            if src == dst:
                continue
            path = route_path(mesh3d, src, dst, routing)
            assert path[0] == src and path[-1] == dst


def test_xyz_hop_count_is_manhattan(mesh3d):
    src = mesh3d.node_at((0, 0, 0))
    dst = mesh3d.node_at((2, 1, 3))
    assert hop_count(mesh3d, src, dst) == 2 + 1 + 3


def test_express_uses_express_channel_for_long_runs(express):
    routing = ExpressXYRouting(express)
    src = express.node_at((0, 0))
    dst = express.node_at((4, 0))
    # 4 hops east -> 2 express hops.
    assert hop_count(express, src, dst, routing) == 2


def test_express_odd_distance_mixes_channels(express):
    routing = ExpressXYRouting(express)
    src = express.node_at((0, 0))
    dst = express.node_at((5, 0))
    # EE, EE, E: 3 hops.
    assert hop_count(express, src, dst, routing) == 3


def test_express_short_distance_uses_normal(express):
    routing = ExpressXYRouting(express)
    src = express.node_at((2, 2))
    dst = express.node_at((3, 2))
    port = routing.output_port(src, dst)
    assert port == EAST


def test_express_x_before_y(express):
    routing = ExpressXYRouting(express)
    src = express.node_at((0, 0))
    dst = express.node_at((4, 4))
    path = route_path(express, src, dst, routing)
    xs = [express.coordinates(n)[0] for n in path]
    # X strictly completes before Y moves.
    assert xs == sorted(xs)
    assert xs[: xs.index(4) + 1][-1] == 4


def test_express_average_hops_below_mesh(mesh, express):
    assert average_hops(express) < average_hops(mesh)


def test_average_hops_uniform_6x6_value(mesh):
    # E[|dx|] + E[|dy|] over ordered distinct pairs = 2 * (k+1)/3 * ... ;
    # for k=6 the exact value over distinct pairs is 2 * (35/18) * 36/35.
    expected = 2 * (35 / 18) * 36 / 35
    assert average_hops(mesh) == pytest.approx(expected, rel=1e-9)


def test_route_path_livelock_guard(mesh):
    class BrokenRouting:
        def output_port(self, node, dst):
            return EAST if node % 6 < 5 else "W"

    with pytest.raises(RuntimeError):
        route_path(mesh, 0, mesh.node_at((0, 3)), BrokenRouting())


@settings(max_examples=60)
@given(st.integers(min_value=0, max_value=35), st.integers(min_value=0, max_value=35))
def test_property_xy_reaches_destination(src, dst):
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    if src == dst:
        return
    path = route_path(mesh, src, dst)
    assert path[-1] == dst
    assert len(path) - 1 == hop_count(mesh, src, dst)


@settings(max_examples=60)
@given(st.integers(min_value=0, max_value=35), st.integers(min_value=0, max_value=35))
def test_property_express_never_overshoots(src, dst):
    """Express routing reaches the destination without leaving the
    bounding box of src/dst (monotone progress, deadlock-free order)."""
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    if src == dst:
        return
    sx, sy = express.coordinates(src)
    dx, dy = express.coordinates(dst)
    for node in route_path(express, src, dst):
        x, y = express.coordinates(node)
        assert min(sx, dx) <= x <= max(sx, dx)
        assert min(sy, dy) <= y <= max(sy, dy)


@settings(max_examples=40)
@given(st.integers(min_value=0, max_value=35), st.integers(min_value=0, max_value=35))
def test_property_express_no_slower_than_mesh(src, dst):
    if src == dst:
        return
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    assert hop_count(express, src, dst) <= hop_count(mesh, src, dst)
