"""The generic topology substrate: universal routability + deadlock proofs.

PR 9 proved deadlock freedom by enumeration for the fault-tolerant
express routing; this suite extends the same discipline to the whole
substrate.  Every fabric the registry can dispatch — the paper's
meshes, the torus, the new ring/chiplet/irregular fabrics, and a plain
base-class link list — is checked at several sizes for

1. **routability**: every ordered (src, dst) pair walks to its
   destination via :func:`~repro.core.express.route_path`,
2. **deadlock freedom**: the (VC-aware, when the routing carries a VC
   discipline) channel dependency graph is acyclic, and
3. **delivery**: one sanitized packet per pair on one representative of
   each new fabric family actually arrives in simulation.
"""

import json

import pytest

from repro.core.express import route_path
from repro.noc.network import Network
from repro.noc.packet import ctrl_packet
from repro.noc.routing import (
    RoutingBase,
    TorusXYRouting,
    XYRouting,
    register_routing,
    registered_routings,
    routing_for_topology,
)
from repro.noc.sanitizer import NetworkSanitizer
from repro.noc.table_routing import DeadlockError, TableRouting
from repro.resilience.cdg import (
    channel_dependency_graph,
    find_dependency_cycle,
    vc_channel_dependency_graph,
)
from repro.topology import (
    ChipletMesh,
    ExpressMesh,
    IrregularTopology,
    LinkKind,
    LinkSpec,
    Mesh2D,
    Mesh3D,
    Ring,
    Torus2D,
    Topology,
)
from repro.topology.irregular import duplex


def _irregular_diamond() -> IrregularTopology:
    """4-node diamond with one chord — asymmetric degrees."""
    links = [
        *duplex(0, 1), *duplex(1, 2), *duplex(2, 3),
        *duplex(3, 0), *duplex(0, 2),
    ]
    return IrregularTopology(4, links)


def _irregular_dumbbell() -> IrregularTopology:
    """Two triangles joined by a single bridge — a cut edge."""
    links = [
        *duplex(0, 1), *duplex(1, 2), *duplex(2, 0),
        *duplex(3, 4), *duplex(4, 5), *duplex(5, 3),
        *duplex(2, 3),
    ]
    return IrregularTopology(6, links)


#: Every fabric family at several sizes; ids keep failures readable.
FABRICS = [
    ("mesh2d-3x3", lambda: Mesh2D(3, 3, 1.0)),
    ("mesh2d-4x2", lambda: Mesh2D(4, 2, 1.0)),
    ("mesh3d-2x2x2", lambda: Mesh3D(2, 2, 2, pitch_mm=1.0)),
    ("express-3x3", lambda: ExpressMesh(3, 3, 1.0, span=2)),
    ("torus-4x4", lambda: Torus2D(4, 4, 1.0)),
    ("ring-3", lambda: Ring(3, 1.0)),
    ("ring-6", lambda: Ring(6, 1.0)),
    ("ring-9", lambda: Ring(9, 1.0)),
    ("chiplet-3x3", lambda: ChipletMesh(3, 3, 1.0, hubs=1)),
    ("chiplet-4x4", lambda: ChipletMesh(4, 4, 1.0, hubs=2)),
    ("irregular-diamond", _irregular_diamond),
    ("irregular-dumbbell", _irregular_dumbbell),
    ("plain-pair", lambda: Topology(2, [
        LinkSpec(0, 1, "E", "W", LinkKind.NORMAL, 1.0),
        LinkSpec(1, 0, "W", "E", LinkKind.NORMAL, 1.0),
    ])),
]


@pytest.mark.parametrize(
    "build", [b for _, b in FABRICS], ids=[n for n, _ in FABRICS]
)
def test_every_pair_routes_to_destination(build):
    topology = build()
    routing = routing_for_topology(topology)
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            path = route_path(topology, src, dst, routing)
            assert path[0] == src and path[-1] == dst


@pytest.mark.parametrize(
    "build", [b for _, b in FABRICS], ids=[n for n, _ in FABRICS]
)
def test_dependency_graph_is_acyclic(build):
    """Dally & Seitz over the whole substrate, VC-aware where needed."""
    topology = build()
    routing = routing_for_topology(topology)
    if routing.has_vc_discipline:
        graph = vc_channel_dependency_graph(
            topology, routing, num_vcs=routing.required_vcs
        )
    else:
        graph = channel_dependency_graph(topology, routing)
    cycle = find_dependency_cycle(graph)
    assert cycle is None, f"dependency cycle: {cycle}"


@pytest.mark.parametrize(
    "build",
    [lambda: Ring(8, 1.0), lambda: ChipletMesh(4, 3, 1.0, hubs=1),
     _irregular_dumbbell],
    ids=["ring-8", "chiplet-4x3", "irregular-dumbbell"],
)
def test_one_sanitized_packet_per_pair_delivers(build):
    topology = build()
    network = Network(topology, num_vcs=2)
    network.sanitizer = NetworkSanitizer(network, watchdog_window=200)
    pairs = [
        (s, d)
        for s in range(topology.num_nodes)
        for d in range(topology.num_nodes)
        if s != d
    ]
    for src, dst in pairs:
        network.enqueue_packet(ctrl_packet(src, dst, created_cycle=0))
    limit = 3000
    while network.cycle < limit and (
        network.stats.packets_delivered < len(pairs)
    ):
        network.step()
        network.sanitizer.audit(network.cycle)
    assert network.stats.packets_delivered == len(pairs)
    assert network.stats.packets_dropped == 0
    assert network.sanitizer.watchdog_reports == []


class TestTableRouting:
    def test_construction_verifies_acyclic(self):
        routing = TableRouting(Ring(8, 1.0))
        assert routing.deadlock_cycle is None
        assert "TableRouting" in routing.describe()

    def test_ring_uses_escape_vcs(self):
        routing = TableRouting(Ring(8, 1.0))
        assert routing.mode == "escape"
        assert routing.required_vcs == 2
        assert routing.has_vc_discipline

    def test_tree_fabric_needs_one_vc(self):
        routing = TableRouting(ChipletMesh(3, 3, 1.0, hubs=1))
        assert routing.mode == "updown"
        assert routing.required_vcs == 1
        assert not routing.has_vc_discipline

    def test_router_rejects_insufficient_vcs(self):
        with pytest.raises(ValueError):
            Network(Ring(6, 1.0), num_vcs=1)

    def test_forced_updown_on_ring_detours(self):
        """Up*/down* covers a ring but cannot take every shortest path:
        the turn restriction forces detours around the root, which is
        exactly why auto mode prefers the escape scheme there."""
        free = TableRouting(Ring(8, 1.0))
        forced = TableRouting(Ring(8, 1.0), mode="updown")
        stretch = [
            forced.route_distance(s, d) - free.route_distance(s, d)
            for s in range(8)
            for d in range(8)
            if s != d
        ]
        assert min(stretch) >= 0 and max(stretch) > 0

    def test_unreachable_pairs_are_unroutable(self):
        from repro.noc.routing import UnroutableError

        one_way = IrregularTopology(3, [
            *duplex(0, 1),
            LinkSpec(1, 2, "P2", "P1", LinkKind.NORMAL, 1.0),
        ])
        routing = TableRouting(one_way)
        assert routing.output_port(0, 2) is not None
        with pytest.raises(UnroutableError):
            routing.output_port(2, 0)

    def test_deadlock_error_carries_cycle(self):
        """A deliberately broken verification path raises DeadlockError."""
        topology = Ring(6, 1.0)
        routing = TableRouting(topology, verify=False)
        # Sabotage the discipline: put every channel in one class.
        routing._rem = {key: 0 for key in routing._rem}
        routing._total = {key: 0 for key in routing._total}
        with pytest.raises(DeadlockError) as err:
            routing._verify_acyclic()
        assert err.value.cycle


class TestRegistry:
    def test_dispatch_prefers_most_derived(self):
        assert isinstance(routing_for_topology(Mesh2D(3, 3, 1.0)), XYRouting)
        assert isinstance(
            routing_for_topology(Torus2D(4, 4, 1.0)), TorusXYRouting
        )
        assert isinstance(routing_for_topology(Ring(4, 1.0)), TableRouting)

    def test_subclass_inherits_registration(self):
        class DecoratedMesh(Mesh2D):
            pass

        assert isinstance(
            routing_for_topology(DecoratedMesh(3, 3, 1.0)), XYRouting
        )

    def test_custom_registration_wins_and_lists(self):
        class BounceRouting(RoutingBase):
            def __init__(self, topology):
                self.inner = TableRouting(topology)

            def output_port(self, node, dst):
                return self.inner.output_port(node, dst)

        class BouncyRing(Ring):
            pass

        register_routing(BouncyRing, BounceRouting)
        try:
            assert isinstance(
                routing_for_topology(BouncyRing(4, 1.0)), BounceRouting
            )
            assert BouncyRing in registered_routings()
        finally:
            from repro.noc import routing as routing_mod

            routing_mod._ROUTING_REGISTRY.pop(BouncyRing, None)

    def test_non_topology_rejected(self):
        with pytest.raises(TypeError):
            routing_for_topology(42)


class TestChipletMesh:
    def test_heterogeneous_radix(self):
        topology = ChipletMesh(6, 6, 1.0, hubs=2)
        radii = {
            node: 1 + len(topology.neighbors(node))
            for node in range(topology.num_nodes)
        }
        assert topology.max_radix() == 6  # hub-attached interior tile
        assert radii[topology.num_tiles] == 5  # hub: local + 4 tiles
        assert radii[0] == 3  # corner tile untouched by hubs

    def test_hubs_claim_disjoint_tiles(self):
        topology = ChipletMesh(6, 6, 1.0, hubs=3)
        claimed = [t for tiles in topology.hub_tiles.values() for t in tiles]
        assert len(claimed) == len(set(claimed))
        assert all(not topology.is_hub(t) for t in claimed)


class TestIrregularJson:
    def test_round_trip(self, tmp_path):
        original = _irregular_dumbbell()
        path = original.to_json(tmp_path / "graph.json")
        loaded = IrregularTopology.from_json(path)
        assert loaded.num_nodes == original.num_nodes
        assert loaded.links == original.links

    def test_config_digest_detects_edits(self, tmp_path):
        from repro.core.arch import make_irregular

        path = _irregular_diamond().to_json(tmp_path / "graph.json")
        config = make_irregular(str(path), num_cpus=2)
        config.build_topology()  # digest matches
        data = json.loads(path.read_text())
        data["links"] = data["links"][:-2]
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="changed since"):
            config.build_topology()

    def test_malformed_json_reports_source(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="bad.json"):
            IrregularTopology.from_json(path)
        path.write_text(json.dumps({"num_nodes": 2}))
        with pytest.raises(ValueError, match="num_nodes"):
            IrregularTopology.from_json(path)
