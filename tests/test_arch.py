"""Architecture configuration tests (the paper's evaluated designs)."""

import pytest

from repro.core.arch import (
    Architecture,
    make_2db,
    make_3db,
    make_3dm,
    make_3dme,
    make_architecture,
    standard_configs,
)
from repro.topology.express_mesh import ExpressMesh
from repro.topology.mesh2d import Mesh2D
from repro.topology.mesh3d import Mesh3D


class Test2DB:
    def test_geometry(self, cfg_2db):
        assert cfg_2db.dims == (6, 6)
        assert cfg_2db.num_nodes == 36
        assert cfg_2db.ports == 5
        assert cfg_2db.layers == 1
        assert cfg_2db.datapath_layers == 1

    def test_pitch_matches_table2(self, cfg_2db):
        assert cfg_2db.pitch_mm == pytest.approx(3.16)

    def test_pipeline_not_merged(self, cfg_2db):
        """Table 3: 688 ps > 500 ps, so 2DB cannot merge ST and LT."""
        assert not cfg_2db.combined_st_lt

    def test_topology_type(self, cfg_2db):
        assert isinstance(cfg_2db.build_topology(), Mesh2D)

    def test_cpu_layout_in_middle(self, cfg_2db):
        """Fig. 10a: 8 CPUs spread over the middle of the 6x6 mesh."""
        assert len(cfg_2db.cpu_nodes) == 8
        assert set(cfg_2db.cpu_nodes) == {13, 14, 15, 16, 19, 20, 21, 22}

    def test_cache_nodes_complement(self, cfg_2db):
        assert len(cfg_2db.cache_nodes) == 28
        assert set(cfg_2db.cpu_nodes) | set(cfg_2db.cache_nodes) == set(range(36))


class Test3DB:
    def test_geometry(self, cfg_3db):
        assert cfg_3db.dims == (3, 3, 4)
        assert cfg_3db.num_nodes == 36
        assert cfg_3db.ports == 7
        assert cfg_3db.datapath_layers == 1  # planar router per layer

    def test_cpus_on_top_layer(self, cfg_3db):
        """Fig. 10c: processors live on the heat-sink layer (z=3)."""
        plane = 9
        for node in cfg_3db.cpu_nodes:
            assert node // plane == 3

    def test_one_cache_on_top_layer(self, cfg_3db):
        plane = 9
        top_caches = [n for n in cfg_3db.cache_nodes if n // plane == 3]
        assert len(top_caches) == 1

    def test_topology_type(self, cfg_3db):
        assert isinstance(cfg_3db.build_topology(), Mesh3D)

    def test_pipeline_not_merged(self, cfg_3db):
        assert not cfg_3db.combined_st_lt


class Test3DM:
    def test_geometry(self, cfg_3dm):
        assert cfg_3dm.dims == (6, 6)
        assert cfg_3dm.ports == 5
        assert cfg_3dm.layers == 4
        assert cfg_3dm.datapath_layers == 4
        assert cfg_3dm.is_multilayer

    def test_half_pitch(self, cfg_3dm, cfg_2db):
        """Sec. 3.4.1: inter-router distance halves in the 3DM layout."""
        assert cfg_3dm.pitch_mm == pytest.approx(cfg_2db.pitch_mm / 2)

    def test_pipeline_merged(self, cfg_3dm):
        """Table 3: 297.6 ps < 500 ps, ST+LT share a stage."""
        assert cfg_3dm.combined_st_lt

    def test_nc_variant_not_merged(self):
        nc = make_3dm(nc=True)
        assert nc.arch is Architecture.MIRA_3DM_NC
        assert not nc.combined_st_lt

    def test_same_logical_layout_as_2db(self, cfg_3dm, cfg_2db):
        assert cfg_3dm.cpu_nodes == cfg_2db.cpu_nodes


class Test3DME:
    def test_nine_ports(self, cfg_3dme):
        assert cfg_3dme.ports == 9
        assert cfg_3dme.express_span == 2

    def test_express_topology(self, cfg_3dme):
        topo = cfg_3dme.build_topology()
        assert isinstance(topo, ExpressMesh)
        assert topo.max_radix() == 9

    def test_max_link_is_express_length(self, cfg_3dme):
        assert cfg_3dme.max_link_mm == pytest.approx(3.16)

    def test_pipeline_merged_despite_long_express(self, cfg_3dme):
        """Table 3: 492.3 ps < 500 ps — just fits."""
        assert cfg_3dme.combined_st_lt

    def test_nc_variant(self):
        nc = make_3dme(nc=True)
        assert nc.arch is Architecture.MIRA_3DM_E_NC
        assert not nc.combined_st_lt


class TestFactories:
    def test_make_architecture_all_variants(self):
        paper_six = (
            Architecture.BASELINE_2D, Architecture.BASELINE_3D,
            Architecture.MIRA_3DM, Architecture.MIRA_3DM_NC,
            Architecture.MIRA_3DM_E, Architecture.MIRA_3DM_E_NC,
        )
        for arch in Architecture:
            if arch is Architecture.IRREGULAR:
                # Irregular fabrics have no default graph.
                with pytest.raises(ValueError):
                    make_architecture(arch)
                continue
            config = make_architecture(arch)
            assert config.arch is arch
            if arch in paper_six:
                assert config.num_nodes == 36
            else:
                assert config.num_nodes == config.build_topology().num_nodes

    def test_standard_configs_order_and_count(self):
        configs = standard_configs()
        assert [c.name for c in configs] == [
            "2DB", "3DB", "3DM(NC)", "3DM", "3DM-E(NC)", "3DM-E",
        ]
        assert [c.name for c in standard_configs(include_nc=False)] == [
            "2DB", "3DB", "3DM", "3DM-E",
        ]

    def test_build_network_reflects_config(self, cfg_3dm):
        network = cfg_3dm.build_network(shutdown_enabled=True)
        assert network.combined_st_lt
        assert network.shutdown_enabled
        assert network.num_vcs == 2
        assert network.buffer_depth == 8
        assert network.topology.num_nodes == 36

    def test_custom_mesh_size(self):
        config = make_2db(width=4, height=4, num_cpus=4)
        assert config.num_nodes == 16
        assert len(config.cpu_nodes) == 4

    def test_tiny_mesh_cpu_fallback(self):
        config = make_2db(width=2, height=2, num_cpus=2)
        assert len(config.cpu_nodes) == 2

    def test_too_many_cpus_rejected(self):
        with pytest.raises(ValueError):
            make_2db(width=2, height=2, num_cpus=5)

    def test_common_parameters(self, all_configs):
        for config in all_configs:
            assert config.flit_bits == 128
            assert config.vcs == 2
            assert config.buffer_depth == 8
