"""Proof-by-enumeration: deadlock freedom under every single failure.

For every directed channel of a small express mesh, fail exactly that
channel and

1. build the channel dependency graph the fault-tolerant routing
   induces over *all* ordered node pairs and prove it acyclic (Dally &
   Seitz: acyclic CDG <=> deadlock-free wormhole routing), and
2. simulate one packet per still-routable pair with the sanitizer
   auditing every cycle and the deadlock watchdog armed: every routable
   pair must deliver, nothing may drop, no watchdog report may fire.

This turns Sec. 3.3's fault-tolerance claim from "the sims looked fine"
into an exhaustive check over the whole single-failure space of the
enumerated topology (routing-level proof on a larger mesh too).
"""

import pytest

from repro.core.express import route_path
from repro.core.fault import (
    FaultTolerantExpressRouting,
    routable_under,
    single_failure_coverage,
)
from repro.noc.network import Network
from repro.noc.packet import ctrl_packet
from repro.noc.routing import UnroutableError
from repro.noc.sanitizer import NetworkSanitizer
from repro.resilience.cdg import channel_dependency_graph, find_dependency_cycle
from repro.topology.base import LinkKind
from repro.topology.express_mesh import ExpressMesh

#: The exhaustively simulated mesh: small enough that (channels x
#: pairs) full sims stay fast, large enough to contain every failure
#: class (edge/interior, normal/express, x/y, both directions).
WIDTH, HEIGHT, SPAN = 3, 3, 2


def _mesh() -> ExpressMesh:
    return ExpressMesh(WIDTH, HEIGHT, pitch_mm=1.0, span=SPAN)


def _failable_channels(mesh: ExpressMesh):
    return sorted(
        (link.src, link.dst)
        for link in mesh.links
        if link.kind in (LinkKind.NORMAL, LinkKind.EXPRESS)
    )


MESH = _mesh()
CHANNELS = _failable_channels(MESH)


def _routable_pairs(mesh, routing):
    """Ordered pairs the damaged routing can still route, plus the set
    it declares unroutable."""
    routable, unroutable = [], []
    for src in range(mesh.num_nodes):
        for dst in range(mesh.num_nodes):
            if src == dst:
                continue
            try:
                route_path(mesh, src, dst, routing)
            except UnroutableError:
                unroutable.append((src, dst))
            else:
                routable.append((src, dst))
    return routable, unroutable


def test_enumeration_space_is_nontrivial():
    """The mesh really contains both failure classes in both axes."""
    kinds = {}
    for link in MESH.links:
        kinds[link.kind] = kinds.get(link.kind, 0) + 1
    assert kinds[LinkKind.NORMAL] == 2 * 2 * (WIDTH * HEIGHT - WIDTH)
    assert kinds[LinkKind.EXPRESS] > 0
    assert len(CHANNELS) == kinds[LinkKind.NORMAL] + kinds[LinkKind.EXPRESS]


def test_fault_free_cdg_is_acyclic():
    graph = channel_dependency_graph(MESH, FaultTolerantExpressRouting(MESH))
    assert find_dependency_cycle(graph) is None


@pytest.mark.parametrize("channel", CHANNELS, ids=lambda ch: f"{ch[0]}-{ch[1]}")
def test_single_failure_cdg_stays_acyclic(channel):
    """No single-channel failure can close a dependency cycle."""
    routing = FaultTolerantExpressRouting(MESH, [channel])
    graph = channel_dependency_graph(MESH, routing)
    cycle = find_dependency_cycle(graph)
    assert cycle is None, (
        f"failing channel {channel} closes the CDG cycle {cycle}"
    )
    # The failed channel itself carries no route.
    assert channel not in graph


@pytest.mark.parametrize("channel", CHANNELS, ids=lambda ch: f"{ch[0]}-{ch[1]}")
def test_single_failure_every_routable_pair_delivers(channel):
    """One packet per routable pair, sanitized every cycle: all arrive."""
    mesh = _mesh()
    routing = FaultTolerantExpressRouting(mesh, [channel])
    routable, unroutable = _routable_pairs(mesh, routing)
    assert routable, "a single failure can never disconnect everything"
    # routable_under agrees with the pairwise enumeration.
    assert routable_under(mesh, [channel]) == (not unroutable)

    network = Network(mesh, routing=routing)
    network.sanitizer = NetworkSanitizer(network, watchdog_window=200)
    for src, dst in routable:
        network.enqueue_packet(ctrl_packet(src, dst, created_cycle=0))
    limit = 2000
    while network.cycle < limit and (
        network.stats.packets_delivered < len(routable)
    ):
        network.step()
        network.sanitizer.audit(network.cycle)
    assert network.stats.packets_delivered == len(routable), (
        f"channel {channel}: only {network.stats.packets_delivered} of "
        f"{len(routable)} routable pairs delivered within {limit} cycles"
    )
    assert network.stats.packets_dropped == 0
    assert network.sanitizer.watchdog_reports == []


def test_coverage_matches_enumeration():
    """single_failure_coverage agrees with the exhaustive pair check,
    and every express failure is tolerated (the normal sibling is
    always minimal)."""
    tolerated = sum(
        1 for channel in CHANNELS if routable_under(MESH, [channel])
    )
    assert single_failure_coverage(MESH) == tolerated / len(CHANNELS)
    by_channel = {
        (link.src, link.dst): link.kind
        for link in MESH.links
        if link.kind in (LinkKind.NORMAL, LinkKind.EXPRESS)
    }
    for channel in CHANNELS:
        if by_channel[channel] is LinkKind.EXPRESS:
            assert routable_under(MESH, [channel])


def test_larger_mesh_cdg_enumeration():
    """Routing-level proof scales: every single failure on a 4x4 span-2
    express mesh keeps the CDG acyclic too (no simulation here — the
    simulated proof runs on the 3x3)."""
    mesh = ExpressMesh(4, 4, pitch_mm=1.0, span=2)
    for channel in _failable_channels(mesh):
        routing = FaultTolerantExpressRouting(mesh, [channel])
        graph = channel_dependency_graph(mesh, routing)
        assert find_dependency_cycle(graph) is None, channel
