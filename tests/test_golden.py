"""Golden-value regression tests.

Pin exact simulator outputs for fixed seeds.  Any change here means the
cycle model's behaviour changed — intentionally or not — and the
committed EXPERIMENTS.md numbers need regeneration.  (Python's ``random``
module is stable across platforms/versions, so these are portable.)
"""

import pytest

from repro.core.arch import make_2db, make_3dme
from repro.noc.network import Network
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


def test_golden_zero_load_latencies():
    """Hand-derived pipeline latencies (see test_router_pipeline.py)."""
    cases = [
        # (combined, hops, size, expected latency)
        (False, 1, 1, 8),
        (False, 3, 1, 18),
        (True, 1, 1, 7),
        (True, 3, 1, 15),
        (False, 1, 5, 12),
        (True, 3, 5, 19),
    ]
    for combined, hops, size, expected in cases:
        packet = (
            ctrl_packet(0, hops, created_cycle=0)
            if size == 1
            else data_packet(0, hops, created_cycle=0)
        )
        network = Network(Mesh2D(4, 1, pitch_mm=1.0), combined_st_lt=combined)
        Simulator(network, ScheduledTraffic([packet]), warmup_cycles=0,
                  measure_cycles=100, drain_cycles=400).run()
        assert packet.latency == expected, (combined, hops, size)


@pytest.fixture(scope="module")
def golden_run():
    config = make_2db()
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=36, flit_rate=0.1, seed=12345),
        warmup_cycles=500,
        measure_cycles=2000,
        drain_cycles=10000,
    )
    return sim.run()


class TestGoldenUniformRun:
    """One fully pinned 2DB run at seed 12345."""

    def test_packets_measured(self, golden_run):
        assert golden_run.packets_measured == 2453

    def test_avg_latency(self, golden_run):
        assert golden_run.avg_latency == pytest.approx(26.0211985, abs=1e-4)

    def test_avg_hops(self, golden_run):
        assert golden_run.avg_hops == pytest.approx(4.0073379, abs=1e-4)

    def test_flit_hops(self, golden_run):
        assert golden_run.events.flit_hops == 37257

    def test_not_saturated(self, golden_run):
        assert not golden_run.saturated


def test_golden_area_totals():
    """Area model totals are pure functions of the constants."""
    from repro.power.area import router_area

    assert router_area(make_2db()).total == pytest.approx(431697.4, abs=1.0)
    assert router_area(make_3dme()).total == pytest.approx(637149.7, abs=1.0)


def test_golden_energy_per_flit_hop():
    from repro.power.orion import RouterEnergyModel

    e_2db = RouterEnergyModel.for_config(make_2db()).flit_hop_energy_j()
    assert e_2db * 1e12 == pytest.approx(54.31, abs=0.05)
