"""Analysis-utility tests: saturation search, channel loads, percentiles."""

import pytest

from repro.analysis import (
    SATURATION_LATENCY_FACTOR,
    channel_load_map,
    channel_utilization,
    find_saturation_rate,
    hottest_channels,
)
from repro.core.arch import make_2db, make_3dme
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_uniform_point
from repro.noc.stats import NetworkStats


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=1000,
        drain_cycles=4000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=5000,
        workloads=("tpcw",),
        seed=13,
    )


@pytest.fixture(scope="module")
def point(settings):
    return run_uniform_point(make_2db(), 0.2, settings)


class TestSaturationSearch:
    def test_finds_rate_between_bounds(self, settings):
        result = find_saturation_rate(
            make_2db(), settings, low=0.05, high=1.0, tolerance=0.1
        )
        assert 0.05 <= result.saturation_rate <= 1.0
        assert result.zero_load_latency > 0
        assert len(result.probes) >= 2

    def test_3dme_saturates_later_than_2db(self, settings):
        """Sec. 4.2.1: 3DM-E 'saturates at higher injection rates'."""
        sat_2db = find_saturation_rate(make_2db(), settings, tolerance=0.05)
        sat_3dme = find_saturation_rate(make_3dme(), settings, tolerance=0.05)
        assert sat_3dme.saturation_rate > sat_2db.saturation_rate

    def test_validates_bounds(self, settings):
        with pytest.raises(ValueError):
            find_saturation_rate(make_2db(), settings, low=0.5, high=0.4)

    def test_unsaturable_upper_bound_reported(self, settings):
        result = find_saturation_rate(
            make_2db(), settings, low=0.02, high=0.05, tolerance=0.01
        )
        assert result.saturation_rate == 0.05  # never saturated below high


class TestChannelLoads:
    def test_load_map_nonempty_and_positive(self, point):
        loads = channel_load_map(point)
        assert loads
        assert all(v >= 0 for v in loads.values())

    def test_channels_are_topology_links(self, point):
        from repro.topology.mesh2d import Mesh2D

        mesh = Mesh2D(6, 6, pitch_mm=1.0)
        links = {(l.src, l.dst) for l in mesh.links}
        for channel in channel_load_map(point):
            assert channel in links

    def test_utilization_bounded_by_one(self, point):
        for value in channel_utilization(point).values():
            assert 0 <= value <= 1.0  # one flit per cycle per channel

    def test_centre_channels_hotter_than_edges(self, point):
        """X-Y routing on uniform traffic concentrates load centrally."""
        util = channel_utilization(point)
        centre = util.get((14, 15), 0) + util.get((15, 14), 0)
        edge = util.get((0, 1), 0) + util.get((1, 0), 0)
        assert centre > edge

    def test_hottest_channels_sorted(self, point):
        top = hottest_channels(point, count=5)
        values = [v for _, v in top]
        assert values == sorted(values, reverse=True)
        assert len(top) == 5

    def test_hottest_channels_validation(self, point):
        with pytest.raises(ValueError):
            hottest_channels(point, count=0)


class TestPercentiles:
    def test_percentile_nearest_rank(self):
        stats = NetworkStats()
        stats.latencies = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert stats.latency_percentile(50) == 50
        assert stats.latency_percentile(95) == 100
        assert stats.latency_percentile(10) == 10
        assert stats.latency_percentile(100) == 100

    def test_percentile_empty(self):
        assert NetworkStats().latency_percentile(95) == 0.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            NetworkStats().latency_percentile(0)
        with pytest.raises(ValueError):
            NetworkStats().latency_percentile(101)

    def test_simulation_result_carries_tails(self, point):
        sim = point.sim
        assert sim.latency_p50 <= sim.latency_p95 <= sim.latency_p99
        assert sim.latency_p50 > 0
        assert sim.avg_latency <= sim.latency_p99
