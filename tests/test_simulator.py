"""Simulator orchestration tests: windows, drain, saturation, stats."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import PacketClass, ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import BaseTraffic, ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


def test_only_window_packets_measured():
    packets = [
        ctrl_packet(0, 3, created_cycle=5),     # warmup: not measured
        ctrl_packet(0, 3, created_cycle=60),    # window: measured
        ctrl_packet(3, 0, created_cycle=70),    # window: measured
    ]
    network = Network(Mesh2D(4, 1, pitch_mm=1.0))
    sim = Simulator(
        network, ScheduledTraffic(packets),
        warmup_cycles=50, measure_cycles=100, drain_cycles=500,
    )
    result = sim.run()
    assert result.packets_measured == 2
    assert result.packets_delivered == 3


def test_avg_latency_matches_manual_mean():
    packets = [ctrl_packet(0, 1, created_cycle=10 + i) for i in range(5)]
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    sim = Simulator(
        network, ScheduledTraffic(packets),
        warmup_cycles=0, measure_cycles=100, drain_cycles=500,
    )
    result = sim.run()
    manual = sum(p.latency for p in packets) / len(packets)
    assert result.avg_latency == pytest.approx(manual)


def test_event_counts_cover_only_window():
    """Events from warm-up traffic are excluded from the reported delta."""
    early = [data_packet(0, 3, created_cycle=0)]
    late = [data_packet(0, 3, created_cycle=100)]
    network = Network(Mesh2D(4, 1, pitch_mm=1.0))
    sim = Simulator(
        network, ScheduledTraffic(early + late),
        warmup_cycles=80, measure_cycles=200, drain_cycles=500,
    )
    result = sim.run()
    # Only the late packet's flits traverse during the window: 5 flits x 4
    # routers = 20 hops.
    assert result.events.flit_hops == 20


def test_drain_cap_flags_saturation():
    class Flood(BaseTraffic):
        def packets_for_cycle(self, cycle):
            # Far beyond a 1-flit/cycle ejection port's capacity.
            return [data_packet(src, 1, created_cycle=cycle)
                    for src in (0, 2, 3)]

    network = Network(Mesh2D(4, 1, pitch_mm=1.0))
    sim = Simulator(
        network, Flood(), warmup_cycles=10, measure_cycles=50, drain_cycles=30,
    )
    result = sim.run()
    assert result.saturated


def test_unsaturated_run_not_flagged():
    network = Network(Mesh2D(4, 1, pitch_mm=1.0))
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=4, flit_rate=0.02, seed=5),
        warmup_cycles=100, measure_cycles=400, drain_cycles=4000,
    )
    result = sim.run()
    assert not result.saturated
    assert result.packets_measured > 0


def test_throughput_tracks_offered_load():
    rate = 0.1
    network = Network(Mesh2D(6, 6, pitch_mm=1.0))
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=36, flit_rate=rate, seed=9),
        warmup_cycles=300, measure_cycles=2000, drain_cycles=10000,
    )
    result = sim.run()
    assert result.throughput == pytest.approx(rate, rel=0.15)
    assert result.accepted_throughput == pytest.approx(rate, rel=0.15)


def test_accepted_throughput_plateaus_at_overload():
    """Offered 0.8 flits/node/cycle >> capacity: the within-window
    accepted throughput must fall well short of the offered load."""
    network = Network(Mesh2D(6, 6, pitch_mm=1.0))
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=36, flit_rate=0.8, seed=9),
        warmup_cycles=300, measure_cycles=1500, drain_cycles=500,
    )
    result = sim.run()
    assert result.accepted_throughput < 0.7


def test_latency_by_class_reported():
    packets = [
        ctrl_packet(0, 3, created_cycle=10),
        data_packet(0, 3, created_cycle=20),
    ]
    network = Network(Mesh2D(4, 1, pitch_mm=1.0))
    sim = Simulator(
        network, ScheduledTraffic(packets),
        warmup_cycles=0, measure_cycles=100, drain_cycles=500,
    )
    result = sim.run()
    assert result.avg_latency_by_class["ctrl"] == packets[0].latency
    assert result.avg_latency_by_class["data"] == packets[1].latency
    # Serialization makes the 5-flit data packet slower.
    assert (
        result.avg_latency_by_class["data"]
        > result.avg_latency_by_class["ctrl"]
    )


def test_closed_loop_responses_scheduled():
    """on_delivered responses with future created_cycle are injected."""

    class RequestResponse(BaseTraffic):
        def __init__(self):
            self.responses = []

        def packets_for_cycle(self, cycle):
            if cycle == 0:
                req = ctrl_packet(0, 3, created_cycle=0)
                req.reply_tag = "req"
                return [req]
            return ()

        def on_delivered(self, packet, cycle):
            if packet.reply_tag == "req":
                resp = data_packet(3, 0, created_cycle=cycle + 4)
                resp.reply_tag = "resp"
                self.responses.append(resp)
                return [resp]
            return ()

    traffic = RequestResponse()
    network = Network(Mesh2D(4, 1, pitch_mm=1.0))
    sim = Simulator(network, traffic, warmup_cycles=0,
                    measure_cycles=200, drain_cycles=500)
    sim.run()
    assert len(traffic.responses) == 1
    response = traffic.responses[0]
    assert response.delivered_cycle is not None
    assert response.injected_cycle >= response.created_cycle


def test_invalid_cycle_budgets_rejected():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    with pytest.raises(ValueError):
        Simulator(network, ScheduledTraffic([]), warmup_cycles=-1,
                  measure_cycles=10, drain_cycles=10)
    with pytest.raises(ValueError):
        Simulator(network, ScheduledTraffic([]), warmup_cycles=0,
                  measure_cycles=0, drain_cycles=10)
