"""VariationModel property tests: bounds, monotonicity, determinism.

Hypothesis drives the sampling space (sigma, seed, architecture); the
cross-process test re-derives a sample in fresh interpreters under
several ``PYTHONHASHSEED`` values (the ``test_store_keys`` pattern) to
pin the SHA-256 seed derivation the sweep cache key relies on.
"""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.resilience.variation import (
    VARIATION_CEIL,
    VARIATION_FLOOR,
    VariationModel,
    tier_delay_mean,
    tier_leakage_mean,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

MAKERS = {
    "2db": make_2db,
    "3db": make_3db,
    "3dm": make_3dm,
    "3dme": make_3dme,
}

configs = st.sampled_from(sorted(MAKERS))
sigmas = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _sample(arch, sigma, seed):
    return VariationModel(sigma, seed=seed).sample_for(MAKERS[arch]())


class TestBounds:
    @settings(max_examples=60, deadline=None)
    @given(arch=configs, sigma=sigmas, seed=seeds)
    def test_all_multipliers_within_physical_range(self, arch, sigma, seed):
        sample = _sample(arch, sigma, seed)
        config = MAKERS[arch]()
        assert len(sample.tier_delay) == config.datapath_layers
        assert len(sample.tier_leakage) == config.datapath_layers
        assert len(sample.node_delay) == config.num_nodes
        assert len(sample.node_leakage) == config.num_nodes
        for group in (sample.tier_delay, sample.tier_leakage,
                      sample.node_delay, sample.node_leakage,
                      (sample.dynamic_multiplier,)):
            for value in group:
                assert VARIATION_FLOOR <= value <= VARIATION_CEIL

    @settings(max_examples=30, deadline=None)
    @given(arch=configs, sigma=sigmas, seed=seeds)
    def test_derived_multipliers_positive(self, arch, sigma, seed):
        sample = _sample(arch, sigma, seed)
        assert sample.worst_delay_multiplier >= VARIATION_FLOOR**2
        assert sample.leakage_multiplier > 0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            VariationModel(-0.1)


class TestSigmaZeroDegenerates:
    @settings(max_examples=20, deadline=None)
    @given(arch=configs, seed=seeds)
    def test_all_multipliers_exactly_one(self, arch, seed):
        """gauss(mu, 0.0) == mu exactly: sigma 0 must be the identity
        (this is what keeps variation-free runs bit-identical)."""
        sample = _sample(arch, 0.0, seed)
        assert set(sample.tier_delay) == {1.0}
        assert set(sample.tier_leakage) == {1.0}
        assert set(sample.node_delay) == {1.0}
        assert set(sample.node_leakage) == {1.0}
        assert sample.dynamic_multiplier == 1.0
        assert sample.worst_delay_multiplier == 1.0
        assert sample.leakage_multiplier == 1.0

    @settings(max_examples=10, deadline=None)
    @given(arch=configs, seed=seeds)
    def test_apply_to_returns_same_object(self, arch, seed):
        config = MAKERS[arch]()
        sample = _sample(arch, 0.0, seed)
        assert sample.apply_to(config) is config


class TestTierMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        sigma=st.floats(min_value=0.01, max_value=0.5, allow_nan=False),
        tiers=st.integers(min_value=2, max_value=8),
    )
    def test_means_worsen_with_tier_index(self, sigma, tiers):
        """Lower tiers are systematically worse: the *means* grow
        strictly with tier index (individual draws may still cross)."""
        delay_means = [tier_delay_mean(t, sigma) for t in range(tiers)]
        leak_means = [tier_leakage_mean(t, sigma) for t in range(tiers)]
        assert delay_means == sorted(delay_means)
        assert leak_means == sorted(leak_means)
        assert len(set(delay_means)) == tiers
        assert len(set(leak_means)) == tiers
        # Leakage is the more sensitive axis: its gradient dominates.
        for t in range(1, tiers):
            assert leak_means[t] - 1.0 >= delay_means[t] - 1.0

    def test_tier_expectation_visible_in_samples(self):
        """Averaged over many seeds, sampled tier multipliers recover
        the monotone means (law of large numbers, tight sigma)."""
        config = make_3dm()
        tiers = config.datapath_layers
        totals = [0.0] * tiers
        n = 200
        for seed in range(n):
            sample = VariationModel(0.1, seed=seed).sample_for(config)
            for t in range(tiers):
                totals[t] += sample.tier_delay[t]
        averages = [total / n for total in totals]
        assert averages == sorted(averages)


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(arch=configs, sigma=sigmas, seed=seeds)
    def test_same_inputs_same_sample(self, arch, sigma, seed):
        assert _sample(arch, sigma, seed) == _sample(arch, sigma, seed)

    @settings(max_examples=20, deadline=None)
    @given(arch=configs, seed=seeds)
    def test_different_seeds_differ(self, arch, seed):
        a = _sample(arch, 0.2, seed)
        b = _sample(arch, 0.2, seed + 1)
        assert a != b

    def test_different_architectures_draw_independent_samples(self):
        """The derivation binds the architecture identity: the same
        variation seed gives each design its own corner (physically:
        different chips)."""
        a = VariationModel(0.2, seed=7).sample_for(make_3dm())
        b = VariationModel(0.2, seed=7).sample_for(make_3dme())
        assert a.tier_delay != b.tier_delay

    def test_sample_stable_across_subprocess_and_hashseed(self):
        """A fresh interpreter with a different PYTHONHASHSEED derives
        the identical sample (SHA-256 derivation, no dict-order or
        hash() dependence) — the property point_key relies on."""
        sample = VariationModel(0.2, seed=42).sample_for(make_3dm())
        expected = repr(
            (sample.tier_delay, sample.tier_leakage, sample.node_delay,
             sample.node_leakage, sample.dynamic_multiplier)
        )
        code = (
            "from repro.core.arch import make_3dm\n"
            "from repro.resilience.variation import VariationModel\n"
            "s = VariationModel(0.2, seed=42).sample_for(make_3dm())\n"
            "print(repr((s.tier_delay, s.tier_leakage, s.node_delay,"
            " s.node_leakage, s.dynamic_multiplier)))\n"
        )
        for hash_seed in ("0", "1", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": str(REPO_ROOT / "src"),
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            assert proc.stdout.strip() == expected


class TestApplyTo:
    def test_slow_corner_splits_merged_pipeline(self):
        """A large worst-case delay multiplier must push a merged-ST+LT
        design back to the split pipeline."""
        import dataclasses

        config = make_3dm()
        assert config.combined_st_lt
        base = VariationModel(0.0, seed=0).sample_for(config)
        slow = dataclasses.replace(
            base,
            tier_delay=tuple(VARIATION_CEIL for _ in base.tier_delay),
            node_delay=tuple(VARIATION_CEIL for _ in base.node_delay),
        )
        adjusted = slow.apply_to(config)
        assert adjusted is not config
        assert not adjusted.combined_st_lt

    def test_split_pipeline_config_untouched(self):
        import dataclasses

        config = dataclasses.replace(make_3dm(), combined_st_lt=False)
        sample = VariationModel(0.3, seed=1).sample_for(config)
        assert sample.apply_to(config) is config
