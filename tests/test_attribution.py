"""Stall attribution + latency decomposition (congestion forensics).

Three layers of guarantees:

* **Bit identity** — running with attribution (and full lifecycle
  capture) attached reproduces the committed golden e2e digests on all
  six architectures: the observability layer reads, never perturbs.
* **Conservation** — every completely captured packet's decomposition
  components (queue + per-stage waits + link transit + serialization)
  sum to its measured latency *exactly*, as an algebraic identity.
* **Accounting invariants** — the flat counters, their per-node /
  per-link / per-layer rollups, and the report built from them agree
  with each other.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.arch import make_3dm
from repro.noc.router import NUM_STALL_CAUSES, STALL_CAUSE_NAMES
from repro.noc.simulator import Simulator
from repro.telemetry import (
    StallAttribution,
    TelemetryConfig,
    build_stall_report,
    decompose_life,
    decompose_recorder,
    format_stall_report,
)
from repro.telemetry.export import HopRecord, PacketLife
from repro.traffic.synthetic import UniformRandomTraffic

from tests.test_golden_e2e import CASES, FIXTURE, SETTINGS, compute_digest


def _forensics_config() -> TelemetryConfig:
    """Attribution plus full in-memory lifecycle capture (no files)."""
    return TelemetryConfig(
        interval=100,
        attribution=True,
        trace_capture=True,
        trace_sample_rate=1.0,
    )


@pytest.fixture(scope="module")
def golden_digests():
    with open(FIXTURE, encoding="utf-8") as handle:
        return json.load(handle)["cases"]


@pytest.fixture(scope="module")
def forensic_points():
    """Every golden case re-run with attribution + capture attached."""
    from repro.experiments.runner import run_point_spec

    return {
        name: run_point_spec(spec, SETTINGS, telemetry=_forensics_config())
        for name, spec in CASES.items()
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_attribution_is_bit_identical_to_golden(
    name, forensic_points, golden_digests
):
    """The differential guarantee: attribution on == attribution off,
    down to the digest, on every architecture."""
    assert compute_digest(forensic_points[name]) == (
        golden_digests[name]["digest"]
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_decomposition_conserves_latency_exactly(name, forensic_points):
    point = forensic_points[name]
    snapshot = point.sim.telemetry
    report = snapshot.stall_report
    assert report is not None
    decomp = report["decomposition"]
    assert decomp is not None
    assert decomp["packets"] > 0
    # Exact conservation for every single decomposed packet — not on
    # average, not approximately.
    assert decomp["conservation_exact"] == decomp["packets"]
    assert sum(decomp["components_total"].values()) == (
        decomp["latency_total"]
    )
    assert all(v >= 0 for v in decomp["components_total"].values())


@pytest.mark.parametrize("name", sorted(CASES))
def test_report_accounting_is_internally_consistent(name, forensic_points):
    report = forensic_points[name].sim.telemetry.stall_report
    total = report["total_stall_cycles"]
    assert sum(report["causes"].values()) == total
    assert set(report["causes"]) == set(STALL_CAUSE_NAMES)
    layer_total = sum(
        block["total"] for block in report["by_active_layers"].values()
    )
    assert layer_total == total
    for entry in report["hotspot_links"] + report["hotspot_nodes"]:
        assert sum(entry["causes"].values()) == entry["stalls"]
    for entry in report["backpressure"]:
        assert entry["chain"][0] == entry["link"]
        assert entry["credit_stalls"] > 0


def test_stalled_run_names_hotspots_and_composes():
    """The acceptance-path scenario: a congested mesh run must name at
    least one hotspot link and produce an exactly conserving
    decomposition table."""
    config = make_3dm()
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=0.35, seed=11
        ),
        warmup_cycles=100,
        measure_cycles=400,
        drain_cycles=3000,
        telemetry=_forensics_config(),
    )
    sim.run()
    report = network.telemetry.stall_report
    assert report["total_stall_cycles"] > 0
    assert report["hotspot_links"], "congested run produced no hotspots"
    assert report["hotspot_nodes"]
    decomp = report["decomposition"]
    assert decomp["packets"] > 0
    assert decomp["conservation_exact"] == decomp["packets"]
    text = format_stall_report(report)
    assert "hotspot links" in text
    assert "conservation: components sum exactly" in text


# -- unit tests: counters and rollups ---------------------------------------


def _tiny_sim(telemetry=None, rate=0.3):
    config = make_3dm()
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=rate, seed=3
        ),
        warmup_cycles=50,
        measure_cycles=150,
        drain_cycles=2000,
        telemetry=telemetry,
    )
    return network, sim


def test_attach_detach_restores_zero_cost_state():
    network, _ = _tiny_sim()
    assert network.attribution is None
    for router in network.routers:
        assert router._attrib is None
    attribution = StallAttribution(network)
    assert network.attribution is attribution
    for router in network.routers:
        assert router._attrib is attribution
        assert router._stall_counts is attribution.unit_counts
    with pytest.raises(ValueError):
        StallAttribution(network)
    attribution.detach()
    assert network.attribution is None
    for router in network.routers:
        assert router._attrib is None
        assert router._stall_counts is None


def test_rollups_agree_with_flat_counters():
    network, sim = _tiny_sim()
    attribution = StallAttribution(network)
    sim.run()
    total = attribution.total_stall_cycles()
    assert total > 0
    # layer rollup == unit rollup == node rollup: each charge writes
    # one unit cell and one layer cell.
    assert sum(attribution.unit_counts) == total
    assert sum(attribution.cause_totals_list()) == total
    assert sum(attribution.node_stall_cycles()) == total
    # link rollup excludes local-port units, so it can only lose mass.
    link_total = sum(sum(row) for row in attribution.link_stalls().values())
    assert 0 < link_total <= total
    # every credit stall billed to an output port was also billed to
    # the credit_stall cause of some unit.
    assert sum(attribution.out_counts) == (
        attribution.cause_totals()["credit_stall"]
    )


def test_idle_network_charges_nothing():
    network, _ = _tiny_sim()
    attribution = StallAttribution(network)
    for _ in range(200):
        network.step()
    assert attribution.total_stall_cycles() == 0
    report = build_stall_report(attribution)
    assert report["total_stall_cycles"] == 0
    assert report["hotspot_links"] == []
    assert report["backpressure"] == []


def test_backpressure_chain_follows_most_stalled_link():
    network, _ = _tiny_sim()
    attribution = StallAttribution(network)
    credit = {(0, 1): 10, (1, 2): 7, (1, 7): 3, (2, 3): 5}
    chain = attribution.backpressure_chain((0, 1), credit)
    # From 1 the walk picks 1->2 (7 > 3), then 2->3, then stops: no
    # credit stalls leave node 3.
    assert chain == [(0, 1), (1, 2), (2, 3)]


def test_backpressure_chain_stops_on_cycle():
    network, _ = _tiny_sim()
    attribution = StallAttribution(network)
    credit = {(0, 1): 5, (1, 0): 5}
    chain = attribution.backpressure_chain((0, 1), credit)
    assert chain == [(0, 1), (1, 0)]


def test_report_top_k_limits_lists():
    network, sim = _tiny_sim()
    attribution = StallAttribution(network)
    sim.run()
    report = build_stall_report(attribution, top_k=2)
    assert len(report["hotspot_links"]) <= 2
    assert len(report["hotspot_nodes"]) <= 2
    assert len(report["backpressure"]) <= 2


# -- unit tests: the decomposition identity ---------------------------------


def test_decompose_life_exact_sum():
    life = PacketLife(
        pid=1, src=0, dst=5, size_flits=4, klass="data", created=0,
        injected=2, delivered=12,
        hops=[
            HopRecord(node=0, rc=2, va=3, st=5),
            HopRecord(node=1, rc=None, va=7, st=8),
        ],
    )
    decomp = decompose_life(life, hop_cycles=2)
    assert decomp is not None
    assert decomp.queue == 2
    assert decomp.rc_wait == 0  # missing rc substitutes the arrival
    assert decomp.va_wait == 1
    assert decomp.sa_wait == 3
    assert decomp.link_transit == 2
    assert decomp.serialization == 4
    assert decomp.components_sum == decomp.latency == 12
    assert decomp.exact


def test_decompose_life_rejects_incomplete():
    complete = PacketLife(
        pid=1, src=0, dst=1, size_flits=1, klass="data", created=0,
        injected=0, delivered=5,
        hops=[HopRecord(node=0, rc=0, va=1, st=2)],
    )
    assert decompose_life(complete, hop_cycles=2) is not None
    undelivered = PacketLife(
        pid=2, src=0, dst=1, size_flits=1, klass="data", created=0,
        injected=0, hops=[HopRecord(node=0, rc=0, va=1, st=2)],
    )
    assert decompose_life(undelivered, hop_cycles=2) is None
    missing_st = PacketLife(
        pid=3, src=0, dst=1, size_flits=1, klass="data", created=0,
        injected=0, delivered=5, hops=[HopRecord(node=0, rc=0, va=1)],
    )
    assert decompose_life(missing_st, hop_cycles=2) is None
    assert decompose_life(complete, hop_cycles=2, expected_hops=2) is None


def test_decompose_recorder_flags_truncated_lifecycles():
    """Sampled capture on a live run: every decomposed packet conserves
    exactly, and packets with incomplete lifecycles are skipped, not
    mis-decomposed."""
    network, sim = _tiny_sim(
        telemetry=TelemetryConfig(
            interval=100,
            attribution=True,
            trace_capture=True,
            trace_sample_rate=0.5,
        )
    )
    sim.run()
    recorder = network.telemetry._recorder
    hop_cycles = network.routers[0]._hop_cycles
    decomposed, skipped = decompose_recorder(recorder, hop_cycles)
    assert decomposed
    assert skipped >= 0
    for d in decomposed:
        assert d.exact
        assert min(
            d.queue, d.rc_wait, d.va_wait, d.sa_wait,
            d.link_transit, d.serialization,
        ) >= 0


def test_snapshot_surfaces_stall_cycles():
    network, sim = _tiny_sim(telemetry=_forensics_config())
    result = sim.run()
    snapshot = result.telemetry
    assert snapshot.stall_cycles > 0
    assert snapshot.stall_cycles == (
        network.attribution.total_stall_cycles()
    )
    assert "stall attribution" in snapshot.format()


def test_stall_metrics_registered_in_registry():
    network, sim = _tiny_sim(telemetry=_forensics_config())
    sim.run()
    names = set(network.telemetry.registry.names())
    for cause in STALL_CAUSE_NAMES:
        assert f"stall.{cause}" in names
    assert "stall.rate" in names
    assert "stall.node_cycles" in names
    assert NUM_STALL_CAUSES == len(STALL_CAUSE_NAMES)


# -- sweep progress emission ------------------------------------------------


def test_sweep_progress_stream_and_jsonl(tmp_path):
    from repro.experiments.sweep import run_sweep, specs_for_grid
    from repro.core.arch import Architecture

    settings = SETTINGS
    stream = io.StringIO()
    jsonl = tmp_path / "progress.jsonl"
    outcome = run_sweep(
        specs_for_grid([Architecture.MIRA_3DM], [0.05, 0.1]),
        settings,
        processes=0,
        progress=True,
        progress_stream=stream,
        progress_jsonl=str(jsonl),
    )
    assert outcome.ok
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    assert "[sweep 1/2]" in lines[0] and "[sweep 2/2]" in lines[1]
    assert "eta" in lines[0]
    records = [
        json.loads(line) for line in jsonl.read_text().splitlines()
    ]
    assert [r["done"] for r in records] == [1, 2]
    assert all(r["type"] == "progress" for r in records)
    assert all(r["total"] == 2 for r in records)
    assert records[-1]["eta_s"] == 0.0


def test_sweep_progress_reports_cache_hits_and_failures(tmp_path):
    from repro.experiments.store import PointSpec
    from repro.experiments.sweep import run_sweep

    from repro.core.arch import make_3dm as make

    specs = [
        PointSpec(config=make(), kind="uniform", rate=0.05),
        PointSpec(config=make(), kind="uniform", rate=0.1),
    ]

    calls = {"n": 0}

    def flaky(spec, settings):
        calls["n"] += 1
        if spec.rate == 0.1:
            raise RuntimeError("injected")
        from repro.experiments.runner import run_point_spec

        return run_point_spec(spec, settings)

    stream = io.StringIO()
    outcome = run_sweep(
        specs, SETTINGS, processes=0, worker_fn=flaky,
        cache_dir=str(tmp_path / "cache"),
        retries=1, backoff_s=0.0,
        progress=True, progress_stream=stream,
    )
    assert not outcome.ok
    text = stream.getvalue()
    assert "retry" in text
    assert "failed" in text
    # Second run: the good point is served from the cache and the
    # progress line says so.
    stream2 = io.StringIO()
    run_sweep(
        specs, SETTINGS, processes=0, worker_fn=flaky,
        cache_dir=str(tmp_path / "cache"),
        progress=True, progress_stream=stream2,
    )
    assert "cached" in stream2.getvalue()
