"""MESI directory-protocol tests: unit-level bank behaviour.

The bank is driven directly (no network, no engine): the send hook
records outgoing messages so each protocol transition can be asserted.
"""

import pytest

from repro.cache.directory import BANK_LATENCY, DirState, DirectoryBank, MEMORY_LATENCY
from repro.cache.messages import CoherenceMessage, MessageType
from repro.traffic.workloads import WORKLOADS

CPUS = [100, 101, 102, 103]
BANK_NODE = 50
LINE = 0x1C0


class BankHarness:
    def __init__(self):
        self.sent = []
        self.bank = DirectoryBank(
            bank_index=0,
            node=BANK_NODE,
            cpu_nodes=CPUS,
            profile=WORKLOADS["tpcw"],
            send=lambda msg, delay: self.sent.append((msg, delay)),
            seed=5,
        )

    def request(self, mtype, cpu, line=LINE):
        self.bank.handle(
            CoherenceMessage(
                mtype=mtype, src=CPUS[cpu], dst=BANK_NODE,
                address=line, requester=cpu,
            )
        )

    def take_sent(self):
        out, self.sent = self.sent, []
        return out


@pytest.fixture
def harness():
    return BankHarness()


def test_cold_gets_grants_exclusive(harness):
    harness.request(MessageType.GETS, cpu=0)
    ((msg, delay),) = harness.take_sent()
    assert msg.mtype is MessageType.DATA_E
    assert msg.dst == CPUS[0]
    assert delay == BANK_LATENCY + MEMORY_LATENCY  # cold L2 -> DRAM fill
    entry = harness.bank.entries[LINE]
    assert entry.state is DirState.EXCLUSIVE and entry.owner == 0


def test_warm_gets_pays_only_bank_latency(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETM, cpu=0)  # owner upgrade, line warm
    ((msg, delay),) = harness.take_sent()
    assert delay == BANK_LATENCY


def test_second_reader_triggers_recall_then_shares(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=1)
    ((inv, _),) = harness.take_sent()
    assert inv.mtype is MessageType.INV and inv.dst == CPUS[0]
    assert harness.bank.entries[LINE].busy
    # Owner responds clean.
    harness.request(MessageType.INV_ACK, cpu=0)
    ((data, _),) = harness.take_sent()
    assert data.mtype is MessageType.DATA_S and data.dst == CPUS[1]
    entry = harness.bank.entries[LINE]
    assert entry.state is DirState.SHARED and entry.sharers == {1}


def test_dirty_recall_resolved_by_wb_data(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=1)
    harness.take_sent()
    harness.bank.handle(
        CoherenceMessage(
            mtype=MessageType.WB_DATA, src=CPUS[0], dst=BANK_NODE,
            address=LINE, requester=0, payload_groups=[1, 4, 4, 4, 4],
        )
    )
    ((data, _),) = harness.take_sent()
    assert data.mtype is MessageType.DATA_S


def test_getm_invalidates_sharers(harness):
    # Build up two sharers.
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=1)
    harness.take_sent()
    harness.request(MessageType.INV_ACK, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=2, line=LINE)
    harness.take_sent()
    entry = harness.bank.entries[LINE]
    assert entry.state is DirState.SHARED and entry.sharers == {1, 2}
    # Writer arrives.
    harness.request(MessageType.GETM, cpu=0)
    sent = harness.take_sent()
    invs = [m for m, _ in sent if m.mtype is MessageType.INV]
    datas = [m for m, _ in sent if m.mtype is MessageType.DATA_E]
    assert {m.dst for m in invs} == {CPUS[1], CPUS[2]}
    assert len(datas) == 1 and datas[0].dst == CPUS[0]
    assert entry.state is DirState.EXCLUSIVE and entry.owner == 0


def test_getm_does_not_invalidate_requester(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=1)
    harness.take_sent()
    harness.request(MessageType.INV_ACK, cpu=0)
    harness.take_sent()
    # CPU 1 is the sole sharer and now writes.
    harness.request(MessageType.GETM, cpu=1)
    sent = harness.take_sent()
    assert all(m.dst != CPUS[1] or m.mtype is MessageType.DATA_E for m, _ in sent)


def test_upgrade_from_sharer_granted_with_acks(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=1)
    harness.take_sent()
    harness.request(MessageType.INV_ACK, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    # Sharers {0, 1}; CPU 0 upgrades.
    harness.request(MessageType.UPGRADE, cpu=0)
    sent = harness.take_sent()
    kinds = sorted(m.mtype.value for m, _ in sent)
    assert kinds == ["Inv", "UpgradeAck"]
    entry = harness.bank.entries[LINE]
    assert entry.state is DirState.EXCLUSIVE and entry.owner == 0


def test_upgrade_from_non_sharer_becomes_getm(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.UPGRADE, cpu=1)  # not a sharer: EM by 0
    sent = harness.take_sent()
    # Falls back to GetM: recall of owner 0 first.
    assert sent[0][0].mtype is MessageType.INV
    harness.request(MessageType.INV_ACK, cpu=0)
    ((data, _),) = harness.take_sent()
    assert data.mtype is MessageType.DATA_E and data.dst == CPUS[1]


def test_requests_queue_while_busy(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=1)  # recall in flight -> busy
    harness.take_sent()
    harness.request(MessageType.GETS, cpu=2)  # must queue, no new sends
    assert harness.take_sent() == []
    # Both readers wait on the recall (the recall trigger queues too).
    assert len(harness.bank.entries[LINE].pending) == 2
    harness.request(MessageType.INV_ACK, cpu=0)
    sent = harness.take_sent()
    # Both pending readers served shared data.
    assert sorted(m.dst for m, _ in sent) == sorted([CPUS[1], CPUS[2]])
    assert harness.bank.entries[LINE].sharers == {1, 2}


def test_voluntary_writeback_acknowledged(harness):
    harness.request(MessageType.GETS, cpu=0)
    harness.take_sent()
    harness.bank.handle(
        CoherenceMessage(
            mtype=MessageType.WB_DATA, src=CPUS[0], dst=BANK_NODE,
            address=LINE, requester=0, payload_groups=[1, 4, 4, 4, 4],
        )
    )
    ((ack, _),) = harness.take_sent()
    assert ack.mtype is MessageType.WB_ACK and ack.dst == CPUS[0]
    assert LINE not in harness.bank.entries  # entry garbage collected


def test_data_payload_attached_to_responses(harness):
    harness.request(MessageType.GETS, cpu=0)
    ((msg, _),) = harness.take_sent()
    assert msg.payload_groups is not None
    assert len(msg.payload_groups) == 5
    assert msg.payload_groups[0] == 1  # header flit


def test_invariants_hold_after_traffic(harness):
    for cpu in range(4):
        harness.request(MessageType.GETS, cpu=cpu, line=LINE + 64 * cpu)
    harness.take_sent()
    harness.bank.check_invariants()


def test_unexpected_message_rejected(harness):
    with pytest.raises(ValueError):
        harness.bank.handle(
            CoherenceMessage(
                mtype=MessageType.DATA_S, src=CPUS[0], dst=BANK_NODE,
                address=LINE, requester=0,
            )
        )
