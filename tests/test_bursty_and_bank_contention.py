"""Bursty-traffic model and L2 bank-port contention tests."""

import pytest

from repro.cache.directory import BANK_LATENCY, DirectoryBank
from repro.cache.hierarchy import generate_trace
from repro.cache.messages import CoherenceMessage, MessageType
from repro.core.arch import make_2db
from repro.noc.network import Network
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.synthetic import (
    BurstyUniformRandomTraffic,
    UniformRandomTraffic,
)
from repro.traffic.workloads import WORKLOADS


class TestBurstyTraffic:
    def _collect(self, traffic, cycles):
        packets = []
        for cycle in range(cycles):
            packets.extend(traffic.packets_for_cycle(cycle))
        return packets

    def test_long_run_rate_matches_mean(self):
        rate = 0.15
        traffic = BurstyUniformRandomTraffic(
            num_nodes=36, flit_rate=rate, burst_length=40, duty_cycle=0.25,
            seed=5,
        )
        packets = self._collect(traffic, 30000)
        flits = sum(p.size_flits for p in packets)
        assert flits / (36 * 30000) == pytest.approx(rate, rel=0.12)

    def test_bursts_are_clustered(self):
        """Per-window injection counts vary far more than Poisson."""
        traffic = BurstyUniformRandomTraffic(
            num_nodes=36, flit_rate=0.1, burst_length=100, duty_cycle=0.2,
            seed=5,
        )
        window = 100
        counts = []
        for start in range(0, 20000, window):
            n = sum(
                len(list(traffic.packets_for_cycle(c)))
                for c in range(start, start + window)
            )
            counts.append(n)
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        assert var > 2 * mean  # heavily over-dispersed vs Poisson

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyUniformRandomTraffic(36, 0.1, burst_length=0)
        with pytest.raises(ValueError):
            BurstyUniformRandomTraffic(36, 0.1, duty_cycle=0.0)

    def test_bursty_inflates_tail_latency(self):
        """Same mean load: bursts push p99 well above the smooth case."""
        def run(traffic):
            network = Network(Mesh2D(6, 6, pitch_mm=1.0))
            sim = Simulator(network, traffic, warmup_cycles=500,
                            measure_cycles=4000, drain_cycles=30000)
            return sim.run()

        smooth = run(UniformRandomTraffic(36, 0.15, seed=9))
        bursty = run(BurstyUniformRandomTraffic(
            36, 0.15, burst_length=80, duty_cycle=0.2, seed=9,
        ))
        assert bursty.latency_p99 > smooth.latency_p99 * 1.3
        assert bursty.avg_latency > smooth.avg_latency


class TestBankContention:
    def _bank(self):
        sent = []
        bank = DirectoryBank(
            bank_index=0, node=50, cpu_nodes=[100, 101],
            profile=WORKLOADS["tpcw"],
            send=lambda msg, delay: sent.append((msg, delay)),
            seed=3,
        )
        return bank, sent

    def test_no_clock_no_contention(self):
        bank, sent = self._bank()
        for cpu, line in ((0, 0x40), (1, 0x80)):
            bank.handle(CoherenceMessage(
                mtype=MessageType.GETS, src=100 + cpu, dst=50,
                address=line, requester=cpu,
            ))
        delays = [d for _, d in sent]
        assert all(d == delays[0] for d in delays)

    def test_simultaneous_requests_queue_on_the_port(self):
        bank, sent = self._bank()
        now = {"t": 100}
        bank.clock = lambda: now["t"]
        # Warm the array so DRAM latency doesn't obscure the port wait.
        bank.handle(CoherenceMessage(mtype=MessageType.GETS, src=100, dst=50,
                                     address=0x40, requester=0))
        bank.handle(CoherenceMessage(mtype=MessageType.GETS, src=100, dst=50,
                                     address=0x80, requester=0))
        sent.clear()
        bank.port_wait_cycles = 0
        now["t"] = 1000
        bank.handle(CoherenceMessage(mtype=MessageType.GETM, src=100, dst=50,
                                     address=0x40, requester=0))
        # Same owner upgrades its other line: no recall, pure port queueing.
        bank.handle(CoherenceMessage(mtype=MessageType.GETM, src=100, dst=50,
                                     address=0x80, requester=0))
        (first, d1), (second, d2) = sent
        assert d1 == BANK_LATENCY
        assert d2 == 2 * BANK_LATENCY  # waited for the port
        assert bank.port_wait_cycles == BANK_LATENCY

    def test_port_frees_over_time(self):
        bank, sent = self._bank()
        now = {"t": 100}
        bank.clock = lambda: now["t"]
        bank.handle(CoherenceMessage(mtype=MessageType.GETS, src=100, dst=50,
                                     address=0x40, requester=0))
        now["t"] = 100 + 10 * BANK_LATENCY
        sent.clear()
        bank.handle(CoherenceMessage(mtype=MessageType.GETM, src=100, dst=50,
                                     address=0x40, requester=0))
        ((_, delay),) = sent
        assert delay == BANK_LATENCY  # no residual queueing

    def test_hierarchy_reports_port_waits_under_load(self):
        """A hot shared region concentrates requests on few banks, so
        some port queueing must appear in a full run."""
        records, _ = generate_trace(
            make_2db(), WORKLOADS["barnes"], cycles=30000, seed=4
        )
        del records
        # Rebuild to inspect the banks (generate_trace hides the system).
        from repro.cache.hierarchy import CmpSystem

        system = CmpSystem(make_2db(), WORKLOADS["barnes"], seed=4)
        system.set_issue_horizon(20000)
        while system.pending_events() and system.now < 30000:
            nxt = system._events[0][0]
            system.advance_to(nxt)
            for _, msg in system.drain_outbox(nxt):
                system.schedule(system.now + 10, lambda m=msg: system.dispatch(m))
        total_waits = sum(b.port_wait_cycles for b in system.banks)
        assert total_waits >= 0  # contention is workload dependent
        assert any(b._port_free_at > 0 for b in system.banks)