"""JSON export and parallel-sweep tests."""

import json

import pytest

from repro.core.arch import Architecture, make_2db
from repro.experiments.config import ExperimentSettings
from repro.experiments.export import (
    export_json,
    point_to_dict,
    sweep_to_dict,
    workload_matrix_to_dict,
)
from repro.experiments.parallel import SweepPointError, parallel_sweep
from repro.experiments.runner import run_uniform_point


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=800,
        drain_cycles=4000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=4000,
        workloads=("tpcw",),
        seed=17,
    )


@pytest.fixture(scope="module")
def point(settings):
    return run_uniform_point(make_2db(), 0.1, settings)


class TestExport:
    def test_point_dict_fields(self, point):
        data = point_to_dict(point)
        assert data["arch"] == "2DB"
        assert data["avg_latency_cycles"] > 0
        assert data["power_w"]["total"] == pytest.approx(point.total_power_w)
        assert set(data["power_w"]["breakdown"]) == {
            "buffer", "crossbar", "link", "arbitration", "control",
        }

    def test_point_dict_json_serialisable(self, point):
        json.dumps(point_to_dict(point))

    def test_sweep_to_dict(self, point):
        sweep = {"2DB": [(0.1, point)]}
        data = sweep_to_dict(sweep)
        assert data["2DB"][0]["rate"] == 0.1

    def test_workload_matrix(self, point):
        data = workload_matrix_to_dict({"tpcw": {"2DB": point}})
        assert data["tpcw"]["2DB"]["arch"] == "2DB"

    def test_export_json_roundtrip(self, tmp_path, point):
        path = export_json(
            {"sweep": sweep_to_dict({"2DB": [(0.1, point)]})},
            tmp_path / "out" / "run.json",
        )
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["sweep"]["2DB"][0]["arch"] == "2DB"

    def test_export_json_handles_dataclasses_and_tuples(self, tmp_path):
        from repro.timing.delay import stage_delay_report

        report = stage_delay_report("x", 5, 128, 4, 1.58)
        path = export_json({"t3": [report], "pair": (1, 2)},
                           tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["t3"][0]["xbar_ps"] == pytest.approx(142.86, rel=1e-3)
        assert loaded["pair"] == [1, 2]


class TestParallelSweep:
    def test_matches_serial_results(self, settings):
        serial = run_uniform_point(make_2db(), 0.1, settings)
        sweep = parallel_sweep(
            [Architecture.BASELINE_2D], [0.1], settings, processes=2
        )
        (rate, point), = sweep["2DB"]
        assert rate == 0.1
        assert point.avg_latency == serial.avg_latency  # determinism holds

    def test_multiple_archs_and_rates(self, settings):
        sweep = parallel_sweep(
            [Architecture.BASELINE_2D, Architecture.MIRA_3DM],
            [0.05, 0.1],
            settings,
            processes=2,
        )
        assert set(sweep) == {"2DB", "3DM"}
        for series in sweep.values():
            assert [r for r, _ in series] == [0.05, 0.1]

    def test_single_process_fallback(self, settings):
        sweep = parallel_sweep(
            [Architecture.MIRA_3DM_E], [0.1], settings, processes=1
        )
        assert "3DM-E" in sweep

    def test_validation(self, settings):
        with pytest.raises(ValueError):
            parallel_sweep([Architecture.BASELINE_2D], [0.1], settings,
                           processes=0)
        with pytest.raises(ValueError):
            parallel_sweep([Architecture.BASELINE_2D], [0.1], settings,
                           kind="bogus", processes=1)

    def test_worker_failure_names_work_item(self, settings, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        def boom(config, rate, run_settings):
            raise RuntimeError("simulated worker crash")

        monkeypatch.setattr(parallel_mod, "run_uniform_point", boom)
        with pytest.raises(SweepPointError) as excinfo:
            parallel_sweep(
                [Architecture.BASELINE_2D], [0.1], settings, processes=1
            )
        err = excinfo.value
        assert err.item == (Architecture.BASELINE_2D, 0.1, "uniform")
        assert "arch=2DB" in str(err)
        assert "rate=0.1" in str(err)
        assert "simulated worker crash" in str(err)

    def test_sweep_point_error_survives_pickle(self):
        import pickle

        err = SweepPointError(
            (Architecture.MIRA_3DM, 0.2, "nuca"), "ValueError: boom"
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SweepPointError)
        assert clone.item == err.item
        assert clone.cause == err.cause
        assert str(clone) == str(err)

    def test_spawn_fallback_when_fork_unavailable(self, settings, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        calls = []

        class FakePool:
            def __init__(self, processes):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, items):
                return [fn(item) for item in items]

        class FakeContext:
            def Pool(self, processes):
                return FakePool(processes)

        def fake_get_context(method):
            calls.append(method)
            if method == "fork":
                raise ValueError("cannot find context for 'fork'")
            return FakeContext()

        monkeypatch.setattr(parallel_mod, "get_context", fake_get_context)
        sweep = parallel_sweep(
            [Architecture.BASELINE_2D], [0.1], settings, processes=2
        )
        assert calls == ["fork", "spawn"]
        (rate, point), = sweep["2DB"]
        assert rate == 0.1
        assert point.avg_latency > 0


class TestSweepTelemetry:
    def test_telemetry_dir_writes_per_point_streams(self, settings, tmp_path):
        out_dir = tmp_path / "timelines"
        results = parallel_sweep(
            [Architecture.BASELINE_2D], [0.1], settings,
            processes=1, telemetry_dir=str(out_dir), telemetry_interval=100,
        )
        stream = out_dir / "2DB_uniform@0.1.jsonl"
        assert stream.exists()
        records = [json.loads(l) for l in stream.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "end"
        assert any(r["type"] == "sample" for r in records)
        # Telemetry must not perturb the sweep itself.
        (rate, point), = results["2DB"]
        bare = parallel_sweep(
            [Architecture.BASELINE_2D], [0.1], settings, processes=1
        )
        assert point.avg_latency == bare["2DB"][0][1].avg_latency

    def test_no_telemetry_dir_writes_nothing(self, settings, tmp_path):
        parallel_sweep(
            [Architecture.BASELINE_2D], [0.1], settings, processes=1
        )
        assert not list(tmp_path.iterdir())
