"""Short-flit detector and shutdown power-factor tests (Sec. 3.2.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.shutdown import (
    DETECTOR_OVERHEAD,
    ShortFlitDetector,
    shutdown_power_factor,
)
from repro.traffic.patterns import WORD_MASK


class TestShortFlitDetector:
    def test_short_flit_detected(self):
        detector = ShortFlitDetector(layers=4)
        assert detector.active_layers([7, 0, 0, 0]) == 1

    def test_all_ones_detected(self):
        detector = ShortFlitDetector(layers=4)
        assert detector.active_layers([7, WORD_MASK, WORD_MASK, WORD_MASK]) == 1

    def test_full_flit_all_layers(self):
        detector = ShortFlitDetector(layers=4)
        assert detector.active_layers([1, 2, 3, 4]) == 4

    def test_observed_fraction(self):
        detector = ShortFlitDetector()
        detector.active_layers([7, 0, 0, 0])
        detector.active_layers([1, 2, 3, 4])
        detector.active_layers([9, 0, 0, 0])
        assert detector.flits_seen == 3
        assert detector.short_flits == 2
        assert detector.observed_short_fraction == pytest.approx(2 / 3)

    def test_empty_detector_fraction_zero(self):
        assert ShortFlitDetector().observed_short_fraction == 0.0

    def test_clamps_to_layer_count(self):
        detector = ShortFlitDetector(layers=2)
        assert detector.active_layers([1, 2, 3, 4]) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShortFlitDetector(layers=0)


class TestShutdownPowerFactor:
    def test_no_short_flits_costs_only_overhead(self):
        assert shutdown_power_factor(0.0) == pytest.approx(1.0 + DETECTOR_OVERHEAD)

    def test_headline_50pct_four_layers(self):
        """Sec. 4.2.2: ~36% separable-power saving at 50% short flits."""
        factor = shutdown_power_factor(0.5, layers=4)
        assert 1.0 - factor == pytest.approx(0.365, abs=0.005)

    def test_25pct(self):
        factor = shutdown_power_factor(0.25, layers=4)
        assert 1.0 - factor == pytest.approx(0.1775, abs=0.005)

    def test_all_short_lower_bound(self):
        factor = shutdown_power_factor(1.0, layers=4, detector_overhead=0.0)
        assert factor == pytest.approx(0.25)

    def test_single_layer_no_saving(self):
        factor = shutdown_power_factor(0.8, layers=1, detector_overhead=0.0)
        assert factor == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            shutdown_power_factor(1.2)
        with pytest.raises(ValueError):
            shutdown_power_factor(0.5, layers=0)
        with pytest.raises(ValueError):
            shutdown_power_factor(0.5, detector_overhead=-0.1)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_factor_bounds(self, short, layers):
        factor = shutdown_power_factor(short, layers=layers)
        assert 1.0 / layers <= factor <= 1.0 + DETECTOR_OVERHEAD + 1e-12

    @given(st.integers(min_value=2, max_value=8))
    def test_property_monotone_in_short_fraction(self, layers):
        values = [
            shutdown_power_factor(s / 10, layers=layers) for s in range(11)
        ]
        assert values == sorted(values, reverse=True)
