"""Unit tests for the 2D mesh topology."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.base import LOCAL_PORT, LinkKind
from repro.topology.mesh2d import EAST, Mesh2D, NORTH, OPPOSITE, SOUTH, WEST


def test_node_count():
    mesh = Mesh2D(6, 6, pitch_mm=3.16)
    assert mesh.num_nodes == 36


def test_link_count_matches_formula():
    # Directed links: 2 * (width-1)*height + 2 * width*(height-1).
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    assert len(mesh.links) == 2 * 5 * 6 + 2 * 6 * 5


def test_coordinates_row_major():
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    assert mesh.coordinates(0) == (0, 0)
    assert mesh.coordinates(5) == (5, 0)
    assert mesh.coordinates(6) == (0, 1)
    assert mesh.coordinates(35) == (5, 5)


def test_node_at_inverts_coordinates():
    mesh = Mesh2D(4, 3, pitch_mm=1.0)
    for node in range(mesh.num_nodes):
        assert mesh.node_at(mesh.coordinates(node)) == node


def test_corner_degree():
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    assert mesh.degree(0) == 2  # corner: east + south


def test_edge_degree():
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    assert mesh.degree(1) == 3  # top edge


def test_interior_degree():
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    assert mesh.degree(7) == 4


def test_max_radix_includes_local():
    mesh = Mesh2D(6, 6, pitch_mm=1.0)
    assert mesh.max_radix() == 5


def test_port_names_start_with_local():
    mesh = Mesh2D(3, 3, pitch_mm=1.0)
    for node in mesh.iter_nodes():
        assert mesh.port_names(node)[0] == LOCAL_PORT


def test_link_ports_are_opposite():
    mesh = Mesh2D(4, 4, pitch_mm=1.0)
    for link in mesh.links:
        assert link.dst_port == OPPOSITE[link.src_port]


def test_all_links_are_normal_kind_with_pitch_length():
    mesh = Mesh2D(4, 4, pitch_mm=3.16)
    for link in mesh.links:
        assert link.kind is LinkKind.NORMAL
        assert link.length_mm == pytest.approx(3.16)
        assert link.span == 1


def test_east_link_goes_east():
    mesh = Mesh2D(4, 4, pitch_mm=1.0)
    link = mesh.out_ports[5][EAST]
    assert mesh.coordinates(link.dst) == (2, 1)


def test_neighbors_symmetric():
    mesh = Mesh2D(5, 4, pitch_mm=1.0)
    for node in mesh.iter_nodes():
        for neighbor in mesh.neighbors(node):
            assert node in mesh.neighbors(neighbor)


def test_link_between():
    mesh = Mesh2D(3, 3, pitch_mm=1.0)
    link = mesh.link_between(0, 1)
    assert link.src_port == EAST
    with pytest.raises(KeyError):
        mesh.link_between(0, 8)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        Mesh2D(0, 6, pitch_mm=1.0)
    with pytest.raises(ValueError):
        Mesh2D(6, 6, pitch_mm=0.0)


def test_coordinates_out_of_range_rejected():
    mesh = Mesh2D(3, 3, pitch_mm=1.0)
    with pytest.raises(ValueError):
        mesh.coordinates(9)
    with pytest.raises(ValueError):
        mesh.node_at((3, 0))


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
def test_property_degree_sum_equals_links(width, height):
    mesh = Mesh2D(width, height, pitch_mm=1.0)
    assert sum(mesh.degree(n) for n in mesh.iter_nodes()) == len(mesh.links)


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8))
def test_property_every_node_reachable(width, height):
    """BFS over links must reach every node (the mesh is connected)."""
    mesh = Mesh2D(width, height, pitch_mm=1.0)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for nxt in mesh.neighbors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert len(seen) == mesh.num_nodes
