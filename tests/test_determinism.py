"""Reproducibility: identical seeds must give identical results.

Determinism is what makes the committed EXPERIMENTS.md numbers
re-checkable; any hidden iteration-order dependence (sets, dict order,
unseeded RNG) would break these.
"""

import random

from repro.cache.hierarchy import generate_trace
from repro.core.arch import make_2db, make_3dme
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_nuca_point, run_uniform_point
from repro.traffic.workloads import WORKLOADS


def _settings(seed=21):
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=1000,
        drain_cycles=6000,
        uniform_rates=(0.15,),
        nuca_rates=(0.1,),
        trace_cycles=6000,
        workloads=("tpcw",),
        seed=seed,
    )


def test_uniform_simulation_deterministic():
    a = run_uniform_point(make_3dme(), 0.15, _settings())
    b = run_uniform_point(make_3dme(), 0.15, _settings())
    assert a.avg_latency == b.avg_latency
    assert a.avg_hops == b.avg_hops
    assert a.total_power_w == b.total_power_w
    assert a.sim.packets_measured == b.sim.packets_measured
    assert a.node_activity == b.node_activity


def test_uniform_simulation_seed_sensitivity():
    a = run_uniform_point(make_3dme(), 0.15, _settings(seed=21))
    b = run_uniform_point(make_3dme(), 0.15, _settings(seed=22))
    assert a.sim.packets_measured != b.sim.packets_measured or (
        a.avg_latency != b.avg_latency
    )


def test_nuca_simulation_deterministic():
    a = run_nuca_point(make_2db(), 0.1, _settings())
    b = run_nuca_point(make_2db(), 0.1, _settings())
    assert a.avg_latency == b.avg_latency
    assert a.sim.events.flit_hops == b.sim.events.flit_hops


def test_trace_generation_deterministic():
    ra, sa = generate_trace(make_2db(), WORKLOADS["tpcw"], cycles=6000, seed=5)
    rb, sb = generate_trace(make_2db(), WORKLOADS["tpcw"], cycles=6000, seed=5)
    assert ra == rb
    assert sa.messages_by_type == sb.messages_by_type


def test_workload_sampling_deterministic():
    profile = WORKLOADS["multimedia"]
    a = [profile.sample_line(random.Random(3)) for _ in range(5)]
    b = [profile.sample_line(random.Random(3)) for _ in range(5)]
    assert a == b


def test_event_counters_deterministic_across_architectures():
    """Same seed and rate: the measured event totals are stable per
    architecture (regression guard for ordering bugs)."""
    results = {}
    for _ in range(2):
        point = run_uniform_point(make_2db(), 0.15, _settings())
        results.setdefault("flits", []).append(point.sim.events.flit_hops)
        results.setdefault("va", []).append(point.sim.events.va_allocations)
    assert results["flits"][0] == results["flits"][1]
    assert results["va"][0] == results["va"][1]
