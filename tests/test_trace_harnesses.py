"""MP-trace harness structure tests (fig11c / fig12c) on minimal configs."""

import pytest

from repro.core.arch import make_2db, make_3dm
from repro.experiments.config import ExperimentSettings
from repro.experiments.latency import fig11c_trace_latency
from repro.experiments.power import fig12c_trace_power


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=1200,
        drain_cycles=8000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=8000,
        workloads=("tpcw",),
        seed=19,
    )


@pytest.fixture(scope="module")
def configs():
    return [make_2db(), make_3dm()]


@pytest.fixture(scope="module")
def latency_results(settings, configs):
    return fig11c_trace_latency(settings, configs)


@pytest.fixture(scope="module")
def power_results(settings, configs):
    return fig12c_trace_power(settings, configs)


class TestFig11cStructure:
    def test_keys(self, latency_results):
        assert set(latency_results) == {"tpcw"}
        assert set(latency_results["tpcw"]) == {"2DB", "3DM"}

    def test_3dm_faster_on_traces(self, latency_results):
        per_arch = latency_results["tpcw"]
        assert per_arch["3DM"].avg_latency < per_arch["2DB"].avg_latency

    def test_points_carry_workload_label(self, latency_results):
        for point in latency_results["tpcw"].values():
            assert point.label == "tpcw"
            assert point.sim.packets_measured > 0


class TestFig12cStructure:
    def test_shutdown_only_on_multilayer(self, power_results):
        """2DB runs without shutdown (paper's base case), 3DM with it:
        the 3DM events must carry reduced activity weights."""
        p2 = power_results["tpcw"]["2DB"]
        p3 = power_results["tpcw"]["3DM"]
        ev2, ev3 = p2.sim.events, p3.sim.events
        # Unweighted == weighted for 2DB (shutdown off)...
        assert ev2.xbar_traversals_weighted == pytest.approx(
            float(ev2.xbar_traversals)
        )
        # ...but strictly below for 3DM (short flits gated).
        assert ev3.xbar_traversals_weighted < ev3.xbar_traversals

    def test_3dm_large_power_saving(self, power_results):
        p2 = power_results["tpcw"]["2DB"]
        p3 = power_results["tpcw"]["3DM"]
        assert p3.total_power_w < 0.75 * p2.total_power_w


class TestGolden3dme:
    """Second pinned run: the express design at seed 999."""

    @pytest.fixture(scope="class")
    def run(self, settings):
        from repro.experiments.runner import run_uniform_point
        from repro.core.arch import make_3dme

        return run_uniform_point(make_3dme(), 0.2, settings, seed=999)

    def test_hops_near_theoretical(self, run):
        from repro.core.express import average_hops
        from repro.topology.express_mesh import ExpressMesh

        expected = average_hops(ExpressMesh(6, 6, pitch_mm=1.58))
        assert run.avg_hops == pytest.approx(expected, rel=0.05)

    def test_deterministic_replay(self, settings, run):
        from repro.experiments.runner import run_uniform_point
        from repro.core.arch import make_3dme

        again = run_uniform_point(make_3dme(), 0.2, settings, seed=999)
        assert again.avg_latency == run.avg_latency
        assert again.sim.events.flit_hops == run.sim.events.flit_hops
