"""Differential tests: active-set scheduling vs full router iteration.

The active-set scheduler is a pure performance optimisation — stepping
only woken routers must produce bit-identical results to stepping every
router every cycle.  These tests run each architecture under both modes
and assert every ``SimulationResult`` field (including the full
``EventCounts``) matches exactly, for open-loop uniform traffic and for
the closed-loop NUCA request/response source (whose RNG draw order is
sensitive to ejection ordering).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.arch import standard_configs
from repro.noc.simulator import Simulator
from repro.traffic.nuca import NucaUniformTraffic
from repro.traffic.synthetic import UniformRandomTraffic

CONFIGS = {config.name: config for config in standard_configs()}


def _traffic(config, kind: str, seed: int = 11):
    if kind == "uniform":
        return UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=0.1, seed=seed
        )
    return NucaUniformTraffic(
        cpu_nodes=config.cpu_nodes,
        cache_nodes=config.cache_nodes,
        request_rate=0.1,
        seed=seed,
    )


def _run(config, kind: str, active_scheduling: bool):
    network = config.build_network()
    network.active_scheduling = active_scheduling
    sim = Simulator(
        network,
        _traffic(config, kind),
        warmup_cycles=30,
        measure_cycles=200,
        drain_cycles=2500,
    )
    result = dataclasses.asdict(sim.run())
    # The profile (wall times) is the one legitimately non-deterministic
    # field; everything else must match bit for bit.
    result.pop("profile")
    return result, network


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("kind", ["uniform", "nuca"])
def test_scheduler_is_bit_identical(name, kind):
    config = CONFIGS[name]
    on, _ = _run(config, kind, active_scheduling=True)
    off, _ = _run(config, kind, active_scheduling=False)
    assert on == off


def test_scheduler_toggle_mid_run(cfg_2db):
    """The active set is a superset of busy routers at all times, so the
    flag can be flipped mid-run without losing work."""
    reference, _ = _run(cfg_2db, "uniform", active_scheduling=False)

    network = cfg_2db.build_network()
    network.active_scheduling = True
    traffic = _traffic(cfg_2db, "uniform")
    sim = Simulator(
        network, traffic, warmup_cycles=30, measure_cycles=200,
        drain_cycles=2500,
    )
    original_tick = sim._tick

    def toggling_tick(generate):
        # Flip the mode every 17 cycles while the simulation runs.
        if network.cycle % 17 == 0:
            network.active_scheduling = not network.active_scheduling
        original_tick(generate)

    sim._tick = toggling_tick
    result = dataclasses.asdict(sim.run())
    result.pop("profile")
    assert result == reference


def test_active_set_empties_after_drain(cfg_2db):
    _, network = _run(cfg_2db, "uniform", active_scheduling=True)
    # The drain stops once measured packets are delivered; unmeasured
    # background traffic may still be in flight, so run to quiescence.
    for _ in range(5000):
        if network.idle():
            break
        network.step()
    assert network.idle()
    # One extra step lets the active set converge (a router leaves the
    # set the step after it drains).
    network.step()
    assert network._active_routers == set()
    assert all(r.is_quiescent() for r in network.routers)


def test_quiescence_protocol(cfg_2db):
    """A fresh router is quiescent; receiving a flit wakes it and its
    network; draining makes it quiescent again."""
    from repro.noc.packet import data_packet

    network = cfg_2db.build_network()
    # This test hand-feeds a lone head flit straight into receive_flit,
    # outside the injection protocol whose bookkeeping the conservation
    # audit (REPRO_SANITIZE=1 runs) reconciles against.
    network.sanitizer = None
    router = network.routers[0]
    assert router.is_quiescent()
    assert network._active_routers == set()

    packet = data_packet(src=0, dst=1)
    flits = packet.make_flits(network.layer_groups)
    router.receive_flit(router.local_port, 0, flits[0], cycle=0)
    assert not router.is_quiescent()
    assert 0 in network._active_routers

    for _ in range(60):
        network.step()
    assert router.is_quiescent()
    assert 0 not in network._active_routers


def test_full_iteration_steps_every_router(cfg_2db):
    network = cfg_2db.build_network()
    network.active_scheduling = False
    assert network._step_routers(0) == len(network.routers)


def test_active_scheduling_steps_only_woken_routers(cfg_2db):
    network = cfg_2db.build_network()
    assert network._step_routers(0) == 0
    network.wake(5)
    # Node 5 holds no work, so it is stepped once and then pruned.
    assert network._step_routers(1) == 1
    assert network._step_routers(2) == 0
