"""Corner-case network behaviour: tiny topologies, backpressure, blocking."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.topology.mesh3d import Mesh3D
from repro.traffic.base import ScheduledTraffic


def _run(topology, packets, cycles=4000, **kwargs):
    network = Network(topology, **kwargs)
    sim = Simulator(network, ScheduledTraffic(packets), warmup_cycles=0,
                    measure_cycles=cycles, drain_cycles=cycles * 4)
    result = sim.run()
    return network, result


def test_two_node_network():
    packets = [ctrl_packet(0, 1, created_cycle=0),
               ctrl_packet(1, 0, created_cycle=0)]
    network, result = _run(Mesh2D(2, 1, pitch_mm=1.0), packets)
    assert result.packets_delivered == 2


def test_line_topology_long_wormhole():
    """A 5-flit worm across a 1x8 line: spans multiple routers at once."""
    packets = [data_packet(0, 7, created_cycle=0)]
    network, result = _run(Mesh2D(8, 1, pitch_mm=1.0), packets)
    assert packets[0].hops == 7
    assert network.idle()


def test_depth_one_buffers_still_work():
    """Credit-based flow control must function with single-slot buffers
    (each hop then waits for the downstream credit round trip)."""
    packets = [data_packet(0, 3, created_cycle=0)]
    network, result = _run(Mesh2D(4, 1, pitch_mm=1.0), packets,
                           buffer_depth=1)
    assert result.packets_delivered == 1
    assert network.idle()


def test_depth_one_slower_than_depth_eight():
    deep = [data_packet(0, 3, created_cycle=0)]
    _run(Mesh2D(4, 1, pitch_mm=1.0), deep, buffer_depth=8)
    shallow = [data_packet(0, 3, created_cycle=0)]
    _run(Mesh2D(4, 1, pitch_mm=1.0), shallow, buffer_depth=1)
    assert shallow[0].latency > deep[0].latency


def test_single_vc_network():
    packets = [data_packet(0, 5, created_cycle=0),
               data_packet(5, 0, created_cycle=0)]
    network, result = _run(Mesh2D(3, 2, pitch_mm=1.0), packets, num_vcs=1)
    assert result.packets_delivered == 2


def test_vc_exhaustion_serialises_packets():
    """Three packets from one source with 2 local VCs: the third waits in
    the source queue until a VC frees."""
    packets = [data_packet(0, 2, created_cycle=0) for _ in range(3)]
    network, result = _run(Mesh2D(3, 1, pitch_mm=1.0), packets, num_vcs=2)
    assert result.packets_delivered == 3
    starts = sorted(p.injected_cycle for p in packets)
    assert starts[2] > starts[0]


def test_many_packets_one_destination_all_arrive():
    packets = [
        ctrl_packet(src, 4, created_cycle=0)
        for src in range(9)
        if src != 4
    ]
    network, result = _run(Mesh2D(3, 3, pitch_mm=1.0), packets)
    assert result.packets_delivered == 8
    # Ejection is one flit per cycle: arrivals are all distinct cycles.
    arrival_cycles = [p.delivered_cycle for p in packets]
    assert len(set(arrival_cycles)) == 8


def test_head_of_line_blocking_observable():
    """A worm stalled behind a busy output delays a packet queued on the
    same input VC (wormhole's classic HOL effect)."""
    # Packet A: long worm 0 -> 2. Packet B: injected right behind on the
    # same source, to the same destination.
    a = data_packet(0, 2, created_cycle=0)
    b = ctrl_packet(0, 2, created_cycle=1)
    solo = ctrl_packet(0, 2, created_cycle=1)
    _run(Mesh2D(3, 1, pitch_mm=1.0), [a, b], num_vcs=1)
    _run(Mesh2D(3, 1, pitch_mm=1.0), [solo], num_vcs=1)
    assert b.latency > solo.latency


def test_3d_single_column():
    """Pure vertical traffic through a 1x1x4 stack."""
    mesh = Mesh3D(1, 1, 4, pitch_mm=1.0)
    packets = [ctrl_packet(0, 3, created_cycle=0)]
    network, result = _run(mesh, packets)
    assert packets[0].hops == 3
    assert network.events.link_flits["vertical"] == 3


def test_rectangular_mesh():
    packets = [ctrl_packet(0, 11, created_cycle=0)]
    _run(Mesh2D(4, 3, pitch_mm=1.0), packets)
    assert packets[0].hops == 3 + 2


def test_simultaneous_bidirectional_worms():
    """Two long worms in opposite directions over the same links."""
    a = data_packet(0, 3, created_cycle=0)
    b = data_packet(3, 0, created_cycle=0)
    network, result = _run(Mesh2D(4, 1, pitch_mm=1.0), [a, b])
    assert result.packets_delivered == 2
    assert abs(a.latency - b.latency) <= 1  # symmetric paths


def test_zero_payload_activity_weight_floor():
    """active_groups is clamped to >= 1: even 'all redundant' flits
    switch the top layer."""
    packet = data_packet(0, 1, created_cycle=0,
                         payload_groups=[0, 0, 0, 0, 0])
    network, _ = _run(Mesh2D(2, 1, pitch_mm=1.0), [packet],
                      shutdown_enabled=True)
    assert network.events.buffer_writes_weighted > 0
