"""VC-per-traffic-class tests (the paper's design decision, Sec. 3.2.4 ii)."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import PacketClass, ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.noc.tracer import PacketTracer
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic
from repro.traffic.nuca import NucaUniformTraffic


def _run(packets, cycles=2000, **net_kwargs):
    network = Network(Mesh2D(4, 2, pitch_mm=1.0), vc_by_class=True, **net_kwargs)
    sim = Simulator(network, ScheduledTraffic(packets), warmup_cycles=0,
                    measure_cycles=cycles, drain_cycles=cycles * 4)
    result = sim.run()
    return network, result


def test_both_classes_delivered():
    packets = [ctrl_packet(0, 7, created_cycle=0),
               data_packet(7, 0, created_cycle=0)]
    _, result = _run(packets)
    assert result.packets_delivered == 2


def test_out_vc_assignment_matches_class():
    """While in flight, control packets own VC 0 and data packets VC 1 on
    every output they hold."""
    network = Network(Mesh2D(4, 1, pitch_mm=1.0), vc_by_class=True)
    packets = [ctrl_packet(0, 3, created_cycle=0),
               data_packet(0, 3, created_cycle=1)]
    sim = Simulator(network, ScheduledTraffic(packets), warmup_cycles=0,
                    measure_cycles=60, drain_cycles=0)
    # Snoop ownership every cycle while stepping manually.
    seen = {0: set(), 1: set()}
    for cycle in range(60):
        sim._tick(generate=True)
        for router in network.routers:
            for port, owners in enumerate(router.out_owner):
                for vc, owner in enumerate(owners):
                    if owner is None:
                        continue
                    unit = router._vc(*owner)
                    flit = unit.buffer.front()
                    if flit is not None:
                        seen[vc].add(flit.packet.klass)
    assert seen[0] <= {PacketClass.CTRL}
    assert seen[1] <= {PacketClass.DATA}


def test_requires_two_vcs():
    with pytest.raises(ValueError):
        Network(Mesh2D(2, 1, pitch_mm=1.0), num_vcs=1, vc_by_class=True)


def test_classes_do_not_block_each_other():
    """A data worm hogging VC 1 must not delay a control packet on the
    same path (the protocol-isolation property the paper wants)."""
    # Long data packets saturating the path 0 -> 3.
    background = [data_packet(0, 3, created_cycle=c) for c in range(0, 60, 5)]
    probe = ctrl_packet(0, 3, created_cycle=30)

    _, _ = _run(background + [probe], cycles=500)
    isolated_latency = probe.latency

    solo_probe = ctrl_packet(0, 3, created_cycle=30)
    _run([solo_probe], cycles=500)
    assert isolated_latency <= solo_probe.latency * 3


def test_nuca_request_response_separation():
    """NUCA traffic (ctrl requests, data responses) runs cleanly with
    class-partitioned VCs — the paper's intended configuration."""
    network = Network(Mesh2D(6, 6, pitch_mm=1.0), vc_by_class=True)
    cpus = [13, 14, 15, 16, 19, 20, 21, 22]
    caches = [n for n in range(36) if n not in cpus]
    traffic = NucaUniformTraffic(
        cpu_nodes=cpus, cache_nodes=caches, request_rate=0.1, seed=5
    )
    sim = Simulator(network, traffic, warmup_cycles=300,
                    measure_cycles=1500, drain_cycles=15000)
    result = sim.run()
    assert not result.saturated
    assert result.avg_latency_by_class["ctrl"] > 0
    assert result.avg_latency_by_class["data"] > 0


def test_vc_by_class_latency_comparable_at_low_load():
    """Partitioning halves VC flexibility; at NUCA-like loads the cost
    must be small (which is why the paper could afford the design)."""
    def run(vc_by_class):
        network = Network(Mesh2D(6, 6, pitch_mm=1.0), vc_by_class=vc_by_class)
        from repro.traffic.synthetic import UniformRandomTraffic

        sim = Simulator(
            network,
            UniformRandomTraffic(num_nodes=36, flit_rate=0.1, seed=7),
            warmup_cycles=300, measure_cycles=1500, drain_cycles=10000,
        )
        return sim.run().avg_latency

    partitioned = run(True)
    pooled = run(False)
    assert partitioned <= pooled * 1.15
