"""Area-model tests: Table 1 reproduction tolerances."""

import pytest

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.power.area import (
    PAPER_TABLE1,
    buffer_layer_area_um2,
    rc_area_um2,
    router_area,
    sa1_area_um2,
    va1_area_um2,
    xbar_layer_area_um2,
)

EXACT_MODULES = ("RC", "SA1", "VA1", "Crossbar", "Buffer")
FITTED_MODULES = ("SA2", "VA2")


@pytest.fixture(params=[make_2db, make_3db, make_3dm, make_3dme])
def config(request):
    return request.param()


def test_exact_modules_match_table1(config):
    """Crossbar/buffer/RC/VA1/SA1 reproduce Table 1 to <0.1%."""
    area = router_area(config)
    paper = PAPER_TABLE1[config.name]
    for module in EXACT_MODULES:
        assert area.per_layer[module] == pytest.approx(paper[module], rel=1e-3), module


def test_fitted_arbiters_within_13pct(config):
    """The least-squares matrix-arbiter model lands within ~13%."""
    area = router_area(config)
    paper = PAPER_TABLE1[config.name]
    for module in FITTED_MODULES:
        assert area.per_layer[module] == pytest.approx(paper[module], rel=0.13), module


def test_total_area_within_1pct(config):
    area = router_area(config)
    assert area.total == pytest.approx(PAPER_TABLE1[config.name]["Total"], rel=0.01)


def test_3dm_crossbar_sixteen_times_smaller_per_layer():
    """(W/4)^2 scaling: per-layer crossbar is 1/16 of 2DB's (Fig. 5)."""
    xbar_2db = router_area(make_2db()).per_layer["Crossbar"]
    xbar_3dm = router_area(make_3dm()).per_layer["Crossbar"]
    assert xbar_2db / xbar_3dm == pytest.approx(16.0)


def test_3dm_total_crossbar_four_times_smaller():
    """Summed over 4 layers the crossbar is still 4x smaller (Sec. 3.2.2)."""
    cfg = make_3dm()
    total_3dm = 4 * router_area(cfg).per_layer["Crossbar"]
    total_2db = router_area(make_2db()).per_layer["Crossbar"]
    assert total_2db / total_3dm == pytest.approx(4.0)


def test_3dme_total_relative_sizes():
    """Sec. 3.3: 3DM-E is ~2.4x the 3DM router and ~0.7x the 2DB one
    in a single layer... measured on totals here."""
    total_3dme = router_area(make_3dme()).total
    total_3dm = router_area(make_3dm()).total
    total_2db = router_area(make_2db()).total
    assert total_3dme / total_3dm == pytest.approx(2.45, abs=0.15)
    assert total_3dme / total_2db < 1.6


def test_via_counts():
    assert router_area(make_2db()).total_vias == 0
    assert router_area(make_3db()).total_vias == 128   # W vertical-link TSVs
    assert router_area(make_3dm()).total_vias == 36    # 2P + PV + Vk
    assert router_area(make_3dme()).total_vias == 52


def test_via_overhead_below_two_percent(config):
    """Table 1 footnote: via overhead per layer stays under ~2%."""
    assert router_area(config).via_overhead_fraction < 0.02


def test_total_mm2_conversion():
    area = router_area(make_2db())
    assert area.total_mm2 == pytest.approx(area.total / 1e6)


def test_component_formulas_linear_in_ports():
    assert rc_area_um2(10) == pytest.approx(2 * rc_area_um2(5))
    assert va1_area_um2(10, 2) == pytest.approx(2 * va1_area_um2(5, 2))
    assert sa1_area_um2(5, 4) == pytest.approx(2 * sa1_area_um2(5, 2))


def test_buffer_area_scales_with_depth():
    shallow = buffer_layer_area_um2(5, 2, 4, 128, 1)
    deep = buffer_layer_area_um2(5, 2, 8, 128, 1)
    assert deep == pytest.approx(2 * shallow)


def test_xbar_area_quadratic_in_ports():
    small = xbar_layer_area_um2(5, 128, 1)
    big = xbar_layer_area_um2(10, 128, 1)
    assert big == pytest.approx(4 * small)


def test_area_ordering_matches_paper():
    """3DM < 2DB < 3DM-E < 3DB in total router area."""
    totals = {
        name: router_area(make()).total
        for name, make in [
            ("2DB", make_2db), ("3DB", make_3db),
            ("3DM", make_3dm), ("3DM-E", make_3dme),
        ]
    }
    assert totals["3DM"] < totals["2DB"] < totals["3DM-E"] < totals["3DB"]
