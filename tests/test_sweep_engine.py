"""Crash-injection and resume tests for the v2 sweep engine.

Workers here misbehave on purpose — raise, hang, die with ``os._exit``
— to prove the engine's guarantees: bounded retry with backoff, timeout
termination, structured failure reports that never sink sibling points,
deterministic result ordering regardless of completion order, and
kill-and-resume runs that serve every finished point from cache.

Fault injection is cross-process: attempt counters live in marker files
under a tmp dir (worker processes share no memory with the test), and
the injected worker functions are module-level so they survive both
fork and spawn start methods.
"""

from __future__ import annotations

import functools
import os
import time
from pathlib import Path

import pytest

from repro.core.arch import Architecture, standard_configs
from repro.experiments.config import ExperimentSettings
from repro.experiments.export import point_to_dict, sweep_to_dict
from repro.experiments.parallel import SweepPointError, parallel_sweep
from repro.experiments.runner import run_point_spec
from repro.experiments.store import RunJournal
from repro.experiments.sweep import run_sweep, specs_for_grid


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=100,
        measure_cycles=400,
        drain_cycles=2000,
        uniform_rates=(0.05, 0.1),
        nuca_rates=(0.05,),
        trace_cycles=2000,
        workloads=("tpcw",),
        seed=13,
    )


def _marker(state_dir: str, spec) -> Path:
    stem = spec.describe().replace(" ", "_").replace("/", "_")
    return Path(state_dir) / f"{stem}.attempts"


def _bump_attempts(state_dir: str, spec) -> int:
    """Count this attempt in a marker file; returns prior attempt count."""
    marker = _marker(state_dir, spec)
    count = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(count + 1))
    return count


def _flaky_worker(spec, settings, state_dir="", fail_attempts=0):
    """Raises on its first *fail_attempts* attempts, then succeeds."""
    if _bump_attempts(state_dir, spec) < fail_attempts:
        raise ValueError(f"injected failure for {spec.describe()}")
    return run_point_spec(spec, settings)


def _poison_rate_worker(spec, settings, poison_rate=0.0):
    """Always fails for one rate; siblings run normally."""
    if spec.rate == poison_rate:
        raise RuntimeError(f"dead point {spec.describe()}")
    return run_point_spec(spec, settings)


def _hang_first_worker(spec, settings, state_dir=""):
    """Hangs (far beyond any test timeout) on attempt 1, then succeeds."""
    if _bump_attempts(state_dir, spec) == 0:
        time.sleep(300)
    return run_point_spec(spec, settings)


def _exit_worker(spec, settings):
    """Dies without reporting, like a segfault or OOM kill."""
    os._exit(5)


def _stagger_worker(spec, settings):
    """Completes points in reverse spec order (low rates finish last)."""
    time.sleep(0.3 - spec.rate)
    return run_point_spec(spec, settings)


class TestRetry:
    def test_flaky_worker_retried_with_backoff_until_success(
        self, settings, tmp_path
    ):
        specs = specs_for_grid([Architecture.BASELINE_2D], [0.05, 0.1])
        start = time.monotonic()
        outcome = run_sweep(
            specs, settings, processes=2, retries=2, backoff_s=0.05,
            worker_fn=functools.partial(
                _flaky_worker, state_dir=str(tmp_path), fail_attempts=2
            ),
        )
        elapsed = time.monotonic() - start
        assert outcome.ok
        assert [r for r, _ in outcome.series["2DB"]] == [0.05, 0.1]
        assert outcome.stats.executed == 2
        assert outcome.stats.errors == 4  # 2 failed attempts per point
        assert outcome.stats.retried_attempts == 4
        # Backoff happened: 0.05 + 0.1 per point, in parallel >= 0.15s.
        assert elapsed >= 0.15
        for spec in specs:
            assert int(_marker(str(tmp_path), spec).read_text()) == 3

    def test_exhausted_retries_land_in_failure_report(self, settings, tmp_path):
        specs = specs_for_grid(
            [Architecture.BASELINE_2D, Architecture.MIRA_3DM], [0.05, 0.1]
        )
        outcome = run_sweep(
            specs, settings, processes=2, retries=1, backoff_s=0.01,
            worker_fn=functools.partial(_poison_rate_worker, poison_rate=0.1),
        )
        assert not outcome.ok
        # Sibling points all survive.
        assert [r for r, _ in outcome.series["2DB"]] == [0.05]
        assert [r for r, _ in outcome.series["3DM"]] == [0.05]
        assert len(outcome.failures) == 2
        for failure in outcome.failures:
            assert failure.rate == 0.1
            assert failure.attempts == 2  # 1 + 1 retry
            assert failure.failure_kind == "error"
            assert "dead point" in failure.error
            assert "RuntimeError" in failure.traceback
        # Deterministic failure ordering: sorted by (arch, kind, rate).
        assert [f.arch for f in outcome.failures] == ["2DB", "3DM"]
        assert outcome.stats.failed_points == 2

    def test_timeout_terminates_hung_worker_then_retry_succeeds(
        self, settings, tmp_path
    ):
        specs = specs_for_grid([Architecture.BASELINE_2D], [0.05])
        outcome = run_sweep(
            specs, settings, processes=1, retries=1, backoff_s=0.01,
            point_timeout=1.0,
            worker_fn=functools.partial(
                _hang_first_worker, state_dir=str(tmp_path)
            ),
        )
        assert outcome.ok
        assert outcome.stats.timeouts == 1
        assert outcome.stats.executed == 1
        assert outcome.stats.retried_attempts == 1

    def test_crashed_worker_process_lands_in_report(self, settings):
        specs = specs_for_grid([Architecture.BASELINE_2D], [0.05])
        outcome = run_sweep(
            specs, settings, processes=1, retries=1, backoff_s=0.01,
            worker_fn=_exit_worker,
        )
        assert not outcome.ok
        (failure,) = outcome.failures
        assert failure.failure_kind == "crash"
        assert "exit code 5" in failure.error
        assert failure.attempts == 2
        assert outcome.stats.crashes == 2


class TestRaiseMode:
    def test_inline_raise_preserves_cause_through_retry_wrapping(
        self, settings, tmp_path
    ):
        """The satellite fix: ``raise SweepPointError ... from`` keeps the
        worker's exception on ``__cause__`` even after retries."""
        specs = specs_for_grid([Architecture.BASELINE_2D], [0.05])
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(
                specs, settings, processes=0, retries=2, backoff_s=0.0,
                failure_mode="raise",
                worker_fn=functools.partial(
                    _flaky_worker, state_dir=str(tmp_path), fail_attempts=99
                ),
            )
        err = excinfo.value
        assert isinstance(err.__cause__, ValueError)
        assert "injected failure" in str(err.__cause__)
        assert err.attempts == 3
        assert "after 3 attempts" in str(err)
        assert err.item == (Architecture.BASELINE_2D, 0.05, "uniform")

    def test_pooled_raise_names_the_point(self, settings):
        specs = specs_for_grid([Architecture.MIRA_3DM], [0.05, 0.1])
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(
                specs, settings, processes=2, failure_mode="raise",
                worker_fn=functools.partial(_poison_rate_worker, poison_rate=0.05),
            )
        assert excinfo.value.item == (Architecture.MIRA_3DM, 0.05, "uniform")
        assert "dead point" in excinfo.value.cause


class TestDeterministicOrdering:
    def test_series_order_independent_of_completion_order(self, settings):
        """Workers complete in reverse; the series must not care."""
        archs = [Architecture.MIRA_3DM, Architecture.BASELINE_2D]
        specs = specs_for_grid(archs, [0.05, 0.1])
        staggered = run_sweep(
            specs, settings, processes=4, worker_fn=_stagger_worker
        )
        inline = run_sweep(specs, settings, processes=0)
        assert list(staggered.series) == ["3DM", "2DB"]  # spec order
        assert list(staggered.series) == list(inline.series)
        for arch in staggered.series:
            assert [r for r, _ in staggered.series[arch]] == [0.05, 0.1]
        assert sweep_to_dict(staggered.series) == sweep_to_dict(inline.series)


class TestCacheAndResume:
    def test_interrupted_sweep_resumes_bit_identical(self, settings, tmp_path):
        """Acceptance: interrupt + ``--resume`` == uninterrupted run, with
        every finished point served from cache."""
        specs = specs_for_grid(
            [Architecture.BASELINE_2D, Architecture.MIRA_3DM], [0.05, 0.1]
        )
        cache = str(tmp_path / "cache")
        journal = str(tmp_path / "run.jsonl")

        # "Interrupted" run: only the first half of the grid completed.
        partial = run_sweep(
            specs[:2], settings, processes=2,
            cache_dir=cache, journal_path=journal,
        )
        assert partial.stats.executed == 2

        resumed = run_sweep(
            specs, settings, processes=2,
            cache_dir=cache, journal_path=journal, resume=True,
        )
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.executed == 2  # only the missing half ran

        uninterrupted = run_sweep(specs, settings, processes=2)
        assert sweep_to_dict(resumed.series) == sweep_to_dict(
            uninterrupted.series
        )

        # The journal recorded both runs, cache-hit points marked so.
        records = RunJournal.load(journal)
        assert [r["type"] for r in records].count("run-start") == 2
        done = [r for r in records if r.get("status") == "done"]
        assert len(done) == 6  # 2 + (2 cached + 2 fresh)
        assert sum(r["cached"] for r in done) == 2

        # A third pass is 100% cache hits, zero recomputation.
        replay = run_sweep(
            specs, settings, processes=2,
            cache_dir=cache, journal_path=journal, resume=True,
        )
        assert replay.stats.cache_hits == 4
        assert replay.stats.executed == 0
        assert sweep_to_dict(replay.series) == sweep_to_dict(
            uninterrupted.series
        )

    def test_cache_on_vs_off_identical_across_all_six_architectures(
        self, settings, tmp_path
    ):
        """Acceptance: cache enabled vs disabled yields identical stats
        for every point across all six architectures."""
        specs = [
            spec
            for config in standard_configs()
            for spec in specs_for_grid([config.arch], [0.1])
        ]
        bare = run_sweep(specs, settings, processes=0)
        filled = run_sweep(
            specs, settings, processes=0, cache_dir=str(tmp_path / "cache")
        )
        served = run_sweep(
            specs, settings, processes=0, cache_dir=str(tmp_path / "cache")
        )
        assert filled.stats.executed == 6 and filled.stats.cache_hits == 0
        assert served.stats.executed == 0 and served.stats.cache_hits == 6
        assert set(bare.series) == {
            "2DB", "3DB", "3DM", "3DM(NC)", "3DM-E", "3DM-E(NC)"
        }
        for arch, series in bare.series.items():
            for (rate, direct), (_, cached), (_, replayed) in zip(
                series, filled.series[arch], served.series[arch]
            ):
                assert point_to_dict(direct) == point_to_dict(cached), arch
                assert point_to_dict(direct) == point_to_dict(replayed), arch

    def test_resume_requires_cache_dir(self, settings):
        with pytest.raises(ValueError):
            run_sweep(
                specs_for_grid([Architecture.BASELINE_2D], [0.05]),
                settings, resume=True,
            )

    def test_inline_timeout_rejected(self, settings):
        with pytest.raises(ValueError):
            run_sweep(
                specs_for_grid([Architecture.BASELINE_2D], [0.05]),
                settings, processes=0, point_timeout=1.0,
            )


class TestParallelSweepDelegation:
    def test_cache_kwargs_delegate_and_match_legacy(self, settings, tmp_path):
        legacy = parallel_sweep(
            [Architecture.BASELINE_2D], [0.05, 0.1], settings, processes=1
        )
        cached = parallel_sweep(
            [Architecture.BASELINE_2D], [0.05, 0.1], settings, processes=1,
            cache_dir=str(tmp_path / "cache"),
            journal_path=str(tmp_path / "run.jsonl"),
        )
        assert sweep_to_dict(legacy) == sweep_to_dict(cached)
        # Second run: pure cache replay, still identical.
        replay = parallel_sweep(
            [Architecture.BASELINE_2D], [0.05, 0.1], settings, processes=1,
            cache_dir=str(tmp_path / "cache"), resume=True,
        )
        assert sweep_to_dict(legacy) == sweep_to_dict(replay)
