"""Timing-model tests: the Tables 2/3 reproduction must be near-exact."""

import pytest

from repro.experiments.area_tables import PAPER_TABLE3, table2_parameters, table3_delays
from repro.timing.delay import (
    can_combine_st_lt,
    crossbar_delay_ps,
    crossbar_side_um,
    link_delay_ps,
    stage_delay_report,
)
from repro.timing.wires import (
    repeated_wire_delay_ps,
    unbuffered_crossbar_delay_ps,
)


class TestWirePrimitives:
    def test_repeated_wire_linear(self):
        assert repeated_wire_delay_ps(2.0) == pytest.approx(
            2 * repeated_wire_delay_ps(1.0)
        )

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            repeated_wire_delay_ps(-1.0)
        with pytest.raises(ValueError):
            unbuffered_crossbar_delay_ps(-1.0)

    def test_crossbar_delay_superlinear(self):
        """Unrepeated RC wire: doubling length more than doubles the
        wire-dependent part."""
        base = unbuffered_crossbar_delay_ps(0.0)
        d1 = unbuffered_crossbar_delay_ps(300.0) - base
        d2 = unbuffered_crossbar_delay_ps(600.0) - base
        assert d2 > 2 * d1


class TestCrossbarGeometry:
    def test_2db_side(self):
        assert crossbar_side_um(5, 128, 1) == pytest.approx(480.0)

    def test_3dm_side_quartered(self):
        """Sec. 3.4.1: crossbar length shortened by 1/4."""
        assert crossbar_side_um(5, 128, 4) == pytest.approx(120.0)

    def test_3dme_side(self):
        assert crossbar_side_um(9, 128, 4) == pytest.approx(216.0)

    def test_indivisible_width_rejected(self):
        with pytest.raises(ValueError):
            crossbar_side_um(5, 100, 3)


class TestTable3:
    """The fitted delay model must reproduce the paper's Table 3."""

    @pytest.mark.parametrize(
        "name,ports,layers,link_mm",
        [("2DB", 5, 1, 3.16), ("3DM", 5, 4, 1.58), ("3DM-E", 9, 4, 3.16)],
    )
    def test_xbar_delay_matches_paper(self, name, ports, layers, link_mm):
        delay = crossbar_delay_ps(ports, 128, layers)
        assert delay == pytest.approx(PAPER_TABLE3[name]["xbar_ps"], rel=0.001)

    @pytest.mark.parametrize(
        "name,link_mm", [("2DB", 3.16), ("3DM", 1.58), ("3DM-E", 3.16)]
    )
    def test_link_delay_matches_paper(self, name, link_mm):
        assert link_delay_ps(link_mm) == pytest.approx(
            PAPER_TABLE3[name]["link_ps"], rel=0.001
        )

    def test_combination_verdicts_match_paper(self):
        for report in table3_delays():
            assert report.can_combine == PAPER_TABLE3[report.name]["combined"]

    def test_2db_combined_exceeds_budget(self):
        report = stage_delay_report("2DB", 5, 128, 1, 3.16)
        assert report.combined_ps == pytest.approx(688.05, rel=0.001)
        assert report.combined_ps > report.budget_ps

    def test_3dm_combined_fits(self):
        report = stage_delay_report("3DM", 5, 128, 4, 1.58)
        assert report.combined_ps == pytest.approx(297.60, rel=0.001)

    def test_3dme_barely_fits(self):
        """3DM-E lands at 492 ps against the 500 ps budget."""
        report = stage_delay_report("3DM-E", 9, 128, 4, 3.16)
        assert report.combined_ps == pytest.approx(492.33, rel=0.001)
        assert 0 < report.budget_ps - report.combined_ps < 10


class TestCanCombine:
    def test_tighter_budget_flips_3dme(self):
        assert can_combine_st_lt(9, 128, 4, 3.16, budget_ps=500.0)
        assert not can_combine_st_lt(9, 128, 4, 3.16, budget_ps=490.0)

    def test_table2_parameters_exposed(self):
        params = table2_parameters()
        assert params["inverter_delay_ps"] == pytest.approx(9.81)
        assert params["reference_wire_ps_per_mm"] == pytest.approx(254.0)
        assert params["link_length_2db_mm"] == pytest.approx(3.16)
        assert params["link_length_3dm_mm"] == pytest.approx(1.58)
