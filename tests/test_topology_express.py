"""Unit tests for the express mesh (3DM-E topology, Fig. 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.base import LinkKind
from repro.topology.express_mesh import (
    EXPRESS_EAST,
    EXPRESS_NORTH,
    EXPRESS_SOUTH,
    EXPRESS_WEST,
    ExpressMesh,
)


def test_contains_all_normal_mesh_links():
    express = ExpressMesh(6, 6, pitch_mm=1.58, span=2)
    normal = [l for l in express.links if l.kind is LinkKind.NORMAL]
    assert len(normal) == 2 * 5 * 6 + 2 * 6 * 5


def test_express_links_have_span_and_length():
    express = ExpressMesh(6, 6, pitch_mm=1.58, span=2)
    for link in express.links:
        if link.kind is LinkKind.EXPRESS:
            assert link.span == 2
            assert link.length_mm == pytest.approx(3.16)


def test_express_east_skips_span_tiles():
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    link = express.out_ports[0][EXPRESS_EAST]
    assert express.coordinates(link.dst) == (2, 0)
    assert link.dst_port == EXPRESS_WEST


def test_max_radix_is_nine():
    """Interior 3DM-E routers have 9 ports (Sec. 3.3)."""
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    assert express.max_radix() == 9


def test_corner_has_only_outgoing_express_into_grid():
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    ports = express.express_ports(0)
    assert set(ports) == {EXPRESS_EAST, EXPRESS_SOUTH}


def test_near_edge_node_missing_one_express():
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    # x=1: express west would land at x=-1.
    node = express.node_at((1, 2))
    ports = express.express_ports(node)
    assert EXPRESS_WEST not in ports
    assert EXPRESS_EAST in ports
    assert EXPRESS_NORTH in ports
    assert EXPRESS_SOUTH in ports


def test_express_count_span2_6x6():
    # Per row: x from 0..3 have EE (4) and x from 2..5 have WW (4).
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    ee = [l for l in express.links if l.src_port == EXPRESS_EAST]
    assert len(ee) == 4 * 6


def test_span_one_rejected():
    with pytest.raises(ValueError):
        ExpressMesh(6, 6, pitch_mm=1.0, span=1)


def test_span_three_lands_three_away():
    express = ExpressMesh(6, 6, pitch_mm=1.0, span=3)
    link = express.out_ports[0][EXPRESS_EAST]
    assert express.coordinates(link.dst) == (3, 0)


@given(
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=2, max_value=3),
)
def test_property_express_links_paired(width, height, span):
    """Every express link has a reverse express link."""
    express = ExpressMesh(width, height, pitch_mm=1.0, span=span)
    express_links = {
        (l.src, l.dst) for l in express.links if l.kind is LinkKind.EXPRESS
    }
    for src, dst in express_links:
        assert (dst, src) in express_links
