"""West-first adaptive routing tests: minimality, deadlock freedom,
congestion benefit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.adaptive import WestFirstAdaptiveRouting
from repro.noc.network import Network
from repro.noc.simulator import Simulator
from repro.topology.base import LOCAL_PORT
from repro.topology.mesh2d import EAST, Mesh2D, NORTH, SOUTH, WEST
from repro.topology.mesh3d import Mesh3D
from repro.traffic.synthetic import HotspotTraffic, UniformRandomTraffic


@pytest.fixture
def mesh():
    return Mesh2D(6, 6, pitch_mm=1.0)


class TestCandidatePorts:
    def test_westward_is_deterministic(self, mesh):
        routing = WestFirstAdaptiveRouting(mesh)
        src = mesh.node_at((4, 2))
        dst = mesh.node_at((1, 4))
        assert routing.candidate_ports(src, dst) == [WEST]

    def test_east_south_both_offered(self, mesh):
        routing = WestFirstAdaptiveRouting(mesh)
        src = mesh.node_at((1, 1))
        dst = mesh.node_at((4, 4))
        assert set(routing.candidate_ports(src, dst)) == {EAST, SOUTH}

    def test_straight_line_single_candidate(self, mesh):
        routing = WestFirstAdaptiveRouting(mesh)
        src = mesh.node_at((1, 1))
        assert routing.candidate_ports(src, mesh.node_at((4, 1))) == [EAST]
        assert routing.candidate_ports(src, mesh.node_at((1, 0))) == [NORTH]

    def test_destination_is_local(self, mesh):
        routing = WestFirstAdaptiveRouting(mesh)
        assert routing.candidate_ports(7, 7) == [LOCAL_PORT]
        assert routing.output_port(7, 7) == LOCAL_PORT

    def test_requires_2d_mesh(self):
        with pytest.raises(TypeError):
            WestFirstAdaptiveRouting(Mesh3D(3, 3, 4, pitch_mm=1.0))

    @settings(max_examples=80)
    @given(st.integers(0, 35), st.integers(0, 35))
    def test_property_candidates_minimal_and_productive(self, src, dst):
        mesh = Mesh2D(6, 6, pitch_mm=1.0)
        routing = WestFirstAdaptiveRouting(mesh)
        if src == dst:
            return
        sx, sy = mesh.coordinates(src)
        dx, dy = mesh.coordinates(dst)
        for port in routing.candidate_ports(src, dst):
            link = mesh.out_ports[src][port]
            nx, ny = mesh.coordinates(link.dst)
            # Each candidate strictly reduces the Manhattan distance.
            assert abs(nx - dx) + abs(ny - dy) == abs(sx - dx) + abs(sy - dy) - 1

    @settings(max_examples=40)
    @given(st.integers(0, 35), st.integers(0, 35))
    def test_property_west_first_turn_rule(self, src, dst):
        """No candidate set ever mixes W with an adaptive direction."""
        mesh = Mesh2D(6, 6, pitch_mm=1.0)
        routing = WestFirstAdaptiveRouting(mesh)
        if src == dst:
            return
        candidates = routing.candidate_ports(src, dst)
        if WEST in candidates:
            assert candidates == [WEST]


class TestAdaptiveNetwork:
    def _run(self, traffic, routing=None, cycles=2500):
        mesh = Mesh2D(6, 6, pitch_mm=1.0)
        network = Network(
            mesh,
            routing=WestFirstAdaptiveRouting(mesh) if routing == "wf" else None,
        )
        sim = Simulator(network, traffic, warmup_cycles=400,
                        measure_cycles=cycles, drain_cycles=20000)
        return sim.run()

    def test_all_delivered_uniform(self):
        result = self._run(
            UniformRandomTraffic(num_nodes=36, flit_rate=0.2, seed=11),
            routing="wf",
        )
        assert not result.saturated
        assert result.packets_measured > 0

    def test_no_deadlock_at_high_load(self):
        """Near saturation the network keeps making progress (west-first
        is deadlock-free)."""
        result = self._run(
            UniformRandomTraffic(num_nodes=36, flit_rate=0.5, seed=11),
            routing="wf",
        )
        assert result.packets_delivered > 1000

    def test_adaptive_beats_xy_under_hotspot(self):
        """Congestion-aware output selection spreads hotspot traffic."""
        def traffic():
            return HotspotTraffic(
                num_nodes=36, flit_rate=0.22, hotspots=[14, 21],
                hotspot_fraction=0.5, seed=9,
            )

        adaptive = self._run(traffic(), routing="wf")
        xy = self._run(traffic(), routing=None)
        assert adaptive.avg_latency < xy.avg_latency * 1.05

    def test_adaptive_hops_stay_minimal(self):
        result = self._run(
            UniformRandomTraffic(num_nodes=36, flit_rate=0.1, seed=11),
            routing="wf",
        )
        from repro.core.express import average_hops

        expected = average_hops(Mesh2D(6, 6, pitch_mm=1.0))
        assert result.avg_hops == pytest.approx(expected, rel=0.05)
