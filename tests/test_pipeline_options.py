"""Advanced router pipeline options (Fig. 8b/8c): cycle-exact behaviour."""

import pytest

from repro.core.arch import make_2db, make_3dm
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_uniform_point
from repro.noc.network import Network
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.topology.express_mesh import ExpressMesh
from repro.topology.mesh3d import Mesh3D
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


def _latency(hops, *, spec=False, look=False, combined=False, width=6):
    packet = ctrl_packet(0, hops, created_cycle=0)
    network = Network(
        Mesh2D(width, 1, pitch_mm=1.0),
        combined_st_lt=combined,
        speculative_sa=spec,
        lookahead_rc=look,
    )
    sim = Simulator(network, ScheduledTraffic([packet]),
                    warmup_cycles=0, measure_cycles=200, drain_cycles=200)
    sim.run()
    return packet.latency


@pytest.mark.parametrize(
    "spec,look,combined,per_hop",
    [
        (False, False, False, 5),  # Fig. 8a
        (True, False, False, 4),   # Fig. 8b
        (True, True, False, 3),    # Fig. 8c
        (False, True, False, 4),   # look-ahead alone removes RC
        (True, True, True, 2),     # Fig. 8c + MIRA's ST+LT merge
    ],
)
def test_per_hop_cost(spec, look, combined, per_hop):
    one = _latency(1, spec=spec, look=look, combined=combined)
    four = _latency(4, spec=spec, look=look, combined=combined)
    assert (four - one) / 3 == per_hop


def test_speculative_sa_zero_load_no_contention_effect():
    """At zero load speculation always succeeds (Peh & Dally): one cycle
    saved per router traversal, including the ejection router."""
    assert _latency(3, spec=True) == _latency(3) - 4


def test_lookahead_route_correct_on_3d_mesh():
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    src, dst = mesh.node_at((0, 0, 0)), mesh.node_at((2, 2, 3))
    packet = data_packet(src, dst, created_cycle=0)
    network = Network(mesh, lookahead_rc=True, speculative_sa=True)
    sim = Simulator(network, ScheduledTraffic([packet]),
                    warmup_cycles=0, measure_cycles=500, drain_cycles=500)
    sim.run()
    assert packet.delivered_cycle is not None
    assert packet.hops == 7


def test_lookahead_route_correct_on_express_mesh():
    mesh = ExpressMesh(6, 6, pitch_mm=1.0, span=2)
    packet = data_packet(0, 35, created_cycle=0)
    network = Network(mesh, lookahead_rc=True)
    sim = Simulator(network, ScheduledTraffic([packet]),
                    warmup_cycles=0, measure_cycles=500, drain_cycles=500)
    sim.run()
    assert packet.delivered_cycle is not None
    assert packet.hops == 6  # EE,EE,E + SS,SS,S


def test_lookahead_counts_rc_per_hop():
    packet = ctrl_packet(0, 3, created_cycle=0)
    network = Network(Mesh2D(4, 1, pitch_mm=1.0), lookahead_rc=True)
    sim = Simulator(network, ScheduledTraffic([packet]),
                    warmup_cycles=0, measure_cycles=200, drain_cycles=200)
    sim.run()
    # One RC at injection + one NRC per link traversal (3 links).
    assert network.events.rc_computations == 4


def test_advanced_pipeline_under_load_still_delivers_all():
    network = Network(
        Mesh2D(6, 6, pitch_mm=1.0), speculative_sa=True, lookahead_rc=True
    )
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=36, flit_rate=0.2, seed=3),
        warmup_cycles=200, measure_cycles=1500, drain_cycles=10000,
    )
    result = sim.run()
    assert not result.saturated
    # Open-loop traffic keeps injecting during drain: conservation means
    # unread writes are exactly the flits still buffered.
    buffered = sum(router.occupancy() for router in network.routers)
    assert network.events.buffer_writes - network.events.buffer_reads == buffered


def test_speculation_improves_latency_under_load():
    settings = ExperimentSettings(
        warmup_cycles=300, measure_cycles=1500, drain_cycles=8000,
        uniform_rates=(0.2,), nuca_rates=(0.1,), trace_cycles=5000,
        workloads=("tpcw",), seed=3,
    )
    base = run_uniform_point(make_2db(), 0.2, settings)
    spec = run_uniform_point(
        make_2db().with_pipeline_options(speculative_sa=True), 0.2, settings
    )
    both = run_uniform_point(
        make_2db().with_pipeline_options(speculative_sa=True, lookahead_rc=True),
        0.2,
        settings,
    )
    assert spec.avg_latency < base.avg_latency
    assert both.avg_latency < spec.avg_latency


def test_options_compose_with_3dm_merge():
    settings = ExperimentSettings(
        warmup_cycles=300, measure_cycles=1200, drain_cycles=8000,
        uniform_rates=(0.15,), nuca_rates=(0.1,), trace_cycles=5000,
        workloads=("tpcw",), seed=3,
    )
    merged = run_uniform_point(make_3dm(), 0.15, settings)
    turbo = run_uniform_point(
        make_3dm().with_pipeline_options(speculative_sa=True, lookahead_rc=True),
        0.15,
        settings,
    )
    assert turbo.avg_latency < merged.avg_latency
