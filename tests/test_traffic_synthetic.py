"""Synthetic traffic generator tests."""

import pytest

from repro.noc.packet import PacketClass
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)


def _collect(traffic, cycles):
    packets = []
    for cycle in range(cycles):
        packets.extend(traffic.packets_for_cycle(cycle))
    return packets


def test_rate_controls_offered_load():
    rate = 0.2
    traffic = UniformRandomTraffic(num_nodes=36, flit_rate=rate, seed=3)
    packets = _collect(traffic, 4000)
    flits = sum(p.size_flits for p in packets)
    measured = flits / (36 * 4000)
    assert measured == pytest.approx(rate, rel=0.1)


def test_destinations_never_equal_source():
    traffic = UniformRandomTraffic(num_nodes=9, flit_rate=0.5, seed=1)
    for packet in _collect(traffic, 500):
        assert packet.src != packet.dst


def test_destinations_cover_network():
    traffic = UniformRandomTraffic(num_nodes=9, flit_rate=0.9, seed=2)
    destinations = {p.dst for p in _collect(traffic, 2000)}
    assert destinations == set(range(9))


def test_data_fraction_controls_mix():
    traffic = UniformRandomTraffic(
        num_nodes=16, flit_rate=0.3, data_fraction=0.75, seed=4
    )
    packets = _collect(traffic, 3000)
    data = sum(p.klass is PacketClass.DATA for p in packets)
    assert data / len(packets) == pytest.approx(0.75, abs=0.05)


def test_short_flit_fraction_applies_to_payload():
    traffic = UniformRandomTraffic(
        num_nodes=16, flit_rate=0.3, data_fraction=1.0,
        short_flit_fraction=0.5, seed=5,
    )
    packets = _collect(traffic, 2000)
    payload_groups = [g for p in packets for g in p.payload_groups[1:]]
    short = sum(g == 1 for g in payload_groups)
    assert short / len(payload_groups) == pytest.approx(0.5, abs=0.05)


def test_zero_short_fraction_leaves_payload_default():
    traffic = UniformRandomTraffic(num_nodes=4, flit_rate=0.5, seed=6)
    for packet in _collect(traffic, 200):
        assert packet.payload_groups is None


def test_seed_reproducibility():
    a = _collect(UniformRandomTraffic(16, 0.2, seed=42), 500)
    b = _collect(UniformRandomTraffic(16, 0.2, seed=42), 500)
    assert [(p.src, p.dst, p.size_flits) for p in a] == [
        (p.src, p.dst, p.size_flits) for p in b
    ]


def test_different_seeds_differ():
    a = _collect(UniformRandomTraffic(16, 0.2, seed=1), 500)
    b = _collect(UniformRandomTraffic(16, 0.2, seed=2), 500)
    assert [(p.src, p.dst) for p in a] != [(p.src, p.dst) for p in b]


def test_transpose_destination():
    traffic = TransposeTraffic(width=4, flit_rate=0.5, seed=1)
    for packet in _collect(traffic, 300):
        x, y = packet.src % 4, packet.src // 4
        assert packet.dst == x * 4 + y


def test_bit_complement_destination():
    traffic = BitComplementTraffic(num_nodes=16, flit_rate=0.5, seed=1)
    for packet in _collect(traffic, 300):
        assert packet.dst == 15 - packet.src


def test_hotspot_bias():
    traffic = HotspotTraffic(
        num_nodes=16, flit_rate=0.5, hotspots=[5], hotspot_fraction=0.5, seed=1
    )
    packets = _collect(traffic, 3000)
    to_hotspot = sum(p.dst == 5 for p in packets)
    assert to_hotspot / len(packets) > 0.3


def test_nodes_restriction():
    traffic = UniformRandomTraffic(
        num_nodes=16, flit_rate=0.9, seed=1, nodes=[0, 1]
    )
    sources = {p.src for p in _collect(traffic, 500)}
    assert sources <= {0, 1}


def test_parameter_validation():
    with pytest.raises(ValueError):
        UniformRandomTraffic(num_nodes=1, flit_rate=0.1)
    with pytest.raises(ValueError):
        UniformRandomTraffic(num_nodes=4, flit_rate=0.0)
    with pytest.raises(ValueError):
        UniformRandomTraffic(num_nodes=4, flit_rate=0.1, data_fraction=1.5)
    with pytest.raises(ValueError):
        HotspotTraffic(num_nodes=4, flit_rate=0.1, hotspots=[])


def test_scheduled_traffic_emits_at_creation_cycle():
    from repro.noc.packet import ctrl_packet

    packets = [ctrl_packet(0, 1, created_cycle=7), ctrl_packet(1, 0, created_cycle=7)]
    traffic = ScheduledTraffic(packets)
    assert list(traffic.packets_for_cycle(6)) == []
    assert len(list(traffic.packets_for_cycle(7))) == 2
    assert traffic.finished(8)
    assert not traffic.finished(7)
