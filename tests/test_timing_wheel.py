"""Unit tests for the TimingWheel event buckets."""

import pytest

from repro.noc.scheduling import TimingWheel


def test_push_pop_within_horizon():
    wheel = TimingWheel()
    wheel.push(3, "a")
    wheel.push(3, "b")
    wheel.push(5, "c")
    assert wheel.pop_due(0) == []
    assert wheel.pop_due(1) == []
    assert wheel.pop_due(2) == []
    assert wheel.pop_due(3) == ["a", "b"]
    assert wheel.pop_due(4) == []
    assert wheel.pop_due(5) == ["c"]


def test_push_beyond_horizon_spills_to_overflow():
    wheel = TimingWheel(horizon=4)
    wheel.push(100, "far")
    assert wheel.pending() == 1
    for cycle in range(100):
        assert wheel.pop_due(cycle) == []
    assert wheel.pop_due(100) == ["far"]
    assert wheel.pending() == 0


def test_ring_slots_wrap_cleanly():
    wheel = TimingWheel(horizon=4)
    for cycle in range(40):
        wheel.push(cycle + 2, cycle)
        due = wheel.pop_due(cycle)
        if cycle >= 2:
            assert due == [cycle - 2]
        else:
            assert due == []


def test_in_slot_and_overflow_events_merge():
    wheel = TimingWheel(horizon=4)
    wheel.push(10, "late")            # beyond horizon -> overflow
    for cycle in range(8):
        wheel.pop_due(cycle)
    wheel.push(10, "near")            # now within horizon -> ring slot
    assert wheel.pop_due(8) == []
    assert wheel.pop_due(9) == []
    # Ring-slot events come first, then overflow — matching the old
    # dict buckets, where earlier-scheduled events were appended first.
    assert wheel.pop_due(10) == ["near", "late"]


def test_stale_events_never_delivered_but_counted():
    """Events scheduled for an already-popped cycle are never returned
    (the semantics of the old dict buckets) but still count as pending,
    so liveness checks can notice a scheduling bug."""
    wheel = TimingWheel(horizon=4)
    wheel.pop_due(0)
    wheel.pop_due(1)
    wheel.push(0, "stale")            # cycle 0 already popped
    assert wheel.pending() == 1
    assert bool(wheel)
    for cycle in range(2, 10):
        assert "stale" not in wheel.pop_due(cycle)
    assert wheel.pending() == 1


def test_pending_and_bool():
    wheel = TimingWheel()
    assert not wheel
    assert wheel.pending() == 0
    wheel.push(1, "x")
    wheel.push(50, "y")
    assert wheel
    assert wheel.pending() == 2
    wheel.pop_due(0)
    wheel.pop_due(1)
    assert wheel.pending() == 1


def test_horizon_validation():
    with pytest.raises(ValueError):
        TimingWheel(horizon=1)
