"""Unit tests for the TimingWheel event buckets."""

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.noc.scheduling import TimingWheel


def test_push_pop_within_horizon():
    wheel = TimingWheel()
    wheel.push(3, "a")
    wheel.push(3, "b")
    wheel.push(5, "c")
    assert wheel.pop_due(0) == []
    assert wheel.pop_due(1) == []
    assert wheel.pop_due(2) == []
    assert wheel.pop_due(3) == ["a", "b"]
    assert wheel.pop_due(4) == []
    assert wheel.pop_due(5) == ["c"]


def test_push_beyond_horizon_spills_to_overflow():
    wheel = TimingWheel(horizon=4)
    wheel.push(100, "far")
    assert wheel.pending() == 1
    for cycle in range(100):
        assert wheel.pop_due(cycle) == []
    assert wheel.pop_due(100) == ["far"]
    assert wheel.pending() == 0


def test_ring_slots_wrap_cleanly():
    wheel = TimingWheel(horizon=4)
    for cycle in range(40):
        wheel.push(cycle + 2, cycle)
        due = wheel.pop_due(cycle)
        if cycle >= 2:
            assert due == [cycle - 2]
        else:
            assert due == []


def test_in_slot_and_overflow_events_merge():
    wheel = TimingWheel(horizon=4)
    wheel.push(10, "late")            # beyond horizon -> overflow
    for cycle in range(8):
        wheel.pop_due(cycle)
    wheel.push(10, "near")            # now within horizon -> ring slot
    assert wheel.pop_due(8) == []
    assert wheel.pop_due(9) == []
    # Ring-slot events come first, then overflow — matching the old
    # dict buckets, where earlier-scheduled events were appended first.
    assert wheel.pop_due(10) == ["near", "late"]


def test_stale_push_raises():
    """Pushing for an already-popped cycle raises instead of leaking.

    Regression: such events could never be delivered, yet they used to
    land silently in the overflow dict keyed by the past cycle — they
    inflated ``pending()`` and kept ``bool(wheel)`` truthy forever."""
    wheel = TimingWheel(horizon=4)
    wheel.pop_due(0)
    wheel.pop_due(1)
    with pytest.raises(ValueError, match="stale push"):
        wheel.push(0, "stale")        # cycle 0 already popped
    with pytest.raises(ValueError, match="stale push"):
        wheel.push(1, "stale")        # cycle 1: the just-popped cycle
    # The rejected events left no trace behind.
    assert wheel.pending() == 0
    assert not wheel
    # The first not-yet-popped cycle is still accepted.
    wheel.push(2, "fresh")
    assert wheel.pop_due(2) == ["fresh"]


@hyp_settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 30)), max_size=60
    )
)
def test_property_wheel_matches_dict_bucket_oracle(ops):
    """Random push/pop interleavings agree with a plain dict of buckets.

    Each op ``(kind, value)`` pushes at ``now + value`` when ``kind > 0``
    (spanning in-ring, horizon-edge and overflow deltas) and otherwise
    pops the next cycle.  The oracle is a ``Dict[int, List]`` of buckets
    popped one cycle at a time, split per cycle into (ring, overflow)
    halves to mirror the wheel's documented merge order: ring-slot
    events first, then overflow."""
    horizon = 4
    wheel = TimingWheel(horizon=horizon)
    oracle = {}
    now = 0
    counter = 0
    for kind, value in ops:
        if kind > 0:
            cycle = now + value
            wheel.push(cycle, counter)
            ring, overflow = oracle.setdefault(cycle, ([], []))
            (ring if value < horizon else overflow).append(counter)
            counter += 1
        else:
            ring, overflow = oracle.pop(now, ([], []))
            assert wheel.pop_due(now) == ring + overflow
            now += 1
    assert wheel.pending() == sum(
        len(r) + len(o) for r, o in oracle.values()
    )
    assert bool(wheel) == bool(oracle)
    assert sorted(wheel.items()) == sorted(
        x for r, o in oracle.values() for x in r + o
    )
    # Drain everything that remains.
    while wheel:
        ring, overflow = oracle.pop(now, ([], []))
        assert wheel.pop_due(now) == ring + overflow
        now += 1
    assert not oracle


def test_pending_and_bool():
    wheel = TimingWheel()
    assert not wheel
    assert wheel.pending() == 0
    wheel.push(1, "x")
    wheel.push(50, "y")
    assert wheel
    assert wheel.pending() == 2
    wheel.pop_due(0)
    wheel.pop_due(1)
    assert wheel.pending() == 1


def test_horizon_validation():
    with pytest.raises(ValueError):
        TimingWheel(horizon=1)
