"""VC-partitioning ablation + reproduce-command tests."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.ablations import ablate_vc_partitioning
from repro.experiments.config import ExperimentSettings


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=300,
        measure_cycles=1500,
        drain_cycles=10000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=5000,
        workloads=("tpcw",),
        seed=9,
    )


def test_vc_partitioning_both_modes_work(settings):
    results = ablate_vc_partitioning(settings, request_rate=0.12)
    assert set(results) == {"pooled", "per-class"}
    for metrics in results.values():
        assert metrics["avg"] > 0
        assert metrics["ctrl"] > 0
        assert metrics["data"] > metrics["ctrl"]  # 5-flit serialisation


def test_vc_partitioning_cheap_at_low_load(settings):
    """At low NUCA loads the partition costs little — which is exactly
    the paper's justification (i): 'low injection rate of NUCA traffic'."""
    results = ablate_vc_partitioning(settings, request_rate=0.08)
    assert results["per-class"]["avg"] <= results["pooled"]["avg"] * 1.2


def test_vc_partitioning_expensive_near_saturation(settings):
    """Pushing the load shows why the decision is load-dependent: the
    5-flit data class saturates its single dedicated VC while the control
    VC idles."""
    results = ablate_vc_partitioning(settings, request_rate=0.12)
    assert results["per-class"]["data"] > results["pooled"]["data"] * 1.5
    # Control packets stay healthy on their private VC.
    assert results["per-class"]["ctrl"] <= results["pooled"]["ctrl"] * 1.2


def test_reproduce_command_subset(tmp_path):
    """`python -m repro reproduce --filter table2` runs end to end and
    produces artifacts + REPORT.md."""
    repo_root = Path(__file__).resolve().parent.parent
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "reproduce", "--filter",
         "table2_design"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert (repo_root / "results" / "table2_parameters.txt").exists()
    assert (repo_root / "results" / "REPORT.md").exists()
