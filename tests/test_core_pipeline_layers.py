"""Pipeline-spec and layer-plan tests (Fig. 8, Sec. 3.2.7, Table 1 vias)."""

import pytest

from repro.core.layers import (
    LayerPlan,
    NON_SEPARABLE_MODULES,
    SEPARABLE_MODULES,
    VIA_AREA_UM2,
    layer_plan_for,
    signal_vias,
)
from repro.core.pipeline import (
    FOUR_STAGE_PLUS_LT,
    MERGED_ST_LT,
    pipeline_for,
)


class TestPipelineSpec:
    def test_four_stage_shape(self):
        assert FOUR_STAGE_PLUS_LT.stages == ("RC", "VA", "SA", "ST", "LT")
        assert FOUR_STAGE_PLUS_LT.cycles_per_hop == 5

    def test_merged_shape(self):
        assert MERGED_ST_LT.stages == ("RC", "VA", "SA", "ST+LT")
        assert MERGED_ST_LT.cycles_per_hop == 4

    def test_pipeline_for_configs(self, cfg_2db, cfg_3db, cfg_3dm, cfg_3dme):
        assert pipeline_for(cfg_2db) == FOUR_STAGE_PLUS_LT
        assert pipeline_for(cfg_3db) == FOUR_STAGE_PLUS_LT
        assert pipeline_for(cfg_3dm) == MERGED_ST_LT
        assert pipeline_for(cfg_3dme) == MERGED_ST_LT

    def test_pipeline_for_advanced_options(self, cfg_2db):
        spec = pipeline_for(cfg_2db.with_pipeline_options(speculative_sa=True))
        assert spec.cycles_per_hop == 4
        both = pipeline_for(
            cfg_2db.with_pipeline_options(speculative_sa=True, lookahead_rc=True)
        )
        assert both.cycles_per_hop == 3
        look = pipeline_for(cfg_2db.with_pipeline_options(lookahead_rc=True))
        assert look.cycles_per_hop == 4

    def test_simulated_hop_cost_matches_spec(self, cfg_2db, cfg_3dm):
        """The cycle-accurate router honours the pipeline spec."""
        from repro.noc.router import ST_LT_MERGED_CYCLES, ST_LT_SPLIT_CYCLES

        assert ST_LT_SPLIT_CYCLES - ST_LT_MERGED_CYCLES == (
            FOUR_STAGE_PLUS_LT.cycles_per_hop - MERGED_ST_LT.cycles_per_hop
        )


class TestSignalVias:
    def test_table1_formula_3dm(self):
        """Table 1: 2P + PV + Vk with P=5, V=2, k=8 -> 36 vias."""
        assert signal_vias(5, 2, 8) == 36

    def test_table1_formula_3dme(self):
        assert signal_vias(9, 2, 8) == 52

    def test_validation(self):
        with pytest.raises(ValueError):
            signal_vias(0, 2, 8)


class TestLayerPlan:
    def test_single_layer_trivial(self, cfg_2db):
        plan = layer_plan_for(cfg_2db)
        assert plan.layers == 1
        assert plan.total_vias == 0
        for module in SEPARABLE_MODULES + NON_SEPARABLE_MODULES:
            assert plan.placement[module] == (0,)

    def test_3db_router_is_single_layer(self, cfg_3db):
        """3DB stacks planar routers; each router spans one layer."""
        assert layer_plan_for(cfg_3db).layers == 1

    def test_3dm_logic_on_top_layer(self, cfg_3dm):
        """Sec. 3.2.7: RC, SA and VA1 sit closest to the heat sink."""
        plan = layer_plan_for(cfg_3dm)
        for module in ("rc", "sa1", "sa2", "va1"):
            assert plan.placement[module] == (0,)

    def test_3dm_va2_spread_over_bottom_layers(self, cfg_3dm):
        plan = layer_plan_for(cfg_3dm)
        assert plan.placement["va2"] == (1, 2, 3)

    def test_3dm_datapath_spans_all_layers(self, cfg_3dm):
        plan = layer_plan_for(cfg_3dm)
        for module in SEPARABLE_MODULES:
            assert plan.placement[module] == (0, 1, 2, 3)

    def test_3dm_via_budget(self, cfg_3dm):
        plan = layer_plan_for(cfg_3dm)
        assert plan.total_vias == 36
        assert plan.via_area_um2() == pytest.approx(36 * VIA_AREA_UM2)

    def test_modules_on_layer(self, cfg_3dm):
        plan = layer_plan_for(cfg_3dm)
        top = plan.modules_on_layer(0)
        assert "sa2" in top and "va2" not in top
        bottom = plan.modules_on_layer(3)
        assert "va2" in bottom and "rc" not in bottom

    def test_modules_on_layer_validates(self, cfg_3dm):
        with pytest.raises(ValueError):
            layer_plan_for(cfg_3dm).modules_on_layer(4)
