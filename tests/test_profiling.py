"""Tests for the hot-loop profiling layer."""

from __future__ import annotations

import itertools

from repro.core.arch import make_2db
from repro.noc.profiling import NetworkProfiler, ProfileSnapshot
from repro.noc.simulator import Simulator
from repro.traffic.synthetic import UniformRandomTraffic


class _FakeClock:
    """Deterministic clock: each read advances by one second."""

    def __init__(self) -> None:
        self._ticks = itertools.count()

    def __call__(self) -> float:
        return float(next(self._ticks))


def test_profiler_accumulates_deterministic_phases(cfg_2db):
    network = cfg_2db.build_network()
    # The fake-clock arithmetic below counts exactly four reads per
    # cycle; drop any sanitizer (REPRO_SANITIZE=1 runs) so the optional
    # audit phase doesn't add reads.
    network.sanitizer = None
    network.profiler = NetworkProfiler(clock=_FakeClock())
    cycles = 5
    for _ in range(cycles):
        network.step()
    snap = network.profiler.snapshot()
    # Four clock reads per cycle, one second apart: each phase takes
    # exactly one second per cycle.
    assert snap.cycles == cycles
    assert snap.phase_wall_s == {
        "deliver": float(cycles),
        "inject": float(cycles),
        "route": float(cycles),
    }
    assert snap.wall_s == 3.0 * cycles
    assert snap.cycles_per_second == cycles / snap.wall_s
    # An idle network steps zero routers.
    assert snap.routers_stepped == 0
    assert snap.router_cycles == cycles * len(network.routers)
    assert snap.active_router_ratio == 0.0


def test_profiler_reset():
    profiler = NetworkProfiler(clock=_FakeClock())
    profiler.record_cycle(1.0, 2.0, 3.0, stepped=4, population=8)
    profiler.reset()
    snap = profiler.snapshot()
    assert snap.cycles == 0
    assert snap.wall_s == 0.0
    assert snap.cycles_per_second == 0.0
    assert snap.active_router_ratio == 0.0


def test_simulator_profile_flag_attaches_and_reports():
    config = make_2db()
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=config.num_nodes, flit_rate=0.05, seed=3),
        warmup_cycles=50,
        measure_cycles=300,
        drain_cycles=3000,
        profile=True,
    )
    assert isinstance(network.profiler, NetworkProfiler)
    result = sim.run()
    snap = result.profile
    assert isinstance(snap, ProfileSnapshot)
    assert snap.cycles == result.cycles
    assert snap.router_cycles == result.cycles * len(network.routers)
    # At 0.05 flits/node/cycle most routers are quiescent most cycles —
    # the active-set scheduler should step well under the full population.
    assert 0.0 < snap.active_router_ratio < 0.9
    assert snap.wall_s > 0.0
    assert snap.cycles_per_second > 0.0


def test_unprofiled_run_reports_no_profile():
    config = make_2db()
    sim = Simulator(
        config.build_network(),
        UniformRandomTraffic(num_nodes=config.num_nodes, flit_rate=0.05, seed=3),
        warmup_cycles=10,
        measure_cycles=50,
        drain_cycles=2000,
    )
    assert sim.run().profile is None


def test_snapshot_format_is_human_readable():
    profiler = NetworkProfiler(clock=_FakeClock())
    profiler.record_cycle(1.0, 1.0, 1.0, stepped=3, population=12)
    text = profiler.snapshot().format()
    assert "cycles/second" in text
    assert "active ratio" in text
    assert "25.0%" in text
    assert "phase deliver" in text


def test_cli_profile_flag(capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert main(["simulate", "--arch", "2DB", "--rate", "0.05", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "hot-loop profile" in out
    assert "active ratio" in out


def test_telemetry_phase_in_snapshot():
    profiler = NetworkProfiler(clock=_FakeClock())
    profiler.record_cycle(1.0, 1.0, 1.0, stepped=1, population=4,
                          telemetry_s=0.5)
    snap = profiler.snapshot()
    assert snap.phase_wall_s["telemetry"] == 0.5
    assert snap.wall_s == 3.5
    assert "phase telemetry" in snap.format()
    # Without telemetry time the phase stays absent (exact 3-phase shape).
    profiler.reset()
    profiler.record_cycle(1.0, 1.0, 1.0, stepped=1, population=4)
    assert "telemetry" not in profiler.snapshot().phase_wall_s


def test_profiled_telemetry_run_reports_phase(tmp_path):
    from repro.telemetry import TelemetryConfig

    config = make_2db()
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=config.num_nodes, flit_rate=0.05,
                             seed=3),
        warmup_cycles=10, measure_cycles=100, drain_cycles=2000,
        profile=True,
        telemetry=TelemetryConfig(interval=25),
    )
    snap = sim.run().profile
    assert "telemetry" in snap.phase_wall_s
    assert snap.phase_wall_s["telemetry"] > 0.0
