"""Report-generator tests + cross-cutting simulator invariants."""

from pathlib import Path

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.experiments.summary import (
    SECTIONS,
    collect_artifacts,
    render_report,
    write_report,
)
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic


class TestSummary:
    def _results_dir(self, tmp_path, stems):
        results = tmp_path / "results"
        results.mkdir()
        for stem in stems:
            (results / f"{stem}.txt").write_text(f"content of {stem}\n")
        return results

    def test_collect_known_artifacts_only(self, tmp_path):
        results = self._results_dir(
            tmp_path, ["table1_area", "not_a_known_artifact"]
        )
        artifacts = collect_artifacts(results)
        assert "table1_area" in artifacts
        assert "not_a_known_artifact" not in artifacts

    def test_render_includes_sections_and_missing_list(self, tmp_path):
        results = self._results_dir(tmp_path, ["table1_area"])
        report = render_report(collect_artifacts(results))
        assert "Table 1" in report
        assert "content of table1_area" in report
        assert "Not present in this run" in report

    def test_write_report(self, tmp_path):
        results = self._results_dir(tmp_path, ["table1_area", "fig12d_pdp"])
        output = write_report(results)
        assert output == results / "REPORT.md"
        assert "fig12d" in output.read_text() or "power-delay" in output.read_text()

    def test_write_report_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            write_report(tmp_path / "nope")

    def test_write_report_empty_dir(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            write_report(empty)

    def test_sections_cover_every_table_and_figure(self):
        stems = {stem for stem, _ in SECTIONS}
        for expected in (
            "fig01_data_patterns", "fig02_packet_types", "table1_area",
            "table2_parameters", "table3_delays", "fig09_energy_breakdown",
            "fig11a_latency_uniform", "fig11b_latency_nuca",
            "fig11c_latency_traces", "fig11d_hop_counts",
            "fig12a_power_uniform", "fig12b_power_nuca",
            "fig12c_power_traces", "fig12d_pdp", "fig13a_short_flits",
            "fig13b_shutdown_savings", "fig13c_temperature_reduction",
        ):
            assert expected in stems


class TestLatencyLowerBounds:
    """Cycle-exact lower bounds: no packet can beat the pipeline."""

    @hyp_settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.sampled_from([1, 5]),
        st.booleans(),
    )
    def test_property_latency_at_least_pipeline_bound(
        self, src, dst, size, combined
    ):
        if src == dst:
            return
        mesh = Mesh2D(4, 4, pitch_mm=1.0)
        packet = Packet(
            src=src, dst=dst, size_flits=size,
            klass=PacketClass.DATA if size > 1 else PacketClass.CTRL,
            created_cycle=0,
        )
        network = Network(mesh, combined_st_lt=combined)
        sim = Simulator(network, ScheduledTraffic([packet]),
                        warmup_cycles=0, measure_cycles=100, drain_cycles=400)
        sim.run()
        sx, sy = mesh.coordinates(src)
        dx, dy = mesh.coordinates(dst)
        hops = abs(sx - dx) + abs(sy - dy)
        per_hop = 4 if combined else 5
        # per-hop pipeline spans + the destination router's RC/VA/SA and
        # single-cycle ejection (3 cycles) + tail serialisation.
        lower_bound = hops * per_hop + 3 + (size - 1)
        assert packet.latency >= lower_bound
        # Zero contention: the bound is met exactly.
        assert packet.latency == lower_bound
        assert packet.hops == hops
