"""NUCA bimodal request/response traffic tests."""

import pytest

from repro.noc.packet import PacketClass
from repro.traffic.nuca import NucaUniformTraffic


CPUS = [13, 14, 15, 16, 19, 20, 21, 22]
CACHES = [n for n in range(36) if n not in CPUS]


def _traffic(**kwargs):
    defaults = dict(
        cpu_nodes=CPUS, cache_nodes=CACHES, request_rate=0.2, seed=3
    )
    defaults.update(kwargs)
    return NucaUniformTraffic(**defaults)


def test_requests_originate_only_at_cpus():
    traffic = _traffic()
    for cycle in range(300):
        for packet in traffic.packets_for_cycle(cycle):
            assert packet.src in CPUS
            assert packet.dst in CACHES


def test_requests_are_single_flit_control():
    traffic = _traffic()
    for cycle in range(100):
        for packet in traffic.packets_for_cycle(cycle):
            assert packet.size_flits == 1
            assert packet.klass is PacketClass.CTRL


def test_request_rate_respected():
    traffic = _traffic(request_rate=0.1)
    count = sum(
        len(list(traffic.packets_for_cycle(c))) for c in range(5000)
    )
    assert count / (len(CPUS) * 5000) == pytest.approx(0.1, rel=0.1)


def test_response_generated_for_request():
    traffic = _traffic()
    request = next(
        p for c in range(100) for p in traffic.packets_for_cycle(c)
    )
    responses = list(traffic.on_delivered(request, cycle=50))
    assert len(responses) == 1
    response = responses[0]
    assert response.src == request.dst
    assert response.dst == request.src
    assert response.size_flits == 5
    assert response.klass is PacketClass.DATA


def test_response_delayed_by_bank_latency():
    traffic = _traffic(bank_latency=7)
    request = next(
        p for c in range(100) for p in traffic.packets_for_cycle(c)
    )
    (response,) = traffic.on_delivered(request, cycle=40)
    assert response.created_cycle == 47


def test_response_not_re_replied():
    traffic = _traffic()
    request = next(
        p for c in range(100) for p in traffic.packets_for_cycle(c)
    )
    (response,) = traffic.on_delivered(request, cycle=40)
    assert list(traffic.on_delivered(response, cycle=60)) == []


def test_short_flit_fraction_in_responses():
    traffic = _traffic(short_flit_fraction=0.5, request_rate=0.9)
    groups = []
    for cycle in range(500):
        for request in traffic.packets_for_cycle(cycle):
            (response,) = traffic.on_delivered(request, cycle)
            groups.extend(response.payload_groups[1:])
    short = sum(g == 1 for g in groups)
    assert short / len(groups) == pytest.approx(0.5, abs=0.06)


def test_overlapping_node_sets_rejected():
    with pytest.raises(ValueError):
        NucaUniformTraffic(cpu_nodes=[1, 2], cache_nodes=[2, 3], request_rate=0.1)


def test_empty_sets_rejected():
    with pytest.raises(ValueError):
        NucaUniformTraffic(cpu_nodes=[], cache_nodes=[1], request_rate=0.1)


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        _traffic(request_rate=0.0)
