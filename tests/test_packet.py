"""Packet and flit construction tests."""

import pytest

from repro.noc.packet import (
    CTRL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    Flit,
    FlitType,
    Packet,
    PacketClass,
    ctrl_packet,
    data_packet,
)


def test_data_packet_has_five_flits():
    packet = data_packet(0, 1)
    assert packet.size_flits == DATA_PACKET_FLITS == 5
    assert packet.klass is PacketClass.DATA


def test_ctrl_packet_single_flit():
    packet = ctrl_packet(0, 1)
    assert packet.size_flits == CTRL_PACKET_FLITS == 1
    flits = packet.make_flits()
    assert len(flits) == 1
    assert flits[0].kind is FlitType.SINGLE


def test_make_flits_head_body_tail():
    flits = data_packet(0, 1).make_flits()
    kinds = [f.kind for f in flits]
    assert kinds == [
        FlitType.HEAD,
        FlitType.BODY,
        FlitType.BODY,
        FlitType.BODY,
        FlitType.TAIL,
    ]


def test_head_and_single_are_head():
    head = Flit(data_packet(0, 1), FlitType.HEAD, 0)
    single = Flit(ctrl_packet(0, 1), FlitType.SINGLE, 0)
    body = Flit(data_packet(0, 1), FlitType.BODY, 1)
    assert head.is_head and single.is_head and not body.is_head
    assert single.is_tail and not head.is_tail


def test_header_flit_is_short_by_construction():
    flits = data_packet(0, 1).make_flits(layer_groups=4)
    assert flits[0].active_groups == 1
    assert flits[0].is_short()


def test_payload_defaults_to_full_width():
    flits = data_packet(0, 1).make_flits(layer_groups=4)
    for flit in flits[1:]:
        assert flit.active_groups == 4
        assert not flit.is_short()


def test_payload_groups_respected():
    packet = data_packet(0, 1, payload_groups=[1, 1, 4, 2, 1])
    groups = [f.active_groups for f in packet.make_flits()]
    assert groups == [1, 1, 4, 2, 1]


def test_payload_groups_clamped_to_range():
    packet = data_packet(0, 1, payload_groups=[0, 9, 4, 2, 1])
    groups = [f.active_groups for f in packet.make_flits(layer_groups=4)]
    assert groups == [1, 4, 4, 2, 1]


def test_payload_groups_length_validated():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, size_flits=5, payload_groups=[1, 2])


def test_src_equals_dst_rejected():
    with pytest.raises(ValueError):
        Packet(src=3, dst=3, size_flits=1)


def test_zero_flits_rejected():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, size_flits=0)


def test_latency_none_until_delivered():
    packet = data_packet(0, 1, created_cycle=10)
    assert packet.latency is None
    packet.delivered_cycle = 35
    assert packet.latency == 25


def test_packet_ids_unique():
    ids = {data_packet(0, 1).pid for _ in range(100)}
    assert len(ids) == 100
