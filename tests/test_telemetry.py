"""Telemetry layer tests: metrics, exports, sampler, determinism.

The non-negotiables pinned here:

* telemetry-enabled runs are **bit-identical** to bare runs on every
  architecture (the sampler only reads network state),
* the JSONL stream and ``trace.json`` obey their schemas (loadable,
  monotonic cycles, spans nest),
* the layer-shutdown gauge actually responds to short-flit traffic,
* lifecycle truncation is loud, never silent.
"""

from __future__ import annotations

import json

import pytest

from repro.core.arch import make_3dm, standard_configs
from repro.noc.network import Network
from repro.noc.simulator import Simulator
from repro.telemetry import (
    ChromeTraceBuilder,
    MetricsRegistry,
    NetworkTelemetry,
    PacketLife,
    TelemetryConfig,
)
from repro.telemetry.export import PACKETS_PID
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


# ---------------------------------------------------------------------------
# Metric primitives


def test_counter_reports_total_and_delta():
    reg = MetricsRegistry()
    c = reg.counter("flits")
    c.inc(3)
    assert c.sample() == {"total": 3.0, "delta": 3.0}
    c.inc(2)
    assert c.sample() == {"total": 5.0, "delta": 2.0}
    # No activity: delta goes to zero, total holds.
    assert c.sample() == {"total": 5.0, "delta": 0.0}


def test_counter_rejects_decrease():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_gauge_unset_windows_sample_none():
    reg = MetricsRegistry()
    g = reg.gauge("occ")
    assert g.sample() is None
    g.set(4.0)
    assert g.sample() == 4.0
    # Not re-set this window: stale value is not repeated.
    assert g.sample() is None


def test_histogram_summary_and_window_clear():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    h.observe_many(range(1, 101))
    out = h.sample()
    assert out["count"] == 100
    assert out["mean"] == 50.5
    assert out["min"] == 1 and out["max"] == 100
    assert out["p50"] == 50 and out["p95"] == 95 and out["p99"] == 99
    # Cleared: the next window starts empty.
    assert h.sample() == {"count": 0}


def test_registry_accessors_idempotent_but_kind_exclusive():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    reg.gauge("b")
    with pytest.raises(ValueError):
        reg.histogram("b")  # name taken by a gauge
    assert reg.names() == ["a", "b"]


def test_registry_sample_groups_by_kind():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(7)
    out = reg.sample()
    assert out["counters"]["c"] == {"total": 2.0, "delta": 2.0}
    assert out["gauges"]["g"] == 1.5
    assert out["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------------
# Chrome trace builder


def test_trace_builder_renders_nested_packet_spans(tmp_path):
    builder = ChromeTraceBuilder()
    life = PacketLife(
        pid=7, src=0, dst=3, size_flits=5, klass="data", created=10,
        injected=12,
    )
    life.note_stage(12, 0, "rc")
    life.note_stage(13, 0, "va")
    life.note_traverse(16, 0)   # SA contention: ST 2 cycles after VA+1
    life.note_traverse(17, 1)   # look-ahead hop: no RC/VA stamps
    life.delivered = 20
    builder.add_packet(life)

    slices = [e for e in builder.events if e["ph"] == "X"]
    names = [e["name"] for e in slices]
    assert names[0] == "pkt 7"          # parent first
    assert "queued" in names
    assert "hop@0" in names and "hop@1" in names
    assert "RC" in names and "VA" in names
    assert "SA" in names and "ST" in names
    # Children nest inside the packet span by [ts, ts+dur) containment.
    parent = slices[0]
    lo, hi = parent["ts"], parent["ts"] + parent["dur"]
    for child in slices[1:]:
        assert child["ts"] >= lo
        assert child["ts"] + child["dur"] <= hi

    instants = [e for e in builder.events if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["eject"]

    path = tmp_path / "t.json"
    builder.write(path, other_data={"extra": 1})
    payload = json.loads(path.read_text())
    assert payload["traceEvents"] == builder.events
    assert payload["otherData"]["ts_unit"] == "simulation cycles"
    assert payload["otherData"]["extra"] == 1


def test_trace_builder_merges_speculative_va_st():
    builder = ChromeTraceBuilder()
    life = PacketLife(pid=1, src=0, dst=1, size_flits=1, klass="ctrl",
                     created=0, injected=0)
    life.note_stage(2, 0, "va")
    life.note_traverse(2, 0)  # same cycle: speculative SA won
    builder.add_packet(life)
    names = [e["name"] for e in builder.events if e["ph"] == "X"]
    assert "VA+ST" in names
    assert "VA" not in names and "ST" not in names


# ---------------------------------------------------------------------------
# Sampler wiring and schemas


def _run_3dm(telemetry=None, short=0.6, seed=11, measure=400):
    config = make_3dm()
    network = config.build_network(shutdown_enabled=True)
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=0.15, seed=seed,
            short_flit_fraction=short,
        ),
        warmup_cycles=100, measure_cycles=measure, drain_cycles=4000,
        telemetry=telemetry,
    )
    return sim.run()


def test_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(interval=0).validate()
    with pytest.raises(ValueError):
        TelemetryConfig(max_trace_packets=0).validate()
    with pytest.raises(ValueError):
        TelemetryConfig(thermal=True).validate()  # needs arch_config
    network = Network(Mesh2D(2, 2, pitch_mm=1.0))
    with pytest.raises(ValueError):
        NetworkTelemetry(network, TelemetryConfig(interval=-5))


def test_constructor_rejects_config_plus_kwargs():
    network = Network(Mesh2D(2, 2, pitch_mm=1.0))
    with pytest.raises(TypeError):
        NetworkTelemetry(network, TelemetryConfig(), interval=5)


def test_jsonl_stream_schema(tmp_path):
    path = tmp_path / "metrics.jsonl"
    result = _run_3dm(TelemetryConfig(interval=100, metrics_path=str(path)))
    records = [json.loads(line) for line in path.read_text().splitlines()]

    meta, samples, end = records[0], records[1:-1], records[-1]
    assert meta["type"] == "meta"
    assert meta["schema"] == 1
    assert meta["interval"] == 100
    assert meta["num_nodes"] == make_3dm().num_nodes
    assert "layers.active_fraction" in meta["metrics"]

    assert end["type"] == "end"
    assert end["windows"] == len(samples) == result.telemetry.windows

    cycles = [s["cycle"] for s in samples]
    assert cycles == sorted(cycles) and len(set(cycles)) == len(cycles)
    assert all(s["type"] == "sample" for s in samples)
    # Windows tile the observed stretch: spans sum to cycles observed.
    assert sum(s["window"] for s in samples) == result.telemetry.cycles
    # All but the trailing window are full-sized.
    assert all(s["window"] == 100 for s in samples[:-1])

    mid = samples[len(samples) // 2]
    assert mid["counters"]["packets.injected"]["delta"] >= 0
    assert mid["gauges"]["occupancy.total"] >= 0
    assert len(mid["per_router"]["occupancy"]) == meta["num_nodes"]
    assert isinstance(mid["channels"], dict)
    # Measurement-window samples carry latency distributions.
    assert any(
        s["histograms"]["latency.cycles"]["count"] > 0 for s in samples
    )


def test_active_layer_fraction_responds_to_short_flits(tmp_path):
    """Acceptance: the windowed shutdown signal moves with traffic mix."""
    def mean_fraction(short, path):
        _run_3dm(
            TelemetryConfig(interval=100, metrics_path=str(path)),
            short=short,
        )
        values = [
            r["gauges"]["layers.active_fraction"]
            for r in map(json.loads, path.read_text().splitlines())
            if r["type"] == "sample"
            and r["gauges"]["layers.active_fraction"] is not None
        ]
        assert values, "no windows carried crossbar traffic"
        return sum(values) / len(values)

    # Control packets are short regardless, so the baseline sits below
    # 1.0; forcing most data flits short must still drop it clearly.
    full = mean_fraction(0.0, tmp_path / "full.jsonl")
    short = mean_fraction(0.8, tmp_path / "short.jsonl")
    assert short < full - 0.1


def test_per_layer_active_fraction_gauges(tmp_path):
    """Layer-resolved gauges: the top layer is always on; deeper layers'
    duty fraction falls monotonically (a layer switches for a subset of
    the events that switch the layer above it)."""
    path = tmp_path / "layers.jsonl"
    _run_3dm(TelemetryConfig(interval=100, metrics_path=str(path)), short=0.8)
    samples = [
        r for r in map(json.loads, path.read_text().splitlines())
        if r["type"] == "sample"
        and r["gauges"].get("layers.l0.active_fraction") is not None
    ]
    assert samples, "no windows carried crossbar traffic"
    for sample in samples:
        fractions = [
            sample["gauges"][f"layers.l{i}.active_fraction"]
            for i in range(4)
        ]
        assert fractions[0] == pytest.approx(1.0)
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))


def test_trace_json_schema_and_nesting(tmp_path):
    trace_path = tmp_path / "trace.json"
    result = _run_3dm(
        TelemetryConfig(interval=100, trace_path=str(trace_path)),
        measure=200,
    )
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    assert result.telemetry.trace_events == len(events)
    assert {e["ph"] for e in events} >= {"M", "X", "i", "C"}
    assert payload["otherData"]["packets_traced"] == (
        result.telemetry.packets_traced
    )
    assert payload["otherData"]["truncated"] is result.telemetry.truncated

    # Per packet track: slices nest inside the root packet span.
    by_tid = {}
    for e in events:
        if e["ph"] == "X" and e["pid"] == PACKETS_PID:
            by_tid.setdefault(e["tid"], []).append(e)
    assert by_tid, "no packet lifecycles in the trace"
    for slices in by_tid.values():
        root = slices[0]
        assert root["name"].startswith("pkt ")
        lo, hi = root["ts"], root["ts"] + root["dur"]
        for child in slices[1:]:
            assert lo <= child["ts"]
            assert child["ts"] + child["dur"] <= hi

    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert {"occupancy", "throughput", "active layer fraction"} <= counters


def test_trace_truncation_is_loud(tmp_path):
    trace_path = tmp_path / "trace.json"
    result = _run_3dm(
        TelemetryConfig(
            interval=100, trace_path=str(trace_path), max_trace_packets=10,
        ),
        measure=200,
    )
    snap = result.telemetry
    assert snap.truncated
    assert snap.packets_traced <= 10
    assert snap.packets_dropped > 0
    assert "TRUNCATED" in snap.format()
    payload = json.loads(trace_path.read_text())
    assert payload["otherData"]["truncated"] is True
    assert payload["otherData"]["packets_dropped"] == snap.packets_dropped


def test_in_memory_samples_without_paths():
    result = _run_3dm(TelemetryConfig(interval=100), measure=200)
    assert result.telemetry.windows > 0
    assert result.telemetry.metrics_path is None


def test_keep_samples_retains_records(tmp_path):
    config = make_3dm()
    network = config.build_network()
    telemetry = NetworkTelemetry(
        network,
        TelemetryConfig(
            interval=50,
            metrics_path=str(tmp_path / "m.jsonl"),
            keep_samples=True,
        ),
    )
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=config.num_nodes, flit_rate=0.1,
                             seed=2),
        warmup_cycles=0, measure_cycles=120, drain_cycles=2000,
    )
    sim.run()
    assert len(telemetry.samples) == telemetry.windows
    assert telemetry.samples[0]["window"] == 50


def test_trailing_partial_window_has_true_span():
    config = make_3dm()
    network = config.build_network()
    telemetry = NetworkTelemetry(network, TelemetryConfig(interval=100))
    for _ in range(130):
        network.step()
    telemetry.finish()
    assert telemetry.windows == 2
    assert [s["window"] for s in telemetry.samples] == [100, 30]
    assert telemetry.samples[-1]["cycle"] == 130
    telemetry.finish()  # idempotent
    assert telemetry.windows == 2


def test_detach_removes_all_hooks(tmp_path):
    network = Network(Mesh2D(2, 2, pitch_mm=1.0))
    with NetworkTelemetry(
        network, TelemetryConfig(trace_path=str(tmp_path / "t.json"))
    ) as telemetry:
        assert network.telemetry is telemetry
        recorder = telemetry._recorder
        assert recorder.on_stage in network.stage_callbacks
    assert network.telemetry is None
    assert recorder.on_stage not in network.stage_callbacks
    assert recorder.on_traverse not in network.head_traverse_callbacks
    assert telemetry._on_delivered not in network.delivery_callbacks
    network.step()  # no sampling after detach
    assert telemetry.cycles_observed == 0


def test_network_telemetry_kwarg_attaches():
    network = Network(
        Mesh2D(2, 2, pitch_mm=1.0), telemetry=TelemetryConfig(interval=10)
    )
    assert isinstance(network.telemetry, NetworkTelemetry)


# ---------------------------------------------------------------------------
# Determinism: telemetry must never perturb the simulation


@pytest.mark.parametrize(
    "config", standard_configs(), ids=lambda c: c.name
)
def test_telemetry_enabled_runs_bit_identical(config, tmp_path):
    def run(telemetry):
        network = config.build_network(shutdown_enabled=True)
        sim = Simulator(
            network,
            UniformRandomTraffic(
                num_nodes=config.num_nodes, flit_rate=0.1, seed=7,
                short_flit_fraction=0.5,
            ),
            warmup_cycles=50, measure_cycles=250, drain_cycles=3000,
            telemetry=telemetry,
        )
        return sim.run()

    plain = run(None)
    tele = run(
        TelemetryConfig(
            interval=60,
            metrics_path=str(tmp_path / f"{config.name}.jsonl"),
            trace_path=str(tmp_path / f"{config.name}.json"),
        )
    )
    assert tele.avg_latency == plain.avg_latency
    assert tele.avg_hops == plain.avg_hops
    assert tele.packets_measured == plain.packets_measured
    assert tele.flits_delivered == plain.flits_delivered
    assert tele.cycles == plain.cycles
    assert tele.events.flit_hops == plain.events.flit_hops
    assert tele.events.va_allocations == plain.events.va_allocations
    assert tele.latency_p99 == plain.latency_p99
    assert plain.telemetry is None
    assert tele.telemetry is not None and tele.telemetry.windows > 0


def test_windowed_counters_sum_to_run_totals(tmp_path):
    """The stream's per-window deltas must re-add to the run's totals."""
    path = tmp_path / "m.jsonl"
    network = Network(Mesh2D(4, 4, pitch_mm=1.0))
    telemetry = NetworkTelemetry(
        network, TelemetryConfig(interval=40, metrics_path=str(path))
    )
    packets = [  # deterministic scripted traffic
        __import__("repro.noc.packet", fromlist=["ctrl_packet"]).ctrl_packet(
            i % 16, (i * 5 + 3) % 16, created_cycle=i * 2
        )
        for i in range(40)
    ]
    sim = Simulator(network, ScheduledTraffic(packets), warmup_cycles=0,
                    measure_cycles=150, drain_cycles=2000)
    sim.run()
    samples = [
        r for r in map(json.loads, path.read_text().splitlines())
        if r["type"] == "sample"
    ]
    delivered = sum(
        s["counters"]["packets.delivered"]["delta"] for s in samples
    )
    assert delivered == network.stats.packets_delivered
    assert samples[-1]["counters"]["flits.delivered"]["total"] == (
        network.stats.flits_delivered
    )
    assert telemetry.windows == len(samples)


# ---------------------------------------------------------------------------
# Thermal probe: layer-resolved power (the online Fig. 13c path)


def test_thermal_probe_power_matches_fig13c_runner():
    """The probe's per-node-per-layer power map agrees with the offline
    experiment runner's ``router_layer_power_per_node`` when both price
    the same run: same event delta, same per-router layer histograms."""
    from repro.experiments.config import ExperimentSettings
    from repro.experiments.runner import run_uniform_point
    from repro.telemetry.sampler import _ThermalProbe

    config = make_3dm()
    settings = ExperimentSettings(
        warmup_cycles=50, measure_cycles=400, drain_cycles=5000,
        uniform_rates=(), nuca_rates=(), trace_cycles=0, workloads=(),
        seed=5,
    )
    point = run_uniform_point(
        config, 0.1, settings, short_flit_fraction=0.5,
        shutdown_enabled=True, seed=5,
    )

    network = config.build_network(shutdown_enabled=True)
    probe = _ThermalProbe(config, network)  # baselines at zero counters
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=0.1, seed=5,
            short_flit_fraction=0.5,
        ),
        warmup_cycles=50, measure_cycles=400, drain_cycles=5000,
    )
    result = sim.run()
    probe_map = probe.router_layer_power(
        network, result.window_cycles, result.events
    )
    expected = point.router_layer_power_per_node()
    assert len(probe_map) == len(expected) == config.num_nodes
    for probe_row, runner_row in zip(probe_map, expected):
        assert probe_row == pytest.approx(runner_row)
    # Layer-resolved pricing is not flat: the always-on top layer must
    # carry more power than the gated bottom layers under short flits.
    top = sum(row[0] for row in probe_map)
    bottom = sum(row[-1] for row in probe_map)
    assert top > bottom


def test_thermal_sampling_streams_finite_temperatures():
    config = make_3dm()
    network = config.build_network(shutdown_enabled=True)
    telemetry = NetworkTelemetry(
        network,
        TelemetryConfig(
            interval=100, arch_config=config, thermal=True,
            keep_samples=True,
        ),
    )
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=0.1, seed=3,
            short_flit_fraction=0.5,
        ),
        warmup_cycles=0, measure_cycles=300, drain_cycles=3000,
    )
    sim.run()
    telemetry.finish()
    assert telemetry.samples
    for sample in telemetry.samples:
        mean_k = sample["gauges"]["thermal.mean_k"]
        max_k = sample["gauges"]["thermal.max_k"]
        assert mean_k is not None and mean_k > 250.0
        assert max_k >= mean_k


def test_in_flight_spans_consistent_in_snapshot(tmp_path):
    """Packets still in flight at finish() render as open-ended spans
    and are reported in the snapshot, consistent with the trace file's
    metadata — they are not silently folded into packets_traced."""
    path = tmp_path / "trace.json"
    network = Network(Mesh2D(4, 4, pitch_mm=1.0))
    telemetry = NetworkTelemetry(
        network, TelemetryConfig(interval=50, trace_path=str(path))
    )
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=16, flit_rate=0.2, seed=7),
        warmup_cycles=0, measure_cycles=120, drain_cycles=0,
    )
    sim.run()
    telemetry.finish()
    snap = telemetry.snapshot()
    data = json.loads(path.read_text())
    assert snap.packets_in_flight > 0  # drain was cut short
    assert snap.packets_in_flight == data["otherData"]["packets_in_flight"]
    assert snap.packets_traced == data["otherData"]["packets_traced"]
    assert snap.trace_events == len(data["traceEvents"])
    assert "in flight" in snap.format()


def test_delivery_callback_without_trace_raises():
    """The hook-consistency guard survives ``python -O`` (it is a real
    raise, not an ``assert``)."""
    from repro.noc.packet import ctrl_packet

    network = Network(Mesh2D(4, 4, pitch_mm=1.0))
    telemetry = NetworkTelemetry(
        network, TelemetryConfig(interval=50, trace_path="unused.json")
    )
    packet = ctrl_packet(0, 5)
    telemetry._recorder = None   # simulate inconsistent hook state
    with pytest.raises(RuntimeError, match="trace recorder"):
        telemetry._on_delivered(packet, cycle=10)
