"""Topology base-class validation tests."""

import pytest

from repro.topology.base import LinkKind, LinkSpec, Topology


def _link(src=0, dst=1, src_port="E", dst_port="W", length=1.0, span=1):
    return LinkSpec(
        src=src, dst=dst, src_port=src_port, dst_port=dst_port,
        kind=LinkKind.NORMAL, length_mm=length, span=span,
    )


class TestValidation:
    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [_link(src=0, dst=5)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [_link(src=1, dst=1)])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [_link(length=-1.0)])

    def test_zero_span_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [_link(span=0)])

    def test_duplicate_output_port_rejected(self):
        with pytest.raises(ValueError):
            Topology(3, [_link(0, 1, "E", "W"), _link(0, 2, "E", "W")])

    def test_duplicate_input_port_rejected(self):
        with pytest.raises(ValueError):
            Topology(3, [_link(0, 2, "E", "W"), _link(1, 2, "N", "W")])


class TestPortTables:
    def test_out_and_in_ports_consistent(self):
        topo = Topology(2, [_link(0, 1, "E", "W"), _link(1, 0, "W", "E")])
        assert topo.out_ports[0]["E"].dst == 1
        assert topo.in_ports[1]["W"].src == 0
        assert topo.degree(0) == 1
        assert topo.neighbors(0) == [1]

    def test_port_names_deduplicate_in_out(self):
        topo = Topology(2, [_link(0, 1, "E", "W"), _link(1, 0, "W", "E")])
        # Node 0 uses "E" for output and input: one entry after local.
        assert topo.port_names(0) == ["L", "E"]

    def test_asymmetric_link_shows_on_both_tables(self):
        topo = Topology(2, [_link(0, 1, "E", "W")])
        assert "E" in topo.port_names(0)
        assert "W" in topo.port_names(1)

    def test_max_radix_counts_local(self):
        topo = Topology(2, [_link(0, 1, "E", "W"), _link(1, 0, "W", "E")])
        assert topo.max_radix() == 2

    def test_coordinates_abstract(self):
        topo = Topology(2, [_link(0, 1, "E", "W")])
        with pytest.raises(NotImplementedError):
            topo.coordinates(0)
