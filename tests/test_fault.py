"""Fault-tolerant express routing tests (Sec. 3.3's fault-tolerance use)."""

import pytest

from repro.core.arch import make_2db, make_3dme
from repro.core.express import route_path
from repro.core.fault import (
    FaultTolerantExpressRouting,
    UnroutableError,
    both_directions,
    build_fault_tolerant_network,
    routable_under,
    single_failure_coverage,
)
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.express_mesh import ExpressMesh
from repro.traffic.base import ScheduledTraffic
from repro.traffic.synthetic import UniformRandomTraffic


@pytest.fixture
def mesh():
    return ExpressMesh(6, 6, pitch_mm=1.0, span=2)


class TestRoutingAroundFailures:
    def test_no_failures_matches_express_routing(self, mesh):
        from repro.noc.routing import ExpressXYRouting

        ft = FaultTolerantExpressRouting(mesh, ())
        plain = ExpressXYRouting(mesh)
        for src in range(0, 36, 5):
            for dst in range(36):
                if src != dst:
                    assert ft.output_port(src, dst) == plain.output_port(src, dst)

    def test_failed_express_degrades_to_normal(self, mesh):
        node = mesh.node_at((0, 0))
        target = mesh.node_at((4, 0))
        express_link = mesh.out_ports[node]["EE"]
        ft = FaultTolerantExpressRouting(mesh, [(express_link.src, express_link.dst)])
        assert ft.output_port(node, target) == "E"

    def test_failed_normal_bypassed_minimally(self, mesh):
        """dx >= span: the express channel is the minimal alternative."""
        node = mesh.node_at((0, 0))
        target = mesh.node_at((3, 0))
        normal = mesh.link_between(node, mesh.node_at((1, 0)))
        ft = FaultTolerantExpressRouting(mesh, [(normal.src, normal.dst)])
        assert ft.output_port(node, target) == "EE"

    def test_failed_normal_overshoot_and_return(self, mesh):
        """dx == 1 with the normal channel dead: overshoot via express,
        come back one hop — exactly one extra hop."""
        src = mesh.node_at((0, 0))
        dst = mesh.node_at((1, 0))
        normal = mesh.link_between(src, dst)
        ft = FaultTolerantExpressRouting(mesh, [(normal.src, normal.dst)])
        path = route_path(mesh, src, dst, ft)
        coords = [mesh.coordinates(n) for n in path]
        assert coords == [(0, 0), (2, 0), (1, 0)]

    def test_unroutable_when_both_channels_dead(self, mesh):
        src = mesh.node_at((0, 0))
        normal = mesh.link_between(src, mesh.node_at((1, 0)))
        express = mesh.out_ports[src]["EE"]
        failed = [(normal.src, normal.dst), (express.src, express.dst)]
        ft = FaultTolerantExpressRouting(mesh, failed)
        with pytest.raises(UnroutableError):
            ft.output_port(src, mesh.node_at((1, 0)))

    def test_edge_normal_failure_not_tolerable(self, mesh):
        """x=4 -> x=5 has no express sibling (EE would leave the grid)."""
        src = mesh.node_at((4, 0))
        dst = mesh.node_at((5, 0))
        link = mesh.link_between(src, dst)
        assert not routable_under(mesh, [(link.src, link.dst)])

    def test_unknown_failed_channel_rejected(self, mesh):
        with pytest.raises(KeyError):
            FaultTolerantExpressRouting(mesh, [(0, 35)])

    def test_both_directions_helper(self):
        assert both_directions(1, 2) == {(1, 2), (2, 1)}


class TestCoverage:
    def test_single_failure_coverage_substantial(self, mesh):
        """The express sibling tolerates most single channel failures —
        the quantified version of the paper's fault-tolerance claim."""
        coverage = single_failure_coverage(ExpressMesh(4, 4, pitch_mm=1.0))
        assert 0.5 <= coverage < 1.0

    def test_all_express_failures_tolerable(self, mesh):
        from repro.topology.base import LinkKind

        small = ExpressMesh(4, 4, pitch_mm=1.0)
        for link in small.links:
            if link.kind is LinkKind.EXPRESS:
                assert routable_under(small, [(link.src, link.dst)])


class TestMultiFailureProperties:
    from hypothesis import given, settings as hyp_settings, strategies as st

    @hyp_settings(max_examples=15, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=47), min_size=1,
                   max_size=4))
    def test_property_express_failures_always_tolerable(self, indices):
        """Any combination of failed *express* channels keeps the 4x4
        mesh fully connected (the normal sibling is always minimal)."""
        from repro.topology.base import LinkKind

        mesh = ExpressMesh(4, 4, pitch_mm=1.0)
        express_links = [
            l for l in mesh.links if l.kind is LinkKind.EXPRESS
        ]
        failed = {
            (express_links[i % len(express_links)].src,
             express_links[i % len(express_links)].dst)
            for i in indices
        }
        assert routable_under(mesh, failed)

    @hyp_settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=35),
           st.integers(min_value=0, max_value=35))
    def test_property_detour_costs_at_most_one_hop(self, src, dst):
        """With one interior normal link dead, any routable pair pays at
        most one extra hop vs the healthy network."""
        from repro.core.fault import FaultTolerantExpressRouting

        mesh = ExpressMesh(6, 6, pitch_mm=1.0)
        victim = mesh.link_between(mesh.node_at((2, 2)), mesh.node_at((3, 2)))
        routing = FaultTolerantExpressRouting(
            mesh, [(victim.src, victim.dst)]
        )
        if src == dst:
            return
        healthy = len(route_path(mesh, src, dst)) - 1
        faulty = len(route_path(mesh, src, dst, routing)) - 1
        assert faulty <= healthy + 1


class TestFaultyNetworkEndToEnd:
    def test_packets_delivered_across_failure(self):
        config = make_3dme()
        mesh = ExpressMesh(6, 6, pitch_mm=1.58, span=2)
        victim = mesh.link_between(0, 1)
        network = build_fault_tolerant_network(
            config, [(victim.src, victim.dst)]
        )
        packets = [ctrl_packet(0, 1, created_cycle=0),
                   data_packet(0, 3, created_cycle=0)]
        sim = Simulator(network, ScheduledTraffic(packets),
                        warmup_cycles=0, measure_cycles=200, drain_cycles=2000)
        sim.run()
        for packet in packets:
            assert packet.delivered_cycle is not None
        # The 0 -> 1 packet took the overshoot detour: 2 hops, not 1.
        assert packets[0].hops == 2

    def test_network_survives_failure_under_load(self):
        config = make_3dme()
        mesh = ExpressMesh(6, 6, pitch_mm=1.58, span=2)
        victim = mesh.link_between(14, 15)
        network = build_fault_tolerant_network(
            config, both_directions(victim.src, victim.dst)
        )
        sim = Simulator(
            network,
            UniformRandomTraffic(num_nodes=36, flit_rate=0.15, seed=4),
            warmup_cycles=300, measure_cycles=1500, drain_cycles=15000,
        )
        result = sim.run()
        assert not result.saturated
        assert network.events.link_flits.get("express", 0) > 0

    def test_latency_degrades_gracefully(self):
        config = make_3dme()
        settingsish = dict(warmup_cycles=300, measure_cycles=1500,
                           drain_cycles=15000)
        mesh = ExpressMesh(6, 6, pitch_mm=1.58, span=2)
        victim = mesh.link_between(14, 15)

        healthy = build_fault_tolerant_network(config, ())
        sim = Simulator(healthy, UniformRandomTraffic(36, 0.15, seed=4),
                        **settingsish)
        base = sim.run().avg_latency

        faulty = build_fault_tolerant_network(
            config, both_directions(victim.src, victim.dst)
        )
        sim = Simulator(faulty, UniformRandomTraffic(36, 0.15, seed=4),
                        **settingsish)
        degraded = sim.run().avg_latency
        assert degraded >= base * 0.99
        assert degraded < base * 1.5  # graceful, not collapse

    def test_requires_express_config(self):
        with pytest.raises(ValueError):
            build_fault_tolerant_network(make_2db(), ())
