"""Integration tests pinning the paper's headline result *shapes*.

These are the claims DESIGN.md commits to reproducing (who wins, by
roughly what factor).  Budgets are kept small, so tolerances are loose;
the benchmark harnesses run the same comparisons at full scale.
"""

import pytest

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.core.express import average_hops, nuca_pairs
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_nuca_point, run_uniform_point


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=400,
        measure_cycles=2000,
        drain_cycles=10000,
        uniform_rates=(0.2,),
        nuca_rates=(0.15,),
        trace_cycles=15000,
        workloads=("tpcw",),
        seed=5,
    )


@pytest.fixture(scope="module")
def ur_points(settings):
    return {
        cfg.name: run_uniform_point(cfg, 0.2, settings)
        for cfg in (
            make_2db(), make_3db(), make_3dm(), make_3dm(nc=True),
            make_3dme(), make_3dme(nc=True),
        )
    }


class TestLatencyShapes:
    def test_3dme_is_fastest(self, ur_points):
        best = min(ur_points.values(), key=lambda p: p.avg_latency)
        assert best.arch == "3DM-E"

    def test_3dme_saves_30_to_60pct_vs_2db(self, ur_points):
        """Paper: up to 51% latency reduction vs 2DB (UR)."""
        saving = 1 - ur_points["3DM-E"].avg_latency / ur_points["2DB"].avg_latency
        assert 0.30 <= saving <= 0.60

    def test_3dme_saves_15_to_40pct_vs_3db(self, ur_points):
        """Paper: ~26% saving vs 3DB at 30% injection."""
        saving = 1 - ur_points["3DM-E"].avg_latency / ur_points["3DB"].avg_latency
        assert 0.15 <= saving <= 0.40

    def test_3dm_beats_2db(self, ur_points):
        assert ur_points["3DM"].avg_latency < ur_points["2DB"].avg_latency

    def test_pipeline_merge_wins(self, ur_points):
        """3DM < 3DM(NC), 3DM-E < 3DM-E(NC) (Sec. 4.2.1)."""
        assert ur_points["3DM"].avg_latency < ur_points["3DM(NC)"].avg_latency
        assert ur_points["3DM-E"].avg_latency < ur_points["3DM-E(NC)"].avg_latency

    def test_2db_and_3dm_nc_equivalent(self, ur_points):
        """Same logical network and pipeline: near-identical latency."""
        assert ur_points["3DM(NC)"].avg_latency == pytest.approx(
            ur_points["2DB"].avg_latency, rel=0.02
        )


class TestHopCountShapes:
    def test_ur_hops_2db_equals_3dm(self, ur_points):
        assert ur_points["3DM"].avg_hops == pytest.approx(
            ur_points["2DB"].avg_hops, rel=0.02
        )

    def test_ur_hops_3dme_lowest(self, ur_points):
        hops = {name: p.avg_hops for name, p in ur_points.items()}
        assert min(hops, key=hops.get) == "3DM-E"

    def test_ur_hops_3db_below_2db(self, ur_points):
        """Under UR the 3x3x4 mesh has a shorter mean distance."""
        assert ur_points["3DB"].avg_hops < ur_points["2DB"].avg_hops

    def test_nuca_hops_3db_worse_than_2db(self):
        """Fig. 11d: the 3DB layout penalises CPU-cache traffic because
        every request crosses the vertical dimension (Sec. 4.2.1)."""
        cfg2, cfg3 = make_2db(), make_3db()
        hops_2db = average_hops(
            cfg2.build_topology(), nuca_pairs(cfg2.cpu_nodes, cfg2.cache_nodes)
        )
        hops_3db = average_hops(
            cfg3.build_topology(), nuca_pairs(cfg3.cpu_nodes, cfg3.cache_nodes)
        )
        assert hops_3db > hops_2db


class TestNucaLatencyShapes:
    @pytest.fixture(scope="class")
    def nuca_points(self, settings):
        return {
            cfg.name: run_nuca_point(cfg, 0.15, settings)
            for cfg in (make_2db(), make_3db(), make_3dm(), make_3dme())
        }

    def test_3db_loses_its_ur_advantage(self, nuca_points, ur_points):
        """3DB's latency edge over 2DB shrinks or flips under NUCA-UR."""
        ur_gain = 1 - ur_points["3DB"].avg_latency / ur_points["2DB"].avg_latency
        nuca_gain = (
            1 - nuca_points["3DB"].avg_latency / nuca_points["2DB"].avg_latency
        )
        assert nuca_gain < ur_gain

    def test_3dme_fastest_under_nuca(self, nuca_points):
        best = min(nuca_points.values(), key=lambda p: p.avg_latency)
        assert best.arch == "3DM-E"


class TestPowerShapes:
    def test_3dm_power_below_2db_and_3db(self, ur_points):
        """Paper: ~22%/15% power saving for 3DM vs 2DB/3DB."""
        assert ur_points["3DM"].total_power_w < ur_points["2DB"].total_power_w
        assert ur_points["3DM"].total_power_w < ur_points["3DB"].total_power_w

    def test_3dme_power_saving_vs_2db_in_band(self, ur_points):
        """Paper: up to 42% power saving for 3DM-E vs 2DB (UR)."""
        saving = 1 - ur_points["3DM-E"].total_power_w / ur_points["2DB"].total_power_w
        assert 0.2 <= saving <= 0.55

    def test_pipeline_merge_no_big_power_impact(self, ur_points):
        """Sec. 4.2.2: combining has no significant power effect."""
        assert ur_points["3DM"].total_power_w == pytest.approx(
            ur_points["3DM(NC)"].total_power_w, rel=0.05
        )

    def test_pdp_3dme_best_2db_worst(self, ur_points):
        """Fig. 12d: 3DM-E and 2DB bracket the PDP range."""
        pdp = {name: p.pdp for name, p in ur_points.items()}
        assert min(pdp, key=pdp.get) == "3DM-E"
        assert max(pdp, key=pdp.get) == "2DB"


class TestShutdownShapes:
    def test_short_flits_reduce_power(self, settings):
        cfg = make_3dm()
        base = run_uniform_point(cfg, 0.2, settings, short_flit_fraction=0.0,
                                 shutdown_enabled=True)
        gated = run_uniform_point(cfg, 0.2, settings, short_flit_fraction=0.5,
                                  shutdown_enabled=True)
        saving = 1 - gated.power.dynamic_w / base.power.dynamic_w
        # Paper: up to 36% dynamic saving at 50% short flits.
        assert 0.15 <= saving <= 0.40

    def test_temperature_drop_grows_with_injection(self, settings):
        from repro.experiments.thermal_exp import fig13c_temperature_reduction

        drops = fig13c_temperature_reduction(
            settings, rates=(0.05, 0.25), short_fraction=0.5
        )
        assert drops[0.25] > drops[0.05] > 0
