"""Packet-tracer tests."""

import pytest

from repro.core.express import route_path
from repro.noc.network import Network
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.noc.tracer import PacketTracer
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic


def _traced_run(packets, **tracer_kwargs):
    network = Network(Mesh2D(4, 4, pitch_mm=1.0))
    tracer = PacketTracer(network, **tracer_kwargs)
    sim = Simulator(network, ScheduledTraffic(packets), warmup_cycles=0,
                    measure_cycles=300, drain_cycles=2000)
    sim.run()
    return network, tracer


def test_packet_route_matches_routing_function():
    packet = ctrl_packet(0, 15, created_cycle=0)
    network, tracer = _traced_run([packet])
    expected = route_path(network.topology, 0, 15)
    assert tracer.packet_route(packet.pid) == expected


def test_events_cover_all_flits():
    packet = data_packet(0, 3, created_cycle=0)
    _, tracer = _traced_run([packet])
    # 5 flits x 4 routers (incl. ejection router) = 20 traversals.
    mine = [e for e in tracer.events if e.packet_id == packet.pid]
    assert len(mine) == 20


def test_router_timeline_ordered():
    packets = [ctrl_packet(0, 3, created_cycle=0),
               ctrl_packet(1, 3, created_cycle=2)]
    _, tracer = _traced_run(packets)
    timeline = tracer.router_timeline(2)
    cycles = [e.cycle for e in timeline]
    assert cycles == sorted(cycles)


def test_utilization_by_node():
    packet = ctrl_packet(0, 3, created_cycle=0)
    _, tracer = _traced_run([packet])
    util = tracer.utilization_by_node()
    assert util == {0: 1, 1: 1, 2: 1, 3: 1}


def test_max_events_cap_and_dropped_counter():
    packets = [data_packet(i, (i + 5) % 16, created_cycle=i) for i in range(10)]
    _, tracer = _traced_run(packets, max_events=5)
    assert len(tracer.events) == 5
    assert tracer.dropped > 0


def test_detach_stops_recording():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    tracer = PacketTracer(network)
    tracer.detach()
    sim = Simulator(network, ScheduledTraffic([ctrl_packet(0, 1, created_cycle=0)]),
                    warmup_cycles=0, measure_cycles=100, drain_cycles=200)
    sim.run()
    assert tracer.events == []
    tracer.detach()  # idempotent


def test_context_manager_detaches():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    with PacketTracer(network) as tracer:
        pass
    assert tracer._on_traverse not in network.traverse_callbacks


def test_validation():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    with pytest.raises(ValueError):
        PacketTracer(network, max_events=0)


def test_truncation_is_surfaced_not_silent():
    packets = [data_packet(i, (i + 5) % 16, created_cycle=i) for i in range(10)]
    _, tracer = _traced_run(packets, max_events=5)
    assert tracer.truncated
    summary = tracer.summary()
    assert summary["events"] == 5
    assert summary["max_events"] == 5
    assert summary["dropped"] == tracer.dropped > 0
    assert summary["truncated"] is True
    text = tracer.format()
    assert "TRUNCATED" in text
    assert str(tracer.dropped) in text


def test_untruncated_summary():
    packet = ctrl_packet(0, 3, created_cycle=0)
    _, tracer = _traced_run([packet])
    assert not tracer.truncated
    summary = tracer.summary()
    assert summary["dropped"] == 0
    assert summary["truncated"] is False
    assert summary["packets"] == 1
    assert summary["nodes"] == 4  # src, two intermediates, dst
    assert "TRUNCATED" not in tracer.format()
