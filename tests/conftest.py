"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.experiments.config import ExperimentSettings


@pytest.fixture(autouse=True, scope="session")
def _sanitize_from_env():
    """Opt the whole suite into the NoC sanitizer via ``REPRO_SANITIZE=1``.

    CI runs a second tier-1 pass with the variable set; every
    :class:`~repro.noc.network.Network` any test builds then audits the
    flit-conservation / credit / VC-state invariants as it steps
    (``REPRO_SANITIZE_INTERVAL`` controls the audit cadence, default
    every cycle).  Tests that pass ``sanitize=...`` explicitly are left
    alone.
    """
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        yield
        return
    from repro.noc.network import Network

    interval = int(os.environ.get("REPRO_SANITIZE_INTERVAL", "1"))
    original = Network.__init__

    def sanitizing_init(self, *args, **kwargs):
        kwargs.setdefault("sanitize", True)
        kwargs.setdefault("sanitize_interval", interval)
        original(self, *args, **kwargs)

    Network.__init__ = sanitizing_init
    try:
        yield
    finally:
        Network.__init__ = original


@pytest.fixture
def cfg_2db():
    return make_2db()


@pytest.fixture
def cfg_3db():
    return make_3db()


@pytest.fixture
def cfg_3dm():
    return make_3dm()


@pytest.fixture
def cfg_3dme():
    return make_3dme()


@pytest.fixture
def all_configs(cfg_2db, cfg_3db, cfg_3dm, cfg_3dme):
    return [cfg_2db, cfg_3db, cfg_3dm, cfg_3dme]


@pytest.fixture
def tiny_settings():
    """Very small cycle budgets for fast simulation tests."""
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=800,
        drain_cycles=5000,
        uniform_rates=(0.05, 0.2),
        nuca_rates=(0.05, 0.15),
        trace_cycles=8000,
        workloads=("tpcw",),
        seed=11,
    )
