"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.experiments.config import ExperimentSettings


@pytest.fixture
def cfg_2db():
    return make_2db()


@pytest.fixture
def cfg_3db():
    return make_3db()


@pytest.fixture
def cfg_3dm():
    return make_3dm()


@pytest.fixture
def cfg_3dme():
    return make_3dme()


@pytest.fixture
def all_configs(cfg_2db, cfg_3db, cfg_3dm, cfg_3dme):
    return [cfg_2db, cfg_3db, cfg_3dm, cfg_3dme]


@pytest.fixture
def tiny_settings():
    """Very small cycle budgets for fast simulation tests."""
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=800,
        drain_cycles=5000,
        uniform_rates=(0.05, 0.2),
        nuca_rates=(0.05, 0.15),
        trace_cycles=8000,
        workloads=("tpcw",),
        seed=11,
    )
