"""MOESI protocol variant tests (cache-to-cache forwarding)."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cachesim import LineState
from repro.cache.directory import DirState, DirectoryBank
from repro.cache.hierarchy import CmpSystem, generate_trace
from repro.cache.messages import CoherenceMessage, MessageType
from repro.core.arch import make_2db
from repro.traffic.workloads import WORKLOADS

CPUS = [100, 101, 102, 103]
BANK_NODE = 50
LINE = 0x1C0


class MoesiHarness:
    def __init__(self):
        self.sent = []
        self.bank = DirectoryBank(
            bank_index=0, node=BANK_NODE, cpu_nodes=CPUS,
            profile=WORKLOADS["tpcw"],
            send=lambda msg, delay: self.sent.append((msg, delay)),
            seed=5, protocol="moesi",
        )

    def request(self, mtype, cpu, line=LINE, requester=None):
        self.bank.handle(CoherenceMessage(
            mtype=mtype, src=CPUS[cpu], dst=BANK_NODE, address=line,
            requester=cpu if requester is None else requester,
        ))

    def take(self):
        out, self.sent = self.sent, []
        return out


@pytest.fixture
def harness():
    return MoesiHarness()


class TestDirectoryForwarding:
    def test_second_reader_gets_forward_not_recall(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)
        ((fwd, _),) = harness.take()
        assert fwd.mtype is MessageType.FWD_GETS
        assert fwd.dst == CPUS[0]           # goes to the owner
        assert fwd.requester == 1           # names the forward target
        assert harness.bank.entries[LINE].busy

    def test_fwd_done_adopts_owned_state(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)
        harness.take()
        harness.request(MessageType.FWD_DONE, cpu=0)
        entry = harness.bank.entries[LINE]
        assert entry.state is DirState.OWNED
        assert entry.owner == 0
        assert entry.sharers == {1}
        assert not entry.busy

    def test_fwd_miss_falls_back_to_l2(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)
        harness.take()
        harness.request(MessageType.FWD_MISS, cpu=0)
        ((data, _),) = harness.take()
        assert data.mtype is MessageType.DATA_S and data.dst == CPUS[1]
        entry = harness.bank.entries[LINE]
        assert entry.state is DirState.SHARED and entry.sharers == {1}

    def test_getm_at_owned_recalls_owner_and_sharers(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)
        harness.take()
        harness.request(MessageType.FWD_DONE, cpu=0)
        harness.take()
        harness.request(MessageType.GETM, cpu=2)
        invs = [m for m, _ in harness.take() if m.mtype is MessageType.INV]
        assert {m.dst for m in invs} == {CPUS[0], CPUS[1]}
        # Dirty owner answers with data; writer then gets exclusive.
        harness.request(MessageType.WB_DATA, cpu=0)
        ((data, _),) = harness.take()
        assert data.mtype is MessageType.DATA_E and data.dst == CPUS[2]

    def test_owner_write_back_into_exclusive(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)
        harness.take()
        harness.request(MessageType.FWD_DONE, cpu=0)
        harness.take()
        # The owner wants to write again: sharers die, owner gets E.
        harness.request(MessageType.GETM, cpu=0)
        sent = harness.take()
        kinds = sorted(m.mtype.value for m, _ in sent)
        assert kinds == ["DataExcl", "Inv"]
        entry = harness.bank.entries[LINE]
        assert entry.state is DirState.EXCLUSIVE and entry.owner == 0

    def test_voluntary_owned_eviction_demotes_to_shared(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)
        harness.take()
        harness.request(MessageType.FWD_DONE, cpu=0)
        harness.take()
        harness.request(MessageType.WB_DATA, cpu=0)
        ((ack, _),) = harness.take()
        assert ack.mtype is MessageType.WB_ACK
        entry = harness.bank.entries[LINE]
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1}
        assert entry.owner == -1

    def test_wb_race_during_forward_served_by_l2(self, harness):
        harness.request(MessageType.GETS, cpu=0)
        harness.take()
        harness.request(MessageType.GETS, cpu=1)  # forward in flight
        harness.take()
        # Owner evicts before seeing the FwdGetS.
        harness.request(MessageType.WB_DATA, cpu=0)
        sent = harness.take()
        kinds = {m.mtype for m, _ in sent}
        assert MessageType.DATA_S in kinds and MessageType.WB_ACK in kinds
        # Late FwdMiss is ignored as stale.
        harness.request(MessageType.FWD_MISS, cpu=0)
        assert harness.take() == []
        harness.bank.check_invariants()

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError):
            DirectoryBank(
                bank_index=0, node=1, cpu_nodes=[2],
                profile=WORKLOADS["tpcw"], send=lambda m, d: None,
                protocol="mosi",
            )


class TestMoesiSystem:
    def test_trace_has_cache_to_cache_traffic(self):
        _, stats = generate_trace(
            make_2db(), WORKLOADS["barnes"], cycles=40000, seed=3,
            protocol="moesi",
        )
        assert stats.cache_to_cache > 0
        assert stats.messages_by_type.get("FwdGetS", 0) > 0

    def test_moesi_reduces_writebacks(self):
        _, mesi = generate_trace(
            make_2db(), WORKLOADS["barnes"], cycles=40000, seed=3,
            protocol="mesi",
        )
        _, moesi = generate_trace(
            make_2db(), WORKLOADS["barnes"], cycles=40000, seed=3,
            protocol="moesi",
        )
        assert moesi.messages_by_type.get("WbData", 0) <= mesi.messages_by_type.get(
            "WbData", 0
        )

    def test_data_messages_sourced_by_l1s(self):
        records, _ = generate_trace(
            make_2db(), WORKLOADS["barnes"], cycles=40000, seed=3,
            protocol="moesi",
        )
        config = make_2db()
        cpu_nodes = set(config.cpu_nodes)
        cpu_sourced_data = [
            r for r in records
            if r.payload_groups is not None
            and r.src in cpu_nodes
            and r.dst in cpu_nodes
        ]
        assert cpu_sourced_data, "expected CPU-to-CPU data packets"


class TestMoesiClosedLoop:
    def test_moesi_over_real_noc(self):
        """MOESI coupled to the cycle-accurate network drains cleanly."""
        from repro.cache.hierarchy import CmpTraffic
        from repro.noc.simulator import Simulator

        config = make_2db()
        traffic = CmpTraffic(
            config, WORKLOADS["barnes"], seed=5, issue_horizon=4000,
            protocol="moesi",
        )
        network = config.build_network()
        sim = Simulator(network, traffic, warmup_cycles=0,
                        measure_cycles=4000, drain_cycles=40000,
                        drain_to_quiescence=True)
        result = sim.run()
        assert not result.saturated
        assert traffic.system.outstanding_mshrs() == 0
        for bank in traffic.system.banks:
            bank.check_invariants()


#: Hypothesis access interleavings, as in test_protocol_properties.
LINE_POOL = [0x40 * i for i in range(10)]
PROFILE = dataclasses.replace(WORKLOADS["barnes"], working_set_lines=1024)


def _drain(system, limit=200000):
    while (system.pending_events() or system.outbox) and system.now < limit:
        for _, msg in system.drain_outbox(system.now):
            system.schedule(system.now + 8, lambda m=msg: system.dispatch(m))
        if not system.pending_events():
            break
        system.advance_to(system._events[0][0])


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(LINE_POOL), st.booleans()),
    min_size=1, max_size=50,
))
def test_property_moesi_safety(accesses):
    """Single-writer + directory agreement + liveness under MOESI."""
    config = make_2db(width=4, height=4, num_cpus=4)
    system = CmpSystem(config, PROFILE, seed=3, protocol="moesi")
    system.set_issue_horizon(0)
    system._events.clear()
    for cpu, line, is_write in accesses:
        system.l1s[cpu].access(line, is_write)
        system.advance_to(system.now + 3)
    _drain(system)
    assert system.outstanding_mshrs() == 0
    exclusive_holders = {}
    for cpu, l1 in enumerate(system.l1s):
        for line, state in l1.cache.resident_lines().items():
            if state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                assert line not in exclusive_holders
                exclusive_holders[line] = cpu
    for bank in system.banks:
        bank.check_invariants()
        for line, entry in bank.entries.items():
            if entry.busy:
                continue
            if entry.state is DirState.OWNED:
                owner_state = system.l1s[entry.owner].cache.resident_lines().get(line)
                assert owner_state is LineState.OWNED