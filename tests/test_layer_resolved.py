"""Layer-resolved datapath tests.

Four layers of confidence in the active-layer plumbing:

* detector agreement — :meth:`ShortFlitDetector.active_layers` matches
  :func:`~repro.traffic.patterns.flit_active_groups` on flits composed
  from every frequent-pattern-class combination, and the network-level
  detector sees every injected flit exactly once;
* differential — the per-active-layer-count event histograms sum back to
  the legacy raw totals bit-identically, and ``sum_k k*count[k]/L``
  reproduces the legacy ``*_weighted`` floats exactly (k/L is dyadic for
  L = 4, so ``==`` not ``approx``);
* simulated vs analytic — the layer-resolved power report's saving
  fraction agrees with the closed-form shutdown model evaluated at the
  *measured* short-flit fraction within 2% relative, and the
  layer-resolved dynamic power sums back to the legacy report;
* invariants downstream — sanitizer mask auditing, per-layer thermal
  maps, and timing neutrality (shutdown accounting never moves a flit).
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.arch import make_2db, make_3dm, make_3dme
from repro.core.shutdown import ShortFlitDetector
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_uniform_point
from repro.noc.sanitizer import SanityError
from repro.noc.simulator import Simulator
from repro.noc.stats import EventCounts
from repro.power.gating import shutdown_saving
from repro.thermal.floorplan import floorplan_for
from repro.thermal.hotspot import temperature_drop
from repro.traffic.patterns import (
    WORD_MASK,
    WORDS_PER_FLIT,
    PatternKind,
    flit_active_groups,
)
from repro.traffic.synthetic import UniformRandomTraffic

#: One exemplar 32-bit word per frequent-pattern class (Fig. 1).
PATTERN_WORDS = {
    PatternKind.ZERO: 0,
    PatternKind.ONE: WORD_MASK,
    PatternKind.SIGN8: 0x7F,
    PatternKind.SIGN16: 0x1234,
    PatternKind.REPEATED: 0xABABABAB,
    PatternKind.RANDOM: 0xDEADBEEF,
}


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=100,
        measure_cycles=400,
        drain_cycles=4000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=5000,
        workloads=("tpcw",),
        seed=7,
    )


class TestDetectorAgreement:
    def test_every_pattern_class_combination(self):
        """Detector and word-level classifier agree on all 6^4 flits."""
        detector = ShortFlitDetector()
        flits = 0
        shorts = 0
        for combo in itertools.product(PatternKind, repeat=WORDS_PER_FLIT):
            words = [PATTERN_WORDS[kind] for kind in combo]
            expected = flit_active_groups(words)
            assert detector.active_layers(words) == expected, combo
            assert ShortFlitDetector().observe(expected) == (1 << expected) - 1
            flits += 1
            shorts += expected == 1
        assert detector.flits_seen == flits
        assert detector.short_flits == shorts
        assert detector.observed_short_fraction == pytest.approx(shorts / flits)

    def test_observe_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            ShortFlitDetector().observe(0)

    def test_network_detector_sees_every_injected_flit(self):
        config = make_3dm()
        network = config.build_network(shutdown_enabled=True)
        sim = Simulator(
            network,
            UniformRandomTraffic(
                config.num_nodes, 0.1, short_flit_fraction=0.5, seed=3
            ),
            warmup_cycles=0,
            measure_cycles=400,
            drain_cycles=4000,
        )
        sim.run()
        detector = network.short_flit_detector
        # Observed at injection, so everything delivered was seen (flits
        # still queued at the drain cap are seen but not delivered).
        assert detector.flits_seen >= network.stats.flits_delivered > 0
        # Default packet mix: half control (1 short flit), half data
        # (short head + 4 payload flits short with probability s), so
        # the measured fraction is (1 + 2s)/3, not the nominal s.
        assert detector.observed_short_fraction == pytest.approx(
            (1 + 2 * 0.5) / 3, abs=0.05
        )


class TestLayerHistogramDifferential:
    @pytest.mark.parametrize("shutdown", [True, False])
    def test_histograms_sum_to_legacy_totals(self, settings, shutdown):
        point = run_uniform_point(
            make_3dm(), 0.15, settings,
            short_flit_fraction=0.5, shutdown_enabled=shutdown,
        )
        events = point.sim.events
        groups = 4
        triples = [
            (events.buffer_writes, events.buffer_writes_by_layers,
             events.buffer_writes_weighted),
            (events.buffer_reads, events.buffer_reads_by_layers,
             events.buffer_reads_weighted),
            (events.xbar_traversals, events.xbar_traversals_by_layers,
             events.xbar_traversals_weighted),
        ]
        for raw, by_layers, weighted in triples:
            assert raw > 0
            assert set(by_layers) <= set(range(1, groups + 1))
            # Bit-identical: raw totals are ints, and k/groups is dyadic.
            assert sum(by_layers.values()) == raw
            assert sum(
                k * count / groups for k, count in by_layers.items()
            ) == weighted
        assert sum(events.flit_hops_by_layers.values()) == events.flit_hops
        # Weighted link mm from the pooled histogram equals the per-kind
        # legacy accumulation (float sums, so approx at tight tolerance).
        assert sum(
            k * mm / groups for k, mm in events.link_mm_by_layers.items()
        ) == pytest.approx(
            sum(events.link_mm_weighted.values()), rel=1e-9
        )
        if not shutdown:
            # Without shutdown every event drives all layers.
            for _, by_layers, _ in triples:
                assert set(by_layers) == {groups}

    def test_events_at_layer_is_exceedance(self):
        by_layers = {1: 10, 2: 5, 4: 2}
        assert EventCounts.events_at_layer(by_layers, 0) == 17
        assert EventCounts.events_at_layer(by_layers, 1) == 7
        assert EventCounts.events_at_layer(by_layers, 2) == 2
        assert EventCounts.events_at_layer(by_layers, 3) == 2
        assert EventCounts.events_at_layer(by_layers, 4) == 0
        # Total layer-events equals sum k*count.
        assert sum(
            EventCounts.events_at_layer(by_layers, layer)
            for layer in range(4)
        ) == sum(k * count for k, count in by_layers.items())

    def test_delta_and_copy_carry_layer_histograms(self, settings):
        point = run_uniform_point(
            make_3dm(), 0.15, settings,
            short_flit_fraction=0.5, shutdown_enabled=True,
        )
        events = point.sim.events
        snap = events.copy()
        assert snap.buffer_writes_by_layers == events.buffer_writes_by_layers
        assert snap.buffer_writes_by_layers is not events.buffer_writes_by_layers
        delta = events.delta(snap)
        assert all(v == 0 for v in delta.buffer_writes_by_layers.values())


class TestSimulatedVsAnalytic:
    @pytest.mark.parametrize("config", [make_2db(), make_3dm(), make_3dme()],
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("short_fraction", [0.25, 0.50])
    def test_agreement_at_measured_fraction(
        self, settings, config, short_fraction
    ):
        point = run_uniform_point(
            config, 0.1, settings,
            short_flit_fraction=short_fraction, shutdown_enabled=True,
        )
        events = point.sim.events
        measured = events.short_flit_hops / events.flit_hops
        simulated = point.layer_power.shutdown_saving_fraction
        analytic = shutdown_saving(config, measured).saving_fraction
        assert simulated == pytest.approx(analytic, rel=0.02)

    def test_layer_power_sums_to_legacy_report(self, settings):
        point = run_uniform_point(
            make_3dm(), 0.15, settings,
            short_flit_fraction=0.5, shutdown_enabled=True,
        )
        lp = point.layer_power
        assert len(lp.layer_dynamic_w) == 4
        assert lp.dynamic_w == pytest.approx(point.power.dynamic_w, rel=1e-9)
        assert lp.leakage_w == pytest.approx(point.power.leakage_w, rel=1e-12)
        # Gating concentrates power in the always-on top layer.
        assert lp.layer_dynamic_w[0] > lp.layer_dynamic_w[-1] > 0
        assert 0.0 < lp.shutdown_saving_fraction < 1.0

    def test_layer_map_sums_to_total(self, settings):
        point = run_uniform_point(
            make_3dm(), 0.15, settings,
            short_flit_fraction=0.5, shutdown_enabled=True,
        )
        rows = point.router_layer_power_per_node()
        assert len(rows) == make_3dm().num_nodes
        total = sum(sum(row) for row in rows)
        assert total == pytest.approx(point.layer_power.total_w, rel=1e-9)
        flat = point.router_power_per_node()
        assert sum(flat) == pytest.approx(total, rel=1e-6)


class TestDownstreamInvariants:
    def test_shutdown_accounting_is_timing_neutral(self, settings):
        """The layer mask and histograms are counters only: latency and
        throughput are bit-identical with shutdown on and off."""
        on = run_uniform_point(
            make_3dm(), 0.15, settings,
            short_flit_fraction=0.5, shutdown_enabled=True,
        )
        off = run_uniform_point(
            make_3dm(), 0.15, settings,
            short_flit_fraction=0.5, shutdown_enabled=False,
        )
        assert on.sim.avg_latency == off.sim.avg_latency
        assert on.sim.avg_hops == off.sim.avg_hops
        assert on.sim.events.flit_hops == off.sim.events.flit_hops

    def test_sanitizer_validates_masks_on_clean_run(self):
        config = make_3dm()
        network = config.build_network(shutdown_enabled=True)
        sim = Simulator(
            network,
            UniformRandomTraffic(
                config.num_nodes, 0.1, short_flit_fraction=0.5, seed=9
            ),
            warmup_cycles=50,
            measure_cycles=300,
            drain_cycles=3000,
            sanitize=True,
        )
        result = sim.run()
        assert result.sanity.masks_checked > 0

    def test_sanitizer_catches_corrupted_mask(self):
        config = make_3dm()
        network = config.build_network(shutdown_enabled=True)
        sim = Simulator(
            network,
            UniformRandomTraffic(
                config.num_nodes, 0.25, short_flit_fraction=0.5, seed=5
            ),
            warmup_cycles=0,
            measure_cycles=300,
            drain_cycles=3000,
            sanitize=True,
        )
        victim = None
        for _ in range(300):
            sim._tick(generate=True)
            for router in network.routers:
                for unit in router.in_vcs:
                    if len(unit.buffer.fifo):
                        victim = unit.buffer.front()
                        break
                if victim is not None:
                    break
            if victim is not None:
                break
        assert victim is not None, "no buffered flit appeared in 300 cycles"
        victim.layer_mask = 0b101  # non-contiguous: bit 1 off, bit 2 on
        with pytest.raises(SanityError) as excinfo:
            network.sanitizer.audit(network.cycle)
        assert excinfo.value.check == "layer-mask"

    def test_floorplan_rejects_both_power_forms(self):
        config = make_3dm()
        n = config.num_nodes
        with pytest.raises(ValueError):
            floorplan_for(
                config,
                router_power_w=[0.1] * n,
                router_layer_power_w=[[0.025] * 4] * n,
            )

    def test_layer_maps_reach_thermal_solver(self):
        config = make_3dm()
        n = config.num_nodes
        base = [[0.08, 0.04, 0.04, 0.04] for _ in range(n)]
        reduced = [[0.08, 0.02, 0.02, 0.02] for _ in range(n)]
        drop = temperature_drop(
            config,
            router_layer_power_base_w=base,
            router_layer_power_reduced_w=reduced,
        )
        assert drop > 0

    def test_planar_floorplan_collapses_layer_map(self):
        config = make_2db()
        n = config.num_nodes
        rows = [[0.02, 0.01, 0.01, 0.01] for _ in range(n)]
        from_map = floorplan_for(config, router_layer_power_w=rows)
        from_flat = floorplan_for(
            config, router_power_w=[sum(row) for row in rows]
        )
        assert from_map.power_w.shape == from_flat.power_w.shape
        assert (from_map.power_w == from_flat.power_w).all()
