"""Transient thermal solver tests."""

import numpy as np
import pytest

from repro.core.arch import make_3dm
from repro.noc.simulator import Simulator
from repro.thermal.floorplan import floorplan_for
from repro.thermal.solver import ThermalGrid
from repro.thermal.stack import AMBIENT_K
from repro.thermal.transient import (
    TransientSolver,
    power_trace_from_activity,
    transient_temperatures,
)
from repro.traffic.synthetic import UniformRandomTraffic


@pytest.fixture
def grid():
    fp = floorplan_for(make_3dm(), cpu_power_w=0.0, cache_power_w=0.0)
    return ThermalGrid(fp)


class TestTransientSolver:
    def test_zero_power_stays_at_ambient(self, grid):
        solver = TransientSolver(grid, dt_s=1e-3)
        temps = np.full(grid.floorplan.power_w.shape, AMBIENT_K)
        stepped = solver.step(temps, np.zeros_like(temps))
        assert np.allclose(stepped, AMBIENT_K, atol=1e-9)

    def test_step_approaches_steady_state(self, grid):
        power = np.full(grid.floorplan.power_w.shape, 0.2)
        steady = grid.solve(power)
        solver = TransientSolver(grid, dt_s=1e-2)
        temps = np.full_like(power, AMBIENT_K)
        for _ in range(200):
            temps = solver.step(temps, power)
        assert np.allclose(temps, steady, atol=0.05)

    def test_heating_is_monotone_from_cold(self, grid):
        power = np.full(grid.floorplan.power_w.shape, 0.3)
        solver = TransientSolver(grid, dt_s=1e-4)
        temps = np.full_like(power, AMBIENT_K)
        means = []
        for _ in range(20):
            temps = solver.step(temps, power)
            means.append(temps.mean())
        assert means == sorted(means)

    def test_smaller_dt_slower_response(self, grid):
        power = np.full(grid.floorplan.power_w.shape, 0.3)
        cold = np.full_like(power, AMBIENT_K)
        fast = TransientSolver(grid, dt_s=1e-3).step(cold, power)
        slow = TransientSolver(grid, dt_s=1e-5).step(cold, power)
        assert fast.mean() > slow.mean()

    def test_cooling_after_power_cut(self, grid):
        power = np.full(grid.floorplan.power_w.shape, 0.5)
        hot = grid.solve(power)
        solver = TransientSolver(grid, dt_s=1e-3)
        cooled = solver.step(hot, np.zeros_like(power))
        assert cooled.mean() < hot.mean()
        assert (cooled >= AMBIENT_K - 1e-9).all()

    def test_run_warm_start_defaults_to_steady(self, grid):
        power = np.full(grid.floorplan.power_w.shape, 0.2)
        solver = TransientSolver(grid, dt_s=1e-3)
        temps = solver.run([power, power, power])
        assert len(temps) == 3
        # Warm-started at steady state: it should stay there.
        assert np.allclose(temps[-1], grid.solve(power), atol=1e-6)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            TransientSolver(grid, dt_s=0.0)
        solver = TransientSolver(grid, dt_s=1e-3)
        with pytest.raises(ValueError):
            solver.step(np.zeros((1, 2, 2)), np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            solver.run([])


class TestPowerTraceIntegration:
    @pytest.fixture(scope="class")
    def sampled_run(self):
        config = make_3dm()
        network = config.build_network()
        sim = Simulator(
            network,
            UniformRandomTraffic(num_nodes=36, flit_rate=0.15, seed=7),
            warmup_cycles=200,
            measure_cycles=2000,
            drain_cycles=8000,
            sample_interval=400,
        )
        return config, sim.run()

    def test_activity_windows_collected(self, sampled_run):
        _, result = sampled_run
        assert len(result.activity_windows) == 5
        for window in result.activity_windows:
            assert len(window) == 36
            assert sum(window) > 0

    def test_power_trace_shapes(self, sampled_run):
        config, result = sampled_run
        trace = power_trace_from_activity(config, result, sample_interval=400)
        assert len(trace) == 5
        for frame in trace:
            assert frame.shape == (4, 6, 6)
            assert frame.sum() > 64.0  # CPUs + caches dominate

    def test_transient_temperatures_reasonable(self, sampled_run):
        config, result = sampled_run
        temps = transient_temperatures(config, result, sample_interval=400)
        assert len(temps) == 5
        for t in temps:
            assert AMBIENT_K < t < AMBIENT_K + 60

    def test_shutdown_discount_lowers_trace_power(self, sampled_run):
        config, result = sampled_run
        base = power_trace_from_activity(config, result, 400)
        gated = power_trace_from_activity(
            config, result, 400, shutdown_short_fraction=0.5
        )
        assert gated[0].sum() < base[0].sum()

    def test_missing_activity_rejected(self, sampled_run):
        config, result = sampled_run
        import dataclasses

        empty = dataclasses.replace(result, activity_windows=[])
        with pytest.raises(ValueError):
            power_trace_from_activity(config, empty, 400)


class TestPartialTrailingWindow:
    """measure_cycles not a multiple of sample_interval: the trailing
    window must be *integrated* over its true span, not just have its
    power scaled (the old code stepped it with the nominal dt)."""

    @pytest.fixture(scope="class")
    def uneven_run(self):
        config = make_3dm()
        network = config.build_network()
        sim = Simulator(
            network,
            UniformRandomTraffic(num_nodes=36, flit_rate=0.15, seed=7),
            warmup_cycles=200,
            measure_cycles=2000,
            drain_cycles=8000,
            sample_interval=300,
        )
        return config, sim.run()

    def test_trailing_window_span_recorded(self, uneven_run):
        _, result = uneven_run
        assert result.activity_window_cycles[-1] == 2000 % 300 == 200
        assert all(s == 300 for s in result.activity_window_cycles[:-1])

    def test_trailing_window_stepped_with_true_span(self, uneven_run):
        import dataclasses

        from repro.power import technology as tech

        config, result = uneven_run
        # Amplify the trailing partial window: starting near steady
        # state, a backward-Euler step barely moves whatever the dt, so
        # dt sensitivity only becomes visible when the last window's
        # power departs sharply from the preceding ones.
        windows = [list(w) for w in result.activity_windows]
        windows[-1] = [flits * 40 for flits in windows[-1]]
        spiked = dataclasses.replace(result, activity_windows=windows)

        temps = transient_temperatures(config, spiked, sample_interval=300)
        assert len(temps) == len(result.activity_windows) == 7

        # Reference: the old behaviour stepped every window with the
        # nominal sample_interval dt.  Full windows must agree exactly;
        # the 200-cycle trailing window must integrate over less time
        # and therefore warm less toward the spike's steady state.
        trace = power_trace_from_activity(config, spiked, 300)
        grid = ThermalGrid(floorplan_for(config))
        naive = TransientSolver(grid, dt_s=300 * tech.CYCLE_S).run(trace)
        naive_means = [float(t.mean()) for t in naive]
        assert temps[:-1] == pytest.approx(naive_means[:-1], rel=1e-12)
        assert temps[-1] < naive_means[-1] - 1e-6
