"""FPC compression tests (encoding + trace transform + experiment)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.compression import (
    COMPRESSION_LATENCY_CYCLES,
    compress_record,
    compress_trace,
    compressed_payload_flits,
    compression_ratio,
    fpc_encoded_bits,
)
from repro.noc.packet import PacketClass
from repro.traffic.patterns import WORD_MASK, WORDS_PER_LINE
from repro.traffic.traces import TraceRecord


def _line(fill=0x12345678):
    return [fill] * WORDS_PER_LINE


class TestEncoding:
    def test_all_zero_line_compresses_maximally(self):
        bits = fpc_encoded_bits(_line(0))
        assert bits == WORDS_PER_LINE * 3
        assert compressed_payload_flits(_line(0)) == 1
        assert compression_ratio(_line(0)) > 10

    def test_random_line_does_not_compress(self):
        line = [0x9ABCDEF0 + i * 0x01010101 for i in range(WORDS_PER_LINE)]
        assert compressed_payload_flits(line) == 4
        assert compression_ratio(line) == pytest.approx(1.0)

    def test_sign8_line(self):
        bits = fpc_encoded_bits(_line(5))
        assert bits == WORDS_PER_LINE * 11
        assert compressed_payload_flits(_line(5)) == 2

    def test_mixed_line(self):
        line = [0] * 8 + [0x13572468] * 8
        # 8 * 3 + 8 * 35 = 304 bits -> 3 flits.
        assert fpc_encoded_bits(line) == 304
        assert compressed_payload_flits(line) == 3

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            fpc_encoded_bits([0] * 4)

    @given(st.lists(st.integers(0, WORD_MASK), min_size=16, max_size=16))
    def test_property_flits_bounded(self, words):
        flits = compressed_payload_flits(words)
        assert 1 <= flits <= 4

    @given(st.lists(st.integers(0, WORD_MASK), min_size=16, max_size=16))
    def test_property_ratio_at_least_one(self, words):
        assert compression_ratio(words) >= 1.0


class TestTraceTransform:
    def _data_record(self, groups):
        return TraceRecord(cycle=10, src=0, dst=5, klass=PacketClass.DATA,
                           payload_groups=tuple(groups))

    def test_short_flit_heavy_record_shrinks(self):
        record = self._data_record([1, 1, 1, 1, 1])  # all-short payload
        compressed = compress_record(record)
        # 4 live words (128 b) + 16 prefixes (48 b) = 176 b -> 2 payload
        # flits + header.
        assert compressed.size_flits == 3
        assert compressed.payload_groups == (1, 4, 4)

    def test_dense_record_keeps_five_flits(self):
        record = self._data_record([1, 4, 4, 4, 4])
        compressed = compress_record(record)
        assert compressed.size_flits == 5

    def test_compression_latency_added(self):
        record = self._data_record([1, 1, 1, 1, 1])
        assert compress_record(record).cycle == 10 + COMPRESSION_LATENCY_CYCLES

    def test_ctrl_records_untouched(self):
        record = TraceRecord(cycle=3, src=0, dst=5, klass=PacketClass.CTRL)
        assert compress_record(record) is record

    def test_compress_trace_sorted_and_smaller(self):
        records = [
            self._data_record([1, 1, 1, 1, 1]),
            TraceRecord(cycle=11, src=1, dst=4, klass=PacketClass.CTRL),
            self._data_record([1, 4, 1, 4, 1]),
        ]
        records.sort(key=lambda r: r.cycle)
        compressed = compress_trace(records)
        cycles = [r.cycle for r in compressed]
        assert cycles == sorted(cycles)
        assert sum(r.size_flits for r in compressed) < sum(
            r.size_flits for r in records
        )


class TestExperiment:
    def test_compression_vs_shutdown_shapes(self, tiny_settings):
        from repro.experiments.compression_exp import compression_vs_shutdown

        results = compression_vs_shutdown(tiny_settings, workload="multimedia")
        base = results["baseline"]
        shut = results["shutdown"]
        fpc = results["fpc"]
        # Shutdown cuts power, not latency.
        assert shut.total_power_w < base.total_power_w
        assert shut.avg_latency == pytest.approx(base.avg_latency, rel=0.02)
        # Compression cuts both packet length (latency) and power.
        assert fpc.avg_latency < base.avg_latency
        assert fpc.total_power_w < base.total_power_w

    def test_unknown_workload_rejected(self, tiny_settings):
        from repro.experiments.compression_exp import compression_vs_shutdown

        with pytest.raises(ValueError):
            compression_vs_shutdown(tiny_settings, workload="nope")
