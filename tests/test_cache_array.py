"""Set-associative cache array tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.cachesim import CacheArray, LINE_BYTES, LineState


def _cache(size=1024, ways=2, line=64):
    return CacheArray(size, ways, line)


def test_geometry():
    cache = _cache(size=32 * 1024, ways=4)
    assert cache.num_sets == 32 * 1024 // (4 * 64)


def test_geometry_validated():
    with pytest.raises(ValueError):
        CacheArray(1000, 3, 64)  # not divisible
    with pytest.raises(ValueError):
        CacheArray(0, 1, 64)


def test_line_address_alignment():
    cache = _cache()
    assert cache.line_address(130) == 128
    assert cache.line_address(128) == 128


def test_miss_then_hit():
    cache = _cache()
    assert cache.access(0x100) is None
    cache.fill(0x100, LineState.SHARED)
    line = cache.access(0x11F)  # same 64B line
    assert line is not None and line.state is LineState.SHARED
    assert cache.hits == 1 and cache.misses == 1


def test_fill_returns_victim_when_set_full():
    cache = _cache(size=256, ways=2, line=64)  # 2 sets, 2 ways
    # Addresses mapping to set 0: line addresses 0, 128, 256...
    cache.fill(0, LineState.MODIFIED)
    cache.fill(128, LineState.SHARED)
    _, victim = cache.fill(256, LineState.EXCLUSIVE)
    assert victim is not None
    assert victim.address == 0
    assert victim.state is LineState.MODIFIED  # pre-eviction state intact


def test_lru_order_respects_touches():
    cache = _cache(size=256, ways=2, line=64)
    cache.fill(0, LineState.SHARED)
    cache.fill(128, LineState.SHARED)
    cache.lookup(0)  # touch 0, so 128 becomes LRU
    _, victim = cache.fill(256, LineState.SHARED)
    assert victim.address == 128


def test_refill_same_line_no_eviction():
    cache = _cache(size=256, ways=2, line=64)
    cache.fill(0, LineState.SHARED)
    cache.fill(128, LineState.SHARED)
    _, victim = cache.fill(0, LineState.MODIFIED)
    assert victim is None
    assert cache.lookup(0).state is LineState.MODIFIED


def test_invalidate_removes_line():
    cache = _cache()
    cache.fill(0x200, LineState.EXCLUSIVE)
    removed = cache.invalidate(0x200)
    assert removed is not None and removed.state is LineState.EXCLUSIVE
    assert cache.lookup(0x200) is None
    assert cache.invalidate(0x200) is None


def test_occupancy_and_resident_lines():
    cache = _cache()
    cache.fill(0, LineState.SHARED)
    cache.fill(64, LineState.MODIFIED)
    assert cache.occupancy() == 2
    resident = cache.resident_lines()
    assert resident == {0: LineState.SHARED, 64: LineState.MODIFIED}


def test_miss_rate():
    cache = _cache()
    cache.access(0)
    cache.fill(0, LineState.SHARED)
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == pytest.approx(1 / 3)


def test_eviction_counter():
    cache = _cache(size=128, ways=1, line=64)
    cache.fill(0, LineState.SHARED)
    cache.fill(128, LineState.SHARED)  # evicts 0 (same single set)
    assert cache.evictions == 1


@given(st.lists(st.integers(min_value=0, max_value=4095), max_size=200))
def test_property_occupancy_never_exceeds_capacity(addresses):
    cache = _cache(size=512, ways=2, line=64)  # 8 lines capacity
    for addr in addresses:
        if cache.access(addr) is None:
            cache.fill(addr, LineState.SHARED)
    assert cache.occupancy() <= 8
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.ways


@given(st.lists(st.integers(min_value=0, max_value=16383), max_size=300))
def test_property_resident_line_always_hits(addresses):
    """After a fill, the line hits until something evicts it."""
    cache = _cache(size=1024, ways=4, line=64)
    for addr in addresses:
        line = cache.access(addr)
        if line is None:
            cache.fill(addr, LineState.SHARED)
            assert cache.lookup(addr) is not None


@given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=100))
def test_property_small_working_set_fully_cached(addresses):
    """A working set within capacity never evicts."""
    cache = _cache(size=64 * 1024, ways=16, line=64)
    for addr in addresses:
        if cache.lookup(addr) is None:
            cache.fill(addr, LineState.SHARED)
    assert cache.evictions == 0
