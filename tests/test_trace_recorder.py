"""Ring-buffer trace recorder: sampling, wrap-around, and metadata.

Covers the capture policy (head / hash / tail), deterministic seeded
sampling, ring wrap accounting, the ``max_packets`` truncation surface,
and how all of it lands in ``TraceRecorder.sampling_meta`` — the block
written to ``trace.json`` and surfaced by ``TelemetrySnapshot``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.arch import make_3dm
from repro.noc.packet import Packet
from repro.noc.simulator import Simulator
from repro.telemetry import (
    TelemetryConfig,
    TraceRecorder,
    pid_hash_unit,
)
from repro.traffic.synthetic import UniformRandomTraffic


def make_packet(pid: int) -> Packet:
    packet = Packet(src=0, dst=1, size_flits=4, pid=pid)
    packet.created_cycle = 0
    return packet


def feed(recorder: TraceRecorder, packet: Packet, cycles=(1, 2, 3)) -> None:
    """Drive one packet's head flit through rc -> va -> traverse."""
    head = packet.make_flits()[0]
    rc, va, st = cycles
    recorder.on_stage(rc, 0, head, "rc")
    recorder.on_stage(va, 0, head, "va")
    recorder.on_traverse(st, 0, head, "east")


class TestPidHashUnit:
    def test_range_and_determinism(self):
        values = [pid_hash_unit(pid, seed=7) for pid in range(2000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [pid_hash_unit(pid, seed=7) for pid in range(2000)]

    def test_seed_changes_the_sample(self):
        kept_a = {p for p in range(2000) if pid_hash_unit(p, 1) < 0.1}
        kept_b = {p for p in range(2000) if pid_hash_unit(p, 2) < 0.1}
        assert kept_a != kept_b

    def test_roughly_uniform(self):
        kept = sum(1 for p in range(10000) if pid_hash_unit(p, 0) < 0.1)
        assert 800 <= kept <= 1200


class TestCapturePolicy:
    def test_head_capture_wins_over_rate_zero(self):
        recorder = TraceRecorder(sample_rate=0.0, head_tail=3)
        for pid in range(10):
            feed(recorder, make_packet(pid))
        assert recorder.head_captured == 3
        # The first three packets are head-captured regardless of hash.
        lives, _ = recorder.lifecycles()
        head_pids = {life.pid for life in lives if life.pid < 3}
        assert head_pids == {0, 1, 2}

    def test_hash_sampling_matches_the_pure_function(self):
        rate, seed = 0.2, 11
        recorder = TraceRecorder(sample_rate=rate, head_tail=0, seed=seed)
        for pid in range(500):
            feed(recorder, make_packet(pid))
        expected = {p for p in range(500) if pid_hash_unit(p, seed) < rate}
        lives, _ = recorder.lifecycles()
        assert {life.pid for life in lives} == expected
        assert recorder.hash_sampled == len(expected)
        assert recorder.sampled_out == 500 - len(expected)

    def test_tail_window_keeps_the_last_k(self):
        recorder = TraceRecorder(sample_rate=0.0, head_tail=4)
        for pid in range(20):
            feed(recorder, make_packet(pid))
        # 4 head + the last 4 as tail candidates.
        lives, orphaned = recorder.lifecycles()
        by_pid = {life.pid: life for life in lives}
        assert set(by_pid) == {0, 1, 2, 3, 16, 17, 18, 19}
        assert recorder.tail_evicted == 20 - 4 - 4
        assert orphaned == 0
        # Tail capture is span-only: no hop events are recorded for
        # candidates, so the ring holds the head packets' events alone.
        assert recorder.events_recorded == 4 * 3
        assert by_pid[0].hops and not by_pid[19].hops

    def test_rate_zero_no_head_tail_drops_everything(self):
        recorder = TraceRecorder(sample_rate=0.0, head_tail=0)
        for pid in range(50):
            feed(recorder, make_packet(pid))
        assert recorder.events_recorded == 0
        assert recorder.sampled_out == 50
        lives, orphaned = recorder.lifecycles()
        assert lives == [] and orphaned == 0

    def test_full_mode_captures_everything(self):
        recorder = TraceRecorder()
        for pid in range(30):
            feed(recorder, make_packet(pid))
        lives, _ = recorder.lifecycles()
        assert len(lives) == 30
        assert recorder.events_recorded == 90

    def test_max_packets_cap_populates_dropped_pids(self):
        recorder = TraceRecorder(sample_rate=1.0, max_packets=5)
        for pid in range(9):
            feed(recorder, make_packet(pid))
        assert recorder.packets_captured() == 5
        assert recorder.dropped_pids == {5, 6, 7, 8}
        meta = recorder.sampling_meta()
        assert meta["packets_captured"] == 5

    def test_decision_is_sticky_per_packet(self):
        recorder = TraceRecorder(sample_rate=0.0, head_tail=1)
        first = make_packet(0)
        feed(recorder, first)
        seen_before = recorder.packets_seen
        feed(recorder, first, cycles=(4, 5, 6))
        assert recorder.packets_seen == seen_before


class TestRingWrap:
    def test_wraparound_counts_overwritten_events(self):
        recorder = TraceRecorder(ring_events=8)
        for pid in range(5):
            feed(recorder, make_packet(pid))  # 15 events into 8 slots
        assert recorder.events_recorded == 15
        assert recorder.events_overwritten == 7
        lives, _ = recorder.lifecycles()
        # Every packet object survives; early hop events are gone.
        assert len(lives) == 5
        total_hops = sum(len(life.hops) for life in lives)
        assert 0 < total_hops <= 8

    def test_latest_events_always_survive(self):
        recorder = TraceRecorder(ring_events=4)
        for pid in range(10):
            feed(recorder, make_packet(pid), cycles=(pid, pid, pid))
        lives, _ = recorder.lifecycles()
        by_pid = {life.pid: life for life in lives}
        # The newest packet's traverse is the last record written.
        assert by_pid[9].hops and by_pid[9].hops[-1].st == 9


class TestSamplingMeta:
    def test_mode_and_knobs_echoed(self):
        recorder = TraceRecorder(sample_rate=0.25, head_tail=8, seed=3)
        meta = recorder.sampling_meta(orphaned=2)
        assert meta["mode"] == "sampled"
        assert meta["sample_rate"] == 0.25
        assert meta["head_tail"] == 8
        assert meta["seed"] == 3
        assert meta["events_orphaned"] == 2
        assert TraceRecorder().sampling_meta()["mode"] == "full"

    def test_counts_are_consistent(self):
        recorder = TraceRecorder(sample_rate=0.3, head_tail=2, seed=5)
        for pid in range(100):
            feed(recorder, make_packet(pid))
        meta = recorder.sampling_meta()
        assert meta["packets_seen"] == 100
        assert (
            meta["head_captured"] + meta["hash_sampled"]
            + meta["tail_window"]
            == meta["packets_captured"]
        )
        assert (
            meta["packets_captured"] + meta["sampled_out"]
            + meta["tail_evicted"]
            == 100
        )

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="sample rate"):
            TraceRecorder(sample_rate=1.5)
        with pytest.raises(ValueError, match="head/tail"):
            TraceRecorder(head_tail=-1)
        with pytest.raises(ValueError, match="ring capacity"):
            TraceRecorder(ring_events=0)


def run_traced(tmp_path, **trace_kwargs):
    config = make_3dm()
    network = config.build_network(shutdown_enabled=True)
    telemetry = TelemetryConfig(
        interval=50,
        metrics_path=str(tmp_path / "m.jsonl"),
        trace_path=str(tmp_path / "t.json"),
        **trace_kwargs,
    )
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=0.1, seed=3
        ),
        warmup_cycles=50, measure_cycles=300, drain_cycles=2000,
        telemetry=telemetry,
    )
    result = sim.run()
    with open(tmp_path / "t.json", encoding="utf-8") as handle:
        return result, json.load(handle)


class TestEndToEnd:
    def test_sampled_run_writes_sampling_block(self, tmp_path):
        result, trace = run_traced(
            tmp_path, trace_sample_rate=0.1, trace_head_tail=4,
            trace_seed=9,
        )
        sampling = trace["otherData"]["sampling"]
        assert sampling["mode"] == "sampled"
        assert sampling["sample_rate"] == 0.1
        assert sampling["seed"] == 9
        assert sampling["packets_seen"] > sampling["packets_captured"] > 0
        snap = result.telemetry
        assert snap.packets_seen == sampling["packets_seen"]
        assert snap.packets_sampled == sampling["packets_captured"]
        assert snap.sampled_out == sampling["sampled_out"]
        assert snap.sample_rate == 0.1 and snap.head_tail == 4
        assert snap.finish_cpu_s >= 0.0

    def test_sampled_capture_is_reproducible(self, tmp_path):
        """Same seed + same pid stream -> the same packets captured.

        Packet ids come from a process-global counter, so the second
        run resets it to replay the exact pid stream a fresh process
        would see."""
        import itertools

        from repro.noc import packet as packet_mod

        pids = []
        for sub in ("a", "b"):
            packet_mod._packet_ids = itertools.count()
            d = tmp_path / sub
            d.mkdir()
            _, trace = run_traced(
                d, trace_sample_rate=0.2, trace_head_tail=2, trace_seed=4
            )
            pids.append(
                sorted(
                    e["tid"]
                    for e in trace["traceEvents"]
                    if e.get("ph") == "X" and e.get("pid") == 1
                    and e["name"].startswith("pkt ")
                )
            )
        assert pids[0] and pids[0] == pids[1]

    def test_sampled_run_matches_bare_run(self, tmp_path):
        config = make_3dm()

        def run(telemetry):
            network = config.build_network(shutdown_enabled=True)
            sim = Simulator(
                network,
                UniformRandomTraffic(
                    num_nodes=config.num_nodes, flit_rate=0.1, seed=3
                ),
                warmup_cycles=50, measure_cycles=300, drain_cycles=2000,
                telemetry=telemetry,
            )
            return sim.run()

        bare = run(None)
        traced = run(
            TelemetryConfig(
                interval=50,
                trace_path=str(tmp_path / "t.json"),
                trace_sample_rate=0.05,
                trace_head_tail=8,
            )
        )
        assert traced.avg_latency == bare.avg_latency
        assert traced.events.flit_hops == bare.events.flit_hops

    def test_router_filter_skips_dropped_pids(self, tmp_path):
        """The call-site drop filter must hide sampled-out packets from
        the hooks without losing admissions."""
        result, trace = run_traced(
            tmp_path, trace_sample_rate=0.0, trace_head_tail=0
        )
        sampling = trace["otherData"]["sampling"]
        assert sampling["packets_captured"] == 0
        assert sampling["sampled_out"] == sampling["packets_seen"] > 0
        assert sampling["events_recorded"] == 0

    def test_head_traverse_bucket_sees_heads_only(self):
        config = make_3dm()
        network = config.build_network(shutdown_enabled=True)
        seen = []
        network.head_traverse_callbacks.append(
            lambda cycle, node, flit, port: seen.append(flit)
        )
        sim = Simulator(
            network,
            UniformRandomTraffic(
                num_nodes=config.num_nodes, flit_rate=0.05, seed=2
            ),
            warmup_cycles=20, measure_cycles=100, drain_cycles=1000,
        )
        sim.run()
        assert seen
        assert all(flit.is_head for flit in seen)

    def test_optimized_mode_keeps_metadata(self, tmp_path):
        """``python -O`` must not strip the sampling/truncation
        accounting (it is regular control flow, not asserts)."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.telemetry import TraceRecorder\n"
            "from repro.noc.packet import Packet\n"
            "r = TraceRecorder(sample_rate=0.0, head_tail=2)\n"
            "for pid in range(10):\n"
            "    p = Packet(src=0, dst=1, size_flits=4, pid=pid)\n"
            "    head = p.make_flits()[0]\n"
            "    r.on_stage(1, 0, head, 'rc')\n"
            "    r.on_traverse(2, 0, head, 'east')\n"
            "print(json.dumps(r.sampling_meta()))\n"
        ) % os.path.join(os.path.dirname(__file__), os.pardir, "src")
        out = subprocess.run(
            [sys.executable, "-O", "-c", script],
            capture_output=True, text=True, check=True,
        )
        meta = json.loads(out.stdout)
        assert meta["packets_seen"] == 10
        assert meta["head_captured"] == 2
        assert meta["tail_window"] == 2
        assert meta["tail_evicted"] == 6
