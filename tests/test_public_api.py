"""Public-API surface tests: everything __all__ promises must import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.noc",
    "repro.topology",
    "repro.traffic",
    "repro.power",
    "repro.thermal",
    "repro.timing",
    "repro.cache",
    "repro.experiments",
    "repro.telemetry",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_convenience_simulate_smoke():
    import repro

    config = repro.make_architecture(repro.Architecture.MIRA_3DM)
    settings = repro.ExperimentSettings(
        warmup_cycles=50, measure_cycles=300, drain_cycles=2000,
        uniform_rates=(0.05,), nuca_rates=(0.05,), trace_cycles=1000,
        workloads=("tpcw",), seed=1,
    )
    result = repro.simulate(config, flit_rate=0.05, settings=settings)
    assert result.avg_latency > 0


def test_no_all_entry_is_private():
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            if name == "__version__":
                continue  # conventional dunder export
            assert not name.startswith("_"), f"{package}.{name}"


def test_docstrings_on_public_modules():
    for package in PACKAGES:
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40, package
