"""Unit tests for the 3D mesh topology (3DB)."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.base import LinkKind
from repro.topology.mesh3d import DOWN, Mesh3D, TSV_LENGTH_MM, UP


def test_node_count():
    mesh = Mesh3D(3, 3, 4, pitch_mm=3.16)
    assert mesh.num_nodes == 36


def test_layer_major_coordinates():
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    assert mesh.coordinates(0) == (0, 0, 0)
    assert mesh.coordinates(9) == (0, 0, 1)
    assert mesh.coordinates(35) == (2, 2, 3)


def test_node_at_inverts_coordinates():
    mesh = Mesh3D(3, 2, 4, pitch_mm=1.0)
    for node in range(mesh.num_nodes):
        assert mesh.node_at(mesh.coordinates(node)) == node


def test_vertical_links_use_tsv_length():
    mesh = Mesh3D(3, 3, 4, pitch_mm=3.16)
    vertical = [l for l in mesh.links if l.kind is LinkKind.VERTICAL]
    assert vertical, "expected vertical links"
    for link in vertical:
        assert link.length_mm == pytest.approx(TSV_LENGTH_MM)


def test_vertical_link_count():
    # 9 columns x 3 interfaces x 2 directions.
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    vertical = [l for l in mesh.links if l.kind is LinkKind.VERTICAL]
    assert len(vertical) == 9 * 3 * 2


def test_interior_radix_is_seven():
    """The 3DB router needs 7 ports: 4 planar + up + down + local."""
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    # Centre node of a middle layer.
    node = mesh.node_at((1, 1, 1))
    assert mesh.degree(node) == 6
    assert mesh.max_radix() == 7


def test_up_goes_to_higher_layer():
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    node = mesh.node_at((1, 1, 0))
    link = mesh.out_ports[node][UP]
    assert mesh.coordinates(link.dst) == (1, 1, 1)
    assert link.dst_port == DOWN


def test_top_layer_has_no_up():
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    node = mesh.node_at((0, 0, 3))
    assert UP not in mesh.out_ports[node]
    assert DOWN in mesh.out_ports[node]


def test_single_layer_degenerates_to_2d():
    mesh = Mesh3D(3, 3, 1, pitch_mm=1.0)
    assert not [l for l in mesh.links if l.kind is LinkKind.VERTICAL]


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        Mesh3D(3, 3, 0, pitch_mm=1.0)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_property_degree_sum_equals_links(w, h, d):
    mesh = Mesh3D(w, h, d, pitch_mm=1.0)
    assert sum(mesh.degree(n) for n in mesh.iter_nodes()) == len(mesh.links)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=4),
)
def test_property_connected(w, h, d):
    mesh = Mesh3D(w, h, d, pitch_mm=1.0)
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for nxt in mesh.neighbors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert len(seen) == mesh.num_nodes
