"""Energy-model tests (Fig. 9 shape) and power integration tests."""

import pytest

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.noc.network import Network
from repro.noc.packet import data_packet
from repro.noc.simulator import Simulator
from repro.power.energy import power_report
from repro.power.orion import RouterEnergyModel
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic


@pytest.fixture
def models():
    return {
        cfg.name: RouterEnergyModel.for_config(cfg)
        for cfg in (make_2db(), make_3db(), make_3dm(), make_3dme())
    }


class TestFig9Shape:
    def test_3dm_lowest_flit_energy(self, models):
        """Fig. 9: 3DM has the lowest per-flit energy."""
        totals = {n: m.flit_hop_energy_j() for n, m in models.items()}
        assert min(totals, key=totals.get) == "3DM"

    def test_3db_highest_flit_energy(self, models):
        """Fig. 9: 3DB's 7x7 crossbar makes it the most expensive."""
        totals = {n: m.flit_hop_energy_j() for n, m in models.items()}
        assert max(totals, key=totals.get) == "3DB"

    def test_3dm_saving_vs_2db_in_band(self, models):
        """Paper reports ~35% energy reduction for 3DM over 2DB; our
        calibration lands in the 30-55% band."""
        saving = 1 - models["3DM"].flit_hop_energy_j() / models["2DB"].flit_hop_energy_j()
        assert 0.30 <= saving <= 0.55

    def test_link_is_biggest_3dm_saving(self, models):
        """Sec. 3.4.2: 'the biggest savings for 3DM comes from the link
        energy'."""
        b2 = models["2DB"].flit_hop_breakdown()
        b3 = models["3DM"].flit_hop_breakdown()
        deltas = {k: b2[k] - b3[k] for k in b2}
        assert max(deltas, key=deltas.get) == "link"

    def test_crossbar_energy_scales_with_slice_length(self, models):
        """3DM crossbar energy = 1/4 of 2DB (quarter wire length)."""
        ratio = (
            models["2DB"].xbar_traversal_j / models["3DM"].xbar_traversal_j
        )
        assert ratio == pytest.approx(4.0)

    def test_buffer_energy_constant_across_archs(self, models):
        """Same bits stored regardless of layering."""
        writes = {n: m.buffer_write_j for n, m in models.items()}
        assert len(set(writes.values())) == 1

    def test_link_energy_proportional_to_length(self, models):
        model = models["2DB"]
        assert model.link_j_per_mm * 3.16 == pytest.approx(
            2 * model.link_j_per_mm * 1.58
        )

    def test_breakdown_sums_to_total(self, models):
        for model in models.values():
            assert sum(model.flit_hop_breakdown().values()) == pytest.approx(
                model.flit_hop_energy_j()
            )

    def test_breakdown_custom_link_length(self, models):
        model = models["3DM-E"]
        express = model.flit_hop_breakdown(link_length_mm=3.16)
        normal = model.flit_hop_breakdown()
        assert express["link"] == pytest.approx(2 * normal["link"])
        assert express["buffer"] == normal["buffer"]


class TestPowerReport:
    def _events(self, shutdown=False, payload=None):
        packet = data_packet(0, 2, created_cycle=0, payload_groups=payload)
        network = Network(Mesh2D(3, 1, pitch_mm=1.0), shutdown_enabled=shutdown)
        sim = Simulator(network, ScheduledTraffic([packet]),
                        warmup_cycles=0, measure_cycles=100, drain_cycles=100)
        result = sim.run()
        return result.events

    def test_power_positive_and_breakdown_sums(self, cfg_2db):
        events = self._events()
        report = power_report(cfg_2db, events, window_cycles=100)
        assert report.dynamic_w > 0
        assert report.leakage_w > 0
        assert sum(report.breakdown_w.values()) == pytest.approx(report.dynamic_w)
        assert report.total_w == pytest.approx(report.dynamic_w + report.leakage_w)

    def test_power_halves_with_double_window(self, cfg_2db):
        events = self._events()
        p100 = power_report(cfg_2db, events, window_cycles=100)
        p200 = power_report(cfg_2db, events, window_cycles=200)
        assert p200.dynamic_w == pytest.approx(p100.dynamic_w / 2)

    def test_short_flits_cut_separable_power(self, cfg_3dm):
        full = self._events(shutdown=True, payload=[4] * 5)
        short = self._events(shutdown=True, payload=[1] * 5)
        p_full = power_report(cfg_3dm, full, 100, shutdown_enabled=True)
        p_short = power_report(cfg_3dm, short, 100, shutdown_enabled=True)
        assert p_short.breakdown_w["buffer"] == pytest.approx(
            p_full.breakdown_w["buffer"] / 4
        )
        assert p_short.breakdown_w["crossbar"] == pytest.approx(
            p_full.breakdown_w["crossbar"] / 4
        )
        assert p_short.dynamic_w < p_full.dynamic_w

    def test_detector_overhead_charged_when_shutdown(self, cfg_3dm):
        events = self._events(shutdown=True, payload=[4] * 5)
        without = power_report(cfg_3dm, events, 100, shutdown_enabled=False)
        with_sd = power_report(cfg_3dm, events, 100, shutdown_enabled=True)
        assert with_sd.breakdown_w["arbitration"] > without.breakdown_w["arbitration"]

    def test_pdp_scales_with_latency(self, cfg_2db):
        events = self._events()
        report = power_report(cfg_2db, events, 100)
        assert report.pdp(20.0) == pytest.approx(2 * report.pdp(10.0))

    def test_invalid_window_rejected(self, cfg_2db):
        with pytest.raises(ValueError):
            power_report(cfg_2db, self._events(), window_cycles=0)

    def test_leakage_tracks_router_area(self):
        """3DB's bigger router leaks more than 3DM's."""
        events = self._events()
        leak_3db = power_report(make_3db(), events, 100).leakage_w
        leak_3dm = power_report(make_3dm(), events, 100).leakage_w
        assert leak_3db > leak_3dm
