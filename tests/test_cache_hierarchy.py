"""End-to-end memory-hierarchy tests: engine, traces, coherence invariants."""

import pytest

from repro.cache.cachesim import LineState
from repro.cache.cpu import AddressStream
from repro.cache.directory import DirState
from repro.cache.hierarchy import CmpSystem, CmpTraffic, generate_trace
from repro.cache.messages import MessageType
from repro.core.arch import make_2db, make_3dm
from repro.noc.packet import PacketClass
from repro.noc.simulator import Simulator
from repro.traffic.workloads import WORKLOADS

PROFILE = WORKLOADS["tpcw"]


def _offline_system(cycles=6000, seed=3, profile=PROFILE, config=None):
    """Run the hierarchy offline and return the settled system."""
    system = CmpSystem(config or make_2db(), profile, seed=seed)
    system.set_issue_horizon(cycles)
    while system.pending_events() and system.now < cycles + 5000:
        next_cycle = system._events[0][0]
        system.advance_to(next_cycle)
        for _, msg in system.drain_outbox(next_cycle):
            system.schedule(system.now + 10, lambda m=msg: system.dispatch(m))
    return system


class TestAddressStream:
    def test_addresses_line_aligned_and_positive(self):
        stream = AddressStream(0, 8, PROFILE, seed=1)
        for _ in range(500):
            addr, _ = stream.next_reference()
            assert addr >= 0

    def test_private_regions_disjoint(self):
        streams = [AddressStream(i, 8, PROFILE, seed=1) for i in range(8)]
        bases = [s.private_base for s in streams]
        spans = [s.private_lines * 64 for s in streams]
        for i in range(8):
            for j in range(i + 1, 8):
                assert (
                    bases[i] + spans[i] <= bases[j]
                    or bases[j] + spans[j] <= bases[i]
                )

    def test_write_fraction_tracks_profile(self):
        stream = AddressStream(0, 8, PROFILE, seed=2)
        writes = sum(stream.next_reference()[1] for _ in range(8000))
        assert writes / 8000 == pytest.approx(1 - PROFILE.read_fraction, abs=0.02)

    def test_cpu_index_validated(self):
        with pytest.raises(ValueError):
            AddressStream(8, 8, PROFILE)


class TestOfflineEngine:
    def test_references_issued_near_rate(self):
        cycles = 8000
        system = _offline_system(cycles=cycles)
        expected = 8 * PROFILE.request_rate * cycles
        assert system.stats.references == pytest.approx(expected, rel=0.2)

    def test_mshr_limit_respected(self):
        system = _offline_system()
        # After drain everything completed anyway:
        assert system.outstanding_mshrs() == 0

    def test_directory_invariants_after_run(self):
        system = _offline_system()
        for bank in system.banks:
            bank.check_invariants()

    def test_single_writer_invariant(self):
        """No line is MODIFIED/EXCLUSIVE in two L1s at once (MESI)."""
        system = _offline_system()
        owners = {}
        for cpu, l1 in enumerate(system.l1s):
            for line, state in l1.cache.resident_lines().items():
                if state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                    assert line not in owners, (
                        f"line {line:#x} owned by {owners[line]} and {cpu}"
                    )
                    owners[line] = cpu

    def test_directory_matches_l1_contents(self):
        """Every EM directory entry's owner really holds the line (or has
        silently evicted a clean copy); no sharer set misses a holder."""
        system = _offline_system()
        holders = {}
        for cpu, l1 in enumerate(system.l1s):
            for line, state in l1.cache.resident_lines().items():
                holders.setdefault(line, {})[cpu] = state
        for bank in system.banks:
            for line, entry in bank.entries.items():
                if entry.busy:
                    continue
                holding = holders.get(line, {})
                if entry.state is DirState.SHARED:
                    for cpu in holding:
                        assert cpu in entry.sharers
                elif entry.state is DirState.EXCLUSIVE:
                    for cpu, state in holding.items():
                        assert cpu == entry.owner

    def test_home_node_mapping_is_snuca_interleave(self):
        system = CmpSystem(make_2db(), PROFILE)
        banks = system.cache_nodes
        assert system.home_node(0) == banks[0]
        assert system.home_node(64) == banks[1]
        assert system.home_node(64 * len(banks)) == banks[0]

    def test_messages_travel_between_cpu_and_cache_nodes(self):
        system = _offline_system(cycles=3000)
        cpu_set = set(system.cpu_nodes)
        cache_set = set(system.cache_nodes)
        for key in system.stats.messages_by_type:
            assert key  # non-empty types recorded
        assert (
            system.stats.messages_by_type.get("GetS", 0)
            + system.stats.messages_by_type.get("GetM", 0)
            > 0
        )
        del cpu_set, cache_set


class TestGenerateTrace:
    def test_records_sorted_and_bounded(self):
        records, _ = generate_trace(make_2db(), PROFILE, cycles=5000, seed=2)
        cycles = [r.cycle for r in records]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= 5000

    def test_data_messages_carry_payload(self):
        records, _ = generate_trace(make_2db(), PROFILE, cycles=5000, seed=2)
        for record in records:
            if record.klass is PacketClass.DATA:
                assert record.payload_groups is not None
                assert len(record.payload_groups) == 5
            else:
                assert record.payload_groups is None

    def test_endpoints_are_placed_nodes(self):
        config = make_2db()
        records, _ = generate_trace(config, PROFILE, cycles=5000, seed=2)
        valid = set(config.cpu_nodes) | set(config.cache_nodes)
        for record in records:
            assert record.src in valid and record.dst in valid
            assert record.src != record.dst

    def test_request_response_balance(self):
        _, stats = generate_trace(make_2db(), PROFILE, cycles=20000, seed=2)
        by_type = stats.messages_by_type
        requests = by_type.get("GetS", 0) + by_type.get("GetM", 0)
        data = by_type.get("Data", 0) + by_type.get("DataExcl", 0)
        assert data == pytest.approx(requests, rel=0.1)

    def test_short_flit_fraction_near_profile(self):
        records, _ = generate_trace(make_2db(), PROFILE, cycles=30000, seed=2)
        short = total = 0
        for record in records:
            if record.payload_groups:
                for g in record.payload_groups[1:]:
                    total += 1
                    short += g == 1
        assert short / total == pytest.approx(
            PROFILE.short_flit_fraction, abs=0.05
        )

    def test_deterministic_for_seed(self):
        a, _ = generate_trace(make_2db(), PROFILE, cycles=4000, seed=9)
        b, _ = generate_trace(make_2db(), PROFILE, cycles=4000, seed=9)
        assert [(r.cycle, r.src, r.dst) for r in a] == [
            (r.cycle, r.src, r.dst) for r in b
        ]

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(make_2db(), PROFILE, cycles=0)


class TestCoupledMode:
    def test_closed_loop_completes(self):
        config = make_3dm()
        traffic = CmpTraffic(config, PROFILE, seed=5, issue_horizon=4000)
        network = config.build_network()
        sim = Simulator(network, traffic, warmup_cycles=0,
                        measure_cycles=4000, drain_cycles=30000,
                        drain_to_quiescence=True)
        result = sim.run()
        stats = traffic.system.stats
        assert not result.saturated
        assert stats.references > 0
        assert result.packets_delivered > 0
        assert traffic.system.outstanding_mshrs() == 0
        for bank in traffic.system.banks:
            bank.check_invariants()

    def test_closed_loop_miss_latency_includes_network(self):
        """Coupled-mode miss latency must exceed twice the zero-load
        network latency (request + response) for non-DRAM misses."""
        config = make_3dm()
        traffic = CmpTraffic(config, PROFILE, seed=5, issue_horizon=4000)
        network = config.build_network()
        sim = Simulator(network, traffic, warmup_cycles=0,
                        measure_cycles=4000, drain_cycles=30000)
        sim.run()
        stats = traffic.system.stats
        assert stats.avg_miss_latency > 2 * 4  # > two bank latencies at least
