"""Thermal model tests: stack physics, floorplans, solver invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arch import make_2db, make_3db, make_3dm
from repro.thermal.floorplan import MULTILAYER_ROUTER_SPLIT, Floorplan, floorplan_for
from repro.thermal.hotspot import steady_state, temperature_drop
from repro.thermal.solver import ThermalGrid
from repro.thermal.stack import AMBIENT_K, StackParameters


class TestStackParameters:
    def test_lateral_conductance_independent_of_pitch(self):
        params = StackParameters()
        assert params.lateral_conductance(1e-3) == params.lateral_conductance(2e-3)

    def test_vertical_conductance_scales_with_area(self):
        params = StackParameters()
        assert params.vertical_conductance(2e-6) == pytest.approx(
            2 * params.vertical_conductance(1e-6)
        )

    def test_sink_conductance_inverse_resistance(self):
        params = StackParameters(sink_resistance_k_m2_w=1e-4)
        assert params.sink_conductance(1e-6) == pytest.approx(1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            StackParameters(k_silicon_w_mk=0)


class TestFloorplans:
    def test_2db_single_layer(self):
        fp = floorplan_for(make_2db())
        assert fp.layers == 1 and fp.ny == 6 and fp.nx == 6

    def test_2db_cpu_cells_hot(self):
        config = make_2db()
        fp = floorplan_for(config)
        cpu = config.cpu_nodes[0]
        y, x = divmod(cpu, 6)
        assert fp.power_w[0, y, x] == pytest.approx(8.0)
        cache = config.cache_nodes[0]
        y, x = divmod(cache, 6)
        assert fp.power_w[0, y, x] == pytest.approx(0.1)

    def test_total_power_conserved(self):
        config = make_3dm()
        router_power = [0.05] * 36
        fp = floorplan_for(config, router_power)
        expected = 8 * 8.0 + 28 * 0.1 + 36 * 0.05
        assert fp.total_power_w == pytest.approx(expected)

    def test_3dm_router_split_follows_layer_plan(self):
        config = make_3dm()
        fp = floorplan_for(config, [1.0] * 36)
        cache = config.cache_nodes[0]
        y, x = divmod(cache, 6)
        core_per_layer = 0.1 / 4
        for layer, frac in enumerate(MULTILAYER_ROUTER_SPLIT):
            assert fp.power_w[layer, y, x] == pytest.approx(core_per_layer + frac)

    def test_3db_cpus_map_to_thermal_top(self):
        config = make_3db()
        fp = floorplan_for(config, [0.0] * 36)
        # All 8 CPUs on thermal layer 0 (the topology's z=3).
        assert np.isclose(fp.power_w[0], 8.0).sum() == 8
        assert np.isclose(fp.power_w[1:], 8.0).sum() == 0

    def test_router_power_length_validated(self):
        with pytest.raises(ValueError):
            floorplan_for(make_2db(), [0.1] * 10)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Floorplan("x", 1, 2, 2, 1e-3, np.array([[[1.0, -1.0], [0.0, 0.0]]]))


class TestSolver:
    def test_zero_power_gives_ambient(self):
        fp = floorplan_for(make_2db(), [0.0] * 36, cpu_power_w=0.0,
                           cache_power_w=0.0)
        temps = ThermalGrid(fp).solve()
        assert np.allclose(temps, AMBIENT_K)

    def test_temperatures_above_ambient_with_power(self):
        fp = floorplan_for(make_2db())
        temps = ThermalGrid(fp).solve()
        assert (temps > AMBIENT_K).all()

    def test_energy_balance(self):
        """Steady state: heat into the sink equals total power."""
        fp = floorplan_for(make_3dm(), [0.1] * 36)
        grid = ThermalGrid(fp)
        temps = grid.solve()
        g_sink = grid.params.sink_conductance(fp.cell_area_m2)
        into_sink = g_sink * (temps[0] - grid.params.ambient_k).sum()
        assert into_sink == pytest.approx(fp.total_power_w, rel=1e-6)

    def test_bottom_layers_hotter_in_stack(self):
        result = steady_state(make_3dm(), [0.1] * 36)
        layers = result.per_layer_avg_k
        assert layers == sorted(layers)  # top (sink side) coolest

    def test_cpu_region_is_hotspot(self):
        config = make_2db()
        fp = floorplan_for(config)
        temps = ThermalGrid(fp).solve()
        cpu = config.cpu_nodes[0]
        y, x = divmod(cpu, 6)
        assert temps[0, y, x] == pytest.approx(temps.max(), rel=0.05)

    def test_power_shape_validated(self):
        fp = floorplan_for(make_2db())
        grid = ThermalGrid(fp)
        with pytest.raises(ValueError):
            grid.solve(np.zeros((2, 6, 6)))

    def test_superposition(self):
        """The network is linear: temperatures superpose."""
        fp = floorplan_for(make_2db(), cpu_power_w=0.0, cache_power_w=0.0)
        grid = ThermalGrid(fp)
        p1 = np.zeros_like(fp.power_w); p1[0, 0, 0] = 1.0
        p2 = np.zeros_like(fp.power_w); p2[0, 5, 5] = 2.0
        t1 = grid.solve(p1) - AMBIENT_K
        t2 = grid.solve(p2) - AMBIENT_K
        t12 = grid.solve(p1 + p2) - AMBIENT_K
        assert np.allclose(t12, t1 + t2, atol=1e-9)


class TestHotspotApi:
    def test_steady_state_reports(self):
        result = steady_state(make_3dm(), [0.05] * 36)
        assert result.name == "3DM"
        assert result.max_k >= result.avg_k
        assert len(result.per_layer_avg_k) == 4
        assert result.total_power_w == pytest.approx(8 * 8 + 28 * 0.1 + 36 * 0.05)

    def test_temperature_drop_positive_for_power_cut(self):
        drop = temperature_drop(make_3dm(), [0.2] * 36, [0.1] * 36)
        assert drop > 0

    def test_temperature_drop_zero_for_same_power(self):
        assert temperature_drop(make_3dm(), [0.1] * 36, [0.1] * 36) == pytest.approx(0.0)

    def test_3d_stacks_run_hotter_than_2d(self):
        """Same 36 tiles and power, quarter footprint: higher density."""
        t2d = steady_state(make_2db(), [0.1] * 36)
        t3d = steady_state(make_3dm(), [0.1] * 36)
        assert t3d.avg_k > t2d.avg_k


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.3))
def test_property_drop_monotone_in_power_delta(delta):
    base = [0.3] * 36
    reduced = [0.3 - delta] * 36
    drop = temperature_drop(make_3dm(), base, reduced)
    assert drop >= -1e-9
    bigger = temperature_drop(make_3dm(), base, [0.3 - delta / 2] * 36)
    assert drop >= bigger - 1e-9
