"""Router pipeline timing tests.

These pin down the cycle-level behaviour the paper's latency claims rest
on: a 4-stage + LT pipeline costs 5 cycles per hop, the merged ST+LT
organisation (Fig. 8d) costs 4, and wormhole body flits stream at one
flit per cycle.
"""

import pytest

from repro.noc.network import Network
from repro.noc.packet import ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic


def _deliver(packets, combined, width=4, height=1, cycles=200):
    """Run packets through a small mesh; returns the packets."""
    network = Network(
        Mesh2D(width, height, pitch_mm=1.0),
        combined_st_lt=combined,
    )
    sim = Simulator(
        network,
        ScheduledTraffic(packets),
        warmup_cycles=0,
        measure_cycles=cycles,
        drain_cycles=cycles,
    )
    sim.run()
    return packets


def test_single_hop_latency_split_pipeline():
    """One hop, 1-flit packet, no contention, unmerged ST/LT.

    Injection at cycle 0; source router RC@0,VA@1,SA@2, arrival ready at
    5; destination RC@5,VA@6,SA@7, ejected at 8.
    """
    (packet,) = _deliver([ctrl_packet(0, 1, created_cycle=0)], combined=False)
    assert packet.delivered_cycle == 8
    assert packet.latency == 8


def test_single_hop_latency_merged_pipeline():
    """Merging ST+LT saves one cycle on the router-to-router hop."""
    (packet,) = _deliver([ctrl_packet(0, 1, created_cycle=0)], combined=True)
    assert packet.delivered_cycle == 7


def test_per_hop_cost_split_vs_merged():
    """Each extra hop costs 5 cycles unmerged, 4 merged."""
    lat = {}
    for combined in (False, True):
        one = _deliver([ctrl_packet(0, 1, created_cycle=0)], combined)[0]
        three = _deliver([ctrl_packet(0, 3, created_cycle=0)], combined)[0]
        lat[combined] = (one.latency, three.latency)
    assert lat[False][1] - lat[False][0] == 2 * 5
    assert lat[True][1] - lat[True][0] == 2 * 4


def test_body_flits_stream_one_per_cycle():
    """A 5-flit packet's tail trails the head by exactly 4 cycles."""
    single = _deliver([ctrl_packet(0, 1, created_cycle=0)], combined=False)[0]
    data = _deliver([data_packet(0, 1, created_cycle=0)], combined=False)[0]
    assert data.latency == single.latency + 4


def test_hop_count_recorded(cfg_2db):
    (packet,) = _deliver([ctrl_packet(0, 3, created_cycle=0)], combined=False)
    assert packet.hops == 3


def test_contention_serialises_switch():
    """Two single-flit packets from different sources to one sink cannot
    eject in the same cycle (one local output port)."""
    packets = [
        ctrl_packet(0, 1, created_cycle=0),
        ctrl_packet(2, 1, created_cycle=0),
    ]
    _deliver(packets, combined=False)
    assert packets[0].delivered_cycle != packets[1].delivered_cycle


def test_vc_allows_packet_interleave_across_vcs():
    """Two data packets on crossing paths both complete (no deadlock)."""
    packets = [
        data_packet(0, 3, created_cycle=0),
        data_packet(3, 0, created_cycle=0),
    ]
    _deliver(packets, combined=False)
    for packet in packets:
        assert packet.delivered_cycle is not None


def test_router_busy_flag():
    network = Network(Mesh2D(3, 1, pitch_mm=1.0))
    assert not network.routers[0].busy
    network.enqueue_packet(ctrl_packet(0, 2, created_cycle=0))
    network.step()
    assert network.routers[0].busy


def test_router_occupancy_counts_buffered_flits():
    network = Network(Mesh2D(3, 1, pitch_mm=1.0))
    network.enqueue_packet(data_packet(0, 2, created_cycle=0))
    network.step()  # one flit injected into the local VC
    assert network.routers[0].occupancy() == 1


def test_wormhole_ordering_violation_detected():
    """Delivering a body flit to an idle VC raises (protocol guard)."""
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    router = network.routers[0]
    flits = data_packet(0, 1, created_cycle=0).make_flits()
    with pytest.raises(RuntimeError):
        router.receive_flit(router.local_port, 0, flits[1], cycle=0)


def test_credit_overflow_detected():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    router = network.routers[0]
    east = router.port_index["E"]
    with pytest.raises(RuntimeError):
        router.receive_credit(east, 0)  # already at full credits
