"""Network-level tests: delivery, conservation, credits, callbacks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass, ctrl_packet, data_packet
from repro.noc.simulator import Simulator
from repro.topology.express_mesh import ExpressMesh
from repro.topology.mesh2d import Mesh2D
from repro.topology.mesh3d import Mesh3D
from repro.traffic.base import ScheduledTraffic


def _run_network(topology, packets, cycles=3000, **net_kwargs):
    network = Network(topology, **net_kwargs)
    sim = Simulator(
        network,
        ScheduledTraffic(packets),
        warmup_cycles=0,
        measure_cycles=cycles,
        drain_cycles=cycles,
    )
    result = sim.run()
    return network, result


def test_every_packet_delivered_exactly_once():
    packets = [ctrl_packet(i, (i + 7) % 12, created_cycle=i) for i in range(12)]
    network, _ = _run_network(Mesh2D(4, 3, pitch_mm=1.0), packets)
    for packet in packets:
        assert packet.delivered_cycle is not None
    assert network.stats.packets_delivered == 12


def test_network_idle_after_drain():
    packets = [data_packet(0, 8, created_cycle=0)]
    network, _ = _run_network(Mesh2D(3, 3, pitch_mm=1.0), packets)
    assert network.idle()
    assert network.in_flight() == 0


def test_flit_conservation():
    """Flits written into buffers equal flits read out after drain."""
    packets = [data_packet(i, (i + 5) % 9, created_cycle=2 * i) for i in range(9)]
    network, _ = _run_network(Mesh2D(3, 3, pitch_mm=1.0), packets)
    assert network.events.buffer_writes == network.events.buffer_reads


def test_credits_restored_after_drain():
    packets = [data_packet(0, 5, created_cycle=0), data_packet(5, 0, created_cycle=3)]
    network, _ = _run_network(Mesh2D(3, 2, pitch_mm=1.0), packets)
    for router in network.routers:
        for port, credits in enumerate(router.credits):
            if credits is None:
                continue
            for vc, value in enumerate(credits):
                assert value == network.buffer_depth, (
                    f"router {router.node} port {port} vc {vc} leaked credits"
                )


def test_out_vc_ownership_released():
    packets = [data_packet(0, 5, created_cycle=0)]
    network, _ = _run_network(Mesh2D(3, 2, pitch_mm=1.0), packets)
    for router in network.routers:
        for owners in router.out_owner:
            assert all(owner is None for owner in owners)


def test_delivery_callback_invoked():
    seen = []
    network = Network(Mesh2D(3, 1, pitch_mm=1.0))
    network.delivery_callbacks.append(lambda p, c: seen.append((p.pid, c)))
    packet = ctrl_packet(0, 2, created_cycle=0)
    sim = Simulator(
        network, ScheduledTraffic([packet]), warmup_cycles=0,
        measure_cycles=100, drain_cycles=100,
    )
    sim.run()
    assert seen == [(packet.pid, packet.delivered_cycle)]


def test_packet_to_unknown_node_rejected():
    network = Network(Mesh2D(2, 2, pitch_mm=1.0))
    with pytest.raises(ValueError):
        network.enqueue_packet(ctrl_packet(0, 99, created_cycle=0))


def test_hops_counted_per_channel_traversal():
    packets = [ctrl_packet(0, 3, created_cycle=0)]
    _run_network(Mesh2D(4, 1, pitch_mm=1.0), packets)
    assert packets[0].hops == 3


def test_express_channel_reduces_hops():
    express_packet = ctrl_packet(0, 4, created_cycle=0)
    _run_network(ExpressMesh(6, 1, pitch_mm=1.0, span=2), [express_packet])
    assert express_packet.hops == 2


def test_3d_mesh_delivery():
    mesh = Mesh3D(3, 3, 4, pitch_mm=1.0)
    packets = [
        data_packet(mesh.node_at((0, 0, 0)), mesh.node_at((2, 2, 3)), created_cycle=0)
    ]
    _run_network(mesh, packets)
    assert packets[0].delivered_cycle is not None
    assert packets[0].hops == 2 + 2 + 3


def test_short_flit_hops_tracked():
    packet = data_packet(0, 2, created_cycle=0, payload_groups=[1, 1, 1, 4, 4])
    network, _ = _run_network(
        Mesh2D(3, 1, pitch_mm=1.0), [packet], shutdown_enabled=True
    )
    # 5 flits x 3 router traversals (the destination's ejection crossbar
    # counts too); 3 short flits (groups==1) x 3 routers.
    assert network.events.flit_hops == 15
    assert network.events.short_flit_hops == 9
    assert network.events.short_flit_fraction == pytest.approx(0.6)


def test_weighted_events_scale_with_active_groups():
    full = data_packet(0, 2, created_cycle=0, payload_groups=[4, 4, 4, 4, 4])
    net_full, _ = _run_network(
        Mesh2D(3, 1, pitch_mm=1.0), [full], shutdown_enabled=True
    )
    short = data_packet(0, 2, created_cycle=0, payload_groups=[1, 1, 1, 1, 1])
    net_short, _ = _run_network(
        Mesh2D(3, 1, pitch_mm=1.0), [short], shutdown_enabled=True
    )
    assert net_full.events.xbar_traversals == net_short.events.xbar_traversals
    assert net_short.events.xbar_traversals_weighted == pytest.approx(
        net_full.events.xbar_traversals_weighted / 4
    )


def test_weights_ignored_when_shutdown_disabled():
    short = data_packet(0, 2, created_cycle=0, payload_groups=[1, 1, 1, 1, 1])
    network, _ = _run_network(
        Mesh2D(3, 1, pitch_mm=1.0), [short], shutdown_enabled=False
    )
    assert network.events.xbar_traversals_weighted == pytest.approx(
        float(network.events.xbar_traversals)
    )


def test_link_traversals_by_kind():
    mesh = Mesh3D(2, 1, 2, pitch_mm=2.0)
    packet = ctrl_packet(mesh.node_at((0, 0, 0)), mesh.node_at((1, 0, 1)),
                         created_cycle=0)
    network, _ = _run_network(mesh, [packet])
    assert network.events.link_flits["normal"] == 1
    assert network.events.link_flits["vertical"] == 1
    assert network.events.link_mm_weighted["normal"] == pytest.approx(2.0)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 8), st.integers(0, 8),
            st.sampled_from([1, 5]), st.integers(0, 40),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_property_random_packet_sets_all_delivered(specs):
    """Any admissible packet set is fully delivered, flits conserved."""
    packets = [
        Packet(src=s, dst=d, size_flits=n,
               klass=PacketClass.DATA if n > 1 else PacketClass.CTRL,
               created_cycle=c)
        for s, d, n, c in specs
        if s != d
    ]
    if not packets:
        return
    network, _ = _run_network(Mesh2D(3, 3, pitch_mm=1.0), packets, cycles=5000)
    for packet in packets:
        assert packet.delivered_cycle is not None
        assert packet.latency > 0
    assert network.events.buffer_writes == network.events.buffer_reads
    assert network.idle()
