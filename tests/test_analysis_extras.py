"""Heatmap rendering and replicated-run tests."""

import pytest

from repro.analysis import (
    ReplicatedResult,
    render_utilization_grid,
    run_replicated,
)
from repro.core.arch import make_2db
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_uniform_point


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=200,
        measure_cycles=1000,
        drain_cycles=5000,
        uniform_rates=(0.15,),
        nuca_rates=(0.1,),
        trace_cycles=4000,
        workloads=("tpcw",),
        seed=31,
    )


@pytest.fixture(scope="module")
def point(settings):
    return run_uniform_point(make_2db(), 0.2, settings)


class TestHeatmap:
    def test_grid_shape(self, point):
        grid = render_utilization_grid(point, 6, 6)
        lines = grid.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 12 for line in lines)  # 2 glyphs per tile

    def test_peak_tile_uses_hottest_glyph(self, point):
        grid = render_utilization_grid(point, 6, 6)
        assert "@" in grid

    def test_centre_hotter_than_corners(self, point):
        from repro.analysis import _HEAT_GLYPHS

        grid = render_utilization_grid(point, 6, 6).splitlines()

        def level(x, y):
            return _HEAT_GLYPHS.index(grid[y][2 * x])

        centre = level(2, 2) + level(3, 3) + level(2, 3) + level(3, 2)
        corners = level(0, 0) + level(5, 5) + level(0, 5) + level(5, 0)
        assert centre > corners

    def test_validation(self, point):
        with pytest.raises(ValueError):
            render_utilization_grid(point, 0, 6)


class TestLatencyThroughputCurve:
    def test_curve_shape(self, settings):
        from repro.analysis import latency_throughput_curve

        curve = latency_throughput_curve(
            make_2db(), rates=(0.05, 0.15, 0.6), settings=settings
        )
        assert len(curve) == 3
        offered = [o for o, _, _ in curve]
        latency = [l for _, _, l in curve]
        assert offered == sorted(offered)
        # Latency diverges at overload while accepted throughput
        # saturates below the offered 0.6.
        assert latency[-1] > 2 * latency[0]
        assert curve[-1][1] < 0.6

    def test_below_saturation_accepted_tracks_offered(self, settings):
        from repro.analysis import latency_throughput_curve

        ((offered, accepted, _),) = latency_throughput_curve(
            make_2db(), rates=(0.1,), settings=settings
        )
        assert accepted == pytest.approx(offered, rel=0.15)

    def test_empty_rates_rejected(self, settings):
        from repro.analysis import latency_throughput_curve

        with pytest.raises(ValueError):
            latency_throughput_curve(make_2db(), rates=(), settings=settings)


class TestReplicated:
    def test_replicated_statistics(self, settings):
        result = run_replicated(make_2db(), 0.1, settings, seeds=(1, 2, 3))
        assert isinstance(result, ReplicatedResult)
        assert result.mean_latency > 0
        assert result.std_latency >= 0
        assert result.seeds == (1, 2, 3)
        # Seed-to-seed spread at this load is small relative to the mean.
        assert result.std_latency < 0.1 * result.mean_latency

    def test_replicated_requires_two_seeds(self, settings):
        with pytest.raises(ValueError):
            run_replicated(make_2db(), 0.1, settings, seeds=(1,))

    def test_identical_seeds_zero_spread(self, settings):
        result = run_replicated(make_2db(), 0.1, settings, seeds=(7, 7))
        assert result.std_latency == pytest.approx(0.0)
