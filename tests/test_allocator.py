"""Separable VA/SA allocator tests."""

from hypothesis import given, strategies as st

from repro.noc.allocator import (
    SARequest,
    SwitchAllocator,
    VARequest,
    VirtualChannelAllocator,
)


def _free_all(ports, vcs):
    return {p: [True] * vcs for p in range(ports)}


class TestVirtualChannelAllocator:
    def test_single_request_granted(self):
        va = VirtualChannelAllocator(num_ports=3, num_vcs=2)
        grants = va.allocate([VARequest(0, 0, 2)], _free_all(3, 2))
        assert grants == {(0, 0): (2, 0)} or grants == {(0, 0): (2, 1)}

    def test_no_free_vc_no_grant(self):
        va = VirtualChannelAllocator(3, 2)
        free = {2: [False, False]}
        assert va.allocate([VARequest(0, 0, 2)], free) == {}

    def test_conflicting_requests_one_winner_per_out_vc(self):
        va = VirtualChannelAllocator(3, 1)
        requests = [VARequest(0, 0, 2), VARequest(1, 0, 2)]
        grants = va.allocate(requests, {2: [True]})
        assert len(grants) == 1
        assert list(grants.values()) == [(2, 0)]

    def test_two_vcs_serve_two_requesters(self):
        va = VirtualChannelAllocator(3, 2)
        requests = [VARequest(0, 0, 2), VARequest(1, 0, 2)]
        grants = va.allocate(requests, {2: [True, True]})
        # With two free out VCs both input VCs may win (if stage-1 picks
        # differ) or at least one wins.
        assert 1 <= len(grants) <= 2
        granted_vcs = {vc for _, vc in grants.values()}
        assert len(granted_vcs) == len(grants)  # no double-grant of a VC

    def test_fairness_over_rounds(self):
        va = VirtualChannelAllocator(2, 1)
        wins = {(0, 0): 0, (1, 0): 0}
        for _ in range(50):
            grants = va.allocate(
                [VARequest(0, 0, 1), VARequest(1, 0, 1)], {1: [True]}
            )
            for key in grants:
                wins[key] += 1
        assert abs(wins[(0, 0)] - wins[(1, 0)]) <= 2

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4), st.integers(0, 1), st.integers(0, 4)
            ),
            max_size=10,
            unique_by=lambda t: (t[0], t[1]),
        )
    )
    def test_property_grants_are_injective(self, triples):
        """No output VC is granted to two input VCs in one allocation."""
        va = VirtualChannelAllocator(5, 2)
        requests = [VARequest(p, v, o) for p, v, o in triples]
        grants = va.allocate(requests, _free_all(5, 2))
        out_vcs = list(grants.values())
        assert len(out_vcs) == len(set(out_vcs))
        for (in_port, in_vc), (out_port, _) in grants.items():
            match = [r for r in requests if (r.in_port, r.in_vc) == (in_port, in_vc)]
            assert match and match[0].out_port == out_port


class TestSwitchAllocator:
    def test_single_request_granted(self):
        sa = SwitchAllocator(3, 2)
        grants = sa.allocate([SARequest(0, 1, 2)])
        assert grants == [SARequest(0, 1, 2)]

    def test_one_grant_per_input_port(self):
        sa = SwitchAllocator(3, 2)
        grants = sa.allocate([SARequest(0, 0, 1), SARequest(0, 1, 2)])
        assert len(grants) == 1

    def test_one_grant_per_output_port(self):
        sa = SwitchAllocator(3, 2)
        grants = sa.allocate([SARequest(0, 0, 2), SARequest(1, 0, 2)])
        assert len(grants) == 1

    def test_disjoint_requests_all_granted(self):
        sa = SwitchAllocator(4, 2)
        requests = [SARequest(0, 0, 2), SARequest(1, 0, 3)]
        assert sorted(
            sa.allocate(requests), key=lambda r: r.in_port
        ) == requests

    def test_fairness_between_inputs(self):
        sa = SwitchAllocator(2, 1)
        wins = [0, 0]
        for _ in range(60):
            for grant in sa.allocate([SARequest(0, 0, 1), SARequest(1, 0, 1)]):
                wins[grant.in_port] += 1
        assert abs(wins[0] - wins[1]) <= 2

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 1), st.integers(0, 4)),
            max_size=12,
            unique_by=lambda t: (t[0], t[1]),
        )
    )
    def test_property_crossbar_constraint(self, triples):
        """At most one grant per input port and per output port."""
        sa = SwitchAllocator(5, 2)
        requests = [SARequest(p, v, o) for p, v, o in triples]
        grants = sa.allocate(requests)
        in_ports = [g.in_port for g in grants]
        out_ports = [g.out_port for g in grants]
        assert len(in_ports) == len(set(in_ports))
        assert len(out_ports) == len(set(out_ports))
        for grant in grants:
            assert grant in requests
