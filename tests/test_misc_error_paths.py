"""Defensive-path coverage: guards that should never fire in normal
operation, pinned so refactors keep them."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import ctrl_packet
from repro.noc.simulator import Simulator
from repro.topology.mesh2d import Mesh2D
from repro.traffic.base import ScheduledTraffic


def test_simulator_rejects_negative_sample_interval():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    with pytest.raises(ValueError):
        Simulator(network, ScheduledTraffic([]), warmup_cycles=0,
                  measure_cycles=10, drain_cycles=10, sample_interval=-1)


def test_return_credit_without_upstream_raises():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    with pytest.raises(RuntimeError):
        # Local port has no upstream link.
        network.return_credit(0, network.routers[0].local_port, 0, cycle=1)


def test_receive_credit_on_local_port_raises():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    router = network.routers[0]
    with pytest.raises(RuntimeError):
        router.receive_credit(router.local_port, 0)


def test_adaptive_without_candidates_drops_packet():
    """No surviving candidate is a counted drop, not an abort (the
    fault-injection contract: damaged routes degrade gracefully)."""
    from repro.noc.adaptive import WestFirstAdaptiveRouting

    mesh = Mesh2D(3, 1, pitch_mm=1.0)

    class Broken(WestFirstAdaptiveRouting):
        def candidate_ports(self, node, dst):
            return []

    network = Network(mesh, routing=Broken(mesh))
    network.enqueue_packet(ctrl_packet(0, 2, created_cycle=0))
    for _ in range(20):
        network.step()
    assert network.stats.packets_dropped == 1
    assert network.stats.packets_delivered == 0
    assert network.stats.drops_by_node == {0: 1}


def test_network_nodes_validated_on_enqueue():
    network = Network(Mesh2D(2, 2, pitch_mm=1.0))
    bad = ctrl_packet(0, 1, created_cycle=0)
    bad.src = -1
    with pytest.raises(ValueError):
        network.enqueue_packet(bad)


def test_vc_buffer_depth_validated_via_network():
    with pytest.raises(ValueError):
        Network(Mesh2D(2, 1, pitch_mm=1.0), buffer_depth=0)


def test_plain_topology_falls_back_to_table_routing():
    """The registry's Topology-base entry catches fabrics without a
    coordinate routing function; only non-topologies are rejected."""
    from repro.noc.routing import routing_for_topology
    from repro.noc.table_routing import TableRouting
    from repro.topology.base import LinkKind, LinkSpec, Topology

    plain = Topology(2, [
        LinkSpec(0, 1, "E", "W", LinkKind.NORMAL, 1.0),
        LinkSpec(1, 0, "W", "E", LinkKind.NORMAL, 1.0),
    ])
    assert isinstance(routing_for_topology(plain), TableRouting)
    with pytest.raises(TypeError):
        routing_for_topology(object())


def test_run_helper_steps_cycles():
    network = Network(Mesh2D(2, 1, pitch_mm=1.0))
    network.run(7)
    assert network.cycle == 7
