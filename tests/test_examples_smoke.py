"""Smoke tests: the two fastest example scripts must run end to end.

(The heavier examples exercise the same APIs the test suite already
covers; running all six here would double the suite's wall time.)
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "avg packet latency" in result.stdout
    assert "network power" in result.stdout


def test_nuca_cmp_workload_runs():
    result = _run("nuca_cmp_workload.py", "tpcw")
    assert result.returncode == 0, result.stderr
    assert "closed-loop mode" in result.stdout
    assert "offline mode" in result.stdout


def test_nuca_cmp_workload_rejects_unknown():
    result = _run("nuca_cmp_workload.py", "not-a-workload")
    assert result.returncode != 0


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "design_space_sweep.py",
        "nuca_cmp_workload.py",
        "thermal_shutdown_study.py",
        "extensions_tour.py",
        "saturation_analysis.py",
    ],
)
def test_examples_importable(script):
    """Every example at least compiles (full runs are covered above and
    by manual/bench usage)."""
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")
