"""Arbiter tests: single grant, fairness, rotation, LRS behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.arbiter import MatrixArbiter, RoundRobinArbiter


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
def test_no_request_no_grant(cls):
    arb = cls(4)
    assert arb.grant([False] * 4) is None


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
def test_single_request_granted(cls):
    arb = cls(4)
    assert arb.grant([False, False, True, False]) == 2


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
def test_grant_is_a_requester(cls):
    arb = cls(5)
    requests = [True, False, True, False, True]
    for _ in range(20):
        winner = arb.grant(requests)
        assert winner in (0, 2, 4)


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
def test_wrong_width_rejected(cls):
    arb = cls(3)
    with pytest.raises(ValueError):
        arb.grant([True, False])


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
def test_size_validation(cls):
    with pytest.raises(ValueError):
        cls(0)


def test_round_robin_rotates():
    arb = RoundRobinArbiter(3)
    all_on = [True, True, True]
    winners = [arb.grant(all_on) for _ in range(6)]
    assert winners == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_idle():
    arb = RoundRobinArbiter(4)
    assert arb.grant([True, False, False, True]) == 0
    assert arb.grant([True, False, False, True]) == 3
    assert arb.grant([True, False, False, True]) == 0


def test_matrix_arbiter_least_recently_served():
    arb = MatrixArbiter(3)
    all_on = [True, True, True]
    first = arb.grant(all_on)
    second = arb.grant(all_on)
    third = arb.grant(all_on)
    assert {first, second, third} == {0, 1, 2}
    # The earliest winner is now least-recently served again.
    assert arb.grant(all_on) == first


def test_matrix_arbiter_winner_drops_priority():
    arb = MatrixArbiter(2)
    assert arb.grant([True, True]) == 0
    assert arb.grant([True, True]) == 1


@pytest.mark.parametrize("cls", [RoundRobinArbiter, MatrixArbiter])
def test_fairness_under_saturation(cls):
    """With all requesters always asserted, grants are perfectly fair."""
    n = 4
    arb = cls(n)
    counts = [0] * n
    for _ in range(400):
        counts[arb.grant([True] * n)] += 1
    assert max(counts) - min(counts) <= 1


@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.lists(st.booleans(), min_size=1, max_size=6), min_size=1, max_size=40),
)
def test_property_grant_always_valid(size, request_rounds):
    """Both arbiters: grant is None iff no requests, else an asserted line."""
    rr = RoundRobinArbiter(size)
    mx = MatrixArbiter(size)
    for round_requests in request_rounds:
        requests = (round_requests * size)[:size]
        for arb in (rr, mx):
            winner = arb.grant(requests)
            if any(requests):
                assert winner is not None and requests[winner]
            else:
                assert winner is None


@given(st.integers(min_value=2, max_value=6))
def test_property_no_starvation(size):
    """A persistent requester is served within `size` rounds even when all
    other lines are also asserted (round-robin bound)."""
    arb = RoundRobinArbiter(size)
    target = size - 1
    waits = 0
    for _ in range(size * 3):
        winner = arb.grant([True] * size)
        if winner == target:
            break
        waits += 1
    assert waits < size * 2
