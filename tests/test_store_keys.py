"""Property tests for cache-key stability and the result store.

The content-addressed cache is only sound if the key is (a) a pure
function of the point's configuration — same config, however built,
same key — and (b) sensitive to *every* field of that configuration.
These tests pin both directions, plus cross-process stability (a worker
computing a key must agree with its parent regardless of hash
randomisation) and the store's corruption-degrades-to-miss contract.
"""

from __future__ import annotations

import dataclasses
import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.arch import Architecture, make_2db, make_3dm, make_architecture
from repro.experiments.config import ExperimentSettings
from repro.experiments.export import point_to_dict
from repro.experiments.runner import run_uniform_point
from repro.experiments.store import (
    SCHEMA_VERSION,
    PointSpec,
    ResultStore,
    canonical_json,
    point_key,
    point_result_from_json,
    point_result_to_json,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        warmup_cycles=100,
        measure_cycles=400,
        drain_cycles=2000,
        uniform_rates=(0.1,),
        nuca_rates=(0.1,),
        trace_cycles=2000,
        workloads=("tpcw",),
        seed=7,
    )


class TestKeyStability:
    def test_same_config_built_two_ways(self, settings):
        """Factory helper vs enum dispatch: identical config, identical key."""
        a = PointSpec(make_3dm(), "uniform", 0.2)
        b = PointSpec(
            config=make_architecture(Architecture.MIRA_3DM),
            rate=0.2,
            kind="uniform",
        )
        assert point_key(a, settings) == point_key(b, settings)

    def test_dataclass_replace_identity(self, settings):
        config = make_2db()
        rebuilt = dataclasses.replace(config)
        assert point_key(
            PointSpec(config, "uniform", 0.1), settings
        ) == point_key(PointSpec(rebuilt, "uniform", 0.1), settings)

    def test_explicit_seed_equals_settings_seed(self, settings):
        """``seed=None`` hashes the effective seed, not the spelling."""
        implicit = PointSpec(make_2db(), "uniform", 0.1)
        explicit = PointSpec(make_2db(), "uniform", 0.1, seed=settings.seed)
        assert point_key(implicit, settings) == point_key(explicit, settings)

    def test_key_is_repeatable(self, settings):
        spec = PointSpec(make_3dm(), "nuca", 0.15, short_flit_fraction=0.25)
        assert point_key(spec, settings) == point_key(spec, settings)

    def test_randomized_single_field_mutations_change_key(self, settings):
        """Seeded property sweep: any one field changing changes the key."""
        rng = random.Random(0xC0FFEE)
        base_spec = PointSpec(make_3dm(), "uniform", 0.2)
        base_key = point_key(base_spec, settings)

        def spec_mutations(rng):
            yield PointSpec(make_3dm(), "nuca", 0.2)
            yield PointSpec(make_3dm(), "uniform", 0.2 + rng.uniform(0.001, 0.1))
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                short_flit_fraction=rng.uniform(0.01, 0.9),
            )
            yield PointSpec(make_3dm(), "uniform", 0.2, shutdown_enabled=True)
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                seed=settings.seed + rng.randrange(1, 1000),
            )
            yield PointSpec(make_2db(), "uniform", 0.2)
            # Resilience fields (schema v3): damage and variation are
            # point identity too.
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                fault_links=((0, 0, 1),),
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                fault_vcs=((0, 0, 0, rng.randrange(2)),),
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                fault_random_links=rng.randrange(1, 4),
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                fault_random_links=1, fault_seed=rng.randrange(1, 1000),
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                fault_random_links=1, fault_cycle=rng.randrange(1, 1000),
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                fault_random_links=1, fault_mode="drain",
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                variation_sigma=rng.uniform(0.01, 0.5),
            )
            yield PointSpec(
                make_3dm(), "uniform", 0.2,
                variation_sigma=0.1, variation_seed=rng.randrange(1, 1000),
            )

        seen = {base_key}
        for trial in range(20):
            for spec in spec_mutations(rng):
                key = point_key(spec, settings)
                assert key != base_key, spec
            # Config-field mutations: bump one numeric field at a time.
            for field_name in ("layers", "ports", "flit_bits", "vcs",
                               "buffer_depth", "express_span"):
                value = getattr(base_spec.config, field_name)
                mutated = dataclasses.replace(
                    base_spec.config, **{field_name: value + rng.randrange(1, 4)}
                )
                key = point_key(
                    PointSpec(mutated, "uniform", 0.2), settings
                )
                assert key != base_key, field_name
                seen.add(key)
        assert len(seen) > 1

    def test_settings_budgets_are_part_of_the_key(self, settings):
        """Same point at different cycle budgets must never collide."""
        spec = PointSpec(make_2db(), "uniform", 0.1)
        base = point_key(spec, settings)
        for field_name in ("warmup_cycles", "measure_cycles", "drain_cycles",
                           "seed"):
            other = dataclasses.replace(
                settings, **{field_name: getattr(settings, field_name) + 1}
            )
            assert point_key(spec, other) != base, field_name
        # Sweep-grid fields are *not* point identity: the same point in
        # a different grid must hit the same cache entry.
        regrid = dataclasses.replace(settings, uniform_rates=(0.1, 0.2, 0.3))
        assert point_key(spec, regrid) == base

    def test_key_stable_across_subprocess(self, settings):
        """A fresh interpreter (spawn semantics) with a different hash
        seed computes the same key as this process."""
        spec = PointSpec(make_3dm(), "uniform", 0.2, short_flit_fraction=0.5)
        code = (
            "from repro.core.arch import make_3dm\n"
            "from repro.experiments.config import ExperimentSettings\n"
            "from repro.experiments.store import PointSpec, point_key\n"
            "settings = ExperimentSettings(warmup_cycles=100,"
            " measure_cycles=400, drain_cycles=2000, uniform_rates=(0.1,),"
            " nuca_rates=(0.1,), trace_cycles=2000, workloads=('tpcw',),"
            " seed=7)\n"
            "spec = PointSpec(make_3dm(), 'uniform', 0.2,"
            " short_flit_fraction=0.5)\n"
            "print(point_key(spec, settings))\n"
        )
        for hash_seed in ("0", "1", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": str(REPO_ROOT / "src"),
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            assert proc.stdout.strip() == point_key(spec, settings)

    def test_canonical_json_rejects_unserialisable(self):
        with pytest.raises(TypeError):
            canonical_json({"bad": object()})


class TestResultStoreRoundTrip:
    @pytest.fixture(scope="class")
    def point(self, settings):
        return run_uniform_point(make_2db(), 0.1, settings)

    def test_serialisation_is_lossless(self, point):
        clone = point_result_from_json(point_result_to_json(point))
        assert point_to_dict(clone) == point_to_dict(point)
        assert clone.node_activity == point.node_activity
        assert clone.sim.events.channel_flits == point.sim.events.channel_flits
        assert clone.sim.events.link_mm_weighted == point.sim.events.link_mm_weighted
        assert clone.sim.activity_windows == point.sim.activity_windows
        assert clone.power.breakdown_w == point.power.breakdown_w

    def test_store_put_get(self, tmp_path, settings, point):
        store = ResultStore(tmp_path / "cache")
        spec = PointSpec(make_2db(), "uniform", 0.1)
        key = point_key(spec, settings)
        assert store.get(key) is None
        store.put(key, point)
        assert key in store
        hit = store.get(key)
        assert hit is not None
        assert point_to_dict(hit) == point_to_dict(point)
        assert store.hits == 1 and store.misses == 1 and store.writes == 1
        assert len(store) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path, settings, point):
        store = ResultStore(tmp_path / "cache")
        spec = PointSpec(make_2db(), "uniform", 0.1)
        key = point_key(spec, settings)
        store.put(key, point)
        store.path_for(key).write_text("{ torn write", encoding="utf-8")
        assert store.get(key) is None

    def test_schema_drift_reads_as_miss(self, tmp_path, settings, point):
        store = ResultStore(tmp_path / "cache")
        spec = PointSpec(make_2db(), "uniform", 0.1)
        key = point_key(spec, settings)
        store.put(key, point)
        path = store.path_for(key)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(data), encoding="utf-8")
        assert store.get(key) is None
