"""Experiment-harness tests (small budgets; shape checks live in
test_integration_shapes.py)."""

import pytest

from repro.core.arch import make_2db, make_3dm, make_3dme
from repro.experiments import (
    ExperimentSettings,
    fig1_data_patterns,
    fig2_packet_types,
    fig9_energy_breakdown,
    fig11a_uniform_latency,
    fig11d_hop_counts,
    fig12d_pdp,
    fig13a_short_flit_fractions,
    fig13b_shutdown_savings,
    table1_area,
    table2_parameters,
    table3_delays,
    run_nuca_point,
    run_trace_point,
    run_uniform_point,
)
from repro.experiments.report import (
    dict_table,
    format_table,
    normalized_table,
    sweep_table,
)
from repro.traffic.traces import TraceRecord
from repro.noc.packet import PacketClass
from repro.traffic.workloads import WORKLOADS


class TestSettings:
    def test_quick_smaller_than_full(self):
        quick, full = ExperimentSettings.quick(), ExperimentSettings.full()
        assert quick.measure_cycles < full.measure_cycles
        assert len(quick.uniform_rates) < len(full.uniform_rates)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert ExperimentSettings.from_env() == ExperimentSettings.full()
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert ExperimentSettings.from_env() == ExperimentSettings.quick()
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            ExperimentSettings.from_env()


class TestRunners:
    def test_uniform_point_fields(self, tiny_settings, cfg_3dm):
        point = run_uniform_point(cfg_3dm, 0.1, tiny_settings)
        assert point.arch == "3DM"
        assert point.avg_latency > 0
        assert point.total_power_w > 0
        assert point.pdp > 0
        assert len(point.node_activity) == 36
        assert sum(point.node_activity) == pytest.approx(1.0)

    def test_router_power_per_node_sums_to_total(self, tiny_settings, cfg_3dm):
        point = run_uniform_point(cfg_3dm, 0.1, tiny_settings)
        assert sum(point.router_power_per_node()) == pytest.approx(
            point.total_power_w
        )

    def test_nuca_point(self, tiny_settings, cfg_2db):
        point = run_nuca_point(cfg_2db, 0.1, tiny_settings)
        assert point.sim.packets_measured > 0
        assert point.label.startswith("NUCA")

    def test_trace_point(self, tiny_settings, cfg_2db):
        records = [
            TraceRecord(cycle=c, src=0, dst=10, klass=PacketClass.DATA,
                        payload_groups=(1, 1, 4, 4, 1))
            for c in range(0, 900, 30)
        ]
        point = run_trace_point(cfg_2db, records, tiny_settings, label="t")
        assert point.sim.packets_measured > 0


class TestStaticHarnesses:
    def test_fig1_fractions_sum_to_one(self):
        data = fig1_data_patterns(workloads=("tpcw", "art"), sample_lines=200)
        for workload, fractions in data.items():
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert fractions["zero"] > 0

    def test_fig1_ordering_tracks_profiles(self):
        data = fig1_data_patterns(workloads=("multimedia", "art"),
                                  sample_lines=400)
        assert data["multimedia"]["zero"] > data["art"]["zero"]

    def test_fig9_breakdown_keys(self):
        data = fig9_energy_breakdown()
        assert set(data) == {"2DB", "3DB", "3DM", "3DM-E"}
        for bd in data.values():
            assert set(bd) == {"buffer", "crossbar", "arbitration", "link",
                               "control"}

    def test_table1_model_and_paper(self):
        table = table1_area()
        for arch, row in table.items():
            model = row["model"]
            paper = row["paper"]
            assert model.total == pytest.approx(paper["Total"], rel=0.01)

    def test_table2_and_3(self):
        params = table2_parameters()
        assert params["repeated_wire_ps_per_mm"] == pytest.approx(97.94)
        rows = table3_delays()
        assert [r.name for r in rows] == ["2DB", "3DM", "3DM-E"]
        assert [r.can_combine for r in rows] == [False, True, True]

    def test_fig13b_savings_analytic(self):
        savings = fig13b_shutdown_savings(analytic=True)
        for arch, by_fraction in savings.items():
            assert by_fraction[0.25] < by_fraction[0.50]
            assert 0.25 <= by_fraction[0.50] <= 0.37


class TestSimulationHarnesses:
    def test_fig11a_structure(self, tiny_settings):
        configs = [make_2db(), make_3dm()]
        sweep = fig11a_uniform_latency(tiny_settings, configs)
        assert set(sweep) == {"2DB", "3DM"}
        for series in sweep.values():
            assert [x for x, _ in series] == list(tiny_settings.uniform_rates)

    def test_fig12d_normalised_to_2db(self, tiny_settings):
        configs = [make_2db(), make_3dme()]
        pdp = fig12d_pdp(tiny_settings, configs)
        for _, value in pdp["2DB"]:
            assert value == pytest.approx(1.0)
        for _, value in pdp["3DM-E"]:
            assert value < 1.0

    def test_fig12d_requires_baseline(self, tiny_settings):
        with pytest.raises(ValueError):
            fig12d_pdp(tiny_settings, [make_3dm()])

    def test_fig11d_hop_count_structure(self, tiny_settings):
        configs = [make_2db(), make_3dme()]
        hops = fig11d_hop_counts(tiny_settings, configs)
        assert set(hops) == {"UR", "NUCA-UR", "MP"}
        for results in hops.values():
            assert set(results) == {"2DB", "3DM-E"}

    def test_fig13b_simulated_path(self, tiny_settings):
        savings = fig13b_shutdown_savings(
            (0.25, 0.50), configs=[make_3dm()], settings=tiny_settings
        )
        by_fraction = savings["3DM"]
        # More short payloads gate more layers; the simulated saving sits
        # above the analytic-at-nominal value because header/control flits
        # are short by construction (tests/test_layer_resolved.py checks
        # agreement against the model at the measured fraction).
        assert by_fraction[0.25] < by_fraction[0.50]
        assert 0.0 < by_fraction[0.50] < 0.60

    def test_fig13a_short_fractions(self, tiny_settings):
        fractions = fig13a_short_flit_fractions(tiny_settings)
        for name, value in fractions.items():
            target = WORKLOADS[name].short_flit_fraction
            assert value == pytest.approx(target, abs=0.07)

    def test_fig2_packet_types(self, tiny_settings):
        data = fig2_packet_types(tiny_settings)
        for name, split in data.items():
            assert split["ctrl"] + split["data"] == pytest.approx(1.0)
            assert 0.3 <= split["ctrl"] <= 0.8


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_sweep_table_render(self, tiny_settings):
        sweep = fig11a_uniform_latency(tiny_settings, [make_2db()])
        text = sweep_table(sweep, "avg_latency")
        assert "2DB" in text and "0.05" in text

    def test_normalized_table(self, tiny_settings):
        point = run_uniform_point(make_2db(), 0.1, tiny_settings)
        other = run_uniform_point(make_3dm(), 0.1, tiny_settings)
        text = normalized_table(
            {"wl": {"2DB": point, "3DM": other}}, metric="avg_latency"
        )
        assert "1.000" in text

    def test_dict_table(self):
        text = dict_table({"row": {"x": 1.0, "y": 2.0}})
        assert "row" in text and "x" in text
