"""Differential resilience tests: zero-cost when idle, clean when hurt.

Two halves of the resilience contract:

* **fault-free bit-identity** — every golden e2e case re-run with an
  *empty-plan* fault injector attached AND a sigma-0 variation sample
  threaded through must reproduce the committed golden digest
  bit-for-bit (reuses the fixture of ``test_golden_e2e``, so a drift
  fails against the same committed truth);
* **injected full-sanitize** — all six architectures run with injected
  link faults and drain-mode reroute under a
  sanitize-every-cycle sweep: zero invariant violations, zero watchdog
  trips, and the conservation ledger balances.
"""

import json
import os

import pytest

from repro.experiments.runner import run_uniform_point, run_nuca_point
from repro.experiments.store import PointSpec
from repro.resilience.faults import FaultPlan
from repro.resilience.variation import VariationModel

from tests.test_golden_e2e import CASES, FIXTURE, SETTINGS, compute_digest


def _run_with_idle_resilience(spec: PointSpec):
    """Run *spec* exactly as the golden harness does, but with an empty
    fault plan attached and a sigma-0 variation sample applied."""
    run = run_uniform_point if spec.kind == "uniform" else run_nuca_point
    return run(
        spec.config,
        spec.rate,
        SETTINGS,
        short_flit_fraction=spec.short_flit_fraction,
        shutdown_enabled=spec.shutdown_enabled,
        seed=spec.seed,
        faults=FaultPlan(),
        variation=VariationModel(0.0, seed=3).sample_for(spec.config),
    )


@pytest.fixture(scope="module")
def golden_digests():
    if not FIXTURE.exists():
        pytest.fail("golden fixture missing (see docs/TESTING.md)")
    data = json.loads(FIXTURE.read_text(encoding="utf-8"))
    return {name: case["digest"] for name, case in data["cases"].items()}


@pytest.mark.parametrize("name", sorted(CASES))
def test_idle_resilience_machinery_is_bit_identical(name, golden_digests):
    """Attached-but-inactive injector + sigma-0 variation must not move
    a single bit of any golden case (the zero-cost-when-detached and
    bit-identical-when-fault-free acceptance gates)."""
    point = _run_with_idle_resilience(CASES[name])
    assert compute_digest(point) == golden_digests[name], (
        f"{name}: idle fault injector / sigma-0 variation perturbed "
        "the simulation — the resilience hooks are not free"
    )


class TestInjectedFullSanitize:
    """Every architecture, damaged and audited every cycle."""

    @pytest.mark.parametrize(
        "spec", [CASES[f"{name}:uniform"] for name in sorted(
            {key.split(":")[0] for key in CASES}
        )], ids=lambda spec: spec.config.name,
    )
    def test_injected_run_sanitizes_clean(self, spec):
        config = spec.config
        plan = FaultPlan.random_links(
            config.build_topology(), 2, seed=5, cycle=50, mode="drain"
        )
        point = run_uniform_point(
            config,
            0.1,
            SETTINGS,
            sanitize=True,
            sanitize_interval=1,
            faults=plan,
        )
        result = point.sim
        assert result.fault_summary["links_killed"] == 2
        # Audited throughout and never raised; watchdog never tripped.
        # (REPRO_SANITIZE may have pre-attached a sanitizer with a
        # coarser cadence — the Simulator keeps it — so derive the
        # expected audit count from the actual cadence.)
        assert result.sanity is not None
        interval = int(os.environ.get("REPRO_SANITIZE_INTERVAL", "1") or 1)
        assert result.sanity.audits >= (result.cycles - 1) // max(interval, 1)
        assert result.sanity.last_audit_cycle >= result.cycles - max(interval, 1) - 1
        assert result.sanity.watchdog_reports == ()
        # Conservation: everything injected was delivered or counted as
        # a drop (drain mode wedges nothing).
        assert result.packets_delivered > 0
        assert not result.saturated

    def test_variation_run_sanitizes_clean(self):
        """Variation (a slow corner) composes with the sanitizer too."""
        from repro.core.arch import make_3dm

        config = make_3dm()
        variation = VariationModel(0.3, seed=9).sample_for(config)
        point = run_uniform_point(
            config,
            0.1,
            SETTINGS,
            sanitize=True,
            sanitize_interval=1,
            variation=variation,
        )
        assert point.sim.sanity is not None
        assert point.sim.sanity.watchdog_reports == ()
        assert point.sim.packets_delivered > 0
