"""Workload-profile tests: calibration targets and payload synthesis."""

import random

import pytest

from repro.traffic.patterns import (
    WORDS_PER_LINE,
    line_active_groups,
)
from repro.traffic.workloads import PRESENTED_WORKLOADS, WORKLOADS, WorkloadProfile


def test_presented_workloads_exist():
    for name in PRESENTED_WORKLOADS:
        assert name in WORKLOADS


def test_all_expected_workloads_present():
    expected = {
        "tpcw", "sjbb", "apache", "zeus", "apsi", "art", "swim", "mgrid",
        "barnes", "ocean", "multimedia",
    }
    assert expected <= set(WORKLOADS)


def test_presented_short_flit_average_matches_paper():
    """Fig. 13a summary: ~40% average short flits over the six apps."""
    values = [WORKLOADS[w].short_flit_fraction for w in PRESENTED_WORKLOADS]
    assert sum(values) / len(values) == pytest.approx(0.40, abs=0.02)


def test_presented_short_flit_peak_matches_paper():
    """Fig. 13a summary: up to 58% short flits."""
    peak = max(WORKLOADS[w].short_flit_fraction for w in PRESENTED_WORKLOADS)
    assert peak == pytest.approx(0.58, abs=0.01)


def test_profile_names_match_keys():
    for key, profile in WORKLOADS.items():
        assert profile.name == key


def test_sample_line_length():
    rng = random.Random(1)
    line = WORKLOADS["tpcw"].sample_line(rng)
    assert len(line) == WORDS_PER_LINE
    assert all(0 <= w < (1 << 32) for w in line)


@pytest.mark.parametrize("name", PRESENTED_WORKLOADS)
def test_sampled_short_fraction_matches_profile(name):
    """Generated cache lines reproduce the calibrated short-flit rate."""
    profile = WORKLOADS[name]
    rng = random.Random(7)
    short = total = 0
    for _ in range(1500):
        for groups in line_active_groups(profile.sample_line(rng)):
            total += 1
            short += groups == 1
    assert short / total == pytest.approx(profile.short_flit_fraction, abs=0.03)


def test_word_pattern_mix_sums_below_one():
    for profile in WORKLOADS.values():
        total = (
            profile.zero_word_fraction
            + profile.one_word_fraction
            + profile.sign_word_fraction
        )
        assert total <= 1.0


def test_profile_validation_fraction_range():
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad", short_flit_fraction=1.5, zero_word_fraction=0.1,
            one_word_fraction=0.1, sign_word_fraction=0.1,
            ctrl_packet_fraction=0.5, request_rate=0.05, read_fraction=0.7,
            l1_miss_rate=0.05, sharing_fraction=0.2, working_set_lines=1024,
        )


def test_profile_validation_pattern_sum():
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad", short_flit_fraction=0.5, zero_word_fraction=0.6,
            one_word_fraction=0.3, sign_word_fraction=0.3,
            ctrl_packet_fraction=0.5, request_rate=0.05, read_fraction=0.7,
            l1_miss_rate=0.05, sharing_fraction=0.2, working_set_lines=1024,
        )


def test_profile_validation_rate_positive():
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="bad", short_flit_fraction=0.5, zero_word_fraction=0.3,
            one_word_fraction=0.1, sign_word_fraction=0.1,
            ctrl_packet_fraction=0.5, request_rate=0.0, read_fraction=0.7,
            l1_miss_rate=0.05, sharing_fraction=0.2, working_set_lines=1024,
        )


def test_multimedia_has_most_zero_words():
    """Fig. 1: multimedia-style workloads are dominated by frequent
    patterns, so their zero-word share should top the suite."""
    zero = {n: p.zero_word_fraction for n, p in WORKLOADS.items()}
    assert max(zero, key=zero.get) == "multimedia"


def test_sample_word_distribution_roughly_matches():
    profile = WORKLOADS["tpcw"]
    rng = random.Random(3)
    zeros = sum(profile.sample_word(rng) == 0 for _ in range(8000)) / 8000
    assert zeros == pytest.approx(profile.zero_word_fraction, abs=0.02)
