"""Virtual-channel buffer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.buffer import VirtualChannelBuffer
from repro.noc.packet import FlitType, Flit, ctrl_packet


def _flit():
    return Flit(ctrl_packet(0, 1), FlitType.SINGLE, 0)


def test_starts_empty():
    buf = VirtualChannelBuffer(4)
    assert buf.is_empty and not buf.is_full
    assert len(buf) == 0
    assert buf.free_slots == 4
    assert buf.front() is None


def test_push_pop_fifo_order():
    buf = VirtualChannelBuffer(4)
    flits = [_flit() for _ in range(3)]
    for f in flits:
        buf.push(f)
    assert [buf.pop() for _ in range(3)] == flits


def test_overflow_raises():
    buf = VirtualChannelBuffer(2)
    buf.push(_flit())
    buf.push(_flit())
    with pytest.raises(OverflowError):
        buf.push(_flit())


def test_underflow_raises():
    buf = VirtualChannelBuffer(2)
    with pytest.raises(IndexError):
        buf.pop()


def test_counts_reads_and_writes():
    buf = VirtualChannelBuffer(4)
    buf.push(_flit())
    buf.push(_flit())
    buf.pop()
    assert buf.writes == 2
    assert buf.reads == 1


def test_front_does_not_consume():
    buf = VirtualChannelBuffer(4)
    f = _flit()
    buf.push(f)
    assert buf.front() is f
    assert len(buf) == 1


def test_invalid_depth():
    with pytest.raises(ValueError):
        VirtualChannelBuffer(0)


@given(st.lists(st.booleans(), max_size=60), st.integers(min_value=1, max_value=8))
def test_property_occupancy_invariant(ops, depth):
    """Occupancy always in [0, depth]; free_slots complements it."""
    buf = VirtualChannelBuffer(depth)
    expected = 0
    for is_push in ops:
        if is_push and not buf.is_full:
            buf.push(_flit())
            expected += 1
        elif not is_push and not buf.is_empty:
            buf.pop()
            expected -= 1
        assert len(buf) == expected
        assert buf.free_slots == depth - expected
        assert 0 <= len(buf) <= depth
