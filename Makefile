# Convenience targets for the MIRA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full report reproduce examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ -q

test-fast:
	$(PYTHON) -m pytest tests/ -q -x -p no:cacheprovider \
		--ignore=tests/test_integration_shapes.py \
		--ignore=tests/test_analysis.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-full:
	REPRO_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

report:
	$(PYTHON) -m repro report

reproduce:
	$(PYTHON) -m repro reproduce

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/design_space_sweep.py
	$(PYTHON) examples/nuca_cmp_workload.py
	$(PYTHON) examples/thermal_shutdown_study.py
	$(PYTHON) examples/extensions_tour.py
	$(PYTHON) examples/saturation_analysis.py

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
