"""MIRA: A Multi-Layered On-Chip Interconnect Router Architecture.

Full reproduction of Park et al., ISCA 2008: a cycle-accurate 3D NoC
simulator, the four evaluated router architectures (2DB / 3DB / 3DM /
3DM-E), Orion-style power and area models, a HotSpot-style thermal
solver, and a NUCA CMP cache-coherence substrate.

Quickstart::

    from repro import Architecture, make_architecture, simulate

    config = make_architecture(Architecture.MIRA_3DM_E)
    result = simulate(config, flit_rate=0.2)
    print(result.sim.avg_latency, result.power.total_w)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
table-by-table reproduction record.
"""

from repro.core.arch import (
    Architecture,
    ArchitectureConfig,
    make_2db,
    make_3db,
    make_3dm,
    make_3dme,
    make_architecture,
    standard_configs,
)
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import (
    PointResult,
    run_nuca_point,
    run_trace_point,
    run_uniform_point,
)
from repro.noc.network import Network
from repro.noc.packet import Flit, FlitType, Packet, PacketClass
from repro.noc.simulator import SimulationResult, Simulator
from repro.power.area import RouterArea, router_area
from repro.power.energy import PowerReport, power_report
from repro.power.orion import RouterEnergyModel
from repro.thermal.hotspot import ThermalResult, steady_state, temperature_drop
from repro.traffic.nuca import NucaUniformTraffic
from repro.traffic.synthetic import UniformRandomTraffic
from repro.traffic.workloads import WORKLOADS, WorkloadProfile
from repro.analysis import (
    channel_utilization,
    find_saturation_rate,
    hottest_channels,
    latency_throughput_curve,
    render_utilization_grid,
    run_replicated,
)

__version__ = "1.0.0"


def simulate(
    config: ArchitectureConfig,
    flit_rate: float = 0.1,
    settings: ExperimentSettings = None,
    **kwargs,
) -> PointResult:
    """One-call uniform-random simulation of an architecture.

    Thin convenience wrapper over
    :func:`~repro.experiments.runner.run_uniform_point`.
    """
    settings = settings or ExperimentSettings.from_env()
    return run_uniform_point(config, flit_rate, settings, **kwargs)


__all__ = [
    "Architecture",
    "ArchitectureConfig",
    "make_2db",
    "make_3db",
    "make_3dm",
    "make_3dme",
    "make_architecture",
    "standard_configs",
    "ExperimentSettings",
    "PointResult",
    "run_uniform_point",
    "run_nuca_point",
    "run_trace_point",
    "simulate",
    "Network",
    "Simulator",
    "SimulationResult",
    "Packet",
    "Flit",
    "FlitType",
    "PacketClass",
    "RouterArea",
    "router_area",
    "RouterEnergyModel",
    "PowerReport",
    "power_report",
    "ThermalResult",
    "steady_state",
    "temperature_drop",
    "UniformRandomTraffic",
    "NucaUniformTraffic",
    "WORKLOADS",
    "WorkloadProfile",
    "find_saturation_rate",
    "channel_utilization",
    "hottest_channels",
    "render_utilization_grid",
    "run_replicated",
    "latency_throughput_curve",
    "__version__",
]
