"""NUCA-constrained bimodal request/response traffic (Fig. 11b).

The paper's NUCA-UR workload models the layout-constrained communication
of a NUCA CMP: only the 8 CPU nodes *initiate* traffic, each request goes
to a uniformly random cache node as a one-flit control packet, and every
request is matched by a five-flit data response from the cache back to the
CPU after the bank access latency (Sec. 4.2.1).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.noc.packet import Packet, PacketClass, ctrl_packet, data_packet
from repro.traffic.base import BaseTraffic

#: L2 bank access latency in cycles at 2 GHz (Table 4).
DEFAULT_BANK_LATENCY = 4


class NucaUniformTraffic(BaseTraffic):
    """Request/response traffic between CPU and cache node sets.

    Args:
        cpu_nodes: node ids hosting processors (request initiators).
        cache_nodes: node ids hosting L2 banks (responders).
        request_rate: requests per CPU per cycle (Bernoulli).
        bank_latency: cycles between request delivery and response
            injection at the bank.
        short_flit_fraction: probability each response payload flit is
            short (drives the layer-shutdown studies).
        seed: RNG seed.
    """

    def __init__(
        self,
        cpu_nodes: Sequence[int],
        cache_nodes: Sequence[int],
        request_rate: float,
        bank_latency: int = DEFAULT_BANK_LATENCY,
        short_flit_fraction: float = 0.0,
        seed: int = 1,
    ) -> None:
        if not cpu_nodes or not cache_nodes:
            raise ValueError("need non-empty CPU and cache node sets")
        if set(cpu_nodes) & set(cache_nodes):
            raise ValueError("CPU and cache node sets must be disjoint")
        if request_rate <= 0:
            raise ValueError(f"request_rate must be positive, got {request_rate}")
        if bank_latency < 0:
            raise ValueError("bank_latency must be non-negative")
        if not 0.0 <= short_flit_fraction <= 1.0:
            raise ValueError("short_flit_fraction must be in [0, 1]")
        self.cpu_nodes = list(cpu_nodes)
        self.cache_nodes = list(cache_nodes)
        self.request_rate = request_rate
        self.bank_latency = bank_latency
        self.short_flit_fraction = short_flit_fraction
        self.rng = random.Random(seed)

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        packets: List[Packet] = []
        for cpu in self.cpu_nodes:
            if self.rng.random() < self.request_rate:
                bank = self.rng.choice(self.cache_nodes)
                request = ctrl_packet(src=cpu, dst=bank, created_cycle=cycle)
                request.reply_tag = ("nuca-request", cpu)
                packets.append(request)
        return packets

    def _response_groups(self) -> Optional[List[int]]:
        if self.short_flit_fraction <= 0.0:
            return None
        groups = [1]
        for _ in range(4):
            groups.append(1 if self.rng.random() < self.short_flit_fraction else 4)
        return groups

    def on_delivered(self, packet: Packet, cycle: int) -> Iterable[Packet]:
        tag = packet.reply_tag
        if not (isinstance(tag, tuple) and tag and tag[0] == "nuca-request"):
            return ()
        cpu = tag[1]
        response = data_packet(
            src=packet.dst,
            dst=cpu,
            created_cycle=cycle + self.bank_latency,
            payload_groups=self._response_groups(),
        )
        return (response,)
