"""Traffic generation: synthetic patterns, NUCA traffic, workload models.

The paper evaluates with three traffic regimes (Sec. 4.2.1):

* **UR** — uniform random: any node sends to any other node.
* **NUCA-UR** — bimodal request/response traffic obeying the NUCA layout:
  8 CPU nodes issue short requests to 28 cache nodes, every request is
  answered with a data packet.
* **MP traces** — application memory traces run through the NUCA cache
  hierarchy; reproduced here by workload models calibrated to the paper's
  published traffic statistics (Figs. 1, 2, 13a) feeding the
  :mod:`repro.cache` substrate.
"""

from repro.traffic.base import ScheduledTraffic, TrafficSource
from repro.traffic.synthetic import (
    BitComplementTraffic,
    BurstyUniformRandomTraffic,
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)
from repro.traffic.nuca import NucaUniformTraffic
from repro.traffic.patterns import (
    PatternKind,
    classify_word,
    classify_line,
    line_active_groups,
)
from repro.traffic.workloads import WORKLOADS, WorkloadProfile
from repro.traffic.traces import TraceRecord, TraceTraffic, read_trace, write_trace

__all__ = [
    "TrafficSource",
    "ScheduledTraffic",
    "UniformRandomTraffic",
    "BurstyUniformRandomTraffic",
    "BitComplementTraffic",
    "TransposeTraffic",
    "HotspotTraffic",
    "NucaUniformTraffic",
    "PatternKind",
    "classify_word",
    "classify_line",
    "line_active_groups",
    "WorkloadProfile",
    "WORKLOADS",
    "TraceRecord",
    "TraceTraffic",
    "read_trace",
    "write_trace",
]
