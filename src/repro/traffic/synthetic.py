"""Open-loop synthetic traffic generators.

:class:`UniformRandomTraffic` is the paper's UR workload: every node
injects packets to uniformly random destinations at a controlled flit
rate.  The classic adversarial patterns (transpose, bit-complement,
hotspot) are included for wider coverage; they share the same machinery.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.noc.packet import (
    CTRL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    Packet,
    PacketClass,
)
from repro.traffic.base import BaseTraffic


class _RandomInjectionTraffic(BaseTraffic):
    """Shared Bernoulli-injection machinery.

    ``flit_rate`` is the offered load in flits per node per cycle; it is
    converted to a per-cycle packet-injection probability using the mean
    packet size implied by ``data_fraction``.
    """

    def __init__(
        self,
        num_nodes: int,
        flit_rate: float,
        data_fraction: float = 0.5,
        short_flit_fraction: float = 0.0,
        seed: int = 1,
        nodes: Optional[Sequence[int]] = None,
        high_priority_fraction: float = 0.0,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("need at least two nodes")
        if flit_rate <= 0:
            raise ValueError(f"flit_rate must be positive, got {flit_rate}")
        if not 0.0 <= data_fraction <= 1.0:
            raise ValueError("data_fraction must be in [0, 1]")
        if not 0.0 <= short_flit_fraction <= 1.0:
            raise ValueError("short_flit_fraction must be in [0, 1]")
        if not 0.0 <= high_priority_fraction <= 1.0:
            raise ValueError("high_priority_fraction must be in [0, 1]")
        self.num_nodes = num_nodes
        self.flit_rate = flit_rate
        self.data_fraction = data_fraction
        self.short_flit_fraction = short_flit_fraction
        self.high_priority_fraction = high_priority_fraction
        self.rng = random.Random(seed)
        self.sources: List[int] = list(nodes) if nodes is not None else list(
            range(num_nodes)
        )
        mean_size = (
            data_fraction * DATA_PACKET_FLITS
            + (1.0 - data_fraction) * CTRL_PACKET_FLITS
        )
        self.packet_prob = min(1.0, flit_rate / mean_size)

    def destination(self, src: int) -> int:
        raise NotImplementedError

    def _payload_groups(self, size_flits: int) -> Optional[List[int]]:
        if self.short_flit_fraction <= 0.0 or size_flits == 1:
            return None
        groups = [1]  # head flit carries only the address word
        for _ in range(size_flits - 1):
            if self.rng.random() < self.short_flit_fraction:
                groups.append(1)
            else:
                groups.append(4)
        return groups

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        packets: List[Packet] = []
        rng = self.rng
        for src in self.sources:
            if rng.random() >= self.packet_prob:
                continue
            dst = self.destination(src)
            if dst == src:
                continue
            if rng.random() < self.data_fraction:
                size, klass = DATA_PACKET_FLITS, PacketClass.DATA
            else:
                size, klass = CTRL_PACKET_FLITS, PacketClass.CTRL
            priority = 0
            if (
                self.high_priority_fraction
                and rng.random() < self.high_priority_fraction
            ):
                priority = 1
            packets.append(
                Packet(
                    src=src,
                    dst=dst,
                    size_flits=size,
                    klass=klass,
                    created_cycle=cycle,
                    payload_groups=self._payload_groups(size),
                    priority=priority,
                )
            )
        return packets


class UniformRandomTraffic(_RandomInjectionTraffic):
    """Uniform random traffic (the paper's UR workload)."""

    def destination(self, src: int) -> int:
        dst = self.rng.randrange(self.num_nodes - 1)
        return dst if dst < src else dst + 1


class BurstyUniformRandomTraffic(UniformRandomTraffic):
    """Uniform random destinations with ON/OFF (bursty) injection.

    Each node follows a two-state Markov process: in ON it injects at
    ``flit_rate / duty_cycle``, in OFF it is silent; expected burst and
    gap lengths follow from ``burst_length`` and ``duty_cycle``, and the
    long-run offered load equals ``flit_rate``.  Bursty arrivals are the
    standard stress variant of UR: same mean, much heavier queueing
    tails.
    """

    def __init__(
        self,
        num_nodes: int,
        flit_rate: float,
        burst_length: float = 50.0,
        duty_cycle: float = 0.25,
        **kwargs,
    ) -> None:
        if burst_length < 1:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError(f"duty_cycle must be in (0, 1], got {duty_cycle}")
        super().__init__(num_nodes=num_nodes, flit_rate=flit_rate, **kwargs)
        self.burst_length = burst_length
        self.duty_cycle = duty_cycle
        # Inflate the per-cycle injection probability during bursts so
        # the long-run mean matches flit_rate.
        self.packet_prob = min(1.0, self.packet_prob / duty_cycle)
        self._p_off = 1.0 / burst_length
        gap_length = burst_length * (1.0 - duty_cycle) / duty_cycle
        self._p_on = 1.0 / max(1.0, gap_length)
        self._state_on = [self.rng.random() < duty_cycle for _ in self.sources]

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        rng = self.rng
        for i, on in enumerate(self._state_on):
            if on:
                if rng.random() < self._p_off:
                    self._state_on[i] = False
            else:
                if rng.random() < self._p_on:
                    self._state_on[i] = True
        active = [
            src for i, src in enumerate(self.sources) if self._state_on[i]
        ]
        saved = self.sources
        self.sources = active
        try:
            return super().packets_for_cycle(cycle)
        finally:
            self.sources = saved


class TransposeTraffic(_RandomInjectionTraffic):
    """Matrix-transpose traffic on a ``width`` x ``width`` mesh."""

    def __init__(self, width: int, flit_rate: float, **kwargs) -> None:
        self.width = width
        super().__init__(num_nodes=width * width, flit_rate=flit_rate, **kwargs)

    def destination(self, src: int) -> int:
        x, y = src % self.width, src // self.width
        return x * self.width + y


class BitComplementTraffic(_RandomInjectionTraffic):
    """Bit-complement traffic: node ``i`` sends to ``~i``."""

    def destination(self, src: int) -> int:
        bits = max(1, (self.num_nodes - 1).bit_length())
        return (~src) & ((1 << bits) - 1) if self.num_nodes & (self.num_nodes - 1) == 0 else (
            self.num_nodes - 1 - src
        )


class HotspotTraffic(_RandomInjectionTraffic):
    """Uniform random with extra probability mass on hotspot nodes."""

    def __init__(
        self,
        num_nodes: int,
        flit_rate: float,
        hotspots: Sequence[int],
        hotspot_fraction: float = 0.3,
        **kwargs,
    ) -> None:
        if not hotspots:
            raise ValueError("need at least one hotspot node")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        super().__init__(num_nodes=num_nodes, flit_rate=flit_rate, **kwargs)
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction

    def destination(self, src: int) -> int:
        if self.rng.random() < self.hotspot_fraction:
            return self.rng.choice(self.hotspots)
        dst = self.rng.randrange(self.num_nodes - 1)
        return dst if dst < src else dst + 1
