"""Traffic-source protocol shared by all generators."""

from __future__ import annotations

from typing import Iterable, List, Protocol, runtime_checkable

from repro.noc.packet import Packet


@runtime_checkable
class TrafficSource(Protocol):
    """Produces packets for the simulator.

    ``packets_for_cycle(cycle)`` is called once per simulated cycle and
    returns packets *created* at that cycle (their ``created_cycle`` may be
    later — e.g. a cache bank emitting a response after its access
    latency — and the simulator will hold them until due).

    ``on_delivered(packet, cycle)`` is the closed-loop hook: it is invoked
    whenever any packet is ejected and may return new packets (responses).

    ``finished(cycle)`` lets finite sources (trace replay) signal
    exhaustion so the simulator can stop injecting and drain.
    """

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]: ...

    def on_delivered(self, packet: Packet, cycle: int) -> Iterable[Packet]: ...

    def finished(self, cycle: int) -> bool: ...


class BaseTraffic:
    """Convenience base with open-loop defaults."""

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        return ()

    def on_delivered(self, packet: Packet, cycle: int) -> Iterable[Packet]:
        return ()

    def finished(self, cycle: int) -> bool:
        return False


class ScheduledTraffic(BaseTraffic):
    """Replays an explicit, pre-built packet list (useful in tests).

    Packets are emitted at their ``created_cycle``.
    """

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._by_cycle: dict[int, List[Packet]] = {}
        self._last_cycle = -1
        for packet in packets:
            self._by_cycle.setdefault(packet.created_cycle, []).append(packet)
            self._last_cycle = max(self._last_cycle, packet.created_cycle)

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        return self._by_cycle.pop(cycle, ())

    def finished(self, cycle: int) -> bool:
        return cycle > self._last_cycle
