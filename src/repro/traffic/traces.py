"""Trace file format and trace-replay traffic source.

The MP-trace experiments (Figs. 11c, 12c) replay message traces produced
by the NUCA cache hierarchy (:mod:`repro.cache`).  The on-disk format is a
plain text file, one record per line::

    cycle,src,dst,class,groups

where ``class`` is ``data``/``ctrl`` and ``groups`` is a ``|``-separated
list of per-flit active word-group counts (empty for default payloads).
Lines starting with ``#`` are comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.noc.packet import (
    CTRL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    Packet,
    PacketClass,
)
from repro.traffic.base import BaseTraffic


@dataclass(frozen=True)
class TraceRecord:
    """One packet-injection event in a trace."""

    cycle: int
    src: int
    dst: int
    klass: PacketClass
    payload_groups: Optional[tuple] = None

    @property
    def size_flits(self) -> int:
        if self.payload_groups is not None:
            return len(self.payload_groups)
        return DATA_PACKET_FLITS if self.klass is PacketClass.DATA else CTRL_PACKET_FLITS

    def to_packet(self) -> Packet:
        return Packet(
            src=self.src,
            dst=self.dst,
            size_flits=self.size_flits,
            klass=self.klass,
            created_cycle=self.cycle,
            payload_groups=list(self.payload_groups)
            if self.payload_groups is not None
            else None,
        )

    def to_line(self) -> str:
        groups = (
            "|".join(str(g) for g in self.payload_groups)
            if self.payload_groups is not None
            else ""
        )
        return f"{self.cycle},{self.src},{self.dst},{self.klass.value},{groups}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.strip().split(",")
        if len(parts) != 5:
            raise ValueError(f"malformed trace line: {line!r}")
        cycle, src, dst, klass, groups = parts
        payload = (
            tuple(int(g) for g in groups.split("|")) if groups else None
        )
        return cls(
            cycle=int(cycle),
            src=int(src),
            dst=int(dst),
            klass=PacketClass(klass),
            payload_groups=payload,
        )


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write *records* to *path*; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro MIRA trace v1: cycle,src,dst,class,groups\n")
        for record in records:
            fh.write(record.to_line() + "\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read all records from *path*."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            records.append(TraceRecord.from_line(line))
    return records


class TraceTraffic(BaseTraffic):
    """Replays a trace, injecting each packet at its recorded cycle.

    Records must be sorted by cycle (the cache hierarchy and
    :func:`write_trace` produce them that way); an unsorted list raises.
    """

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        cycles = [r.cycle for r in records]
        if any(b < a for a, b in zip(cycles, cycles[1:])):
            raise ValueError("trace records must be sorted by cycle")
        self._records = list(records)
        self._pos = 0

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TraceTraffic":
        return cls(read_trace(path))

    def packets_for_cycle(self, cycle: int) -> Iterator[Packet]:
        while self._pos < len(self._records) and self._records[self._pos].cycle <= cycle:
            yield self._records[self._pos].to_packet()
            self._pos += 1

    def finished(self, cycle: int) -> bool:
        return self._pos >= len(self._records)
