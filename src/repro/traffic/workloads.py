"""Workload models standing in for the paper's Simics traces.

The paper drove its NoC with full-system memory traces of commercial and
scientific workloads (Sec. 4.1.2): TPC-W, SPECjbb, Apache, Zeus, SPEComp
(apsi/art/swim/mgrid), SPLASH-2 (barnes/ocean) and MediaBench.  Those
traces are proprietary and require Simics; we substitute *statistical
workload models* calibrated to every traffic characteristic the paper
publishes:

* short-flit fraction per application (Fig. 13a: up to 58%, 40% average
  over the six presented applications),
* data-pattern mix of payload words (Fig. 1: all-0 / all-1 dominated),
* packet-type split between control and data (Fig. 2),
* low NUCA injection rates (Sec. 3.2.4).

Each profile also carries the memory-side parameters (miss rates, sharing,
read fraction, working set) used by the :mod:`repro.cache` hierarchy when
synthesising full message traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.traffic.patterns import WORD_MASK, WORDS_PER_LINE


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one application's NUCA traffic.

    Attributes:
        name: short workload tag used in the paper's figures.
        short_flit_fraction: fraction of payload flits that are short
            (calibrated to Fig. 13a).
        zero_word_fraction: probability a payload word is all zeros.
        one_word_fraction: probability a payload word is all ones.
        sign_word_fraction: probability a payload word is a narrow
            sign-extended value (Fig. 1's remaining frequent patterns).
        ctrl_packet_fraction: fraction of network packets that are
            control/coherence packets (Fig. 2).
        request_rate: memory requests per CPU per cycle presented to the
            cache hierarchy (NUCA loads are low; Sec. 3.2.4).
        read_fraction: fraction of memory operations that are loads.
        l1_miss_rate: fraction of CPU memory operations missing in L1 (and
            therefore producing network traffic).
        sharing_fraction: probability a miss touches a line shared with
            another CPU (drives invalidation traffic).
        working_set_lines: number of distinct cache lines the synthetic
            address stream cycles through.
    """

    name: str
    short_flit_fraction: float
    zero_word_fraction: float
    one_word_fraction: float
    sign_word_fraction: float
    ctrl_packet_fraction: float
    request_rate: float
    read_fraction: float
    l1_miss_rate: float
    sharing_fraction: float
    working_set_lines: int

    def __post_init__(self) -> None:
        fractions = {
            "short_flit_fraction": self.short_flit_fraction,
            "zero_word_fraction": self.zero_word_fraction,
            "one_word_fraction": self.one_word_fraction,
            "sign_word_fraction": self.sign_word_fraction,
            "ctrl_packet_fraction": self.ctrl_packet_fraction,
            "read_fraction": self.read_fraction,
            "l1_miss_rate": self.l1_miss_rate,
            "sharing_fraction": self.sharing_fraction,
        }
        for field_name, value in fractions.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if (
            self.zero_word_fraction
            + self.one_word_fraction
            + self.sign_word_fraction
            > 1.0
        ):
            raise ValueError("word pattern fractions must sum to <= 1")
        if self.request_rate <= 0:
            raise ValueError("request_rate must be positive")
        if self.working_set_lines < 1:
            raise ValueError("working_set_lines must be >= 1")

    # -- payload synthesis ------------------------------------------------

    def sample_word(self, rng: random.Random) -> int:
        """Draw one 32-bit payload word from the pattern mix."""
        r = rng.random()
        if r < self.zero_word_fraction:
            return 0
        r -= self.zero_word_fraction
        if r < self.one_word_fraction:
            return WORD_MASK
        r -= self.one_word_fraction
        if r < self.sign_word_fraction:
            # Narrow sign-extended value, skewed small.
            value = rng.randrange(-128, 128)
            return value & WORD_MASK
        return rng.getrandbits(32) or 1  # avoid degenerate zero

    def sample_line(self, rng: random.Random) -> List[int]:
        """Draw a 64-byte cache line honouring the short-flit fraction.

        Each of the line's four flits is forced short with probability
        :attr:`short_flit_fraction` (top word valid, lower words zeroed);
        otherwise all four words are drawn from the pattern mix.
        """
        words: List[int] = []
        for _ in range(WORDS_PER_LINE // 4):
            if rng.random() < self.short_flit_fraction:
                top = self.sample_word(rng)
                words.extend([top, 0, 0, 0])
            else:
                flit = [self.sample_word(rng) for _ in range(4)]
                # A fully-redundant draw would be a short flit by accident;
                # force at least one live lower word to keep the calibrated
                # short fraction exact.
                if all(w in (0, WORD_MASK) for w in flit[1:]):
                    flit[3] = rng.getrandbits(32) | (1 << 20)
                words.extend(flit)
        return words


def _profile(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


#: The workload suite.  Short-flit fractions for the six presented
#: applications average 40% with a 58% peak, matching Fig. 13a's summary
#: statistics; the remaining values are calibrated estimates consistent
#: with Figs. 1 and 2 (exact bar heights are not published).
WORKLOADS: Dict[str, WorkloadProfile] = {
    "tpcw": _profile(
        name="tpcw",
        short_flit_fraction=0.50,
        zero_word_fraction=0.42,
        one_word_fraction=0.06,
        sign_word_fraction=0.18,
        ctrl_packet_fraction=0.62,
        request_rate=0.035,
        read_fraction=0.72,
        l1_miss_rate=0.065,
        sharing_fraction=0.22,
        working_set_lines=65536,
    ),
    "sjbb": _profile(
        name="sjbb",
        short_flit_fraction=0.44,
        zero_word_fraction=0.38,
        one_word_fraction=0.05,
        sign_word_fraction=0.20,
        ctrl_packet_fraction=0.58,
        request_rate=0.040,
        read_fraction=0.70,
        l1_miss_rate=0.055,
        sharing_fraction=0.25,
        working_set_lines=49152,
    ),
    "apache": _profile(
        name="apache",
        short_flit_fraction=0.30,
        zero_word_fraction=0.26,
        one_word_fraction=0.04,
        sign_word_fraction=0.16,
        ctrl_packet_fraction=0.55,
        request_rate=0.045,
        read_fraction=0.68,
        l1_miss_rate=0.075,
        sharing_fraction=0.30,
        working_set_lines=81920,
    ),
    "zeus": _profile(
        name="zeus",
        short_flit_fraction=0.36,
        zero_word_fraction=0.30,
        one_word_fraction=0.05,
        sign_word_fraction=0.15,
        ctrl_packet_fraction=0.56,
        request_rate=0.042,
        read_fraction=0.69,
        l1_miss_rate=0.070,
        sharing_fraction=0.28,
        working_set_lines=81920,
    ),
    "art": _profile(
        name="art",
        short_flit_fraction=0.22,
        zero_word_fraction=0.18,
        one_word_fraction=0.03,
        sign_word_fraction=0.10,
        ctrl_packet_fraction=0.45,
        request_rate=0.060,
        read_fraction=0.80,
        l1_miss_rate=0.120,
        sharing_fraction=0.10,
        working_set_lines=131072,
    ),
    "apsi": _profile(
        name="apsi",
        short_flit_fraction=0.28,
        zero_word_fraction=0.22,
        one_word_fraction=0.03,
        sign_word_fraction=0.12,
        ctrl_packet_fraction=0.46,
        request_rate=0.055,
        read_fraction=0.78,
        l1_miss_rate=0.100,
        sharing_fraction=0.12,
        working_set_lines=131072,
    ),
    "swim": _profile(
        name="swim",
        short_flit_fraction=0.25,
        zero_word_fraction=0.20,
        one_word_fraction=0.03,
        sign_word_fraction=0.10,
        ctrl_packet_fraction=0.44,
        request_rate=0.065,
        read_fraction=0.79,
        l1_miss_rate=0.130,
        sharing_fraction=0.08,
        working_set_lines=163840,
    ),
    "mgrid": _profile(
        name="mgrid",
        short_flit_fraction=0.26,
        zero_word_fraction=0.21,
        one_word_fraction=0.03,
        sign_word_fraction=0.11,
        ctrl_packet_fraction=0.44,
        request_rate=0.058,
        read_fraction=0.81,
        l1_miss_rate=0.110,
        sharing_fraction=0.09,
        working_set_lines=147456,
    ),
    "barnes": _profile(
        name="barnes",
        short_flit_fraction=0.32,
        zero_word_fraction=0.26,
        one_word_fraction=0.04,
        sign_word_fraction=0.14,
        ctrl_packet_fraction=0.52,
        request_rate=0.048,
        read_fraction=0.74,
        l1_miss_rate=0.060,
        sharing_fraction=0.35,
        working_set_lines=40960,
    ),
    "ocean": _profile(
        name="ocean",
        short_flit_fraction=0.29,
        zero_word_fraction=0.23,
        one_word_fraction=0.04,
        sign_word_fraction=0.12,
        ctrl_packet_fraction=0.48,
        request_rate=0.052,
        read_fraction=0.76,
        l1_miss_rate=0.090,
        sharing_fraction=0.20,
        working_set_lines=98304,
    ),
    "multimedia": _profile(
        name="multimedia",
        short_flit_fraction=0.58,
        zero_word_fraction=0.50,
        one_word_fraction=0.08,
        sign_word_fraction=0.14,
        ctrl_packet_fraction=0.50,
        request_rate=0.050,
        read_fraction=0.75,
        l1_miss_rate=0.080,
        sharing_fraction=0.05,
        working_set_lines=57344,
    ),
}

#: The six applications shown in the paper's result figures.
PRESENTED_WORKLOADS = ["tpcw", "sjbb", "apache", "zeus", "art", "multimedia"]
