"""Frequent-data-pattern classification (Fig. 1).

NUCA data packets carry cache lines whose words very often hold frequent
patterns — all zeros, all ones, narrow sign-extended values (the paper
cites Alameldeen & Wood's Frequent Pattern Compression study [18]).  MIRA
exploits this: a flit whose lower word groups are all redundant is a
*short flit* and can traverse the router with the bottom layers gated off.

This module classifies 32-bit words and whole cache lines, and computes
the per-flit ``active_groups`` used by the shutdown model.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

#: Bits per word (one word per stacked layer in the 4-layer design).
WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
#: Words per flit (128-bit flit / 32-bit word groups).
WORDS_PER_FLIT = 4
#: Words per 64-byte cache line.
WORDS_PER_LINE = 16


class PatternKind(enum.Enum):
    """FPC-style word pattern classes."""

    ZERO = "zero"
    ONE = "one"
    SIGN8 = "sign8"
    SIGN16 = "sign16"
    REPEATED = "repeated"
    RANDOM = "random"


def classify_word(word: int) -> PatternKind:
    """Classify a 32-bit *word* into its frequent-pattern class."""
    if not 0 <= word <= WORD_MASK:
        raise ValueError(f"word out of 32-bit range: {word:#x}")
    if word == 0:
        return PatternKind.ZERO
    if word == WORD_MASK:
        return PatternKind.ONE
    # Sign-extended byte: value representable as an 8-bit two's complement.
    signed = word - (1 << WORD_BITS) if word >> (WORD_BITS - 1) else word
    if -128 <= signed < 128:
        return PatternKind.SIGN8
    if -(1 << 15) <= signed < (1 << 15):
        return PatternKind.SIGN16
    b0 = word & 0xFF
    if word == (b0 | (b0 << 8) | (b0 << 16) | (b0 << 24)):
        return PatternKind.REPEATED
    return PatternKind.RANDOM


def classify_line(words: Sequence[int]) -> List[PatternKind]:
    """Classify each word of a cache line."""
    return [classify_word(w) for w in words]


def _word_redundant(word: int) -> bool:
    """Redundant words carry no information beyond a gated constant.

    The paper's zero-detector treats all-0 and all-1 words as redundant
    (Sec. 1: "all 0 word or all 1 word or short address flits").
    """
    return word == 0 or word == WORD_MASK


def flit_active_groups(words: Sequence[int]) -> int:
    """Active word groups in one flit (``words[0]`` rides the top layer).

    The shutdown circuit gates contiguous *bottom* layers, so the count is
    the highest non-redundant word index + 1, clamped to at least 1 (the
    top layer always stays on to carry the header/valid word).
    """
    if len(words) != WORDS_PER_FLIT:
        raise ValueError(f"a flit has {WORDS_PER_FLIT} words, got {len(words)}")
    active = 1
    for idx in range(WORDS_PER_FLIT - 1, 0, -1):
        if not _word_redundant(words[idx]):
            active = idx + 1
            break
    return active


def line_active_groups(words: Sequence[int]) -> List[int]:
    """Per-flit ``active_groups`` for a full cache line (4 payload flits)."""
    if len(words) != WORDS_PER_LINE:
        raise ValueError(
            f"a cache line has {WORDS_PER_LINE} words, got {len(words)}"
        )
    return [
        flit_active_groups(words[i : i + WORDS_PER_FLIT])
        for i in range(0, WORDS_PER_LINE, WORDS_PER_FLIT)
    ]


def is_short_flit(words: Sequence[int]) -> bool:
    """True when only the top word group carries valid data."""
    return flit_active_groups(words) == 1
