"""Network analysis utilities: saturation search and channel-load maps.

These are the standard interconnect-evaluation tools a user of the
library reaches for after the paper's fixed sweeps: where does each
design saturate, and which channels carry the load?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401

from repro.core.arch import ArchitectureConfig
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_uniform_point

#: A run counts as saturated when its latency exceeds this multiple of
#: the zero-load latency (the usual knee criterion) or the drain cap hit.
SATURATION_LATENCY_FACTOR = 3.0


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of a saturation search."""

    arch: str
    saturation_rate: float
    zero_load_latency: float
    #: Per probed rate: (rate, latency, saturated flag).
    probes: Tuple[Tuple[float, float, bool], ...]


def _is_saturated(point: PointResult, zero_load: float) -> bool:
    return point.sim.saturated or (
        point.avg_latency > SATURATION_LATENCY_FACTOR * zero_load
    )


def find_saturation_rate(
    config: ArchitectureConfig,
    settings: Optional[ExperimentSettings] = None,
    low: float = 0.02,
    high: float = 1.0,
    tolerance: float = 0.02,
) -> SaturationResult:
    """Bisect the uniform-random injection rate at which *config*
    saturates.

    The returned rate is the highest probed load that still behaved
    (latency under the knee criterion, drain completed).
    """
    settings = settings or ExperimentSettings.from_env()
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    probes: List[Tuple[float, float, bool]] = []

    zero_point = run_uniform_point(config, low, settings)
    zero_load = zero_point.avg_latency
    probes.append((low, zero_load, False))

    lo, hi = low, high
    # Make sure the upper bound actually saturates; if not, report it.
    top = run_uniform_point(config, hi, settings)
    probes.append((hi, top.avg_latency, _is_saturated(top, zero_load)))
    if not _is_saturated(top, zero_load):
        return SaturationResult(
            arch=config.name,
            saturation_rate=hi,
            zero_load_latency=zero_load,
            probes=tuple(probes),
        )

    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        point = run_uniform_point(config, mid, settings)
        saturated = _is_saturated(point, zero_load)
        probes.append((mid, point.avg_latency, saturated))
        if saturated:
            hi = mid
        else:
            lo = mid
    return SaturationResult(
        arch=config.name,
        saturation_rate=lo,
        zero_load_latency=zero_load,
        probes=tuple(probes),
    )


def channel_load_map(point: PointResult) -> Dict[Tuple[int, int], int]:
    """Per-channel flit counts of a measured run (``(src, dst) -> flits``)."""
    return dict(point.sim.events.channel_flits)


def channel_utilization(
    point: PointResult, window_cycles: Optional[int] = None
) -> Dict[Tuple[int, int], float]:
    """Per-channel utilisation in flits/cycle over the measured window."""
    window = window_cycles or point.sim.window_cycles
    if window <= 0:
        raise ValueError("window must be positive")
    return {
        channel: flits / window
        for channel, flits in point.sim.events.channel_flits.items()
    }


def hottest_channels(
    point: PointResult, count: int = 5
) -> List[Tuple[Tuple[int, int], float]]:
    """The *count* most-utilised channels, highest first."""
    if count < 1:
        raise ValueError("count must be >= 1")
    utilisation = channel_utilization(point)
    ranked = sorted(utilisation.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:count]


#: Glyph ramp for the utilisation heatmap, cold to hot.
_HEAT_GLYPHS = " .:-=+*#%@"


def render_utilization_grid(point: PointResult, width: int, height: int) -> str:
    """ASCII heatmap of per-*node* switch load on a 2D mesh.

    Each tile shows the summed utilisation of its outgoing channels,
    bucketed onto a ten-glyph ramp (`` .:-=+*#%@``) normalised to the
    hottest node — a quick visual of where X-Y routing piles up traffic.
    """
    if width * height <= 0:
        raise ValueError("grid dimensions must be positive")
    util = channel_utilization(point)
    node_load = [0.0] * (width * height)
    for (src, _), value in util.items():
        if 0 <= src < len(node_load):
            node_load[src] += value
    peak = max(node_load) or 1.0
    lines = []
    for y in range(height):
        row = []
        for x in range(width):
            level = node_load[y * width + x] / peak
            idx = min(len(_HEAT_GLYPHS) - 1, int(level * (len(_HEAT_GLYPHS) - 1) + 0.5))
            row.append(_HEAT_GLYPHS[idx] * 2)
        lines.append("".join(row))
    return "\n".join(lines)


def latency_throughput_curve(
    config: ArchitectureConfig,
    rates: Sequence[float],
    settings: Optional[ExperimentSettings] = None,
) -> List[Tuple[float, float, float]]:
    """The classic offered-load curve: (offered, accepted, latency).

    Below saturation accepted tracks offered; past it, accepted flattens
    while latency diverges — the knee is the network's capacity.
    """
    settings = settings or ExperimentSettings.from_env()
    if not rates:
        raise ValueError("need at least one rate")
    curve: List[Tuple[float, float, float]] = []
    for rate in rates:
        point = run_uniform_point(config, rate, settings)
        curve.append((rate, point.sim.accepted_throughput, point.avg_latency))
    return curve


@dataclass(frozen=True)
class ReplicatedResult:
    """Mean/extremes of a metric over independent seeds."""

    arch: str
    rate: float
    mean_latency: float
    std_latency: float
    mean_power_w: float
    seeds: Tuple[int, ...]


def run_replicated(
    config: ArchitectureConfig,
    rate: float,
    settings: Optional[ExperimentSettings] = None,
    seeds: Tuple[int, ...] = (1, 2, 3),
) -> ReplicatedResult:
    """Repeat one simulation point over independent seeds.

    Gives the sampling error of a reported latency — the honesty check
    behind any single-seed number in EXPERIMENTS.md.
    """
    settings = settings or ExperimentSettings.from_env()
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for a spread estimate")
    latencies = []
    powers = []
    for seed in seeds:
        point = run_uniform_point(config, rate, settings, seed=seed)
        latencies.append(point.avg_latency)
        powers.append(point.total_power_w)
    n = len(latencies)
    mean = sum(latencies) / n
    var = sum((x - mean) ** 2 for x in latencies) / (n - 1)
    return ReplicatedResult(
        arch=config.name,
        rate=rate,
        mean_latency=mean,
        std_latency=var ** 0.5,
        mean_power_w=sum(powers) / n,
        seeds=tuple(seeds),
    )
