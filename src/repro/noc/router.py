"""The virtual-channel wormhole router pipeline.

Models the canonical four-stage pipeline of Fig. 8a — routing computation
(RC), virtual-channel allocation (VA), switch allocation (SA), switch
traversal (ST) — followed by link traversal (LT).  Head flits walk all
stages; body/tail flits inherit the route and VC and only arbitrate for
the switch, which is wormhole flow control.

Stage timing is enforced with per-VC ``ready_cycle`` stamps: a VC performs
at most one pipeline action per cycle.  With a switch-allocation grant at
cycle ``c`` the flit reaches the next router's input buffer ready for RC
at ``c + 2`` when ST and LT are merged (the 3DM/3DM-E single-stage
traversal of Fig. 8d) or ``c + 3`` otherwise, which yields the paper's
4-cycle vs 5-cycle per-hop latency.

Hot-path layout (the event-driven engine): per-VC pipeline state lives in
flat parallel arrays on the router — ``vc_state`` / ``vc_ready`` /
``vc_out_port`` / ``vc_out_vc`` / ``vc_fifos`` indexed by
``port * num_vcs + vc`` — not in per-VC objects.  Together with the
``Network.routers`` list this is a structure-of-arrays keyed by
``(node, port, vc)``: :meth:`step` runs tight loops over plain list
slots instead of chasing attributes through thousands of tiny objects.
:class:`_InputVC` remains as a read/write *view* of one slot so audits
(sanitizer), telemetry sampling, and corruption-injection tests keep a
stable object surface; mutating a view mutates the flat arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.noc.allocator import (
    SARequest,
    SwitchAllocator,
    VARequest,
    VirtualChannelAllocator,
)
from repro.noc.buffer import VirtualChannelBuffer
from repro.noc.packet import Flit
from repro.noc.routing import RoutingFunction, UnroutableError
from repro.noc.stats import EventCounts
from repro.topology.base import LOCAL_PORT, LinkSpec, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

# Input-VC pipeline states.
_IDLE, _RC, _VA, _ACTIVE = 0, 1, 2, 3

#: Human-readable names for the input-VC pipeline states (sanitizer /
#: watchdog reports).
VC_STATE_NAMES = {_IDLE: "idle", _RC: "rc", _VA: "va", _ACTIVE: "active"}

#: Cycles from SA grant to the flit being RC-ready at the next router.
ST_LT_MERGED_CYCLES = 2
ST_LT_SPLIT_CYCLES = 3

# Stall-attribution cause codes: every cycle a buffered head flit fails
# to advance is charged to exactly one of these.  The counters live in
# repro.telemetry.attribution.StallAttribution; the codes are defined
# here so the hot path never imports the telemetry package.
STALL_RC_WAIT = 0        # pipeline transit toward RC/VA readiness
STALL_VA_CONFLICT = 1    # requested an output VC, none granted
STALL_SA_LOSS = 2        # bid for the crossbar, lost switch allocation
STALL_CREDIT = 3         # output VC held but downstream buffer is full
STALL_SERIALIZATION = 4  # own wormhole cadence (one flit per cycle)
NUM_STALL_CAUSES = 5
STALL_CAUSE_NAMES = (
    "rc_wait", "va_conflict", "sa_loss", "credit_stall", "serialization"
)


class _InputVC:
    """View of one (input port, VC) pair's slot in the flat arrays.

    The pipeline state itself lives in the router's ``vc_*`` arrays;
    reading or writing ``state`` / ``out_port`` / ``out_vc`` /
    ``ready_cycle`` here goes straight through to those arrays, so audit
    code and fault-injection tests observe and perturb exactly what the
    engine executes on.
    """

    __slots__ = ("_router", "_i", "port", "vc", "buffer")

    def __init__(self, router: "Router", port: int, vc: int) -> None:
        self._router = router
        self._i = port * router.num_vcs + vc
        self.port = port
        self.vc = vc
        self.buffer = router.vc_buffers[self._i]

    @property
    def state(self) -> int:
        return self._router.vc_state[self._i]

    @state.setter
    def state(self, value: int) -> None:
        self._router.vc_state[self._i] = value

    @property
    def out_port(self) -> int:
        return self._router.vc_out_port[self._i]

    @out_port.setter
    def out_port(self, value: int) -> None:
        self._router.vc_out_port[self._i] = value

    @property
    def out_vc(self) -> int:
        return self._router.vc_out_vc[self._i]

    @out_vc.setter
    def out_vc(self, value: int) -> None:
        self._router.vc_out_vc[self._i] = value

    @property
    def ready_cycle(self) -> int:
        return self._router.vc_ready[self._i]

    @ready_cycle.setter
    def ready_cycle(self, value: int) -> None:
        self._router.vc_ready[self._i] = value


class Router:
    """One NoC router instance.

    Created by :class:`~repro.noc.network.Network`; not normally
    instantiated directly.
    """

    def __init__(
        self,
        node: int,
        topology: Topology,
        routing: RoutingFunction,
        num_vcs: int,
        buffer_depth: int,
        combined_st_lt: bool,
        layer_groups: int,
        shutdown_enabled: bool,
        events: EventCounts,
        speculative_sa: bool = False,
        lookahead_rc: bool = False,
        qos_enabled: bool = False,
        vc_by_class: bool = False,
    ) -> None:
        self.node = node
        self.topology = topology
        self.routing = routing
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.combined_st_lt = combined_st_lt
        self.layer_groups = layer_groups
        self.shutdown_enabled = shutdown_enabled
        self.events = events
        #: Fig. 8b: switch allocation speculatively overlaps VA.
        self.speculative_sa = speculative_sa
        #: Fig. 8c: the route arrives with the head flit (computed one
        #: hop upstream), so RC is off the critical path.
        self.lookahead_rc = lookahead_rc
        #: Priority-aware switch allocation (QoS provisioning, Sec. 3.3).
        self.qos_enabled = qos_enabled
        #: Sec. 3.2.4 (ii): dedicate one VC to control and one to data
        #: traffic — VC 0 carries control packets, VC 1 data packets.
        self.vc_by_class = vc_by_class
        if vc_by_class and num_vcs < 2:
            raise ValueError("vc_by_class needs at least 2 virtual channels")
        #: Adaptive routing functions offer several productive ports; the
        #: RC stage then picks the one with the most downstream credits.
        #: These capability flags are part of the RoutingFunction
        #: protocol (RoutingBase supplies defaults), so no getattr
        #: duck-typing probes are needed.
        self._adaptive = routing.is_adaptive
        #: Routing functions with a VC discipline (torus datelines,
        #: escape-layer tables) dictate the permissible out VCs per
        #: packet at VA time.
        self._vc_discipline = routing.has_vc_discipline
        if self._vc_discipline and vc_by_class:
            raise ValueError(
                "vc_by_class cannot be combined with a routing VC discipline"
            )
        if num_vcs < routing.required_vcs:
            raise ValueError(
                f"routing function needs >= {routing.required_vcs} virtual "
                f"channels, got {num_vcs}"
            )
        self._network: Optional["Network"] = None

        self.port_names: List[str] = topology.port_names(node)
        self.port_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.port_names)
        }
        self.num_ports = len(self.port_names)
        self.local_port = self.port_index[LOCAL_PORT]

        # Flat per-VC hot-path state, indexed by port * num_vcs + vc.
        units = self.num_ports * num_vcs
        self.vc_state: List[int] = [_IDLE] * units
        self.vc_ready: List[int] = [0] * units
        self.vc_out_port: List[int] = [-1] * units
        self.vc_out_vc: List[int] = [-1] * units
        self.vc_buffers: List[VirtualChannelBuffer] = [
            VirtualChannelBuffer(buffer_depth) for _ in range(units)
        ]
        #: Aliases of ``vc_buffers[i].fifo`` — the engine tests emptiness
        #: and pops through these without touching the buffer objects.
        self.vc_fifos = [buf.fifo for buf in self.vc_buffers]
        self.in_vcs: List[_InputVC] = [
            _InputVC(self, p, v)
            for p in range(self.num_ports)
            for v in range(num_vcs)
        ]
        # Output-side state. Local output has effectively infinite credits
        # (the ejection sink always accepts); model with None.
        self.out_links: List[Optional[LinkSpec]] = [None] * self.num_ports
        for name, link in topology.out_ports[node].items():
            self.out_links[self.port_index[name]] = link
        self.credits: List[Optional[List[int]]] = []
        for p in range(self.num_ports):
            if p == self.local_port or self.out_links[p] is None:
                self.credits.append(None)
            else:
                self.credits.append([buffer_depth] * num_vcs)
        self.out_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * num_vcs for _ in range(self.num_ports)
        ]

        self._va = VirtualChannelAllocator(self.num_ports, num_vcs)
        self._sa = SwitchAllocator(self.num_ports, num_vcs)
        # Pre-resolved arbiter objects so the fast paths rotate pointers
        # without dict lookups (same instances the allocators scan).
        self._va1_arbs = [
            self._va._va1[(p, v)]
            for p in range(self.num_ports)
            for v in range(num_vcs)
        ]
        self._va2_arbs = [
            self._va._va2[(p, v)]
            for p in range(self.num_ports)
            for v in range(num_vcs)
        ]
        self._sa1_arbs = list(self._sa._sa1)
        self._sa2_arbs = list(self._sa._sa2)
        self._hop_cycles = (
            ST_LT_MERGED_CYCLES if combined_st_lt else ST_LT_SPLIT_CYCLES
        )
        #: Activity weight k/L for each effective layer count k (index
        #: 0 unused) — the same dyadic float the legacy per-event
        #: division produced, computed once.
        self._w_table = [k / layer_groups for k in range(layer_groups + 1)]
        #: Flits this router has switched (for per-node power/thermal maps).
        self.flits_switched = 0
        #: Histogram of switched flits by *effective* active-layer count:
        #: index ``k-1`` counts traversals that drove exactly ``k``
        #: datapath layers (k = flit.active_groups with shutdown enabled,
        #: else layer_groups).  Feeds the per-router-per-layer power maps
        #: handed to the thermal model.
        self.flits_switched_by_layers = [0] * layer_groups
        # Flat indices of input VCs that may have work this cycle.
        self._active: set[int] = set()
        # Alias of network.stage_callbacks (bound in attach); empty list
        # until then so an unattached router never fires hooks.
        self._stage_callbacks: List = []
        # How many input VCs sit in each non-idle pipeline state.  Kept
        # in lockstep with the state transitions so :meth:`step` can skip
        # whole stages that cannot match any VC (a pass over zero
        # matching units is a no-op, so skipping it is bit-identical).
        self._n_rc = 0
        self._n_va = 0
        self._n_active = 0
        # Stall attribution (repro.telemetry.attribution).  Detached —
        # the default — everything stays None and the hot path pays one
        # ``is not None`` test on stall branches only; StallAttribution
        # aliases its flat count arrays here on attach.
        self._attrib = None
        self._stall_counts = None
        self._stall_base = 0
        self._stall_out_counts = None
        self._stall_out_base = 0
        self._stall_layer_counts = None
        # Fault injection (repro.resilience.faults).  Detached — the
        # default — this stays None and the RC stage pays one
        # ``is not None`` test per routed head; the injector installs a
        # set of dead output-port indices when it kills a link.
        self._dead_out: Optional[set] = None

    def attach(self, network: "Network") -> None:
        self._network = network
        # Same list object the network mutates: callbacks registered
        # later are seen here without re-attachment.
        self._stage_callbacks = network.stage_callbacks
        # Pre-resolve (dst node, dst input port) per output port so the
        # traversal hot path skips the per-flit string port lookups, and
        # the per-link ``EventCounts.count_link`` arguments likewise.
        self._arrival_targets: List[Optional[Tuple[int, int]]] = []
        self._link_args: List[Optional[Tuple[str, float, Tuple[int, int]]]] = []
        for link in self.out_links:
            if link is None:
                self._arrival_targets.append(None)
                self._link_args.append(None)
            else:
                dst_router = network.routers[link.dst]
                self._arrival_targets.append(
                    (link.dst, dst_router.port_index[link.dst_port])
                )
                self._link_args.append(
                    (link.kind.value, link.length_mm, (link.src, link.dst))
                )
        # Direct slot aliases into the network's timing wheels and
        # active-router set.  Every in-simulator delay (credit return 1,
        # ejection 1, hop 2-3) is far inside the wheel horizon, so the
        # traversal hot path appends into the due slot directly instead
        # of going through TimingWheel.push; the wheels' slot *list*
        # objects are stable (pop_due swaps the inner lists only).
        self._arr_slots = network._arrivals._slots
        self._arr_size = network._arrivals._size
        self._credit_slots = network._credits._slots
        self._credit_size = network._credits._size
        self._ej_slots = network._ejections._slots
        self._ej_size = network._ejections._size
        self._wake_add = network._active_routers.add
        self._upstream = network._credit_targets[self.node]

    # -- helpers -----------------------------------------------------------

    def _vc(self, port: int, vc: int) -> _InputVC:
        return self.in_vcs[port * self.num_vcs + vc]

    def _weight(self, flit: Flit) -> float:
        """Activity weight of *flit* for separable-module energy."""
        if not self.shutdown_enabled:
            return 1.0
        return flit.active_groups / self.layer_groups

    @staticmethod
    def _class_vc(flit: Flit) -> int:
        """VC dedicated to this flit's traffic class: 0 ctrl, 1 data."""
        from repro.noc.packet import PacketClass

        return 1 if flit.packet.klass is PacketClass.DATA else 0

    def _pick_adaptive_port(self, dst: int) -> int:
        """Most-credited candidate port (ties keep preference order).

        With injected faults, candidates leading onto dead channels are
        skipped — the adaptive reroute path.  No surviving candidate
        raises :class:`UnroutableError`, which the RC stage converts
        into a counted packet drop.
        """
        dead = self._dead_out
        best_idx = -1
        best_score = -1
        for name in self.routing.candidate_ports(self.node, dst):
            idx = self.port_index[name]
            if dead is not None and idx in dead:
                continue
            credits = self.credits[idx]
            score = (1 << 30) if credits is None else sum(credits)
            if score > best_score:
                best_idx, best_score = idx, score
        if best_idx < 0:
            raise UnroutableError(
                f"router {self.node}: adaptive routing offered no candidates",
                node=self.node,
                dst=dst,
                failed=self._failed_channels(),
            )
        return best_idx

    def _failed_channels(self) -> frozenset:
        """Failed-channel set known to the attached injector (context
        for :class:`UnroutableError`; empty when no injector)."""
        network = self._network
        injector = getattr(network, "fault_injector", None)
        if injector is None:
            return frozenset()
        return frozenset(injector.failed)

    def _drop_route(self, flit: Flit) -> int:
        """Mark *flit*'s packet as a fault drop; route it to ejection.

        The packet drains through the normal wormhole/ejection path (so
        flit conservation and credit accounting stay intact) and is
        counted by ``NetworkStats.note_dropped`` when its tail ejects.
        """
        packet = flit.packet
        packet.dropped = True
        packet.drop_node = self.node
        return self.local_port

    def free_local_vc(self) -> Optional[int]:
        """An idle, empty local-port VC available for injection."""
        base = self.local_port * self.num_vcs
        vc_state = self.vc_state
        vc_fifos = self.vc_fifos
        for v in range(self.num_vcs):
            i = base + v
            if vc_state[i] == _IDLE and not vc_fifos[i]:
                return v
        return None

    def free_local_vc_is(self, vc: int) -> bool:
        """True when the specific local VC is idle and empty."""
        i = self.local_port * self.num_vcs + vc
        return self.vc_state[i] == _IDLE and not self.vc_fifos[i]

    def local_vc_has_space(self, vc: int) -> bool:
        fifo = self.vc_fifos[self.local_port * self.num_vcs + vc]
        return len(fifo) < self.buffer_depth

    @property
    def busy(self) -> bool:
        return bool(self._active)

    def is_quiescent(self) -> bool:
        """True when :meth:`step` would be a no-op this cycle and every
        following cycle until a flit arrives.

        A VC leaves ``_active`` only when its buffer has drained and it
        holds no pending RC/VA/SA work, so an empty active set means
        every VC is either ``_IDLE`` or waiting on an upstream flit —
        the network's active-set scheduler deactivates the router then
        and :meth:`receive_flit` wakes it again."""
        return not self._active

    def occupancy(self) -> int:
        """Total buffered flits, across all input VCs."""
        return sum(len(fifo) for fifo in self.vc_fifos)

    # -- flit reception ----------------------------------------------------

    def receive_flit(self, port: int, vc: int, flit: Flit, cycle: int) -> None:
        """Write an arriving flit into its input VC buffer."""
        i = port * self.num_vcs + vc
        # VirtualChannelBuffer.push, inlined for the hot path (the
        # buffer's write counter stays truthful for power accounting).
        fifo = self.vc_fifos[i]
        if len(fifo) >= self.buffer_depth:
            raise OverflowError(
                "buffer overflow: credit-based flow control should make this "
                "impossible"
            )
        fifo.append(flit)
        self.vc_buffers[i].writes += 1
        ev = self.events
        # Effective active-layer count: with shutdown disabled every
        # layer switches regardless of payload.  k/layer_groups is the
        # legacy activity weight (_weight() inlined; exactly 1.0 when
        # k == layer_groups), so the layer histogram and the weighted
        # float stay mutually consistent bit-for-bit.
        k = flit.active_groups if self.shutdown_enabled else self.layer_groups
        ev.buffer_writes += 1
        ev.buffer_writes_weighted += self._w_table[k]
        by_layers = ev.buffer_writes_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        if self.vc_state[i] == _IDLE:
            if not flit.is_head:
                raise RuntimeError(
                    f"router {self.node}: body flit arrived on idle VC "
                    f"({port},{vc}); wormhole ordering violated"
                )
            if self.lookahead_rc and flit.lookahead_port is not None:
                port_idx = self.port_index[flit.lookahead_port]
                dead = self._dead_out
                if dead is not None and port_idx in dead:
                    # The precomputed route became stale while the flit
                    # was in flight (the channel died): recompute in RC.
                    self.vc_state[i] = _RC
                    self._n_rc += 1
                else:
                    # The route travelled with the flit: skip to VA.
                    self.vc_out_port[i] = port_idx
                    self.vc_state[i] = _VA
                    self._n_va += 1
            else:
                self.vc_state[i] = _RC
                self._n_rc += 1
            self.vc_ready[i] = cycle
        self._active.add(i)
        # Wakeup protocol: every flit reception (re-)activates this
        # router with the network's scheduler.
        if self._network is not None:
            self._wake_add(self.node)

    def receive_credit(self, port: int, vc: int) -> None:
        credits = self.credits[port]
        if credits is None:
            raise RuntimeError(f"credit for local/unconnected port {port}")
        credits[vc] += 1
        if credits[vc] > self.buffer_depth:
            raise RuntimeError(
                f"router {self.node}: credit overflow on port {port} vc {vc}"
            )

    # -- stall attribution -------------------------------------------------

    def _charge_stall(self, i: int, cause: int) -> None:
        """Charge one stalled cycle on flat unit *i* to *cause*.

        Called only with attribution attached, and only from the failure
        branches of :meth:`step`: a unit whose head flit advanced this
        cycle is never charged, and a unit with a drained FIFO holds no
        head flit that could stall, so it is skipped.  Counter writes
        only — attribution never perturbs pipeline state, so enabled
        runs stay bit-identical.
        """
        fifo = self.vc_fifos[i]
        if not fifo:
            return
        self._stall_counts[
            self._stall_base + i * NUM_STALL_CAUSES + cause
        ] += 1
        flit = fifo[0]
        k = flit.active_groups if self.shutdown_enabled else self.layer_groups
        self._stall_layer_counts[(k - 1) * NUM_STALL_CAUSES + cause] += 1

    def _charge_credit_stall(self, i: int, out_port: int) -> None:
        """Credit starvation is additionally billed to the starved
        output port, so backpressure chains can be followed link by
        link (which upstream hop this stall propagates from)."""
        if self.vc_fifos[i]:
            self._charge_stall(i, STALL_CREDIT)
            self._stall_out_counts[self._stall_out_base + out_port] += 1

    # -- pipeline ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        active = self._active
        if not active:
            return
        if len(active) == 1:
            # Dominant case (one VC streaming): dispatch on its state
            # directly, skipping the sort and the three stage scans.
            # Stage behaviour, arbiter pointer updates, and counter
            # maintenance are identical to the general path below.
            (i,) = active
            if self.vc_ready[i] > cycle:
                if self._attrib is not None:
                    self._charge_stall(
                        i,
                        STALL_SERIALIZATION
                        if self.vc_state[i] == _ACTIVE
                        else STALL_RC_WAIT,
                    )
                return
            state = self.vc_state[i]
            num_vcs = self.num_vcs
            if state == _ACTIVE:
                fifo = self.vc_fifos[i]
                if fifo:
                    out_port = self.vc_out_port[i]
                    credits = self.credits[out_port]
                    if credits is None or credits[self.vc_out_vc[i]] > 0:
                        in_port = i // num_vcs
                        self._sa1_arbs[in_port]._next = (
                            i - in_port * num_vcs + 1
                        ) % num_vcs
                        self._sa2_arbs[out_port]._next = (
                            in_port + 1
                        ) % self.num_ports
                        self._traverse_flat(i, in_port, cycle)
                    elif self._attrib is not None:
                        self._charge_credit_stall(i, out_port)
                return
            if state == _RC:
                fifo = self.vc_fifos[i]
                if fifo:
                    flit = fifo[0]
                    try:
                        if self._adaptive:
                            out = self._pick_adaptive_port(flit.packet.dst)
                        else:
                            out = self.port_index[
                                self.routing.output_port(
                                    self.node, flit.packet.dst
                                )
                            ]
                            dead = self._dead_out
                            if dead is not None and out in dead:
                                out = self._drop_route(flit)
                    except UnroutableError:
                        out = self._drop_route(flit)
                    self.vc_out_port[i] = out
                    self.vc_state[i] = _VA
                    self.vc_ready[i] = cycle + 1
                    self._n_rc -= 1
                    self._n_va += 1
                    self.events.rc_computations += 1
                    if self._stage_callbacks:
                        # Call-site drop filter: a dict probe instead of
                        # a Python call per event for sampled-out pids.
                        drop = self._network.trace_drop_filter
                        if drop is None or drop.get(flit.packet.pid, 1):
                            for callback in self._stage_callbacks:
                                callback(cycle, self.node, flit, "rc")
                return
            if state == _VA:
                if self._va_single(i, cycle):
                    if self.speculative_sa:
                        # Speculative SA (Fig. 8b): the freshly granted
                        # VC bids for the crossbar in the same cycle.
                        fifo = self.vc_fifos[i]
                        if fifo:
                            out_port = self.vc_out_port[i]
                            credits = self.credits[out_port]
                            if (
                                credits is None
                                or credits[self.vc_out_vc[i]] > 0
                            ):
                                in_port = i // num_vcs
                                self._sa1_arbs[in_port]._next = (
                                    i - in_port * num_vcs + 1
                                ) % num_vcs
                                self._sa2_arbs[out_port]._next = (
                                    in_port + 1
                                ) % self.num_ports
                                self._traverse_flat(i, in_port, cycle)
                            elif self._attrib is not None:
                                # Failed speculation: the VA grant
                                # landed but the same-cycle crossbar bid
                                # starved downstream — the lost cycle is
                                # a credit stall (Fig. 8b semantics).
                                self._charge_credit_stall(i, out_port)
                elif self._attrib is not None:
                    self._charge_stall(i, STALL_VA_CONFLICT)
                return
            return
        order = sorted(active)
        vc_state = self.vc_state
        vc_ready = self.vc_ready
        vc_out_port = self.vc_out_port
        vc_out_vc = self.vc_out_vc
        vc_fifos = self.vc_fifos
        num_vcs = self.num_vcs
        attrib = self._attrib
        if attrib is not None:
            # Attribution pre-pass: units stamped ready in the future
            # are in pipeline transit and the stage scans below never
            # visit them, so their stalled cycle is charged here — to
            # their own wormhole cadence when streaming (_ACTIVE), to
            # rc_wait while a head works toward VA readiness.
            for i in order:
                if vc_ready[i] > cycle:
                    self._charge_stall(
                        i,
                        STALL_SERIALIZATION
                        if vc_state[i] == _ACTIVE
                        else STALL_RC_WAIT,
                    )

        # --- RC stage --- (skipped when no VC is in the RC state; an
        # empty pass is a no-op, so the skip is bit-identical)
        if self._n_rc:
            adaptive = self._adaptive
            routing_output = self.routing.output_port
            port_index = self.port_index
            node = self.node
            ev = self.events
            callbacks = self._stage_callbacks
            for i in order:
                if vc_state[i] == _RC and vc_ready[i] <= cycle:
                    fifo = vc_fifos[i]
                    if not fifo:
                        continue
                    flit = fifo[0]
                    try:
                        if adaptive:
                            out = self._pick_adaptive_port(flit.packet.dst)
                        else:
                            out = port_index[
                                routing_output(node, flit.packet.dst)
                            ]
                            dead = self._dead_out
                            if dead is not None and out in dead:
                                out = self._drop_route(flit)
                    except UnroutableError:
                        out = self._drop_route(flit)
                    vc_out_port[i] = out
                    vc_state[i] = _VA
                    vc_ready[i] = cycle + 1
                    self._n_rc -= 1
                    self._n_va += 1
                    ev.rc_computations += 1
                    if callbacks:
                        drop = self._network.trace_drop_filter
                        if drop is None or drop.get(flit.packet.pid, 1):
                            for callback in callbacks:
                                callback(cycle, node, flit, "rc")

        # --- VA stage ---
        if self._n_va:
            va_units = [
                i
                for i in order
                if vc_state[i] == _VA and vc_ready[i] <= cycle
            ]
            if len(va_units) == 1:
                if (
                    not self._va_single(va_units[0], cycle)
                    and attrib is not None
                ):
                    self._charge_stall(va_units[0], STALL_VA_CONFLICT)
            elif va_units:
                requests = [
                    VARequest(
                        i // num_vcs,
                        i % num_vcs,
                        vc_out_port[i],
                        self._allowed_vcs(i, vc_out_port[i], vc_fifos),
                    )
                    for i in va_units
                ]
                free = {
                    req.out_port: [
                        owner is None for owner in self.out_owner[req.out_port]
                    ]
                    for req in requests
                }
                grants = self._va.allocate(requests, free)
                for (in_port, in_vc), (out_port, out_vc) in grants.items():
                    self._apply_va_grant(
                        in_port * num_vcs + in_vc, out_port, out_vc, cycle
                    )
                if attrib is not None and len(grants) < len(va_units):
                    for i in va_units:
                        if (i // num_vcs, i % num_vcs) not in grants:
                            self._charge_stall(i, STALL_VA_CONFLICT)

        # --- SA + ST stage ---
        if self._n_active:
            credits_by_port = self.credits
            sa_units: List[int] = []
            for i in order:
                if (
                    vc_state[i] == _ACTIVE
                    and vc_ready[i] <= cycle
                    and vc_fifos[i]  # non-empty; hot-path inline
                ):
                    credits = credits_by_port[vc_out_port[i]]
                    if credits is None or credits[vc_out_vc[i]] > 0:
                        sa_units.append(i)
                    elif attrib is not None:
                        self._charge_credit_stall(i, vc_out_port[i])
            n_sa = len(sa_units)
            if n_sa == 1:
                # Sole requester wins both stages outright; both arbiters
                # would grant their only asserted line, so just rotate
                # pointers (bit-identical to the allocator fast path).
                i = sa_units[0]
                in_port = i // num_vcs
                self._sa1_arbs[in_port]._next = (i % num_vcs + 1) % num_vcs
                self._sa2_arbs[vc_out_port[i]]._next = (
                    in_port + 1
                ) % self.num_ports
                self._traverse_flat(i, in_port, cycle)
            elif n_sa == 2:
                a, b = sa_units
                a_port, b_port = a // num_vcs, b // num_vcs
                num_ports = self.num_ports
                if (
                    a_port != b_port
                    and vc_out_port[a] != vc_out_port[b]
                ):
                    # Disjoint input and output ports never conflict:
                    # each is the sole contender in its SA1/SA2 arbiters.
                    self._sa1_arbs[a_port]._next = (
                        a % num_vcs + 1
                    ) % num_vcs
                    self._sa1_arbs[b_port]._next = (
                        b % num_vcs + 1
                    ) % num_vcs
                    self._sa2_arbs[vc_out_port[a]]._next = (
                        a_port + 1
                    ) % num_ports
                    self._sa2_arbs[vc_out_port[b]]._next = (
                        b_port + 1
                    ) % num_ports
                    self._traverse_flat(a, a_port, cycle)
                    self._traverse_flat(b, b_port, cycle)
                elif self.qos_enabled:
                    # Priority filtering can reshape either arbitration;
                    # keep the allocator's general path authoritative.
                    self._sa_general(sa_units, cycle)
                elif a_port == b_port:
                    # Two VCs of one input port: SA1 arbitrates, the
                    # winner is then sole contender at its output port.
                    # (Same pointer updates as the allocator's general
                    # path: SA1 scans from its pointer, SA2 sees one
                    # asserted line, which is a rotation.)
                    a_vc, b_vc = a % num_vcs, b % num_vcs
                    arb = self._sa1_arbs[a_port]
                    nxt = arb._next
                    w = a
                    for offset in range(num_vcs):
                        v = nxt + offset
                        if v >= num_vcs:
                            v -= num_vcs
                        if v == a_vc:
                            break
                        if v == b_vc:
                            w = b
                            break
                    arb._next = (w % num_vcs + 1) % num_vcs
                    self._sa2_arbs[vc_out_port[w]]._next = (
                        a_port + 1
                    ) % num_ports
                    self._traverse_flat(w, a_port, cycle)
                    if attrib is not None:
                        self._charge_stall(
                            b if w == a else a, STALL_SA_LOSS
                        )
                else:
                    # Two input ports contending for one output port:
                    # each wins its SA1 (sole request there — pointer
                    # rotates for winner AND loser, as in the general
                    # path), then SA2 picks the input port.
                    self._sa1_arbs[a_port]._next = (
                        a % num_vcs + 1
                    ) % num_vcs
                    self._sa1_arbs[b_port]._next = (
                        b % num_vcs + 1
                    ) % num_vcs
                    arb = self._sa2_arbs[vc_out_port[a]]
                    nxt = arb._next
                    w, w_port = a, a_port
                    for offset in range(num_ports):
                        p = nxt + offset
                        if p >= num_ports:
                            p -= num_ports
                        if p == a_port:
                            break
                        if p == b_port:
                            w, w_port = b, b_port
                            break
                    arb._next = (w_port + 1) % num_ports
                    self._traverse_flat(w, w_port, cycle)
                    if attrib is not None:
                        self._charge_stall(
                            b if w == a else a, STALL_SA_LOSS
                        )
            elif n_sa:
                self._sa_general(sa_units, cycle)

        # No end-of-step prune: a VC leaves ``_active`` the moment its
        # last buffered flit is popped (in ``_traverse_flat``), so every
        # unit in the set has a non-empty FIFO at step entry — the same
        # membership the legacy end-of-cycle prune produced.

    def _allowed_vcs(
        self, i: int, out_port: int, vc_fifos
    ) -> Optional[Tuple[int, ...]]:
        """Output-VC restriction for the head flit of flat unit *i*."""
        if self._vc_discipline:
            fifo = vc_fifos[i]
            if fifo:
                vcs = self.routing.allowed_vcs(
                    fifo[0], self.node, self.port_names[out_port]
                )
                # None from the discipline means "unrestricted here"
                # (e.g. ejection ports) — same meaning as no discipline.
                return None if vcs is None else tuple(vcs)
        elif self.vc_by_class:
            fifo = vc_fifos[i]
            if fifo:
                return (self._class_vc(fifo[0]),)
        return None

    def _va_single(self, i: int, cycle: int) -> bool:
        """VC allocation for a sole requester, on the flat arrays.

        Stage 1 arbitrates among the free output VCs, stage 2 reduces to
        a pointer rotation — bit-identical to the allocator's own
        single-request path.  Returns True when a VC was granted.
        """
        num_vcs = self.num_vcs
        out_port = self.vc_out_port[i]
        owners = self.out_owner[out_port]
        allowed = self._allowed_vcs(i, out_port, self.vc_fifos)
        if allowed is None:
            lines = [owner is None for owner in owners]
        else:
            lines = [
                owner is None and v in allowed
                for v, owner in enumerate(owners)
            ]
        if True not in lines:
            return False
        arb = self._va1_arbs[i]
        nxt = arb._next
        for offset in range(num_vcs):
            choice = nxt + offset
            if choice >= num_vcs:
                choice -= num_vcs
            if lines[choice]:
                arb._next = (choice + 1) % num_vcs
                self._va2_arbs[out_port * num_vcs + choice]._next = (
                    i + 1
                ) % len(self.in_vcs)
                self._apply_va_grant(i, out_port, choice, cycle)
                return True
        return False

    def _apply_va_grant(
        self, i: int, out_port: int, out_vc: int, cycle: int
    ) -> None:
        """Commit one VA grant to the flat state (both VA paths)."""
        self.vc_out_vc[i] = out_vc
        self.vc_state[i] = _ACTIVE
        # Speculative switch allocation (Fig. 8b): the flit bids for the
        # crossbar in the same cycle its VC is granted.
        self.vc_ready[i] = cycle if self.speculative_sa else cycle + 1
        num_vcs = self.num_vcs
        self.out_owner[out_port][out_vc] = (i // num_vcs, i % num_vcs)
        self._n_va -= 1
        self._n_active += 1
        self.events.va_allocations += 1
        if self._stage_callbacks:
            fifo = self.vc_fifos[i]
            if fifo:
                granted = fifo[0]
                drop = self._network.trace_drop_filter
                if drop is None or drop.get(granted.packet.pid, 1):
                    for callback in self._stage_callbacks:
                        callback(cycle, self.node, granted, "va")

    def _sa_general(self, sa_units: List[int], cycle: int) -> None:
        """Contended switch allocation through the separable allocator."""
        num_vcs = self.num_vcs
        sa_requests = [
            SARequest(i // num_vcs, i % num_vcs, self.vc_out_port[i])
            for i in sa_units
        ]
        priorities = None
        if self.qos_enabled:
            priorities = {}
            for req, i in zip(sa_requests, sa_units):
                fifo = self.vc_fifos[i]
                if fifo:
                    priorities[(req.in_port, req.in_vc)] = (
                        fifo[0].packet.priority
                    )
        granted = set() if self._attrib is not None else None
        for grant in self._sa.allocate(sa_requests, priorities):
            gi = grant.in_port * num_vcs + grant.in_vc
            if granted is not None:
                granted.add(gi)
            self._traverse_flat(gi, grant.in_port, cycle)
        if granted is not None:
            for i in sa_units:
                if i not in granted:
                    self._charge_stall(i, STALL_SA_LOSS)

    def _traverse_flat(self, i: int, in_port: int, cycle: int) -> None:
        """Move one flit through the crossbar and onto its output."""
        network = self._network
        if network is None:
            raise RuntimeError("router not attached to a network")
        fifo = self.vc_fifos[i]
        flit = fifo.popleft()
        self.vc_buffers[i].reads += 1
        if not fifo:
            # Drained: deactivate now (replaces the end-of-step prune).
            self._active.discard(i)
        # Effective active-layer count (see receive_flit); k/layer_groups
        # is the legacy activity weight, inlined for the hot path.
        k = flit.active_groups if self.shutdown_enabled else self.layer_groups
        weight = self._w_table[k]
        ev = self.events
        ev.buffer_reads += 1
        ev.buffer_reads_weighted += weight
        ev.sa_allocations += 1
        ev.xbar_traversals += 1
        ev.xbar_traversals_weighted += weight
        ev.flit_hops += 1
        by_layers = ev.buffer_reads_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        by_layers = ev.xbar_traversals_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        by_layers = ev.flit_hops_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        self.flits_switched += 1
        self.flits_switched_by_layers[k - 1] += 1
        if flit.active_groups == 1:
            ev.short_flit_hops += 1
        out_port = self.vc_out_port[i]
        if network.traverse_callbacks:
            port_name = self.port_names[out_port]
            for callback in network.traverse_callbacks:
                callback(cycle, self.node, flit, port_name)
        if network.head_traverse_callbacks and flit.is_head:
            drop = network.trace_drop_filter
            if drop is None or drop.get(flit.packet.pid, 1):
                port_name = self.port_names[out_port]
                for callback in network.head_traverse_callbacks:
                    callback(cycle, self.node, flit, port_name)

        out_vc = self.vc_out_vc[i]
        credits = self.credits[out_port]
        if credits is not None:
            credits[out_vc] -= 1
            if credits[out_vc] < 0:
                raise RuntimeError(
                    f"router {self.node}: negative credit on port {out_port}"
                )
        if in_port != self.local_port:
            # Credit return, one cycle upstream-bound: direct slot append
            # (the 1-cycle delay is always inside the wheel horizon).
            upstream = self._upstream[in_port]
            self._credit_slots[(cycle + 1) % self._credit_size].append(
                (upstream[0], upstream[1], i - in_port * self.num_vcs)
            )

        if out_port == self.local_port:
            # Ejection: one ST cycle, no link traversal.
            self._ej_slots[(cycle + 1) % self._ej_size].append(flit)
        else:
            if flit.is_head:
                link = self.out_links[out_port]
                flit.packet.hops += 1
                if self._vc_discipline:
                    self.routing.note_traverse(flit, link)
                if self.lookahead_rc:
                    # NRC: compute the route for the *next* router while
                    # the flit crosses the switch (off the critical path).
                    try:
                        flit.lookahead_port = self.routing.output_port(
                            link.dst, flit.packet.dst
                        )
                        ev.rc_computations += 1
                    except UnroutableError:
                        # Unroutable at the next hop: let its RC stage
                        # make (and account) the drop decision.
                        flit.lookahead_port = None
            kind, length_mm, channel = self._link_args[out_port]
            # count_link(), inlined for the hot path.
            link_flits = ev.link_flits
            link_flits[kind] = link_flits.get(kind, 0) + 1
            link_mm = ev.link_mm_weighted
            link_mm[kind] = link_mm.get(kind, 0.0) + length_mm * weight
            channel_flits = ev.channel_flits
            channel_flits[channel] = channel_flits.get(channel, 0) + 1
            by_mm = ev.link_mm_by_layers
            by_mm[k] = by_mm.get(k, 0.0) + length_mm
            dst, dst_port = self._arrival_targets[out_port]
            self._arr_slots[(cycle + self._hop_cycles) % self._arr_size].append(
                (dst, dst_port, out_vc, flit)
            )

        if flit.is_tail:
            self.out_owner[out_port][out_vc] = None
            self.vc_out_port[i] = -1
            self.vc_out_vc[i] = -1
            self._n_active -= 1
            if not fifo:
                self.vc_state[i] = _IDLE
            else:
                nxt = fifo[0]
                if not nxt.is_head:
                    raise RuntimeError(
                        f"router {self.node}: non-head flit follows tail in VC"
                    )
                self.vc_state[i] = _RC
                self.vc_ready[i] = cycle + 1
                self._n_rc += 1
        else:
            self.vc_ready[i] = cycle + 1

    def _traverse(self, grant: SARequest, cycle: int) -> None:
        """Legacy-shaped traversal entry point (kept for harness code)."""
        self._traverse_flat(
            grant.in_port * self.num_vcs + grant.in_vc, grant.in_port, cycle
        )
