"""The virtual-channel wormhole router pipeline.

Models the canonical four-stage pipeline of Fig. 8a — routing computation
(RC), virtual-channel allocation (VA), switch allocation (SA), switch
traversal (ST) — followed by link traversal (LT).  Head flits walk all
stages; body/tail flits inherit the route and VC and only arbitrate for
the switch, which is wormhole flow control.

Stage timing is enforced with per-VC ``ready_cycle`` stamps: a VC performs
at most one pipeline action per cycle.  With a switch-allocation grant at
cycle ``c`` the flit reaches the next router's input buffer ready for RC
at ``c + 2`` when ST and LT are merged (the 3DM/3DM-E single-stage
traversal of Fig. 8d) or ``c + 3`` otherwise, which yields the paper's
4-cycle vs 5-cycle per-hop latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.noc.allocator import (
    SARequest,
    SwitchAllocator,
    VARequest,
    VirtualChannelAllocator,
)
from repro.noc.buffer import VirtualChannelBuffer
from repro.noc.packet import Flit
from repro.noc.routing import RoutingFunction
from repro.noc.stats import EventCounts
from repro.topology.base import LOCAL_PORT, LinkSpec, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

# Input-VC pipeline states.
_IDLE, _RC, _VA, _ACTIVE = 0, 1, 2, 3

#: Human-readable names for the input-VC pipeline states (sanitizer /
#: watchdog reports).
VC_STATE_NAMES = {_IDLE: "idle", _RC: "rc", _VA: "va", _ACTIVE: "active"}

#: Cycles from SA grant to the flit being RC-ready at the next router.
ST_LT_MERGED_CYCLES = 2
ST_LT_SPLIT_CYCLES = 3


class _InputVC:
    """State machine for one (input port, VC) pair."""

    __slots__ = ("port", "vc", "buffer", "state", "out_port", "out_vc", "ready_cycle")

    def __init__(self, port: int, vc: int, depth: int) -> None:
        self.port = port
        self.vc = vc
        self.buffer = VirtualChannelBuffer(depth)
        self.state = _IDLE
        self.out_port: int = -1
        self.out_vc: int = -1
        self.ready_cycle = 0


class Router:
    """One NoC router instance.

    Created by :class:`~repro.noc.network.Network`; not normally
    instantiated directly.
    """

    def __init__(
        self,
        node: int,
        topology: Topology,
        routing: RoutingFunction,
        num_vcs: int,
        buffer_depth: int,
        combined_st_lt: bool,
        layer_groups: int,
        shutdown_enabled: bool,
        events: EventCounts,
        speculative_sa: bool = False,
        lookahead_rc: bool = False,
        qos_enabled: bool = False,
        vc_by_class: bool = False,
    ) -> None:
        self.node = node
        self.topology = topology
        self.routing = routing
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.combined_st_lt = combined_st_lt
        self.layer_groups = layer_groups
        self.shutdown_enabled = shutdown_enabled
        self.events = events
        #: Fig. 8b: switch allocation speculatively overlaps VA.
        self.speculative_sa = speculative_sa
        #: Fig. 8c: the route arrives with the head flit (computed one
        #: hop upstream), so RC is off the critical path.
        self.lookahead_rc = lookahead_rc
        #: Priority-aware switch allocation (QoS provisioning, Sec. 3.3).
        self.qos_enabled = qos_enabled
        #: Sec. 3.2.4 (ii): dedicate one VC to control and one to data
        #: traffic — VC 0 carries control packets, VC 1 data packets.
        self.vc_by_class = vc_by_class
        if vc_by_class and num_vcs < 2:
            raise ValueError("vc_by_class needs at least 2 virtual channels")
        #: Adaptive routing functions offer several productive ports; the
        #: RC stage then picks the one with the most downstream credits.
        self._adaptive = bool(getattr(routing, "is_adaptive", False))
        #: Routing functions with a VC discipline (torus datelines)
        #: dictate the permissible out VCs per packet at VA time.
        self._vc_discipline = bool(getattr(routing, "has_vc_discipline", False))
        if self._vc_discipline and vc_by_class:
            raise ValueError(
                "vc_by_class cannot be combined with a routing VC discipline"
            )
        if self._vc_discipline and num_vcs < 2:
            raise ValueError("dateline VC discipline needs >= 2 VCs")
        self._network: Optional["Network"] = None

        self.port_names: List[str] = topology.port_names(node)
        self.port_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.port_names)
        }
        self.num_ports = len(self.port_names)
        self.local_port = self.port_index[LOCAL_PORT]

        self.in_vcs: List[_InputVC] = [
            _InputVC(p, v, buffer_depth)
            for p in range(self.num_ports)
            for v in range(num_vcs)
        ]
        # Output-side state. Local output has effectively infinite credits
        # (the ejection sink always accepts); model with None.
        self.out_links: List[Optional[LinkSpec]] = [None] * self.num_ports
        for name, link in topology.out_ports[node].items():
            self.out_links[self.port_index[name]] = link
        self.credits: List[Optional[List[int]]] = []
        for p in range(self.num_ports):
            if p == self.local_port or self.out_links[p] is None:
                self.credits.append(None)
            else:
                self.credits.append([buffer_depth] * num_vcs)
        self.out_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * num_vcs for _ in range(self.num_ports)
        ]

        self._va = VirtualChannelAllocator(self.num_ports, num_vcs)
        self._sa = SwitchAllocator(self.num_ports, num_vcs)
        self._hop_cycles = (
            ST_LT_MERGED_CYCLES if combined_st_lt else ST_LT_SPLIT_CYCLES
        )
        #: Flits this router has switched (for per-node power/thermal maps).
        self.flits_switched = 0
        #: Histogram of switched flits by *effective* active-layer count:
        #: index ``k-1`` counts traversals that drove exactly ``k``
        #: datapath layers (k = flit.active_groups with shutdown enabled,
        #: else layer_groups).  Feeds the per-router-per-layer power maps
        #: handed to the thermal model.
        self.flits_switched_by_layers = [0] * layer_groups
        # Flat indices of input VCs that may have work this cycle.
        self._active: set[int] = set()
        # Alias of network.stage_callbacks (bound in attach); empty list
        # until then so an unattached router never fires hooks.
        self._stage_callbacks: List = []
        # How many input VCs sit in each non-idle pipeline state.  Kept
        # in lockstep with the state transitions so :meth:`step` can skip
        # whole stages that cannot match any VC (a pass over zero
        # matching units is a no-op, so skipping it is bit-identical).
        self._n_rc = 0
        self._n_va = 0
        self._n_active = 0

    def attach(self, network: "Network") -> None:
        self._network = network
        # Same list object the network mutates: callbacks registered
        # later are seen here without re-attachment.
        self._stage_callbacks = network.stage_callbacks
        # Pre-resolve (dst node, dst input port) per output port so the
        # traversal hot path skips the per-flit string port lookups, and
        # the per-link ``EventCounts.count_link`` arguments likewise.
        self._arrival_targets: List[Optional[Tuple[int, int]]] = []
        self._link_args: List[Optional[Tuple[str, float, Tuple[int, int]]]] = []
        for link in self.out_links:
            if link is None:
                self._arrival_targets.append(None)
                self._link_args.append(None)
            else:
                dst_router = network.routers[link.dst]
                self._arrival_targets.append(
                    (link.dst, dst_router.port_index[link.dst_port])
                )
                self._link_args.append(
                    (link.kind.value, link.length_mm, (link.src, link.dst))
                )

    # -- helpers -----------------------------------------------------------

    def _vc(self, port: int, vc: int) -> _InputVC:
        return self.in_vcs[port * self.num_vcs + vc]

    def _weight(self, flit: Flit) -> float:
        """Activity weight of *flit* for separable-module energy."""
        if not self.shutdown_enabled:
            return 1.0
        return flit.active_groups / self.layer_groups

    @staticmethod
    def _class_vc(flit: Flit) -> int:
        """VC dedicated to this flit's traffic class: 0 ctrl, 1 data."""
        from repro.noc.packet import PacketClass

        return 1 if flit.packet.klass is PacketClass.DATA else 0

    def _pick_adaptive_port(self, dst: int) -> int:
        """Most-credited candidate port (ties keep preference order)."""
        best_idx = -1
        best_score = -1
        for name in self.routing.candidate_ports(self.node, dst):
            idx = self.port_index[name]
            credits = self.credits[idx]
            score = (1 << 30) if credits is None else sum(credits)
            if score > best_score:
                best_idx, best_score = idx, score
        if best_idx < 0:
            raise RuntimeError(
                f"router {self.node}: adaptive routing offered no candidates"
            )
        return best_idx

    def free_local_vc(self) -> Optional[int]:
        """An idle, empty local-port VC available for injection."""
        for v in range(self.num_vcs):
            unit = self._vc(self.local_port, v)
            if unit.state == _IDLE and unit.buffer.is_empty:
                return v
        return None

    def free_local_vc_is(self, vc: int) -> bool:
        """True when the specific local VC is idle and empty."""
        unit = self._vc(self.local_port, vc)
        return unit.state == _IDLE and unit.buffer.is_empty

    def local_vc_has_space(self, vc: int) -> bool:
        return not self._vc(self.local_port, vc).buffer.is_full

    @property
    def busy(self) -> bool:
        return bool(self._active)

    def is_quiescent(self) -> bool:
        """True when :meth:`step` would be a no-op this cycle and every
        following cycle until a flit arrives.

        A VC leaves ``_active`` only when its buffer has drained and it
        holds no pending RC/VA/SA work, so an empty active set means
        every VC is either ``_IDLE`` or waiting on an upstream flit —
        the network's active-set scheduler deactivates the router then
        and :meth:`receive_flit` wakes it again."""
        return not self._active

    def occupancy(self) -> int:
        """Total buffered flits, across all input VCs."""
        return sum(len(unit.buffer) for unit in self.in_vcs)

    # -- flit reception ----------------------------------------------------

    def receive_flit(self, port: int, vc: int, flit: Flit, cycle: int) -> None:
        """Write an arriving flit into its input VC buffer."""
        unit = self.in_vcs[port * self.num_vcs + vc]
        unit.buffer.push(flit)
        ev = self.events
        # Effective active-layer count: with shutdown disabled every
        # layer switches regardless of payload.  k/layer_groups is the
        # legacy activity weight (_weight() inlined; exactly 1.0 when
        # k == layer_groups), so the layer histogram and the weighted
        # float stay mutually consistent bit-for-bit.
        k = flit.active_groups if self.shutdown_enabled else self.layer_groups
        ev.buffer_writes += 1
        ev.buffer_writes_weighted += k / self.layer_groups
        by_layers = ev.buffer_writes_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        if unit.state == _IDLE:
            if not flit.is_head:
                raise RuntimeError(
                    f"router {self.node}: body flit arrived on idle VC "
                    f"({port},{vc}); wormhole ordering violated"
                )
            if self.lookahead_rc and flit.lookahead_port is not None:
                # The route travelled with the flit: skip straight to VA.
                unit.out_port = self.port_index[flit.lookahead_port]
                unit.state = _VA
                self._n_va += 1
            else:
                unit.state = _RC
                self._n_rc += 1
            unit.ready_cycle = cycle
        self._active.add(port * self.num_vcs + vc)
        # Wakeup protocol: every flit reception (re-)activates this
        # router with the network's scheduler.
        if self._network is not None:
            self._network.wake(self.node)

    def receive_credit(self, port: int, vc: int) -> None:
        credits = self.credits[port]
        if credits is None:
            raise RuntimeError(f"credit for local/unconnected port {port}")
        credits[vc] += 1
        if credits[vc] > self.buffer_depth:
            raise RuntimeError(
                f"router {self.node}: credit overflow on port {port} vc {vc}"
            )

    # -- pipeline ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        active = self._active
        if not active:
            return
        in_vcs = self.in_vcs
        active_units = [in_vcs[i] for i in sorted(active)]

        # --- RC stage --- (skipped when no VC is in the RC state; an
        # empty pass is a no-op, so the skip is bit-identical)
        if self._n_rc:
            for unit in active_units:
                if unit.state == _RC and unit.ready_cycle <= cycle:
                    flit = unit.buffer.front()
                    if flit is None:
                        continue
                    if self._adaptive:
                        unit.out_port = self._pick_adaptive_port(flit.packet.dst)
                    else:
                        port_name = self.routing.output_port(
                            self.node, flit.packet.dst
                        )
                        unit.out_port = self.port_index[port_name]
                    unit.state = _VA
                    unit.ready_cycle = cycle + 1
                    self._n_rc -= 1
                    self._n_va += 1
                    self.events.rc_computations += 1
                    if self._stage_callbacks:
                        for callback in self._stage_callbacks:
                            callback(cycle, self.node, flit, "rc")

        # --- VA stage ---
        if self._n_va:
            requests: List[VARequest] = []
            for unit in active_units:
                if unit.state == _VA and unit.ready_cycle <= cycle:
                    allowed = None
                    flit = unit.buffer.front()
                    if flit is not None:
                        if self._vc_discipline:
                            allowed = tuple(
                                self.routing.allowed_vcs(
                                    flit, self.node, self.port_names[unit.out_port]
                                )
                            )
                        elif self.vc_by_class:
                            allowed = (self._class_vc(flit),)
                    requests.append(
                        VARequest(unit.port, unit.vc, unit.out_port, allowed)
                    )
            if requests:
                free = {
                    req.out_port: [
                        owner is None for owner in self.out_owner[req.out_port]
                    ]
                    for req in requests
                }
                grants = self._va.allocate(requests, free)
                for (in_port, in_vc), (out_port, out_vc) in grants.items():
                    unit = self._vc(in_port, in_vc)
                    unit.out_vc = out_vc
                    unit.state = _ACTIVE
                    # Speculative switch allocation (Fig. 8b): the flit bids
                    # for the crossbar in the same cycle its VC is granted.
                    unit.ready_cycle = cycle if self.speculative_sa else cycle + 1
                    self.out_owner[out_port][out_vc] = (in_port, in_vc)
                    self._n_va -= 1
                    self._n_active += 1
                    self.events.va_allocations += 1
                    if self._stage_callbacks:
                        granted = unit.buffer.front()
                        if granted is not None:
                            for callback in self._stage_callbacks:
                                callback(cycle, self.node, granted, "va")

        # --- SA + ST stage ---
        if self._n_active:
            sa_requests: List[SARequest] = []
            credits_by_port = self.credits
            for unit in active_units:
                if (
                    unit.state == _ACTIVE
                    and unit.ready_cycle <= cycle
                    and unit.buffer.fifo  # non-empty; hot-path inline
                ):
                    credits = credits_by_port[unit.out_port]
                    if credits is None or credits[unit.out_vc] > 0:
                        sa_requests.append(
                            SARequest(unit.port, unit.vc, unit.out_port)
                        )
            if sa_requests:
                priorities = None
                if self.qos_enabled:
                    priorities = {}
                    for req in sa_requests:
                        flit = self._vc(req.in_port, req.in_vc).buffer.front()
                        if flit is not None:
                            priorities[(req.in_port, req.in_vc)] = flit.packet.priority
                for grant in self._sa.allocate(sa_requests, priorities):
                    self._traverse(grant, cycle)

        # Prune VCs with no buffered flits and no pending pipeline work.
        num_vcs = self.num_vcs
        for unit in active_units:
            if not unit.buffer.fifo:
                active.discard(unit.port * num_vcs + unit.vc)

    def _traverse(self, grant: SARequest, cycle: int) -> None:
        """Move one flit through the crossbar and onto its output."""
        network = self._network
        assert network is not None, "router not attached to a network"
        unit = self.in_vcs[grant.in_port * self.num_vcs + grant.in_vc]
        flit = unit.buffer.pop()
        # Effective active-layer count (see receive_flit); k/layer_groups
        # is the legacy activity weight, inlined for the hot path.
        k = flit.active_groups if self.shutdown_enabled else self.layer_groups
        weight = k / self.layer_groups
        ev = self.events
        ev.buffer_reads += 1
        ev.buffer_reads_weighted += weight
        ev.sa_allocations += 1
        ev.xbar_traversals += 1
        ev.xbar_traversals_weighted += weight
        ev.flit_hops += 1
        by_layers = ev.buffer_reads_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        by_layers = ev.xbar_traversals_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        by_layers = ev.flit_hops_by_layers
        by_layers[k] = by_layers.get(k, 0) + 1
        self.flits_switched += 1
        self.flits_switched_by_layers[k - 1] += 1
        if flit.active_groups == 1:
            ev.short_flit_hops += 1
        if network.traverse_callbacks:
            port_name = self.port_names[unit.out_port]
            for callback in network.traverse_callbacks:
                callback(cycle, self.node, flit, port_name)

        out_port, out_vc = unit.out_port, unit.out_vc
        credits = self.credits[out_port]
        if credits is not None:
            credits[out_vc] -= 1
            if credits[out_vc] < 0:
                raise RuntimeError(
                    f"router {self.node}: negative credit on port {out_port}"
                )
        if grant.in_port != self.local_port:
            network.return_credit(self.node, grant.in_port, grant.in_vc, cycle + 1)

        if out_port == self.local_port:
            # Ejection: one ST cycle, no link traversal.
            network.schedule_ejection(flit, cycle + 1)
        else:
            if flit.is_head:
                link = self.out_links[out_port]
                assert link is not None
                flit.packet.hops += 1
                if self._vc_discipline:
                    self.routing.note_traverse(flit, link)
                if self.lookahead_rc:
                    # NRC: compute the route for the *next* router while
                    # the flit crosses the switch (off the critical path).
                    flit.lookahead_port = self.routing.output_port(
                        link.dst, flit.packet.dst
                    )
                    ev.rc_computations += 1
            kind, length_mm, channel = self._link_args[out_port]
            ev.count_link(kind, length_mm, weight, channel, k)
            dst, dst_port = self._arrival_targets[out_port]
            network.push_arrival(
                dst, dst_port, out_vc, flit, cycle + self._hop_cycles
            )

        if flit.is_tail:
            self.out_owner[out_port][out_vc] = None
            unit.out_port = -1
            unit.out_vc = -1
            self._n_active -= 1
            if unit.buffer.is_empty:
                unit.state = _IDLE
            else:
                nxt = unit.buffer.front()
                if nxt is None or not nxt.is_head:
                    raise RuntimeError(
                        f"router {self.node}: non-head flit follows tail in VC"
                    )
                unit.state = _RC
                unit.ready_cycle = cycle + 1
                self._n_rc += 1
        else:
            unit.ready_cycle = cycle + 1
