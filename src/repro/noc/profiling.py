"""Hot-loop profiling: cycles/sec, active-router ratio, phase wall time.

The active-set scheduler makes "how many routers did we actually step"
a first-class performance signal: at the low injection rates that
dominate the paper's sweeps most routers are quiescent most cycles, and
the simulator's speed hinges on skipping them.  A
:class:`NetworkProfiler` attached to a network
(``network.profiler = NetworkProfiler()`` or ``Simulator(...,
profile=True)``) records, per cycle,

* wall time spent in each of the three ``Network.step`` phases
  (event delivery, injection, router pipelines),
* how many routers were stepped vs. the router population.

An unattached network pays a single ``is None`` check per cycle.
Snapshots are immutable and ride along on
:class:`~repro.noc.simulator.SimulationResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict


@dataclass(frozen=True)
class ProfileSnapshot:
    """Immutable summary of a profiled stretch of simulation."""

    #: Network cycles stepped while the profiler was attached.
    cycles: int
    #: Wall time spent inside ``Network.step`` (sum of the phases).
    wall_s: float
    #: Simulated cycles per second of host wall time.
    cycles_per_second: float
    #: Router step() invocations actually performed.
    routers_stepped: int
    #: Router step() invocations a full iteration would have performed
    #: (router population x cycles).
    router_cycles: int
    #: routers_stepped / router_cycles — the fraction of the network
    #: doing work; low values are where active-set scheduling pays.
    active_router_ratio: float
    #: Wall seconds by phase: ``deliver`` (arrivals/credits/ejections),
    #: ``inject`` (source queues), ``route`` (router pipelines), and —
    #: only when the corresponding subsystem was attached — ``sanitize``
    #: (invariant audits), ``telemetry`` (windowed metric sampling and
    #: trace capture, minus the attribution slice), and ``attribution``
    #: (stall-rollup scans inside the telemetry hook, reported
    #: separately so the phases stay a partition of ``wall_s``).
    phase_wall_s: Dict[str, float] = field(default_factory=dict)
    #: CPU seconds the telemetry ``finish()`` flush took (one-time
    #: teardown: lifecycle reconstruction + trace/report
    #: serialization).  Outside ``wall_s`` — it happens after the
    #: stepped cycles — but surfaced here so hot-path vs. flush cost
    #: reads off a single report.
    telemetry_finish_cpu_s: float = 0.0

    def format(self) -> str:
        """Human-readable block for CLI output."""
        lines = [
            f"cycles simulated  : {self.cycles}",
            f"step wall time    : {self.wall_s:.3f} s",
            f"cycles/second     : {self.cycles_per_second:,.0f}",
            f"active ratio      : {self.active_router_ratio:.1%} "
            f"({self.routers_stepped}/{self.router_cycles} router-steps)",
        ]
        for phase, wall in self.phase_wall_s.items():
            lines.append(f"  phase {phase:<11}: {wall:.3f} s")
        if self.telemetry_finish_cpu_s:
            lines.append(
                f"  telemetry flush  : {self.telemetry_finish_cpu_s:.3f} s "
                "CPU (one-time, at finish)"
            )
        return "\n".join(lines)


class NetworkProfiler:
    """Accumulates per-cycle counters fed by ``Network.step``.

    Attach before running; detach (``network.profiler = None``) to stop
    paying the ~3 clock reads per cycle.  ``clock`` is injectable for
    deterministic tests.
    """

    __slots__ = (
        "clock",
        "cycles",
        "routers_stepped",
        "router_cycles",
        "deliver_wall_s",
        "inject_wall_s",
        "router_wall_s",
        "sanitize_wall_s",
        "telemetry_wall_s",
        "attribution_wall_s",
        "telemetry_finish_cpu_s",
    )

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.reset()

    def reset(self) -> None:
        self.cycles = 0
        self.routers_stepped = 0
        self.router_cycles = 0
        self.deliver_wall_s = 0.0
        self.inject_wall_s = 0.0
        self.router_wall_s = 0.0
        self.sanitize_wall_s = 0.0
        self.telemetry_wall_s = 0.0
        # Stall-attribution rollup time: accumulated by the telemetry
        # sampler itself (it is a sub-slice of the telemetry hook), not
        # by record_cycle.
        self.attribution_wall_s = 0.0
        # One-time telemetry finish() flush cost; set by
        # NetworkTelemetry.finish, outside the stepped cycles.
        self.telemetry_finish_cpu_s = 0.0

    def record_cycle(
        self,
        deliver_s: float,
        inject_s: float,
        router_s: float,
        stepped: int,
        population: int,
        sanitize_s: float = 0.0,
        telemetry_s: float = 0.0,
    ) -> None:
        """One ``Network.step`` worth of measurements."""
        self.cycles += 1
        self.deliver_wall_s += deliver_s
        self.inject_wall_s += inject_s
        self.router_wall_s += router_s
        self.sanitize_wall_s += sanitize_s
        self.telemetry_wall_s += telemetry_s
        self.routers_stepped += stepped
        self.router_cycles += population

    @property
    def wall_s(self) -> float:
        return (
            self.deliver_wall_s
            + self.inject_wall_s
            + self.router_wall_s
            + self.sanitize_wall_s
            + self.telemetry_wall_s
        )

    def snapshot(self) -> ProfileSnapshot:
        wall = self.wall_s
        phases = {
            "deliver": self.deliver_wall_s,
            "inject": self.inject_wall_s,
            "route": self.router_wall_s,
        }
        # Keys present only when the subsystem actually ran, so bare
        # snapshots keep their exact three-phase shape.
        if self.sanitize_wall_s:
            phases["sanitize"] = self.sanitize_wall_s
        if self.telemetry_wall_s:
            # The attribution rollup runs inside the telemetry hook;
            # report it as its own phase and subtract it from the
            # telemetry line so the phases remain a partition.
            phases["telemetry"] = (
                self.telemetry_wall_s - self.attribution_wall_s
            )
        if self.attribution_wall_s:
            phases["attribution"] = self.attribution_wall_s
        return ProfileSnapshot(
            cycles=self.cycles,
            wall_s=wall,
            cycles_per_second=self.cycles / wall if wall > 0.0 else 0.0,
            routers_stepped=self.routers_stepped,
            router_cycles=self.router_cycles,
            active_router_ratio=(
                self.routers_stepped / self.router_cycles
                if self.router_cycles
                else 0.0
            ),
            phase_wall_s=phases,
            telemetry_finish_cpu_s=self.telemetry_finish_cpu_s,
        )
