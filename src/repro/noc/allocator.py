"""Two-stage separable allocators for virtual channels and the switch.

The paper's router performs virtual-channel allocation in two steps
(Sec. 3.2.5): VA1 locally picks one candidate output VC per input VC
(``V:1`` arbiters), VA2 resolves conflicts per output VC (``PV:1``
arbiters).  Switch allocation (Sec. 3.2.6) is separable the same way: SA1
picks one VC per input port, SA2 picks one input port per output port.

These classes operate on abstract request descriptors so the router stays
readable; they are deliberately stateful (the arbiters rotate priority
between cycles) to model fairness the way hardware does.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple  # noqa: F401

from repro.noc.arbiter import RoundRobinArbiter


class VARequest(NamedTuple):
    """An input VC (identified by ``(in_port, in_vc)``) asking for a free
    output VC on ``out_port``.

    ``allowed_vcs`` restricts the candidate output VCs (e.g. the paper's
    one-VC-per-traffic-class policy, Sec. 3.2.4); ``None`` = any VC.

    A named tuple rather than a dataclass: requests are constructed in
    the per-cycle hot loop and tuple construction is several times
    cheaper.
    """

    in_port: int
    in_vc: int
    out_port: int
    allowed_vcs: Optional[Tuple[int, ...]] = None


class SARequest(NamedTuple):
    """An input VC with a buffered flit asking for the crossbar slot to
    ``out_port``."""

    in_port: int
    in_vc: int
    out_port: int


class VirtualChannelAllocator:
    """Separable two-stage VC allocator.

    ``grants = allocate(requests, free)`` maps each winning
    ``(in_port, in_vc)`` to its granted ``(out_port, out_vc)``.  ``free``
    gives the currently unowned output VCs per output port.
    """

    def __init__(self, num_ports: int, num_vcs: int) -> None:
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        # VA1: one V:1 arbiter per input VC choosing among candidate out VCs.
        self._va1 = {
            (p, v): RoundRobinArbiter(num_vcs)
            for p in range(num_ports)
            for v in range(num_vcs)
        }
        # VA2: one PV:1 arbiter per output VC choosing among input VCs.
        self._va2 = {
            (p, v): RoundRobinArbiter(num_ports * num_vcs)
            for p in range(num_ports)
            for v in range(num_vcs)
        }

    def allocate(
        self,
        requests: Sequence[VARequest],
        free: Dict[int, Sequence[bool]],
    ) -> Dict[Tuple[int, int], Tuple[int, int]]:
        if len(requests) == 1:
            # Sole requester: stage 1 still arbitrates among the free
            # output VCs, but stage 2 has exactly one contender, so its
            # arbiter grant reduces to a pointer rotation.
            req = requests[0]
            free_vcs = free.get(req.out_port)
            if free_vcs is None:
                return {}
            if req.allowed_vcs is not None:
                allowed = set(req.allowed_vcs)
                lines = [f and v in allowed for v, f in enumerate(free_vcs)]
            else:
                lines = list(free_vcs)
            if not any(lines):
                return {}
            choice = self._va1[(req.in_port, req.in_vc)].grant(lines)
            if choice is None:
                return {}
            out_key = (req.out_port, choice)
            self._va2[out_key].grant_sole(
                req.in_port * self.num_vcs + req.in_vc
            )
            return {(req.in_port, req.in_vc): out_key}

        # Stage 1: each input VC picks one candidate output VC among the
        # free VCs of its requested output port.
        candidates: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for req in requests:
            free_vcs = free.get(req.out_port)
            if free_vcs is None:
                continue
            if req.allowed_vcs is not None:
                allowed = set(req.allowed_vcs)
                lines = [
                    f and v in allowed for v, f in enumerate(free_vcs)
                ]
            else:
                lines = list(free_vcs)
            if not any(lines):
                continue
            choice = self._va1[(req.in_port, req.in_vc)].grant(lines)
            if choice is not None:
                candidates[(req.in_port, req.in_vc)] = (req.out_port, choice)

        # Stage 2: each contested output VC picks one input VC.
        grants: Dict[Tuple[int, int], Tuple[int, int]] = {}
        by_out: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for in_key, out_key in candidates.items():
            by_out.setdefault(out_key, []).append(in_key)
        for out_key, contenders in by_out.items():
            lines = [False] * (self.num_ports * self.num_vcs)
            for in_port, in_vc in contenders:
                lines[in_port * self.num_vcs + in_vc] = True
            winner = self._va2[out_key].grant(lines)
            if winner is not None:
                in_port, in_vc = divmod(winner, self.num_vcs)
                grants[(in_port, in_vc)] = out_key
        return grants

    def check_sane(self) -> Optional[str]:
        """``None`` when every arbiter's state is legal, else a message
        naming the first corrupted one (sanitizer hook)."""
        for key, arbiter in self._va1.items():
            problem = arbiter.check_sane()
            if problem:
                return f"VA1 arbiter for input VC {key}: {problem}"
        for key, arbiter in self._va2.items():
            problem = arbiter.check_sane()
            if problem:
                return f"VA2 arbiter for output VC {key}: {problem}"
        return None


class SwitchAllocator:
    """Separable two-stage switch allocator.

    ``allocate(requests)`` returns the winning requests, at most one per
    input port and one per output port (the crossbar constraint).

    ``priorities`` (optional) maps ``(in_port, in_vc)`` to a QoS class;
    within each arbitration only the highest-priority contenders compete
    (strict priority with round-robin tie-breaking), which is the
    QoS-provisioning mode of Sec. 3.3.
    """

    def __init__(self, num_ports: int, num_vcs: int) -> None:
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        # SA1: one V:1 arbiter per input port.
        self._sa1 = [RoundRobinArbiter(num_vcs) for _ in range(num_ports)]
        # SA2: one P:1 arbiter per output port (inputs already reduced to
        # one VC each by SA1).
        self._sa2 = [RoundRobinArbiter(num_ports) for _ in range(num_ports)]

    @staticmethod
    def _priority_filter(
        reqs: List[SARequest],
        priorities: Optional[Dict[Tuple[int, int], int]],
    ) -> List[SARequest]:
        if not priorities or len(reqs) <= 1:
            return reqs
        best = max(priorities.get((r.in_port, r.in_vc), 0) for r in reqs)
        return [r for r in reqs if priorities.get((r.in_port, r.in_vc), 0) == best]

    def allocate(
        self,
        requests: Sequence[SARequest],
        priorities: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> List[SARequest]:
        if len(requests) == 1:
            # Sole requester wins both stages outright (priority filters
            # are identity on single-element lists); both arbiters would
            # grant their only asserted line, so just rotate pointers.
            req = requests[0]
            self._sa1[req.in_port].grant_sole(req.in_vc)
            self._sa2[req.out_port].grant_sole(req.in_port)
            return [req]
        if len(requests) == 2:
            # Two requests with disjoint input and output ports never
            # conflict: each touches its own SA1/SA2 arbiter as the sole
            # contender, and the general path would emit them in request
            # order (stage-1 and stage-2 dicts preserve insertion order).
            a, b = requests
            if a.in_port != b.in_port and a.out_port != b.out_port:
                self._sa1[a.in_port].grant_sole(a.in_vc)
                self._sa1[b.in_port].grant_sole(b.in_vc)
                self._sa2[a.out_port].grant_sole(a.in_port)
                self._sa2[b.out_port].grant_sole(b.in_port)
                return [a, b]

        # Stage 1: per input port, pick one requesting VC.
        stage1: Dict[int, SARequest] = {}
        by_in: Dict[int, List[SARequest]] = {}
        for req in requests:
            by_in.setdefault(req.in_port, []).append(req)
        for in_port, reqs in by_in.items():
            reqs = self._priority_filter(reqs, priorities)
            lines = [False] * self.num_vcs
            lookup: Dict[int, SARequest] = {}
            for req in reqs:
                lines[req.in_vc] = True
                lookup[req.in_vc] = req
            winner = self._sa1[in_port].grant(lines)
            if winner is not None:
                stage1[in_port] = lookup[winner]

        # Stage 2: per output port, pick one input port.
        grants: List[SARequest] = []
        by_out: Dict[int, List[SARequest]] = {}
        for req in stage1.values():
            by_out.setdefault(req.out_port, []).append(req)
        for out_port, reqs in by_out.items():
            reqs = self._priority_filter(reqs, priorities)
            lines = [False] * self.num_ports
            lookup = {}
            for req in reqs:
                lines[req.in_port] = True
                lookup[req.in_port] = req
            winner = self._sa2[out_port].grant(lines)
            if winner is not None:
                grants.append(lookup[winner])
        return grants

    def check_sane(self) -> Optional[str]:
        """``None`` when every arbiter's state is legal, else a message
        naming the first corrupted one (sanitizer hook)."""
        for in_port, arbiter in enumerate(self._sa1):
            problem = arbiter.check_sane()
            if problem:
                return f"SA1 arbiter for input port {in_port}: {problem}"
        for out_port, arbiter in enumerate(self._sa2):
            problem = arbiter.check_sane()
            if problem:
                return f"SA2 arbiter for output port {out_port}: {problem}"
        return None
