"""The network: routers + links + injection/ejection plumbing.

The network owns the per-cycle event buckets (flit arrivals, credit
returns, ejections), the per-node source queues, and the global event
counters.  It is deliberately separate from :class:`repro.noc.simulator.
Simulator`, which adds warm-up/measurement/drain orchestration and power
integration on top.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.shutdown import ShortFlitDetector
from repro.noc.packet import Flit, Packet, PacketClass
from repro.noc.profiling import NetworkProfiler
from repro.noc.router import Router
from repro.noc.sanitizer import DEFAULT_WATCHDOG_WINDOW, NetworkSanitizer
from repro.noc.routing import (
    RoutingFunction,
    UnroutableError,
    routing_for_topology,
)
from repro.noc.scheduling import TimingWheel
from repro.noc.stats import EventCounts, NetworkStats
from repro.topology.base import LinkSpec, Topology

#: Callback invoked when a packet's tail flit leaves the network.
DeliveryCallback = Callable[[Packet, int], None]


class _SourceQueue:
    """Per-node injection queue.

    Packets wait FIFO; the head packet is dealt to a free local-port VC and
    streamed one flit per cycle (the local port has the same single-flit
    bandwidth as any other port).
    """

    __slots__ = ("packets", "flits", "flit_idx", "vc")

    def __init__(self) -> None:
        self.packets: Deque[Packet] = deque()
        self.flits: List[Flit] = []
        self.flit_idx = 0
        self.vc: int = -1

    @property
    def idle(self) -> bool:
        return not self.packets and not self.flits


class Network:
    """A set of routers connected per a topology.

    Args:
        topology: the interconnect graph.
        num_vcs: virtual channels per physical port (the paper fixes 2).
        buffer_depth: flits per VC buffer (8 word lines, Sec. 3.2.1).
        combined_st_lt: merge switch and link traversal into one stage
            (valid only when the timing model allows it; Fig. 8d).
        layer_groups: word groups per flit (stacked layers), default 4.
        shutdown_enabled: model the short-flit layer-shutdown technique in
            the activity-weighted event counters.
        routing: routing function override; defaults to the canonical
            deterministic routing for the topology.
        active_scheduling: step only routers with pending work each
            cycle (default).  ``False`` falls back to iterating every
            router — a debug mode kept so results can be diffed against
            the scheduler; both produce bit-identical statistics.
        sanitize: attach a :class:`~repro.noc.sanitizer.NetworkSanitizer`
            that audits flit conservation, credit accounting, and VC
            state legality, raising
            :class:`~repro.noc.sanitizer.SanityError` on the first
            violation.  Audits never mutate state, so sanitized runs are
            bit-identical; disabled, the cost is one ``is None`` check
            per cycle (same guard as the profiler).
        sanitize_interval: audit every N cycles (default 1 = every
            cycle).
        watchdog_window: cycles without a flit delivery (while traffic
            is in the network) before the sanitizer's deadlock/livelock
            watchdog snapshots the stalled VCs.
        telemetry: a :class:`~repro.telemetry.TelemetryConfig` to attach
            a :class:`~repro.telemetry.NetworkTelemetry` sampler
            (windowed metric streams + lifecycle traces).  ``None`` (the
            default) costs one ``is None`` check per cycle, exactly like
            the profiler and sanitizer.
    """

    def __init__(
        self,
        topology: Topology,
        num_vcs: int = 2,
        buffer_depth: int = 8,
        combined_st_lt: bool = False,
        layer_groups: int = 4,
        shutdown_enabled: bool = False,
        routing: Optional[RoutingFunction] = None,
        speculative_sa: bool = False,
        lookahead_rc: bool = False,
        qos_enabled: bool = False,
        vc_by_class: bool = False,
        active_scheduling: bool = True,
        sanitize: bool = False,
        sanitize_interval: int = 1,
        watchdog_window: int = DEFAULT_WATCHDOG_WINDOW,
        telemetry=None,
    ) -> None:
        self.topology = topology
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.combined_st_lt = combined_st_lt
        self.layer_groups = layer_groups
        self.shutdown_enabled = shutdown_enabled
        self.speculative_sa = speculative_sa
        self.lookahead_rc = lookahead_rc
        self.qos_enabled = qos_enabled
        self.vc_by_class = vc_by_class
        self.routing = routing or routing_for_topology(topology)
        self.events = EventCounts()
        self.stats = NetworkStats()
        #: Functional zero-detector bank at the injection ports: every
        #: flit is observed as its packet is serialised, stamping the
        #: flit's layer mask and accumulating the *measured* short-flit
        #: fraction (``short_flit_detector.observed_short_fraction``)
        #: that the simulated shutdown-power path reports.
        self.short_flit_detector = ShortFlitDetector(layer_groups)
        #: Hooks invoked on head-flit pipeline-stage completions as
        #: ``(cycle, node, flit, stage)`` with stage ``"rc"`` or
        #: ``"va"`` (SA+ST fires the traverse callbacks) — the raw feed
        #: for telemetry lifecycle traces.  Empty = zero cost.  Created
        #: before the routers, which alias it at attach time.
        self.stage_callbacks: List = []

        self.routers: List[Router] = [
            Router(
                node=node,
                topology=topology,
                routing=self.routing,
                num_vcs=num_vcs,
                buffer_depth=buffer_depth,
                combined_st_lt=combined_st_lt,
                layer_groups=layer_groups,
                shutdown_enabled=shutdown_enabled,
                events=self.events,
                speculative_sa=speculative_sa,
                lookahead_rc=lookahead_rc,
                qos_enabled=qos_enabled,
                vc_by_class=vc_by_class,
            )
            for node in topology.iter_nodes()
        ]

        # Upstream (src node, src out-port) feeding each (node, in-port),
        # resolved once so per-flit credit returns skip the string-keyed
        # topology lookups; None = no upstream link (local port).
        self._credit_targets: List[List[Optional[tuple]]] = []
        for node, router in enumerate(self.routers):
            targets: List[Optional[tuple]] = []
            for port_name in router.port_names:
                link = topology.in_ports[node].get(port_name)
                if link is None:
                    targets.append(None)
                else:
                    src_router = self.routers[link.src]
                    targets.append(
                        (link.src, src_router.port_index[link.src_port])
                    )
            self._credit_targets.append(targets)

        # Event buckets: small timing wheels keyed by absolute cycle.
        self._arrivals = TimingWheel()   # (node, port, vc, flit)
        self._credits = TimingWheel()    # (node, port, vc)
        self._ejections = TimingWheel()  # flit
        self._sources: List[_SourceQueue] = [
            _SourceQueue() for _ in topology.iter_nodes()
        ]
        self._busy_sources: Set[int] = set()
        #: Routers that may have pipeline work this cycle.  Maintained
        #: as a *superset* of the busy routers (routers only become busy
        #: through ``receive_flit``, which wakes them here), so the flag
        #: can be toggled at any time without losing work.
        self._active_routers: Set[int] = set()

        # Attach after the wheels / credit targets / active set exist:
        # routers alias their slot lists directly (hot-path appends).
        for router in self.routers:
            router.attach(self)
        self.active_scheduling = active_scheduling
        #: Attach a :class:`~repro.noc.profiling.NetworkProfiler` to
        #: collect cycles/sec, active-router ratio and per-phase wall
        #: times; ``None`` (the default) costs one check per cycle.
        self.profiler: Optional[NetworkProfiler] = None
        #: Opt-in invariant auditor; ``None`` (the default) costs one
        #: check per cycle, exactly like the profiler.
        self.sanitizer: Optional[NetworkSanitizer] = (
            NetworkSanitizer(
                self,
                interval=sanitize_interval,
                watchdog_window=watchdog_window,
            )
            if sanitize
            else None
        )
        self.delivery_callbacks: List[DeliveryCallback] = []
        #: The delivery hook owned by the current Simulator, if any —
        #: lets a new Simulator over this network replace (rather than
        #: double-register) its predecessor's closed-loop hook.
        self.simulator_hook: Optional[DeliveryCallback] = None
        #: Debug hooks invoked on every switch traversal as
        #: ``(cycle, node, flit, out_port_name)`` — see
        #: :class:`repro.noc.tracer.PacketTracer`.  Empty = zero cost.
        self.traverse_callbacks: List = []
        #: Same signature, but invoked for **head flits only** — the
        #: router filters at the call site, so a lifecycle consumer
        #: (the telemetry trace recorder) never pays a call per body
        #: flit.  Empty = zero cost.
        self.head_traverse_callbacks: List = []
        #: Optional pid -> capture-code map owned by an attached trace
        #: recorder.  When a packet's pid maps to ``0`` (dropped /
        #: sampled out), the routers skip the stage and head-traverse
        #: hooks for it at the call site — a dict probe instead of a
        #: Python call per event, which is what makes sampled tracing
        #: cheap.  Unknown pids still fire (first sight = admission).
        #: ``None`` disables the filter; it never affects
        #: ``traverse_callbacks`` or ``delivery_callbacks``.
        self.trace_drop_filter: Optional[Dict[int, int]] = None
        #: Opt-in windowed metrics/trace sampler; ``None`` (the
        #: default) costs one check per cycle, exactly like the
        #: profiler and sanitizer.
        self.telemetry = None
        #: Opt-in stall-cause accounting
        #: (:class:`repro.telemetry.attribution.StallAttribution`);
        #: ``None`` (the default) costs one ``is not None`` test on the
        #: routers' stall branches only — nothing per cycle.
        self.attribution = None
        #: Opt-in runtime fault injector
        #: (:class:`repro.resilience.faults.FaultInjector`, registered
        #: via its ``attach``); ``None`` (the default) costs one
        #: ``is None`` check per cycle, exactly like the profiler.
        self.fault_injector = None
        self.cycle = 0
        if telemetry is not None:
            # Lazy import: the telemetry package is only pulled in when
            # a network actually asks for it.
            from repro.telemetry.sampler import NetworkTelemetry

            NetworkTelemetry(self, telemetry)  # registers as self.telemetry

    # -- scheduling hooks used by routers -----------------------------------

    def schedule_arrival(
        self, link: LinkSpec, vc: int, flit: Flit, cycle: int
    ) -> None:
        """Queue *flit* to appear at the link's destination input buffer."""
        dst_router = self.routers[link.dst]
        dst_port = dst_router.port_index[link.dst_port]
        self._arrivals.push(cycle, (link.dst, dst_port, vc, flit))

    def push_arrival(
        self, node: int, port: int, vc: int, flit: Flit, cycle: int
    ) -> None:
        """Pre-resolved variant of :meth:`schedule_arrival` (hot path)."""
        self._arrivals.push(cycle, (node, port, vc, flit))

    def return_credit(self, node: int, in_port: int, vc: int, cycle: int) -> None:
        """Return one credit to the router feeding ``(node, in_port)``."""
        target = self._credit_targets[node][in_port]
        if target is None:
            port_name = self.routers[node].port_names[in_port]
            raise RuntimeError(f"no upstream link into node {node} port {port_name}")
        self._credits.push(cycle, (target[0], target[1], vc))

    def schedule_ejection(self, flit: Flit, cycle: int) -> None:
        self._ejections.push(cycle, flit)

    def wake(self, node: int) -> None:
        """Mark *node*'s router as having pipeline work to step.

        Called by :meth:`Router.receive_flit` on every flit reception
        (arrival or injection); the router stays in the active set until
        a step leaves it quiescent."""
        self._active_routers.add(node)

    # -- injection -----------------------------------------------------------

    def enqueue_packet(self, packet: Packet) -> None:
        """Hand *packet* to its source node's injection queue."""
        if not 0 <= packet.src < self.topology.num_nodes:
            raise ValueError(f"packet source {packet.src} not in network")
        if not 0 <= packet.dst < self.topology.num_nodes:
            raise ValueError(f"packet destination {packet.dst} not in network")
        self._sources[packet.src].packets.append(packet)
        self._busy_sources.add(packet.src)
        self.stats.note_injected(packet)

    def pending_injections(self) -> int:
        """Flits still waiting in source queues (including in-flight packets)."""
        total = 0
        for src in self._sources:
            total += sum(p.size_flits for p in src.packets)
            total += len(src.flits) - src.flit_idx
        return total

    def in_flight(self) -> int:
        """Flits buffered in routers or travelling on links."""
        buffered = sum(router.occupancy() for router in self.routers)
        return buffered + self._arrivals.pending() + self._ejections.pending()

    def idle(self) -> bool:
        """True when no flit is queued, buffered, or in flight."""
        return (
            not self._busy_sources
            and self.in_flight() == 0
            and self.pending_injections() == 0
        )

    def _inject(self, cycle: int) -> None:
        done_sources: List[int] = []
        for node in sorted(self._busy_sources):
            src = self._sources[node]
            router = self.routers[node]
            if not src.flits:
                if not src.packets:
                    done_sources.append(node)
                    continue
                if self.vc_by_class:
                    # Inject on the traffic class's dedicated VC.
                    wanted = (
                        1 if src.packets[0].klass is PacketClass.DATA else 0
                    )
                    vc = (
                        wanted
                        if router.free_local_vc_is(wanted)
                        else None
                    )
                else:
                    vc = router.free_local_vc()
                if vc is None:
                    continue
                packet = src.packets.popleft()
                src.flits = packet.make_flits(self.layer_groups)
                detector = self.short_flit_detector
                for new_flit in src.flits:
                    new_flit.layer_mask = detector.observe(
                        new_flit.active_groups
                    )
                src.flit_idx = 0
                src.vc = vc
                packet.injected_cycle = cycle
                if self.lookahead_rc:
                    # First-hop route computed at injection (Fig. 8c).
                    try:
                        src.flits[0].lookahead_port = (
                            self.routing.output_port(node, packet.dst)
                        )
                        self.events.rc_computations += 1
                    except UnroutableError:
                        # Unroutable at injection time: fall back to the
                        # router's RC stage, which counts the drop.
                        src.flits[0].lookahead_port = None
            if router.local_vc_has_space(src.vc):
                flit = src.flits[src.flit_idx]
                router.receive_flit(router.local_port, src.vc, flit, cycle)
                src.flit_idx += 1
                if src.flit_idx >= len(src.flits):
                    src.flits = []
                    src.flit_idx = 0
                    src.vc = -1
                    if not src.packets:
                        done_sources.append(node)
        for node in done_sources:
            src = self._sources[node]
            if src.idle:
                self._busy_sources.discard(node)

    # -- main loop -------------------------------------------------------------

    def _deliver(self, cycle: int) -> None:
        """Land this cycle's scheduled arrivals, credits, and ejections."""
        routers = self.routers
        for node, port, vc, flit in self._arrivals.pop_due(cycle):
            routers[node].receive_flit(port, vc, flit, cycle)

        fi = self.fault_injector
        if fi is not None and fi.dead_credit_targets:
            # Hard link faults: credits bound for a dead output port are
            # confiscated (the physical channel can no longer signal),
            # keeping the upstream port permanently credit-starved.  The
            # injector ledgers each confiscation so the sanitizer's
            # credit-conservation audit still balances.
            dead = fi.dead_credit_targets
            for node, port, vc in self._credits.pop_due(cycle):
                if (node, port) in dead:
                    fi.confiscate(node, port, vc)
                else:
                    routers[node].receive_credit(port, vc)
        else:
            for node, port, vc in self._credits.pop_due(cycle):
                routers[node].receive_credit(port, vc)

        for flit in self._ejections.pop_due(cycle):
            if flit.is_tail:
                packet = flit.packet
                packet.delivered_cycle = cycle
                if packet.dropped:
                    # Fault-induced drop: the packet drained through the
                    # normal ejection path but was never delivered —
                    # count it, skip the delivery callbacks.
                    self.stats.note_dropped(packet)
                    continue
                self.stats.note_delivered(packet)
                for callback in self.delivery_callbacks:
                    callback(packet, cycle)

    def _step_routers(self, cycle: int) -> int:
        """Run router pipelines; returns how many routers were stepped.

        Active-set mode visits only woken routers, in ascending node
        order — the same relative order as the full iteration, which is
        what keeps event-bucket contents (and hence closed-loop RNG
        draws) bit-identical between the two modes."""
        if not self.active_scheduling:
            for router in self.routers:
                router.step(cycle)
            return len(self.routers)
        active = self._active_routers
        if not active:
            return 0
        order = sorted(active)
        for node in order:
            router = self.routers[node]
            router.step(cycle)
            if not router._active:  # quiescent: no VC holds work
                active.discard(node)
        return len(order)

    def step(self) -> None:
        """Advance the network by one clock cycle."""
        cycle = self.cycle
        prof = self.profiler
        san = self.sanitizer
        tel = self.telemetry
        fi = self.fault_injector
        if prof is None:
            self._deliver(cycle)
            self._inject(cycle)
            if fi is not None:
                # Apply scheduled fault events due this cycle and
                # re-freeze stuck VCs after arrivals/injections landed
                # (receive_flit re-stamps vc_ready), before routers step.
                fi.on_cycle(cycle)
            self._step_routers(cycle)
            if san is not None:
                san.maybe_audit(cycle)
            if tel is not None:
                tel.on_cycle(cycle)
        else:
            clock = prof.clock
            t0 = clock()
            self._deliver(cycle)
            t1 = clock()
            self._inject(cycle)
            if fi is not None:
                fi.on_cycle(cycle)
            t2 = clock()
            stepped = self._step_routers(cycle)
            t3 = clock()
            sanitize_s = 0.0
            if san is not None:
                san.maybe_audit(cycle)
                sanitize_s = clock() - t3
            telemetry_s = 0.0
            if tel is not None:
                t4 = clock()
                tel.on_cycle(cycle)
                telemetry_s = clock() - t4
            prof.record_cycle(
                t1 - t0, t2 - t1, t3 - t2, stepped, len(self.routers),
                sanitize_s=sanitize_s, telemetry_s=telemetry_s,
            )
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance the network by *cycles* clock cycles."""
        for _ in range(cycles):
            self.step()
