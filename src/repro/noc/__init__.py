"""Cycle-accurate NoC simulator substrate.

This package is the reproduction of the paper's in-house "cycle-accurate
NoC simulator" (Sec. 4): a flit-level, wormhole-switched, virtual-channel
network model with

* credit-based flow control,
* two-stage separable virtual-channel and switch allocation,
* deterministic dimension-ordered (and express-aware) routing, and
* a configurable router pipeline depth so the 3DM/3DM-E designs can merge
  the switch-traversal and link-traversal stages into one cycle (Fig. 8d).

The entry points most users need are :class:`~repro.noc.network.Network`
and :class:`~repro.noc.simulator.Simulator`.
"""

from repro.noc.packet import Flit, FlitType, Packet, PacketClass
from repro.noc.buffer import VirtualChannelBuffer
from repro.noc.arbiter import MatrixArbiter, RoundRobinArbiter
from repro.noc.routing import (
    ExpressXYRouting,
    RoutingFunction,
    TorusXYRouting,
    XYRouting,
    XYZRouting,
    routing_for_topology,
)
from repro.noc.adaptive import WestFirstAdaptiveRouting
from repro.noc.profiling import NetworkProfiler, ProfileSnapshot
from repro.noc.router import Router
from repro.noc.sanitizer import (
    NetworkSanitizer,
    SanityError,
    SanitySnapshot,
    WatchdogReport,
)
from repro.noc.scheduling import TimingWheel
from repro.noc.network import Network
from repro.noc.simulator import SimulationResult, Simulator
from repro.noc.stats import EventCounts, NetworkStats
from repro.noc.tracer import PacketTracer, TraverseEvent

__all__ = [
    "Flit",
    "FlitType",
    "Packet",
    "PacketClass",
    "VirtualChannelBuffer",
    "RoundRobinArbiter",
    "MatrixArbiter",
    "RoutingFunction",
    "XYRouting",
    "XYZRouting",
    "ExpressXYRouting",
    "TorusXYRouting",
    "routing_for_topology",
    "Router",
    "Network",
    "Simulator",
    "SimulationResult",
    "EventCounts",
    "NetworkStats",
    "NetworkProfiler",
    "ProfileSnapshot",
    "NetworkSanitizer",
    "SanityError",
    "SanitySnapshot",
    "WatchdogReport",
    "TimingWheel",
    "WestFirstAdaptiveRouting",
    "PacketTracer",
    "TraverseEvent",
]
