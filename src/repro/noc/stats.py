"""Event counting and latency statistics.

Two concerns live here:

* :class:`EventCounts` — cumulative micro-architectural event counters
  (buffer reads/writes, crossbar and link traversals, allocator
  operations).  Separable-module events carry an *activity weight*: the
  fraction of word groups actually switched, which is how the layer
  shutdown technique (Sec. 3.2.1) turns short flits into energy savings.
  The Orion-style energy model consumes these counters.

* :class:`NetworkStats` — packet latency / hop / throughput accounting
  over a measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.noc.packet import Packet, PacketClass


def nearest_rank_percentile(ordered: List[int], percentile: float) -> float:
    """Nearest-rank percentile over an already-sorted sample.

    The rank is ``ceil(n * p / 100)`` computed in exact rational
    arithmetic on the *decimal* value of ``percentile``
    (``Fraction(str(p))``) — a pure-float ceil misrounds when ``n * p``
    carries binary representation error across an integer boundary
    (8.8% of 375 samples is exactly rank 33, but ``375 * 8.8 =
    3300.0000000000005`` ceils to 34).
    """
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    if not ordered:
        return 0.0
    n = len(ordered)
    rank = math.ceil(Fraction(str(percentile)) * n / 100)
    rank = min(max(rank, 1), n)
    return float(ordered[rank - 1])


@dataclass(slots=True)
class EventCounts:
    """Cumulative event counters (raw and activity-weighted)."""

    buffer_writes: int = 0
    buffer_reads: int = 0
    buffer_writes_weighted: float = 0.0
    buffer_reads_weighted: float = 0.0
    xbar_traversals: int = 0
    xbar_traversals_weighted: float = 0.0
    rc_computations: int = 0
    va_allocations: int = 0
    sa_allocations: int = 0
    #: Raw flit-link traversals by link kind name.
    link_flits: Dict[str, int] = field(default_factory=dict)
    #: Sum over link traversals of (length_mm * activity weight).
    link_mm_weighted: Dict[str, float] = field(default_factory=dict)
    #: Per-channel flit counts keyed by (src node, dst node) — the
    #: channel-load map used for utilisation analysis.
    channel_flits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    short_flit_hops: int = 0
    flit_hops: int = 0

    # Layer-resolved histograms, keyed by the *effective* active-layer
    # count k (1..layer_groups): how many datapath layers switched for
    # the event.  With shutdown disabled every event records
    # k = layer_groups (all layers toggle regardless of payload), so in
    # both modes ``sum_k k*count[k]/layer_groups`` reproduces the legacy
    # ``*_weighted`` float exactly (k/layer_groups is dyadic for the
    # paper's L=4) and ``sum_k count[k]`` reproduces the raw total.
    buffer_writes_by_layers: Dict[int, int] = field(default_factory=dict)
    buffer_reads_by_layers: Dict[int, int] = field(default_factory=dict)
    xbar_traversals_by_layers: Dict[int, int] = field(default_factory=dict)
    flit_hops_by_layers: Dict[int, int] = field(default_factory=dict)
    #: Sum of link length_mm by effective active-layer count (all link
    #: kinds pooled; the per-kind split stays in ``link_mm_weighted``).
    link_mm_by_layers: Dict[int, float] = field(default_factory=dict)

    def count_link(
        self,
        kind: str,
        length_mm: float,
        weight: float,
        channel: Optional[Tuple[int, int]] = None,
        active_layers: Optional[int] = None,
    ) -> None:
        self.link_flits[kind] = self.link_flits.get(kind, 0) + 1
        self.link_mm_weighted[kind] = (
            self.link_mm_weighted.get(kind, 0.0) + length_mm * weight
        )
        if channel is not None:
            self.channel_flits[channel] = self.channel_flits.get(channel, 0) + 1
        if active_layers is not None:
            self.link_mm_by_layers[active_layers] = (
                self.link_mm_by_layers.get(active_layers, 0.0) + length_mm
            )

    @staticmethod
    def events_at_layer(by_layers: Dict[int, int], layer: int) -> int:
        """Events during which datapath *layer* switched.

        Valid data fills word groups bottom-up, so layer ``l`` (0-based,
        0 = the always-on top group) toggles exactly for events whose
        effective active-layer count exceeds ``l``.
        """
        return sum(count for k, count in by_layers.items() if k > layer)

    def copy(self) -> "EventCounts":
        """Deep-enough snapshot of every counter.

        Field-generic (``dataclasses.fields``) so a newly added counter
        can never be silently forgotten here — a hand-written field list
        made that failure mode invisible until power numbers drifted.
        """
        out = EventCounts()
        for f in fields(self):
            value = getattr(self, f.name)
            setattr(out, f.name, dict(value) if isinstance(value, dict) else value)
        return out

    def delta(self, earlier: "EventCounts") -> "EventCounts":
        """Counters accumulated since *earlier* (a snapshot of self).

        Field-generic like :meth:`copy`: scalar counters subtract, dict
        counters subtract per key over the union of keys.
        """
        out = EventCounts()
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(earlier, f.name)
            if isinstance(mine, dict):
                setattr(out, f.name, {
                    key: mine.get(key, 0) - theirs.get(key, 0)
                    for key in set(mine) | set(theirs)
                })
            else:
                setattr(out, f.name, mine - theirs)
        return out

    @property
    def short_flit_fraction(self) -> float:
        """Fraction of flit-hops carried by short flits."""
        if self.flit_hops == 0:
            return 0.0
        return self.short_flit_hops / self.flit_hops


class NetworkStats:
    """Latency, hop-count, and throughput accounting.

    Packets created inside ``[window_start, window_end)`` are *measured*;
    everything else only contributes to event counters (warm-up/drain).
    """

    def __init__(self) -> None:
        self.window_start = 0
        self.window_end: Optional[int] = None
        self.latencies: List[int] = []
        self.latencies_by_class: Dict[PacketClass, List[int]] = {
            PacketClass.DATA: [],
            PacketClass.CTRL: [],
        }
        self.hop_counts: List[int] = []
        self.latencies_by_priority: Dict[int, List[int]] = {}
        self.packets_injected = 0
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.measured_flits = 0
        self.measured_outstanding = 0
        # Fault-injection drop accounting: packets the routers steered
        # to an ejection port because no surviving channel reached their
        # destination.  Zero in every fault-free run.
        self.packets_dropped = 0
        self.flits_dropped = 0
        self.measured_dropped = 0
        #: Drop-decision node -> dropped-packet count (forensics).
        self.drops_by_node: Dict[int, int] = {}

    def set_window(self, start: int, end: Optional[int]) -> None:
        self.window_start = start
        self.window_end = end

    def in_window(self, packet: Packet) -> bool:
        if packet.created_cycle < self.window_start:
            return False
        return self.window_end is None or packet.created_cycle < self.window_end

    def note_injected(self, packet: Packet) -> None:
        self.packets_injected += 1
        if self.in_window(packet):
            self.measured_outstanding += 1

    def note_delivered(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.flits_delivered += packet.size_flits
        if not self.in_window(packet):
            return
        self.measured_outstanding -= 1
        self.measured_flits += packet.size_flits
        latency = packet.latency
        if latency is None:
            raise RuntimeError("delivered packet without delivery cycle")
        self.latencies.append(latency)
        self.latencies_by_class[packet.klass].append(latency)
        self.latencies_by_priority.setdefault(packet.priority, []).append(latency)
        self.hop_counts.append(packet.hops)

    def note_dropped(self, packet: Packet) -> None:
        """Account a packet that ejected as a fault-induced drop.

        Dropped packets leave the network through the normal ejection
        path (flit conservation holds) but contribute no latency/hop
        samples; measured drops release their ``measured_outstanding``
        slot so the drain loop terminates.
        """
        self.packets_dropped += 1
        self.flits_dropped += packet.size_flits
        node = packet.drop_node
        self.drops_by_node[node] = self.drops_by_node.get(node, 0) + 1
        if self.in_window(packet):
            self.measured_outstanding -= 1
            self.measured_dropped += 1

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def avg_hops(self) -> float:
        return sum(self.hop_counts) / len(self.hop_counts) if self.hop_counts else 0.0

    def avg_latency_for(self, klass: PacketClass) -> float:
        values = self.latencies_by_class[klass]
        return sum(values) / len(values) if values else 0.0

    def avg_latency_for_priority(self, priority: int) -> float:
        values = self.latencies_by_priority.get(priority, [])
        return sum(values) / len(values) if values else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile over measured packets (nearest-rank, see
        :func:`nearest_rank_percentile` for the exact-rational rank)."""
        return nearest_rank_percentile(sorted(self.latencies), percentile)


@dataclass(frozen=True)
class StatsWindow:
    """Delta of a :class:`NetworkStats` since the previous cursor read.

    Produced by :meth:`StatsCursor.advance`; all counts cover only the
    interval between two consecutive ``advance()`` calls, which is what
    windowed telemetry samples instead of re-deriving running totals.
    """

    packets_injected: int
    packets_delivered: int
    flits_delivered: int
    #: Measured packets delivered in the window (their latencies below).
    measured_packets: int
    #: Flits of measured packets delivered in the window.
    measured_flits: int
    #: Latencies of the measured packets delivered in the window.
    latencies: Tuple[int, ...]

    @property
    def avg_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def latency_percentile(self, percentile: float) -> float:
        """Nearest-rank percentile over this window's latencies."""
        return nearest_rank_percentile(sorted(self.latencies), percentile)


class StatsCursor:
    """Incremental window reader over a live :class:`NetworkStats`.

    Holds high-water marks into the stats object and, on each
    :meth:`advance`, returns the delta accumulated since the previous
    call (the first call covers everything since construction).  Never
    mutates the stats it reads, so any number of cursors can watch the
    same run independently.
    """

    def __init__(self, stats: NetworkStats) -> None:
        self.stats = stats
        self._injected = stats.packets_injected
        self._delivered = stats.packets_delivered
        self._flits = stats.flits_delivered
        self._measured_flits = stats.measured_flits
        self._n_latencies = len(stats.latencies)

    def advance(self) -> StatsWindow:
        """Return the delta since the last call and move the marks."""
        stats = self.stats
        n = len(stats.latencies)
        window = StatsWindow(
            packets_injected=stats.packets_injected - self._injected,
            packets_delivered=stats.packets_delivered - self._delivered,
            flits_delivered=stats.flits_delivered - self._flits,
            measured_packets=n - self._n_latencies,
            measured_flits=stats.measured_flits - self._measured_flits,
            latencies=tuple(stats.latencies[self._n_latencies:n]),
        )
        self._injected = stats.packets_injected
        self._delivered = stats.packets_delivered
        self._flits = stats.flits_delivered
        self._measured_flits = stats.measured_flits
        self._n_latencies = n
        return window
