"""Flit-event tracing for debugging and visualisation.

Attaching a :class:`PacketTracer` to a network records every switch
traversal as ``(cycle, node, packet id, flit seq, output port)`` tuples,
plus injection/ejection events from the delivery callbacks.  The log
reconstructs exact per-packet routes and per-router timelines — the tool
one reaches for when a latency number looks wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.noc.network import Network
from repro.noc.packet import Flit


@dataclass(frozen=True)
class TraverseEvent:
    """One flit crossing one router's switch."""

    cycle: int
    node: int
    packet_id: int
    flit_seq: int
    out_port: str


class PacketTracer:
    """Records switch-traversal events from a network.

    Use as a context manager or call :meth:`detach` when done; tracing
    every flit costs time, so it is strictly a debugging aid.

    When the ``max_events`` cap is hit, recording stops but dropped
    events are counted: :attr:`truncated` and :attr:`dropped` say how
    much of the run the log is missing, and :meth:`summary` /
    :meth:`format` surface both so a capped log is never mistaken for a
    complete one.
    """

    def __init__(self, network: Network, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.network = network
        self.max_events = max_events
        self.events: List[TraverseEvent] = []
        self.dropped = 0
        network.traverse_callbacks.append(self._on_traverse)

    def _on_traverse(
        self, cycle: int, node: int, flit: Flit, out_port: str
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraverseEvent(
                cycle=cycle,
                node=node,
                packet_id=flit.packet.pid,
                flit_seq=flit.seq,
                out_port=out_port,
            )
        )

    def detach(self) -> None:
        try:
            self.network.traverse_callbacks.remove(self._on_traverse)
        except ValueError:
            pass

    def __enter__(self) -> "PacketTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- queries -----------------------------------------------------------

    @property
    def truncated(self) -> bool:
        """True when the ``max_events`` cap was hit: the log is a prefix
        of the run, not the whole run, and every aggregate below
        undercounts by :attr:`dropped` events."""
        return self.dropped > 0

    def summary(self) -> Dict[str, Any]:
        """Recording totals, including whether the log was truncated."""
        return {
            "events": len(self.events),
            "max_events": self.max_events,
            "dropped": self.dropped,
            "truncated": self.truncated,
            "packets": len({e.packet_id for e in self.events}),
            "nodes": len({e.node for e in self.events}),
        }

    def format(self) -> str:
        """Human-readable recording summary (flags truncation loudly)."""
        s = self.summary()
        lines = [
            f"events recorded   : {s['events']} (cap {s['max_events']})",
            f"packets seen      : {s['packets']}",
            f"routers touched   : {s['nodes']}",
        ]
        if self.truncated:
            lines.append(
                f"TRUNCATED         : {s['dropped']} events dropped after "
                "the cap; aggregates undercount"
            )
        return "\n".join(lines)

    def packet_route(self, packet_id: int) -> List[int]:
        """Router sequence the packet's head flit traversed, in order."""
        hops = [
            e for e in self.events
            if e.packet_id == packet_id and e.flit_seq == 0
        ]
        hops.sort(key=lambda e: e.cycle)
        return [e.node for e in hops]

    def router_timeline(self, node: int) -> List[TraverseEvent]:
        """All traversals at one router, in cycle order."""
        events = [e for e in self.events if e.node == node]
        events.sort(key=lambda e: (e.cycle, e.packet_id, e.flit_seq))
        return events

    def utilization_by_node(self) -> Dict[int, int]:
        """Switch-traversal counts per router."""
        counts: Dict[int, int] = {}
        for event in self.events:
            counts[event.node] = counts.get(event.node, 0) + 1
        return counts
