"""Packets and flits.

The paper models NUCA traffic as a mix of short control/address packets
(one flit) and cache-line data packets (Sec. 1, Fig. 2).  With 128-bit
flits and 64-byte cache lines a data packet is one head flit plus four
payload flits.

Each flit's payload is summarised by ``active_groups``: how many of the
flit's ``layer_groups`` word groups (one per stacked layer in the 3DM
designs) carry non-redundant data.  A *short flit* (Sec. 3.2.1) has valid
data only in the top group — the bottom ``L-1`` router layers can be clock
gated while it moves through the data path.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

#: Number of word groups a flit is split into across stacked layers.  The
#: paper's running example is W=128 bits on L=4 layers (32 bits per layer).
DEFAULT_LAYER_GROUPS = 4

#: Flits in a data packet: one head flit + 64B line / 16B flit payload.
DATA_PACKET_FLITS = 5
#: Flits in a control/address packet.
CTRL_PACKET_FLITS = 1

_packet_ids = itertools.count()


class PacketClass(enum.Enum):
    """NUCA message coarse class (Fig. 2)."""

    DATA = "data"
    CTRL = "ctrl"


class FlitType(enum.Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: Single-flit packet: simultaneously head and tail.
    SINGLE = "single"


@dataclass(slots=True)
class Packet:
    """One network packet.

    Attributes:
        src: injecting node id.
        dst: destination node id.
        size_flits: total number of flits.
        klass: coarse packet class (data vs control).
        created_cycle: cycle the packet was handed to the source queue.
        payload_groups: per-flit count of active word groups (length
            ``size_flits``); ``None`` entries mean "all groups active".
        reply_tag: opaque cookie used by closed-loop traffic generators to
            match responses with requests.
    """

    src: int
    dst: int
    size_flits: int
    klass: PacketClass = PacketClass.DATA
    created_cycle: int = 0
    payload_groups: Optional[List[int]] = None
    reply_tag: object = None
    #: QoS priority class: higher values win allocation conflicts when
    #: the network runs with priority arbitration (Sec. 3.3 suggests QoS
    #: provisioning as one use of the spare 3DM bandwidth).
    priority: int = 0
    pid: int = field(default_factory=lambda: next(_packet_ids))

    # Filled in by the network at ejection time.
    injected_cycle: Optional[int] = None
    delivered_cycle: Optional[int] = None
    hops: int = 0
    #: Set by the router when no surviving channel reaches ``dst``
    #: (injected faults): the packet is steered to the nearest ejection
    #: port and counted in ``NetworkStats.packets_dropped`` instead of
    #: delivered.
    dropped: bool = False
    #: Node at which the drop decision was made (-1 = not dropped).
    drop_node: int = -1

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError(f"packet must have >= 1 flit, got {self.size_flits}")
        if self.src == self.dst:
            raise ValueError("packet source and destination must differ")
        if self.payload_groups is not None and len(self.payload_groups) != self.size_flits:
            raise ValueError(
                "payload_groups length must equal size_flits "
                f"({len(self.payload_groups)} != {self.size_flits})"
            )

    def make_flits(self, layer_groups: int = DEFAULT_LAYER_GROUPS) -> List["Flit"]:
        """Materialise the flit sequence for this packet.

        Control packets and packet headers carry a short address payload
        and are therefore short flits by construction; payload flits take
        their activity from :attr:`payload_groups`.
        """
        flits: List[Flit] = []
        for seq in range(self.size_flits):
            if self.size_flits == 1:
                kind = FlitType.SINGLE
            elif seq == 0:
                kind = FlitType.HEAD
            elif seq == self.size_flits - 1:
                kind = FlitType.TAIL
            else:
                kind = FlitType.BODY
            if self.payload_groups is not None:
                active = self.payload_groups[seq]
            elif kind in (FlitType.HEAD, FlitType.SINGLE):
                # Headers/addresses fit in one 32-bit word group.
                active = 1
            else:
                active = layer_groups
            active = max(1, min(layer_groups, active))
            flits.append(Flit(packet=self, kind=kind, seq=seq, active_groups=active))
        return flits

    @property
    def latency(self) -> Optional[int]:
        """End-to-end packet latency (creation to tail ejection), in cycles."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.created_cycle


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet
    kind: FlitType
    seq: int
    #: Word groups carrying non-redundant data (1..layer_groups).
    active_groups: int = DEFAULT_LAYER_GROUPS
    #: Bitmask of datapath layers this flit drives: bit ``i`` set means
    #: word group ``i`` carries valid data.  Valid data always fills word
    #: groups bottom-up (group 0 holds the header/address word), so the
    #: mask is contiguous: ``(1 << active_groups) - 1``.  Derived in
    #: ``__post_init__`` and conserved hop-to-hop (audited by the
    #: sanitizer's layer-mask invariant).
    layer_mask: int = 0
    #: Routers traversed so far; maintained by the network.
    hops: int = 0
    #: With look-ahead routing (Fig. 8c): output port name at the *next*
    #: router, computed one hop in advance; None otherwise.
    lookahead_port: Optional[str] = None
    #: Torus dateline state: set per dimension once the packet crosses a
    #: wrap-around channel (forces the escape VC from then on).
    wrapped_x: bool = False
    wrapped_y: bool = False
    #: Cached flit-type predicates, derived from ``kind`` in
    #: ``__post_init__``: the router pipeline consults these on every
    #: traversal and flit type never changes after creation.
    is_head: bool = field(init=False, default=False)
    is_tail: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self.is_head = self.kind is FlitType.HEAD or self.kind is FlitType.SINGLE
        self.is_tail = self.kind is FlitType.TAIL or self.kind is FlitType.SINGLE
        if self.active_groups < 1:
            raise ValueError(
                f"flit must drive >= 1 word group, got {self.active_groups}"
            )
        if not self.layer_mask:
            self.layer_mask = (1 << self.active_groups) - 1

    def is_short(self) -> bool:
        """True when only the top word group carries valid data.

        Short is an absolute property of the payload (exactly one active
        group), independent of how many groups the network slices flits
        into — so the method takes no arguments.
        """
        return self.active_groups == 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flit(pid={self.packet.pid}, {self.kind.value}, seq={self.seq}, "
            f"src={self.packet.src}, dst={self.packet.dst})"
        )


def data_packet(
    src: int,
    dst: int,
    created_cycle: int = 0,
    payload_groups: Optional[List[int]] = None,
) -> Packet:
    """Convenience constructor for a cache-line data packet."""
    return Packet(
        src=src,
        dst=dst,
        size_flits=DATA_PACKET_FLITS,
        klass=PacketClass.DATA,
        created_cycle=created_cycle,
        payload_groups=payload_groups,
    )


def ctrl_packet(src: int, dst: int, created_cycle: int = 0) -> Packet:
    """Convenience constructor for a one-flit control/address packet."""
    return Packet(
        src=src,
        dst=dst,
        size_flits=CTRL_PACKET_FLITS,
        klass=PacketClass.CTRL,
        created_cycle=created_cycle,
    )
