"""Table-driven, provably deadlock-free routing over arbitrary link graphs.

The coordinate-arithmetic routing functions in :mod:`repro.noc.routing`
assume a regular mesh.  :class:`TableRouting` drops that assumption: it
precomputes a per-``(node, destination)`` next-hop table from nothing
but the topology's directed link list, using one of two deadlock-free
schemes, and *proves* the result deadlock-free at construction time with
the channel-dependency-graph checker from :mod:`repro.resilience.cdg`.

**up*/down* mode** (turn restriction).  A BFS spanning tree rooted at
the highest-degree node labels every directed channel *up* (towards a
node with a smaller ``(BFS level, id)`` key) or *down* (away from it).
Routes climb up channels first, then descend down channels; the
``down -> up`` turn is forbidden.  Any channel cycle must contain a
``down -> up`` turn (an all-up walk strictly decreases the key, an
all-down walk strictly increases it), so the CDG restricted to legal
turns is acyclic and wormhole routing is deadlock-free with a single
VC — on *any* connected graph.  The cost is stretch: some pairs detour
through the tree.

**escape mode** (VC layering).  Tables are pure shortest-path; deadlock
freedom instead comes from a dateline-style VC discipline.  Each packet
occupies VC class *k* after taking *k* forbidden ``down -> up`` turns;
classes only grow along a route, and within one class only legal turns
occur, so the layered CDG over ``(channel, class)`` nodes is acyclic
whenever the network has ``max turns + 1`` VCs.  Because the tables are
deterministic per ``(node, destination)``, the class on any channel is a
pure function of ``(src, dst, channel)`` — precomputed here, no per-flit
state needed.  A bidirectional ring needs exactly one forbidden turn
(at the antipodal node), so the paper's standard 2-VC routers run it at
full shortest-path quality.

**auto mode** picks for the fabric: up*/down* when its stretch over
true shortest paths is negligible, otherwise escape when the shipped
VC budget covers it, otherwise up*/down* again (routable beats fast).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.noc.routing import RoutingBase, UnroutableError
from repro.topology.base import LOCAL_PORT, Topology

#: A directed channel identified by (source node, destination node).
Channel = Tuple[int, int]

#: Auto mode tolerates this much average stretch from the turn
#: restriction before reaching for the escape-VC scheme.
DEFAULT_MAX_STRETCH = 1.05

#: Auto mode only picks escape when it fits this many VCs (the paper's
#: standard router has 2).
DEFAULT_ESCAPE_VCS = 2


class DeadlockError(RuntimeError):
    """The built routing tables admit a channel-dependency cycle.

    Raised at construction time — never mid-simulation — and carries the
    offending cycle for forensics.  Seeing this means a bug in the table
    builder (the shipped modes are deadlock-free by construction) or an
    explicitly requested unsafe mode on an unsuitable fabric.
    """

    def __init__(self, message: str, cycle) -> None:
        super().__init__(message)
        self.cycle = cycle


class TableRouting(RoutingBase):
    """Precomputed next-hop tables with a deadlock-freedom proof.

    Args:
        topology: any :class:`~repro.topology.base.Topology`.
        mode: ``"auto"`` (default), ``"updown"``, or ``"escape"``.
        max_stretch: auto mode's tolerated average up*/down* stretch.
        escape_vcs: auto mode's VC budget for the escape scheme.
        verify: run the CDG acyclicity proof at construction (default).

    Attributes:
        mode: the scheme actually in effect — ``"updown"``, ``"escape"``,
            or ``"shortest"`` (escape whose tables happened to need no
            forbidden turn, so no discipline is attached).
        root: the spanning-tree root node.
        required_vcs: minimum VCs the chosen scheme needs.
        deadlock_cycle: always ``None`` after a verified construction.
    """

    def __init__(
        self,
        topology: Topology,
        mode: str = "auto",
        max_stretch: float = DEFAULT_MAX_STRETCH,
        escape_vcs: int = DEFAULT_ESCAPE_VCS,
        verify: bool = True,
    ) -> None:
        if mode not in ("auto", "updown", "escape"):
            raise ValueError(f"unknown table-routing mode {mode!r}")
        self.topology = topology
        n = topology.num_nodes

        # -- channel labelling (shared by both schemes) -------------------
        self.root = self._pick_root()
        self._level = self._bfs_levels(self.root)
        # key strictly orders nodes; a channel towards a smaller key is
        # "up" (rootward), towards a larger key "down".
        self._key = [(self._level[v], v) for v in range(n)]

        shortest, sp_dist = self._build_shortest_tables()
        chosen = mode
        if mode in ("auto", "updown"):
            updown, ud_dist = self._build_updown_tables()
            if mode == "auto":
                covered = self._covers(updown, shortest)
                stretch = self._stretch(ud_dist, sp_dist)
                if covered and stretch <= max_stretch:
                    chosen = "updown"
                else:
                    total = self._escape_classes(shortest)
                    max_class = max(total.values(), default=0)
                    if max_class + 1 <= escape_vcs:
                        chosen = "escape"
                    elif covered:
                        chosen = "updown"
                    else:
                        raise UnroutableError(
                            "fabric is unroutable: the up*/down* turn "
                            "restriction loses pairs and the escape "
                            f"scheme needs {max_class + 1} VCs "
                            f"(budget {escape_vcs})"
                        )
            if chosen == "updown":
                self._table = updown
                self._dist = ud_dist
        if chosen == "escape":
            self._table = shortest
            self._dist = sp_dist
            self._total = self._escape_classes(shortest)
            max_class = max(self._total.values(), default=0)
            if max_class == 0:
                # No forbidden turn anywhere (trees, DAG-like fabrics):
                # plain shortest path is already deadlock-free, no
                # discipline needed.
                chosen = "shortest"
            else:
                self.has_vc_discipline = True  # instance override
                self.required_vcs = max_class + 1
        self.mode = chosen

        self.deadlock_cycle = None
        if verify:
            self._verify_acyclic()

    # -- construction helpers ---------------------------------------------

    def _pick_root(self) -> int:
        """Highest undirected degree, lowest id on ties (the classic
        up*/down* heuristic: a central root shortens tree detours)."""
        topo = self.topology
        degree = [0] * topo.num_nodes
        seen = set()
        for link in topo.links:
            pair = (min(link.src, link.dst), max(link.src, link.dst))
            if pair in seen:
                continue
            seen.add(pair)
            degree[link.src] += 1
            degree[link.dst] += 1
        return max(range(topo.num_nodes), key=lambda v: (degree[v], -v))

    def _bfs_levels(self, root: int) -> List[int]:
        """BFS levels over the undirected closure of the link graph.

        Unreachable nodes keep level ``num_nodes`` (worse than any real
        level); pairs involving them are simply unroutable.
        """
        topo = self.topology
        adjacency: List[set] = [set() for _ in range(topo.num_nodes)]
        for link in topo.links:
            adjacency[link.src].add(link.dst)
            adjacency[link.dst].add(link.src)
        level = [topo.num_nodes] * topo.num_nodes
        level[root] = 0
        frontier = deque([root])
        while frontier:
            u = frontier.popleft()
            for v in sorted(adjacency[u]):
                if level[v] > level[u] + 1:
                    level[v] = level[u] + 1
                    frontier.append(v)
        return level

    def _is_up(self, u: int, v: int) -> bool:
        return self._key[v] < self._key[u]

    def _out_channels(self, u: int) -> List[Tuple[str, int]]:
        """Deterministic (port, neighbor) list for *u*, sorted by
        (neighbor key, port) so tie-breaks are stable run to run."""
        topo = self.topology
        return sorted(
            ((port, link.dst) for port, link in topo.out_ports[u].items()),
            key=lambda item: (self._key[item[1]], item[0]),
        )

    def _build_shortest_tables(
        self,
    ) -> Tuple[List[Dict[int, str]], List[Dict[int, int]]]:
        """Per-destination BFS over the directed graph.

        Returns ``(table, dist)`` where ``table[d][n]`` is the port to
        take at *n* towards *d* and ``dist[d][n]`` the hop count; nodes
        with no directed path to *d* are absent.
        """
        topo = self.topology
        n = topo.num_nodes
        # Reverse adjacency: arrivals[v] = [(u, port at u), ...]
        arrivals: List[List[Tuple[int, str]]] = [[] for _ in range(n)]
        for link in topo.links:
            arrivals[link.dst].append((link.src, link.src_port))
        table: List[Dict[int, str]] = [dict() for _ in range(n)]
        dist: List[Dict[int, int]] = [dict() for _ in range(n)]
        for d in range(n):
            dist[d][d] = 0
            frontier = deque([d])
            while frontier:
                v = frontier.popleft()
                for u, port in sorted(arrivals[v]):
                    if u not in dist[d]:
                        dist[d][u] = dist[d][v] + 1
                        table[d][u] = port
                        frontier.append(u)
                    elif dist[d][u] == dist[d][v] + 1:
                        # Equal-cost tie: prefer the smaller (key, port)
                        # so the table is independent of link order.
                        incumbent = table[d][u]
                        inc_dst = topo.out_ports[u][incumbent].dst
                        if (self._key[v], port) < (self._key[inc_dst], incumbent):
                            table[d][u] = port
            del dist[d][d]
        return table, dist

    def _build_updown_tables(
        self,
    ) -> Tuple[List[Dict[int, str]], List[Dict[int, int]]]:
        """Turn-restricted tables: climb up channels, then descend.

        For each destination *d*, ``D(d)`` is the set of nodes with a
        down-only directed path to *d* (found by reverse BFS over down
        channels).  Inside ``D(d)`` the table follows the shortest
        down-only path; outside it takes the cheapest up channel, which
        strictly decreases the node key, so the climb terminates and
        every realised turn is legal (never ``down -> up``).
        """
        topo = self.topology
        n = topo.num_nodes
        down_arrivals: List[List[Tuple[int, str]]] = [[] for _ in range(n)]
        for link in topo.links:
            if not self._is_up(link.src, link.dst):
                down_arrivals[link.dst].append((link.src, link.src_port))
        by_key = sorted(range(n), key=lambda v: self._key[v])
        table: List[Dict[int, str]] = [dict() for _ in range(n)]
        dist: List[Dict[int, int]] = [dict() for _ in range(n)]
        for d in range(n):
            # Phase 1: D(d) by reverse BFS over down channels.
            down_dist: Dict[int, int] = {d: 0}
            frontier = deque([d])
            while frontier:
                v = frontier.popleft()
                for u, port in sorted(down_arrivals[v]):
                    if u not in down_dist:
                        down_dist[u] = down_dist[v] + 1
                        table[d][u] = port
                        frontier.append(u)
                    elif down_dist[u] == down_dist[v] + 1:
                        incumbent = table[d][u]
                        inc_dst = topo.out_ports[u][incumbent].dst
                        if (self._key[v], port) < (self._key[inc_dst], incumbent):
                            table[d][u] = port
            # Phase 2: the up climb, in increasing key order so every up
            # neighbour (strictly smaller key) is already costed.
            cost = dict(down_dist)
            for u in by_key:
                if u in cost:
                    continue
                best: Optional[Tuple[int, Tuple[int, int], str]] = None
                for port, m in self._out_channels(u):
                    if not self._is_up(u, m) or m not in cost:
                        continue
                    candidate = (1 + cost[m], self._key[m], port)
                    if best is None or candidate < best:
                        best = candidate
                if best is not None:
                    cost[u] = best[0]
                    table[d][u] = best[2]
            for u, c in cost.items():
                if u != d:
                    dist[d][u] = c
        return table, dist

    @staticmethod
    def _covers(table: Sequence[Dict[int, str]], reference) -> bool:
        """True when *table* routes every pair *reference* routes."""
        return all(
            set(reference[d]) <= set(table[d]) for d in range(len(table))
        )

    @staticmethod
    def _stretch(dist, sp_dist) -> float:
        """Average table-path length over shortest-path length."""
        total = base = 0
        for d in range(len(sp_dist)):
            for n_, hops in sp_dist[d].items():
                if n_ in dist[d]:
                    total += dist[d][n_]
                    base += hops
        return total / base if base else 1.0

    def _escape_classes(
        self, table: Sequence[Dict[int, str]]
    ) -> Dict[Tuple[int, int], int]:
        """Forbidden-turn totals for every routable (src, dst) pair.

        Computes ``remaining[(channel, d)]`` — forbidden ``down -> up``
        turns left on the table path after arriving over *channel* —
        then the pair total is ``remaining`` at the first channel.  The
        VC class a packet occupies on any channel follows for free:
        ``total(src, dst) - remaining(channel, dst)``; classes never
        decrease along a route.
        """
        topo = self.topology
        remaining: Dict[Tuple[Channel, int], int] = {}
        for d in range(topo.num_nodes):
            for start in table[d]:
                # Resolve the chain iteratively (paths are short, but
                # recursion depth would be O(path) per pair).
                chain: List[Tuple[Channel, int]] = []
                u = start
                port = table[d][u]
                channel = (u, topo.out_ports[u][port].dst)
                while (channel, d) not in remaining:
                    chain.append((channel, d))
                    v = channel[1]
                    if v == d:
                        remaining[(channel, d)] = 0
                        break
                    next_port = table[d][v]
                    channel = (v, topo.out_ports[v][next_port].dst)
                # Unwind: add the turn cost at each node on the way back.
                for held, _d in reversed(chain):
                    v = held[1]
                    if v == d:
                        remaining[(held, d)] = 0
                        continue
                    next_port = table[d][v]
                    w = topo.out_ports[v][next_port].dst
                    illegal = (not self._is_up(held[0], v)) and self._is_up(v, w)
                    remaining[(held, d)] = int(illegal) + remaining[((v, w), d)]
        self._rem = remaining
        totals: Dict[Tuple[int, int], int] = {}
        for d in range(topo.num_nodes):
            for s, port in table[d].items():
                first = (s, topo.out_ports[s][port].dst)
                totals[(s, d)] = remaining[(first, d)]
        return totals

    # -- deadlock-freedom proof -------------------------------------------

    def _verify_acyclic(self) -> None:
        """Assert the CDG induced by the built tables is acyclic.

        Imported lazily: the CDG module transitively imports
        :mod:`repro.noc.routing`, which constructs this class through
        the registry fallback.
        """
        from repro.resilience.cdg import (
            channel_dependency_graph,
            find_dependency_cycle,
            vc_channel_dependency_graph,
        )

        if self.has_vc_discipline:
            graph = vc_channel_dependency_graph(
                self.topology, self, num_vcs=self.required_vcs
            )
        else:
            graph = channel_dependency_graph(self.topology, self)
        cycle = find_dependency_cycle(graph)
        if cycle is not None:
            raise DeadlockError(
                f"{type(self).__name__}({self.mode}) built a cyclic "
                f"channel dependency graph on "
                f"{type(self.topology).__name__}",
                cycle,
            )
        self.deadlock_cycle = cycle

    # -- RoutingFunction protocol -----------------------------------------

    def output_port(self, node: int, dst: int) -> str:
        if node == dst:
            return LOCAL_PORT
        port = self._table[dst].get(node)
        if port is None:
            raise UnroutableError(
                f"node {node}: no table route to {dst}", node=node, dst=dst
            )
        return port

    def allowed_vcs(self, flit, node: int, out_port: str):
        """Escape discipline: the packet's VC class on the out channel.

        The class is the number of forbidden turns already taken —
        derivable from ``(src, dst, channel)`` alone because the tables
        are deterministic, so no flit state is consulted or mutated.
        """
        if out_port == LOCAL_PORT:
            return None  # ejection: any VC
        packet = flit.packet
        channel = (node, self.topology.out_ports[node][out_port].dst)
        taken = self._total[(packet.src, packet.dst)] - self._rem[
            (channel, packet.dst)
        ]
        return (taken,)

    # -- introspection ----------------------------------------------------

    def route_distance(self, src: int, dst: int) -> Optional[int]:
        """Table-path hop count, or ``None`` when unroutable."""
        if src == dst:
            return 0
        return self._dist[dst].get(src)

    def describe(self) -> str:
        topo = self.topology
        pairs = sum(len(t) for t in self._dist)
        return (
            f"{type(self).__name__}(mode={self.mode}, root={self.root}, "
            f"required_vcs={self.required_vcs}, routable_pairs={pairs}/"
            f"{topo.num_nodes * (topo.num_nodes - 1)})"
        )
