"""Simulation orchestration: warm-up, measurement, drain, and results.

The :class:`Simulator` drives a :class:`~repro.noc.network.Network` with a
traffic source through three phases:

1. **warm-up** — the network fills; nothing is measured.
2. **measurement** — packets created in this window contribute to latency
   and hop statistics, and event counters are integrated for power.
3. **drain** — injection of *new* measured packets stops being counted and
   the simulator keeps cycling until every measured packet has been
   delivered (or a safety cap is hit, which signals saturation).

Event-counter snapshots bracket the measurement window so reported power
reflects only steady-state traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.noc.network import Network
from repro.noc.packet import Packet, PacketClass
from repro.noc.profiling import NetworkProfiler, ProfileSnapshot
from repro.noc.sanitizer import (
    DEFAULT_WATCHDOG_WINDOW,
    NetworkSanitizer,
    SanitySnapshot,
)
from repro.noc.stats import EventCounts
from repro.traffic.base import TrafficSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.faults import FaultPlan
    from repro.telemetry.sampler import TelemetryConfig, TelemetrySnapshot


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    cycles: int
    avg_latency: float
    avg_hops: float
    packets_measured: int
    packets_delivered: int
    flits_delivered: int
    #: Flits of measured packets eventually delivered, per node per
    #: measurement cycle (tracks offered load below saturation).
    throughput: float
    #: Flits actually ejected *during* the measurement window, per node
    #: per cycle — the classic "accepted throughput" that plateaus at the
    #: network's capacity.
    accepted_throughput: float
    #: Event-counter delta over the measurement window.
    events: EventCounts
    #: Measurement window length in cycles.
    window_cycles: int
    #: True when the drain cap was hit before all measured packets arrived
    #: (the network is saturated at this load).
    saturated: bool
    avg_latency_by_class: Dict[str, float] = field(default_factory=dict)
    #: Per-sample-window per-router switched-flit counts (power trace
    #: input for transient thermal analysis); empty unless the simulator
    #: was given a ``sample_interval``.
    activity_windows: List[List[int]] = field(default_factory=list)
    #: Cycle span of each activity window.  All but the last equal
    #: ``sample_interval``; the last is shorter when ``measure_cycles``
    #: is not a multiple of it (the trailing partial window is emitted,
    #: not dropped — consumers scale power by the actual span).
    activity_window_cycles: List[int] = field(default_factory=list)
    #: Hot-loop profile (cycles/sec, active-router ratio, phase wall
    #: times); ``None`` unless the run was profiled.
    profile: Optional[ProfileSnapshot] = None
    #: Invariant-audit summary (audit counts plus any deadlock/livelock
    #: watchdog reports); ``None`` unless the run was sanitized.
    sanity: Optional[SanitySnapshot] = None
    #: Telemetry summary (windows sampled, trace/stream destinations);
    #: ``None`` unless the run was telemetered.
    telemetry: Optional["TelemetrySnapshot"] = None
    #: Tail latencies over measured packets (nearest-rank percentiles).
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: Packets (and their flits) steered to an ejection port because no
    #: surviving channel reached their destination.  Zero without fault
    #: injection.
    packets_dropped: int = 0
    flits_dropped: int = 0
    #: Fault-injector summary (mode, links killed, VCs stuck, credits
    #: confiscated, surviving failure set); ``None`` without injection.
    fault_summary: Optional[Dict] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        state = " (saturated)" if self.saturated else ""
        return (
            f"SimulationResult(lat={self.avg_latency:.1f}cyc, "
            f"hops={self.avg_hops:.2f}, thr={self.throughput:.3f} "
            f"flits/node/cyc{state})"
        )


class Simulator:
    """Runs a network + traffic source through warm-up/measure/drain."""

    def __init__(
        self,
        network: Network,
        traffic: TrafficSource,
        warmup_cycles: int = 1000,
        measure_cycles: int = 5000,
        drain_cycles: int = 20000,
        drain_to_quiescence: bool = False,
        sample_interval: int = 0,
        profile: bool = False,
        sanitize: bool = False,
        sanitize_interval: int = 1,
        watchdog_window: int = DEFAULT_WATCHDOG_WINDOW,
        telemetry: Optional["TelemetryConfig"] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        """``drain_to_quiescence`` keeps draining (still bounded by
        ``drain_cycles``) until the traffic source reports finished and
        the network is empty — needed by closed-loop sources (e.g. the
        CMP hierarchy) whose responses trail the measured packets.

        ``sample_interval`` > 0 records per-router switched-flit counts
        every that-many cycles of the measurement window — the power
        trace the transient thermal analysis consumes (Sec. 4.2.3: "The
        NoC simulator generates power trace for Hotspot").

        ``profile`` attaches a :class:`NetworkProfiler` to the network
        and reports its snapshot on ``SimulationResult.profile``.

        ``sanitize`` attaches a
        :class:`~repro.noc.sanitizer.NetworkSanitizer` (auditing every
        ``sanitize_interval`` cycles, deadlock watchdog arming after
        ``watchdog_window`` delivery-free cycles) and reports its
        snapshot on ``SimulationResult.sanity``.  A sanitizer already on
        the network is kept as-is.

        ``telemetry`` attaches a
        :class:`~repro.telemetry.NetworkTelemetry` built from the given
        :class:`~repro.telemetry.TelemetryConfig` (windowed metric
        sampling and optional JSONL/trace export); :meth:`run` finishes
        the stream and reports its snapshot on
        ``SimulationResult.telemetry``.  A sampler already on the
        network is kept as-is.

        ``faults`` attaches a
        :class:`~repro.resilience.faults.FaultInjector` built from the
        given :class:`~repro.resilience.faults.FaultPlan` (scheduled
        link kills and stuck VCs) and reports its summary on
        ``SimulationResult.fault_summary``.  An injector already on the
        network is kept as-is."""
        if warmup_cycles < 0 or measure_cycles <= 0 or drain_cycles < 0:
            raise ValueError("cycle counts must be non-negative (measure > 0)")
        self.network = network
        self.traffic = traffic
        self.warmup_cycles = warmup_cycles
        self.measure_cycles = measure_cycles
        self.drain_cycles = drain_cycles
        self.drain_to_quiescence = drain_to_quiescence
        if sample_interval < 0:
            raise ValueError("sample_interval must be >= 0")
        self.sample_interval = sample_interval
        if profile and network.profiler is None:
            network.profiler = NetworkProfiler()
        if sanitize and network.sanitizer is None:
            network.sanitizer = NetworkSanitizer(
                network,
                interval=sanitize_interval,
                watchdog_window=watchdog_window,
            )
        if telemetry is not None and network.telemetry is None:
            # Lazy import: telemetry-free simulations never load the
            # telemetry package.
            from repro.telemetry.sampler import NetworkTelemetry

            NetworkTelemetry(network, telemetry)  # self-registers
        if faults is not None and network.fault_injector is None:
            # Lazy import: fault-free simulations never load the
            # resilience package.
            from repro.resilience.faults import FaultInjector

            FaultInjector(faults).attach(network)
        self._future: Dict[int, List[Packet]] = {}
        # A network carries at most one simulator delivery hook: a
        # previous Simulator over the same network is deregistered so
        # closed-loop responses are not double-scheduled.
        if (
            network.simulator_hook is not None
            and network.simulator_hook in network.delivery_callbacks
        ):
            network.delivery_callbacks.remove(network.simulator_hook)
        network.delivery_callbacks.append(self._deliver_hook)
        network.simulator_hook = self._deliver_hook

    def detach(self) -> None:
        """Deregister this simulator's delivery hook from the network."""
        network = self.network
        if self._deliver_hook in network.delivery_callbacks:
            network.delivery_callbacks.remove(self._deliver_hook)
        if network.simulator_hook == self._deliver_hook:
            network.simulator_hook = None

    def _schedule(self, packets, cycle: int) -> None:
        for packet in packets:
            due = max(packet.created_cycle, cycle)
            if due == cycle:
                self.network.enqueue_packet(packet)
            else:
                self._future.setdefault(due, []).append(packet)

    def _quiescent(self) -> bool:
        return (
            self.traffic.finished(self.network.cycle)
            and not self._future
            and self.network.idle()
        )

    def _deliver_hook(self, packet: Packet, cycle: int) -> None:
        responses = self.traffic.on_delivered(packet, cycle)
        if responses:
            self._schedule(responses, cycle)

    def _tick(self, generate: bool) -> None:
        cycle = self.network.cycle
        for packet in self._future.pop(cycle, ()):  # responses coming due
            self.network.enqueue_packet(packet)
        if generate and not self.traffic.finished(cycle):
            self._schedule(self.traffic.packets_for_cycle(cycle), cycle)
        self.network.step()

    def run(self) -> SimulationResult:
        """Execute the full warm-up / measurement / drain schedule."""
        net = self.network
        stats = net.stats
        window_start = net.cycle + self.warmup_cycles
        window_end = window_start + self.measure_cycles
        stats.set_window(window_start, window_end)

        for _ in range(self.warmup_cycles):
            self._tick(generate=True)

        start_events = net.events.copy()
        flits_at_window_start = stats.flits_delivered
        activity_windows: List[List[int]] = []
        activity_window_cycles: List[int] = []
        if self.sample_interval:
            last_sample = [r.flits_switched for r in net.routers]
            cycles_in_window = 0
            for _ in range(self.measure_cycles):
                self._tick(generate=True)
                cycles_in_window += 1
                if cycles_in_window == self.sample_interval:
                    counts = [r.flits_switched for r in net.routers]
                    activity_windows.append(
                        [c - p for c, p in zip(counts, last_sample)]
                    )
                    activity_window_cycles.append(cycles_in_window)
                    last_sample = counts
                    cycles_in_window = 0
            if cycles_in_window:
                # Trailing partial window (measure_cycles not a multiple
                # of sample_interval): emit it with its true span rather
                # than silently truncating the power trace.
                counts = [r.flits_switched for r in net.routers]
                activity_windows.append(
                    [c - p for c, p in zip(counts, last_sample)]
                )
                activity_window_cycles.append(cycles_in_window)
        else:
            for _ in range(self.measure_cycles):
                self._tick(generate=True)
        end_events = net.events.copy()
        flits_in_window = stats.flits_delivered - flits_at_window_start

        # Drain: keep generating (background load stays realistic) but no
        # new packets are measured (the window is closed); stop as soon as
        # all measured packets have been delivered.
        drained = 0
        saturated = False
        while stats.measured_outstanding > 0 or (
            self.drain_to_quiescence and not self._quiescent()
        ):
            if drained >= self.drain_cycles:
                saturated = True
                break
            self._tick(generate=True)
            drained += 1

        if net.telemetry is not None:
            # Flush the trailing partial window and write any export
            # files before snapshotting (idempotent).
            net.telemetry.finish()

        events = end_events.delta(start_events)
        num_nodes = net.topology.num_nodes
        window = self.measure_cycles
        # Throughput: flits of measured packets that were eventually
        # delivered, per node per measurement cycle.
        throughput = stats.measured_flits / (num_nodes * window)
        accepted = flits_in_window / (num_nodes * window)

        return SimulationResult(
            cycles=net.cycle,
            avg_latency=stats.avg_latency,
            avg_hops=stats.avg_hops,
            packets_measured=len(stats.latencies),
            packets_delivered=stats.packets_delivered,
            flits_delivered=stats.flits_delivered,
            throughput=throughput,
            accepted_throughput=accepted,
            events=events,
            window_cycles=window,
            saturated=saturated,
            avg_latency_by_class={
                klass.value: stats.avg_latency_for(klass) for klass in PacketClass
            },
            activity_windows=activity_windows,
            activity_window_cycles=activity_window_cycles,
            profile=(
                net.profiler.snapshot() if net.profiler is not None else None
            ),
            sanity=(
                net.sanitizer.snapshot() if net.sanitizer is not None else None
            ),
            telemetry=(
                net.telemetry.snapshot()
                if net.telemetry is not None
                else None
            ),
            latency_p50=stats.latency_percentile(50),
            latency_p95=stats.latency_percentile(95),
            latency_p99=stats.latency_percentile(99),
            packets_dropped=stats.packets_dropped,
            flits_dropped=stats.flits_dropped,
            fault_summary=(
                net.fault_injector.summary()
                if net.fault_injector is not None
                else None
            ),
        )
