"""Runtime invariant auditing for the NoC model.

The simulator's latency/power/thermal figures are only as trustworthy as
its internal bookkeeping: one mis-counted credit or leaked flit silently
skews every downstream number.  :class:`NetworkSanitizer` is an opt-in
audit layer (``Network(sanitize=True)``, ``Simulator(sanitize=True)`` or
the ``--sanitize`` CLI flag) that re-derives, every cycle or every N
cycles, the invariants the router/network code is supposed to maintain —
from first principles, by walking the live data structures rather than
trusting any counter the audited code updates itself:

* **flit conservation** — every flit injected and not yet ejected is
  present exactly once (in a VC buffer, on a link, or awaiting
  ejection); per packet the present flit sequence numbers form the
  contiguous tail of what was injected, and globally the number of
  undelivered packets found matches the injected/delivered ledger.
* **credit accounting** — for every (output port, VC) pair the upstream
  credit count equals ``buffer_depth`` minus the true downstream
  occupancy minus flits and credits still in flight, and credits stay
  within ``[0, buffer_depth]``.
* **VC state-machine legality** — idle VCs are empty, VCs in RC/VA hold
  a head flit, active VCs own exactly the output VC the owner table says
  they do (and vice versa: tails release ownership exactly once), flits
  within one buffer form legal head..tail wormhole runs, and the
  router's pipeline-stage population counters and active sets agree with
  the actual VC states (a buffered flit outside the active set would be
  stranded forever).
* **layer-mask integrity** — every in-network flit's active-layer mask
  is well-formed (``1 <= active_groups <= layer_groups``, mask is the
  contiguous bottom-up ``(1 << active_groups) - 1`` with the always-on
  top group set) and is conserved hop-to-hop: a flit observed on an
  earlier audit must carry the identical mask on every later audit until
  ejection.  Layer-resolved power/thermal maps are only as good as this
  invariant.
* **allocator state** — the stateful round-robin arbiter pointers inside
  the VA/SA allocators stay within range (a corrupted rotation pointer
  silently biases fairness long before it crashes).
* **deadlock/livelock watchdog** — when the network holds flits but
  delivers nothing for a configurable window, a :class:`WatchdogReport`
  snapshots the stalled VCs, their head flits, and what each one waits
  for (credits, a free output VC, routing) so wedged simulations are
  diagnosable instead of silently spinning until the drain cap.

Violations raise :class:`SanityError` carrying the cycle, node, port,
VC, and packet id involved.  The watchdog does not raise (a saturated
network is slow, not broken) — its reports ride along on
:attr:`~repro.noc.simulator.SimulationResult.sanity`.

Disabled (the default), the sanitizer costs a single ``is None`` check
per cycle — the same guard discipline as the profiler.  Enabled, audit
wall time is reported as its own profiler phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.noc.packet import Flit
from repro.noc.router import VC_STATE_NAMES, _ACTIVE, _IDLE, _RC, _VA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

#: Default watchdog window: cycles without a single flit delivery (while
#: traffic is in the network) before a stall report is taken.
DEFAULT_WATCHDOG_WINDOW = 2000


class SanityError(RuntimeError):
    """An invariant violation, with enough context to pinpoint it.

    Attributes:
        check: invariant family (``"flit-conservation"``,
            ``"credit-accounting"``, ``"vc-state"``, ``"allocator-state"``).
        cycle: simulation cycle the audit ran at.
        node: router node id, when the violation is localised.
        port: input/output port index on that router (``port_name`` gives
            the symbolic name).
        vc: virtual channel index.
        pid: packet id of the flit involved, when one is.
    """

    def __init__(
        self,
        check: str,
        message: str,
        cycle: int,
        node: Optional[int] = None,
        port: Optional[int] = None,
        port_name: Optional[str] = None,
        vc: Optional[int] = None,
        pid: Optional[int] = None,
    ) -> None:
        where = []
        if node is not None:
            where.append(f"node {node}")
        if port_name is not None:
            where.append(f"port {port_name!r}")
        elif port is not None:
            where.append(f"port {port}")
        if vc is not None:
            where.append(f"vc {vc}")
        if pid is not None:
            where.append(f"pid {pid}")
        loc = (" [" + ", ".join(where) + "]") if where else ""
        super().__init__(f"[{check}] cycle {cycle}{loc}: {message}")
        self.check = check
        self.cycle = cycle
        self.node = node
        self.port = port
        self.port_name = port_name
        self.vc = vc
        self.pid = pid


@dataclass(frozen=True)
class StalledVC:
    """One input VC holding flits that are not moving."""

    node: int
    port: int
    port_name: str
    vc: int
    state: str
    buffered: int
    head_pid: int
    head_seq: int
    head_kind: str
    #: Output (port name, VC) the head is allocated to, if any.
    out_port: Optional[str]
    out_vc: Optional[int]
    #: Downstream credits available toward that output VC (None for the
    #: local/ejection port, which always accepts).
    credits: Optional[int]
    #: Human-readable account of what the VC is waiting for.
    waiting_on: str


@dataclass(frozen=True)
class WatchdogReport:
    """Snapshot of a network that has stopped delivering flits."""

    #: Cycle the report was taken at.
    cycle: int
    #: Cycles since the last flit delivery (or simulation start).
    stalled_cycles: int
    #: Flits present in buffers / on links / awaiting ejection.
    flits_in_network: int
    #: Flit-hops performed during the stalled window: zero means a true
    #: deadlock (nothing moves); positive means livelock or starvation
    #: (flits circulate but nothing is delivered).
    flit_hops_in_window: int
    #: Every VC holding flits at snapshot time, with its head flit.
    stalled_vcs: Tuple[StalledVC, ...]

    def format(self) -> str:
        """Human-readable block for CLI / log output."""
        kind = "deadlock" if self.flit_hops_in_window == 0 else "livelock"
        lines = [
            f"watchdog: no flit delivered for {self.stalled_cycles} cycles "
            f"(cycle {self.cycle}, {self.flits_in_network} flits in "
            f"network, {self.flit_hops_in_window} hops in window -> "
            f"suspected {kind})",
        ]
        for s in self.stalled_vcs:
            dest = (
                f"-> out {s.out_port!r} vc {s.out_vc} "
                f"(credits {s.credits})"
                if s.out_port is not None
                else ""
            )
            lines.append(
                f"  node {s.node} in-port {s.port_name!r} vc {s.vc} "
                f"[{s.state}] {s.buffered} flits, head pid {s.head_pid} "
                f"seq {s.head_seq} ({s.head_kind}) {dest}: {s.waiting_on}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class SanitySnapshot:
    """Summary of a sanitized stretch of simulation."""

    #: Completed audit passes.
    audits: int
    #: Cycle of the most recent audit (-1 when none ran).
    last_audit_cycle: int
    #: Cumulative flits walked across all audits.
    flits_checked: int
    #: Cumulative (port, VC) credit counters reconciled.
    credits_checked: int
    #: Cumulative input-VC state machines checked.
    vcs_checked: int
    #: Cumulative flit layer masks validated (well-formedness and
    #: hop-to-hop conservation).
    masks_checked: int = 0
    #: Stall snapshots taken by the deadlock/livelock watchdog.
    watchdog_reports: Tuple[WatchdogReport, ...] = field(default_factory=tuple)

    def format(self) -> str:
        """Human-readable block for CLI output."""
        lines = [
            f"audits run        : {self.audits}",
            f"flits checked     : {self.flits_checked}",
            f"credits checked   : {self.credits_checked}",
            f"VC states checked : {self.vcs_checked}",
            f"layer masks checked: {self.masks_checked}",
            f"watchdog reports  : {len(self.watchdog_reports)}",
        ]
        for report in self.watchdog_reports:
            lines.append(report.format())
        return "\n".join(lines)


class _PacketPresence:
    """Where one packet's in-network flits were found during a walk."""

    __slots__ = ("packet", "seqs", "locations")

    def __init__(self, packet) -> None:
        self.packet = packet
        self.seqs: List[int] = []
        #: Parallel to ``seqs``: (node, port, vc) or None for wheel slots
        #: that carry no router-local position (ejection queue).
        self.locations: List[Optional[Tuple[int, int, int]]] = []


class NetworkSanitizer:
    """Re-derives the network's invariants from its live structures.

    Attach via ``Network(sanitize=True)`` (or assign
    ``network.sanitizer``); :meth:`maybe_audit` is called by
    ``Network.step`` at the end of every cycle and runs a full audit
    every ``interval`` cycles.  The sanitizer never mutates network
    state, so sanitized runs are bit-identical to bare runs.
    """

    def __init__(
        self,
        network: "Network",
        interval: int = 1,
        watchdog_window: int = DEFAULT_WATCHDOG_WINDOW,
    ) -> None:
        if interval < 1:
            raise ValueError(f"sanitize interval must be >= 1, got {interval}")
        if watchdog_window < 1:
            raise ValueError(
                f"watchdog window must be >= 1, got {watchdog_window}"
            )
        self.network = network
        self.interval = interval
        self.watchdog_window = watchdog_window
        self.audits = 0
        self.last_audit_cycle = -1
        self.flits_checked = 0
        self.credits_checked = 0
        self.vcs_checked = 0
        self.masks_checked = 0
        self.watchdog_reports: List[WatchdogReport] = []
        self._next_audit = 0
        #: Layer mask by (pid, seq) for flits seen in-network on the
        #: previous audit — the cross-audit baseline for the hop-to-hop
        #: mask-conservation check.  Pruned to the currently present
        #: flits each audit so ejected packets don't accumulate.
        self._mask_seen: Dict[Tuple[int, int], int] = {}
        self._mask_next: Dict[Tuple[int, int], int] = {}
        self._audit_cycle = -1
        self._last_delivered = network.stats.flits_delivered
        self._progress_cycle = 0
        self._progress_hops = network.events.flit_hops
        self._stall_reported = False

    # -- entry points ------------------------------------------------------

    def maybe_audit(self, cycle: int) -> None:
        """Audit when *cycle* hits the configured interval."""
        if cycle >= self._next_audit:
            self._next_audit = cycle + self.interval
            self.audit(cycle)

    def snapshot(self) -> SanitySnapshot:
        return SanitySnapshot(
            audits=self.audits,
            last_audit_cycle=self.last_audit_cycle,
            flits_checked=self.flits_checked,
            credits_checked=self.credits_checked,
            vcs_checked=self.vcs_checked,
            masks_checked=self.masks_checked,
            watchdog_reports=tuple(self.watchdog_reports),
        )

    # -- the audit ---------------------------------------------------------

    def audit(self, cycle: int) -> None:
        """Run every check against the network's end-of-cycle state.

        Raises :class:`SanityError` on the first violation found.  Check
        order is deliberate: the per-buffer walk runs first so a
        corrupted buffer is attributed to its exact (node, port, VC)
        before the same corruption surfaces as a fuzzier global credit
        or conservation mismatch.
        """
        present: Dict[int, _PacketPresence] = {}
        self._audit_cycle = cycle
        self._mask_next = {}

        arrivals_by_vc = self._walk_wheels(cycle, present)
        self._walk_routers(cycle, present)
        self._check_credits(cycle, arrivals_by_vc)
        self._check_conservation(cycle, present)
        self._check_allocators(cycle)
        self._watchdog(cycle, present)

        # The flits walked this audit become the next audit's baseline
        # for mask conservation; everything else has left the network.
        self._mask_seen = self._mask_next
        self.audits += 1
        self.last_audit_cycle = cycle

    # -- structure walks ---------------------------------------------------

    def _note_flit(
        self,
        present: Dict[int, _PacketPresence],
        flit: Flit,
        location: Optional[Tuple[int, int, int]],
    ) -> None:
        rec = present.get(flit.packet.pid)
        if rec is None:
            rec = present[flit.packet.pid] = _PacketPresence(flit.packet)
        rec.seqs.append(flit.seq)
        rec.locations.append(location)
        self.flits_checked += 1
        self._check_layer_mask(flit, location)

    def _check_layer_mask(
        self, flit: Flit, location: Optional[Tuple[int, int, int]]
    ) -> None:
        """Mask well-formedness + hop-to-hop conservation for one flit."""
        cycle = self._audit_cycle
        node, port, vc = location if location else (None, None, None)
        layer_groups = self.network.layer_groups
        if not 1 <= flit.active_groups <= layer_groups:
            raise SanityError(
                "layer-mask",
                f"flit seq {flit.seq} drives {flit.active_groups} layers, "
                f"outside [1, {layer_groups}]",
                cycle, node=node, port=port, vc=vc, pid=flit.packet.pid,
            )
        expected = (1 << flit.active_groups) - 1
        if flit.layer_mask != expected:
            raise SanityError(
                "layer-mask",
                f"flit seq {flit.seq} carries mask "
                f"{flit.layer_mask:#06b} but {flit.active_groups} active "
                f"groups imply the contiguous {expected:#06b} "
                "(top group always on, valid words fill bottom-up)",
                cycle, node=node, port=port, vc=vc, pid=flit.packet.pid,
            )
        key = (flit.packet.pid, flit.seq)
        seen = self._mask_seen.get(key)
        if seen is not None and seen != flit.layer_mask:
            raise SanityError(
                "layer-mask",
                f"flit seq {flit.seq} changed layer mask in flight: "
                f"{seen:#06b} on the previous audit, now "
                f"{flit.layer_mask:#06b} (masks are fixed at injection "
                "and conserved hop-to-hop)",
                cycle, node=node, port=port, vc=vc, pid=flit.packet.pid,
            )
        self._mask_next[key] = flit.layer_mask
        self.masks_checked += 1

    def _walk_wheels(
        self, cycle: int, present: Dict[int, _PacketPresence]
    ) -> Dict[Tuple[int, int, int], int]:
        """Record in-flight flits; return arrival counts per (node, port, vc)."""
        net = self.network
        arrivals_by_vc: Dict[Tuple[int, int, int], int] = {}
        for node, port, vc, flit in net._arrivals.items():
            key = (node, port, vc)
            arrivals_by_vc[key] = arrivals_by_vc.get(key, 0) + 1
            self._note_flit(present, flit, key)
        for flit in net._ejections.items():
            if flit.packet.delivered_cycle is not None:
                raise SanityError(
                    "flit-conservation",
                    f"flit seq {flit.seq} awaiting ejection after its "
                    f"packet was already delivered at cycle "
                    f"{flit.packet.delivered_cycle}",
                    cycle,
                    node=flit.packet.dst,
                    pid=flit.packet.pid,
                )
            self._note_flit(present, flit, None)
        return arrivals_by_vc

    def _walk_routers(
        self, cycle: int, present: Dict[int, _PacketPresence]
    ) -> None:
        net = self.network
        for router in net.routers:
            node = router.node
            num_vcs = router.num_vcs
            # Expected owners derived from the input side, to reconcile
            # against the output-side ownership table.
            owned: Dict[Tuple[int, int], Tuple[int, int]] = {}
            state_counts = {_RC: 0, _VA: 0, _ACTIVE: 0}

            for unit in router.in_vcs:
                self.vcs_checked += 1
                port_name = router.port_names[unit.port]

                def err(message: str, pid: Optional[int] = None) -> SanityError:
                    return SanityError(
                        "vc-state", message, cycle,
                        node=node, port=unit.port, port_name=port_name,
                        vc=unit.vc, pid=pid,
                    )

                flits = unit.buffer.flits()
                if len(flits) > router.buffer_depth:
                    raise err(
                        f"buffer holds {len(flits)} flits "
                        f"(depth {router.buffer_depth})"
                    )
                if unit.state in state_counts:
                    state_counts[unit.state] += 1
                elif unit.state != _IDLE:
                    raise err(f"unknown VC state {unit.state!r}")
                if unit.state == _IDLE:
                    if flits:
                        raise err(
                            f"idle VC holds {len(flits)} buffered flits",
                            pid=flits[0].packet.pid,
                        )
                    if unit.out_port != -1 or unit.out_vc != -1:
                        raise err(
                            "idle VC still points at output "
                            f"({unit.out_port}, {unit.out_vc}); tail did "
                            "not release it"
                        )
                else:
                    if unit.state in (_RC, _VA):
                        if not flits:
                            raise err(
                                f"VC in {VC_STATE_NAMES[unit.state]} with "
                                "an empty buffer"
                            )
                        if not flits[0].is_head:
                            raise err(
                                f"VC in {VC_STATE_NAMES[unit.state]} with "
                                f"a non-head front flit (seq "
                                f"{flits[0].seq})",
                                pid=flits[0].packet.pid,
                            )
                    if unit.state == _ACTIVE:
                        if unit.out_port < 0 or unit.out_vc < 0:
                            raise err(
                                "active VC without an allocated output "
                                f"({unit.out_port}, {unit.out_vc})"
                            )
                        owned[(unit.out_port, unit.out_vc)] = (
                            unit.port, unit.vc,
                        )
                    elif unit.state == _VA and unit.out_port < 0:
                        raise err("VC in VA without a computed route")
                    # A buffered flit outside the router's active set
                    # would never be stepped again: stranded forever.
                    flat = unit.port * num_vcs + unit.vc
                    if flits and flat not in router._active:
                        raise err(
                            "VC holds flits but is not in the router's "
                            "active set (stranded)",
                            pid=flits[0].packet.pid,
                        )

                self._check_buffer_runs(cycle, router, unit, flits)
                for flit in flits:
                    self._note_flit(present, flit, (node, unit.port, unit.vc))

            if router._active and router._network is not None:
                if (
                    net.active_scheduling
                    and node not in net._active_routers
                ):
                    raise SanityError(
                        "vc-state",
                        "router has active VCs but is missing from the "
                        "network's active-router set (scheduler would "
                        "never step it)",
                        cycle, node=node,
                    )

            if (
                router._n_rc != state_counts[_RC]
                or router._n_va != state_counts[_VA]
                or router._n_active != state_counts[_ACTIVE]
            ):
                raise SanityError(
                    "vc-state",
                    "pipeline-stage population counters drifted: counted "
                    f"rc={state_counts[_RC]} va={state_counts[_VA]} "
                    f"active={state_counts[_ACTIVE]}, recorded "
                    f"rc={router._n_rc} va={router._n_va} "
                    f"active={router._n_active}",
                    cycle, node=node,
                )

            # Output-side ownership must mirror the input-side states —
            # in both directions, which is what makes a double tail
            # release (or a forgotten one) visible.
            for out_port in range(router.num_ports):
                for out_vc in range(num_vcs):
                    owner = router.out_owner[out_port][out_vc]
                    expect = owned.pop((out_port, out_vc), None)
                    if owner != expect:
                        raise SanityError(
                            "vc-state",
                            f"output VC ownership mismatch: owner table "
                            f"says {owner}, input-VC states say {expect}",
                            cycle, node=node, port=out_port,
                            port_name=router.port_names[out_port],
                            vc=out_vc,
                        )

    def _check_buffer_runs(
        self, cycle: int, router, unit, flits: Tuple[Flit, ...]
    ) -> None:
        """Flits in one buffer must form legal head..tail wormhole runs."""
        port_name = router.port_names[unit.port]
        prev: Optional[Flit] = None
        for flit in flits:
            if prev is None or prev.is_tail:
                # The front flit may be a body/tail whose head already
                # moved downstream — but only on a VC that still holds
                # the allocation (state ACTIVE).  Any later run, and any
                # front flit on a non-active VC, must begin with a head.
                front_of_wormhole = (
                    prev is None and unit.state == _ACTIVE and flit.seq > 0
                )
                if not flit.is_head and not front_of_wormhole:
                    raise SanityError(
                        "vc-state",
                        f"packet run starts with a non-head flit (seq "
                        f"{flit.seq})",
                        cycle, node=router.node, port=unit.port,
                        port_name=port_name, vc=unit.vc,
                        pid=flit.packet.pid,
                    )
            else:
                if flit.packet.pid != prev.packet.pid:
                    raise SanityError(
                        "vc-state",
                        f"packet {flit.packet.pid} interleaved into "
                        f"packet {prev.packet.pid}'s wormhole",
                        cycle, node=router.node, port=unit.port,
                        port_name=port_name, vc=unit.vc,
                        pid=flit.packet.pid,
                    )
                if flit.seq != prev.seq + 1:
                    raise SanityError(
                        "flit-conservation",
                        f"flit sequence gap inside buffer: seq "
                        f"{prev.seq} followed by seq {flit.seq}",
                        cycle, node=router.node, port=unit.port,
                        port_name=port_name, vc=unit.vc,
                        pid=flit.packet.pid,
                    )
            prev = flit

    # -- invariant checks --------------------------------------------------

    def _check_credits(
        self, cycle: int, arrivals_by_vc: Dict[Tuple[int, int, int], int]
    ) -> None:
        """Upstream credits == depth - occupancy - flits/credits in flight."""
        net = self.network
        credits_in_flight: Dict[Tuple[int, int, int], int] = {}
        for node, port, vc in net._credits.items():
            key = (node, port, vc)
            credits_in_flight[key] = credits_in_flight.get(key, 0) + 1

        # Hard-killed links confiscate the upstream's credits (held and
        # returning); the injector's ledger keeps the identity exact.
        fi = net.fault_injector
        confiscated = fi.confiscated if fi is not None else None

        for router in net.routers:
            depth = router.buffer_depth
            for port, credits in enumerate(router.credits):
                if credits is None:
                    continue
                target = router._arrival_targets[port]
                if target is None:
                    raise SanityError(
                        "credit-accounting",
                        "credit counters exist for a port with no link",
                        cycle, node=router.node, port=port,
                        port_name=router.port_names[port],
                    )
                dst, dst_port = target
                downstream = net.routers[dst]
                for vc in range(router.num_vcs):
                    self.credits_checked += 1
                    held = credits[vc]
                    occupancy = len(downstream._vc(dst_port, vc).buffer)
                    on_wire = arrivals_by_vc.get((dst, dst_port, vc), 0)
                    returning = credits_in_flight.get(
                        (router.node, port, vc), 0
                    )
                    expected = depth - occupancy - on_wire - returning
                    if confiscated:
                        expected -= confiscated.get(
                            (router.node, port, vc), 0
                        )
                    if held != expected or not 0 <= held <= depth:
                        raise SanityError(
                            "credit-accounting",
                            f"credit count {held} != expected {expected} "
                            f"(depth {depth} - {occupancy} buffered at "
                            f"node {dst} - {on_wire} on the wire - "
                            f"{returning} credits returning)",
                            cycle, node=router.node, port=port,
                            port_name=router.port_names[port], vc=vc,
                        )

    def _check_conservation(
        self, cycle: int, present: Dict[int, _PacketPresence]
    ) -> None:
        """Present flits must be exactly the injected-but-not-ejected set."""
        net = self.network

        # Packets still (partially) in a source queue: pid -> flits
        # injected so far; fully queued packets have injected 0.
        queued: Dict[int, int] = {}
        for node, src in enumerate(net._sources):
            for packet in src.packets:
                queued[packet.pid] = 0
            if src.flits:
                queued[src.flits[0].packet.pid] = src.flit_idx

        total_present = 0
        for pid, rec in present.items():
            total_present += len(rec.seqs)
            packet = rec.packet
            where = next((loc for loc in rec.locations if loc), None)
            node, port, vc = where if where else (None, None, None)
            if packet.delivered_cycle is not None:
                raise SanityError(
                    "flit-conservation",
                    f"{len(rec.seqs)} flits of a packet delivered at "
                    f"cycle {packet.delivered_cycle} still present "
                    "(leaked)",
                    cycle, node=node, port=port, vc=vc, pid=pid,
                )
            injected = queued.get(pid, packet.size_flits)
            seqs = sorted(rec.seqs)
            if len(set(seqs)) != len(seqs):
                raise SanityError(
                    "flit-conservation",
                    f"duplicated flit sequence numbers in flight: {seqs}",
                    cycle, node=node, port=port, vc=vc, pid=pid,
                )
            expected = list(range(injected - len(seqs), injected))
            if seqs != expected:
                raise SanityError(
                    "flit-conservation",
                    f"present flit seqs {seqs} are not the contiguous "
                    f"tail of the {injected} injected "
                    f"(expected {expected}): a flit was dropped or "
                    "reordered",
                    cycle, node=node, port=port, vc=vc, pid=pid,
                )

        # Global reconciliation: every injected-but-undelivered packet
        # must be found somewhere (a packet whose flits all vanished
        # leaves no local trace, only this ledger mismatch).
        undelivered_found = len(set(present) | set(queued))
        ledger = (
            net.stats.packets_injected
            - net.stats.packets_delivered
            - net.stats.packets_dropped
        )
        if undelivered_found != ledger:
            raise SanityError(
                "flit-conservation",
                f"found {undelivered_found} undelivered packets in the "
                f"network but the ledger says {ledger} "
                f"({net.stats.packets_injected} injected - "
                f"{net.stats.packets_delivered} delivered - "
                f"{net.stats.packets_dropped} dropped)",
                cycle,
            )
        in_flight = net.in_flight()
        if total_present != in_flight:
            raise SanityError(
                "flit-conservation",
                f"walked {total_present} flits but Network.in_flight() "
                f"reports {in_flight}",
                cycle,
            )

    def _check_allocators(self, cycle: int) -> None:
        for router in self.network.routers:
            problem = router._va.check_sane() or router._sa.check_sane()
            if problem:
                raise SanityError(
                    "allocator-state", problem, cycle, node=router.node
                )

    # -- watchdog ----------------------------------------------------------

    def _watchdog(
        self, cycle: int, present: Dict[int, _PacketPresence]
    ) -> None:
        net = self.network
        # Dropped flits leave the network through the ejection path just
        # like delivered ones — either counts as forward progress.
        delivered = net.stats.flits_delivered + net.stats.flits_dropped
        busy = bool(present) or bool(net._busy_sources)
        if delivered != self._last_delivered or not busy:
            self._last_delivered = delivered
            self._progress_cycle = cycle
            self._progress_hops = net.events.flit_hops
            self._stall_reported = False
            return
        stalled = cycle - self._progress_cycle
        if stalled < self.watchdog_window or self._stall_reported:
            return
        self._stall_reported = True
        self.watchdog_reports.append(
            self._stall_report(cycle, stalled, present)
        )

    def _stall_report(
        self, cycle: int, stalled: int, present: Dict[int, _PacketPresence]
    ) -> WatchdogReport:
        net = self.network
        stalled_vcs: List[StalledVC] = []
        for router in net.routers:
            for unit in router.in_vcs:
                head = unit.buffer.front()
                if head is None:
                    continue
                out_port_name: Optional[str] = None
                out_vc: Optional[int] = None
                credits: Optional[int] = None
                if unit.out_port >= 0:
                    out_port_name = router.port_names[unit.out_port]
                    per_vc = router.credits[unit.out_port]
                    if unit.out_vc >= 0:
                        out_vc = unit.out_vc
                        if per_vc is not None:
                            credits = per_vc[unit.out_vc]
                if unit.state == _RC:
                    waiting = "waiting for routing computation"
                elif unit.state == _VA:
                    waiting = (
                        f"waiting for a free VC on out port "
                        f"{out_port_name!r}"
                    )
                elif unit.state == _ACTIVE and credits == 0:
                    waiting = (
                        f"waiting for credits on out port "
                        f"{out_port_name!r} vc {out_vc}"
                    )
                elif unit.state == _ACTIVE:
                    waiting = "has credits but never wins/attempts SA"
                else:
                    waiting = "buffered flits on an idle VC"
                stalled_vcs.append(
                    StalledVC(
                        node=router.node,
                        port=unit.port,
                        port_name=router.port_names[unit.port],
                        vc=unit.vc,
                        state=VC_STATE_NAMES.get(unit.state, "?"),
                        buffered=len(unit.buffer),
                        head_pid=head.packet.pid,
                        head_seq=head.seq,
                        head_kind=head.kind.value,
                        out_port=out_port_name,
                        out_vc=out_vc,
                        credits=credits,
                        waiting_on=waiting,
                    )
                )
        flits_in_network = sum(len(rec.seqs) for rec in present.values())
        return WatchdogReport(
            cycle=cycle,
            stalled_cycles=stalled,
            flits_in_network=flits_in_network,
            flit_hops_in_window=net.events.flit_hops - self._progress_hops,
            stalled_vcs=tuple(stalled_vcs),
        )
