"""Partially adaptive routing (west-first) with congestion-aware output
selection.

The paper's evaluation is deterministic X-Y, but it cites dynamic traffic
distribution [3, 22] as the established way to cut switch contention.
This module implements the classic *west-first* turn-model algorithm for
2D meshes: all westward hops are taken first (deterministically), after
which any minimal productive direction may be chosen adaptively.  The
west-first turn restriction keeps the channel dependency graph acyclic,
so wormhole routing stays deadlock-free.

Adaptive functions expose ``candidate_ports``; the router picks the
candidate with the most downstream credits at RC time (a standard
congestion proxy).  ``output_port`` returns the first candidate so the
function still satisfies the deterministic protocol when used without an
adaptive-aware router.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.noc.routing import RoutingBase
from repro.topology.base import LOCAL_PORT
from repro.topology.mesh2d import EAST, Mesh2D, NORTH, SOUTH, WEST


class WestFirstAdaptiveRouting(RoutingBase):
    """West-first minimal adaptive routing on a 2D mesh.

    Optionally fault-aware: channels in :attr:`failed` (grown at runtime
    via :meth:`fail_channel`, e.g. by a
    :class:`~repro.resilience.faults.FaultInjector`) are filtered out of
    the candidate set, so the adaptive selection reroutes around damage
    wherever a minimal alternative survives.  With no failures the
    filter costs one falsy-set test per RC and returns identical
    candidates.
    """

    #: Marks this function as adaptive for the router.
    is_adaptive = True

    def __init__(
        self,
        topology: Mesh2D,
        failed: Iterable[Tuple[int, int]] = (),
    ) -> None:
        if not isinstance(topology, Mesh2D):
            raise TypeError("west-first routing requires a 2D mesh")
        self.topology = topology
        self.failed: Set[Tuple[int, int]] = set(failed)
        for src, dst in self.failed:
            topology.link_between(src, dst)  # must exist

    def fail_channel(self, channel: Tuple[int, int]) -> None:
        """Add one directed channel to the failure set at runtime."""
        src, dst = channel
        self.topology.link_between(src, dst)
        self.failed.add((src, dst))

    def _alive(self, node: int, port: str) -> bool:
        link = self.topology.out_ports[node].get(port)
        return link is not None and (link.src, link.dst) not in self.failed

    def candidate_ports(self, node: int, dst: int) -> List[str]:
        """Minimal productive output ports, in preference order.

        Westward traffic is restricted to W (the turn model's rule);
        otherwise every minimal direction is a candidate.  With a
        non-empty failure set, dead channels are filtered out — possibly
        leaving no candidate, which the router surfaces as an
        :class:`~repro.noc.routing.UnroutableError` packet drop.
        """
        x, y = self.topology.coordinates(node)
        dx, dy = self.topology.coordinates(dst)
        if x == dx and y == dy:
            return [LOCAL_PORT]
        if dx < x:
            # All west hops first: no adaptive turns allowed.
            candidates = [WEST]
        else:
            candidates = []
            if dx > x:
                candidates.append(EAST)
            if dy > y:
                candidates.append(SOUTH)
            elif dy < y:
                candidates.append(NORTH)
        if self.failed:
            candidates = [p for p in candidates if self._alive(node, p)]
        return candidates

    def output_port(self, node: int, dst: int) -> str:
        return self.candidate_ports(node, dst)[0]
