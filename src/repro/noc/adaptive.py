"""Partially adaptive routing (west-first) with congestion-aware output
selection.

The paper's evaluation is deterministic X-Y, but it cites dynamic traffic
distribution [3, 22] as the established way to cut switch contention.
This module implements the classic *west-first* turn-model algorithm for
2D meshes: all westward hops are taken first (deterministically), after
which any minimal productive direction may be chosen adaptively.  The
west-first turn restriction keeps the channel dependency graph acyclic,
so wormhole routing stays deadlock-free.

Adaptive functions expose ``candidate_ports``; the router picks the
candidate with the most downstream credits at RC time (a standard
congestion proxy).  ``output_port`` returns the first candidate so the
function still satisfies the deterministic protocol when used without an
adaptive-aware router.
"""

from __future__ import annotations

from typing import List

from repro.topology.base import LOCAL_PORT
from repro.topology.mesh2d import EAST, Mesh2D, NORTH, SOUTH, WEST


class WestFirstAdaptiveRouting:
    """West-first minimal adaptive routing on a 2D mesh."""

    #: Marks this function as adaptive for the router.
    is_adaptive = True

    def __init__(self, topology: Mesh2D) -> None:
        if not isinstance(topology, Mesh2D):
            raise TypeError("west-first routing requires a 2D mesh")
        self.topology = topology

    def candidate_ports(self, node: int, dst: int) -> List[str]:
        """Minimal productive output ports, in preference order.

        Westward traffic is restricted to W (the turn model's rule);
        otherwise every minimal direction is a candidate.
        """
        x, y = self.topology.coordinates(node)
        dx, dy = self.topology.coordinates(dst)
        if x == dx and y == dy:
            return [LOCAL_PORT]
        if dx < x:
            # All west hops first: no adaptive turns allowed.
            return [WEST]
        candidates: List[str] = []
        if dx > x:
            candidates.append(EAST)
        if dy > y:
            candidates.append(SOUTH)
        elif dy < y:
            candidates.append(NORTH)
        return candidates

    def output_port(self, node: int, dst: int) -> str:
        return self.candidate_ports(node, dst)[0]
