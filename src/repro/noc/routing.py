"""Deterministic routing functions.

All experiments in the paper use deterministic dimension-ordered (X-Y)
routing (Sec. 4).  The 3DB network extends it to X-Y-Z order, and the
3DM-E network uses an express-aware variant: while the remaining distance
in the current dimension is at least the express span, take the express
channel (Dally's express-cube routing); otherwise take the normal channel.
Dimension order is preserved across normal and express channels, so the
channel dependence graph stays acyclic and the routing deadlock-free.

A routing function maps ``(current_node, destination)`` to the *output
port name* to take; the router resolves the name to a port index.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Protocol, Tuple, Type

from repro.topology.base import LOCAL_PORT, Topology
from repro.topology.express_mesh import EXPRESS_FOR, ExpressMesh
from repro.topology.mesh2d import EAST, Mesh2D, NORTH, SOUTH, WEST
from repro.topology.mesh3d import DOWN, Mesh3D, UP
from repro.topology.torus import Torus2D


class UnroutableError(RuntimeError):
    """No surviving channel makes progress towards the destination.

    Carries enough context for forensics and for the router's drop
    accounting: the stuck node, the unreachable destination, and the
    failed-channel set the routing function was avoiding.  Raised by
    fault-aware routing functions and by the router's own dead-port
    check; mid-simulation the router converts it into a counted packet
    drop (``NetworkStats.packets_dropped``) instead of aborting the run.
    """

    def __init__(
        self,
        message: str,
        node: Optional[int] = None,
        dst: Optional[int] = None,
        failed: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> None:
        super().__init__(message)
        self.node = node
        self.dst = dst
        self.failed = frozenset(failed)


class RoutingFunction(Protocol):
    """Deterministic output-port selector.

    Beyond the core :meth:`output_port` map, every routing function
    carries three capability attributes and two VC-discipline hooks.
    The attributes were formerly probed with ``getattr`` duck-typing in
    the router's constructor; they are now part of the protocol, with
    neutral defaults provided by :class:`RoutingBase`, so the router
    reads them directly.
    """

    #: Offers several productive ports (``candidate_ports``); the RC
    #: stage picks the one with the most downstream credits.
    is_adaptive: bool
    #: Dictates the permissible output VCs per packet at VA time
    #: (torus datelines, escape-layer table routing).
    has_vc_discipline: bool
    #: Minimum virtual channels per physical channel the function's
    #: deadlock-freedom argument needs (checked at router build time).
    required_vcs: int

    def output_port(self, node: int, dst: int) -> str:
        """Port name to take from *node* towards *dst*.

        Returns :data:`~repro.topology.base.LOCAL_PORT` when
        ``node == dst``.
        """
        ...

    def allowed_vcs(self, flit, node: int, out_port: str) -> Optional[Tuple[int, ...]]:
        """VC set the packet may claim on *out_port* at *node*.

        ``None`` means unrestricted (any VC); only consulted when
        :attr:`has_vc_discipline` is true.
        """
        ...

    def note_traverse(self, flit, link) -> None:
        """Discipline-state update on every switch traversal of a head
        flit; only invoked when :attr:`has_vc_discipline` is true."""
        ...


class RoutingBase:
    """Default implementations of the :class:`RoutingFunction` protocol.

    Concrete routing functions subclass this and override what they
    need; the defaults are the common case (deterministic, single
    candidate port, no VC discipline, deadlock-free with one VC).
    """

    is_adaptive = False
    has_vc_discipline = False
    required_vcs = 1

    def output_port(self, node: int, dst: int) -> str:
        raise NotImplementedError

    def allowed_vcs(self, flit, node: int, out_port: str) -> Optional[Tuple[int, ...]]:
        return None  # unrestricted

    def note_traverse(self, flit, link) -> None:
        return None


class XYRouting(RoutingBase):
    """Dimension-ordered routing for a 2D mesh: X fully first, then Y."""

    def __init__(self, topology: Mesh2D) -> None:
        self.topology = topology

    def output_port(self, node: int, dst: int) -> str:
        x, y = self.topology.coordinates(node)
        dx, dy = self.topology.coordinates(dst)
        if x < dx:
            return EAST
        if x > dx:
            return WEST
        if y < dy:
            return SOUTH
        if y > dy:
            return NORTH
        return LOCAL_PORT


class XYZRouting(RoutingBase):
    """Dimension-ordered routing for a 3D mesh: X, then Y, then Z."""

    def __init__(self, topology: Mesh3D) -> None:
        self.topology = topology

    def output_port(self, node: int, dst: int) -> str:
        x, y, z = self.topology.coordinates(node)
        dx, dy, dz = self.topology.coordinates(dst)
        if x < dx:
            return EAST
        if x > dx:
            return WEST
        if y < dy:
            return SOUTH
        if y > dy:
            return NORTH
        if z < dz:
            return UP
        if z > dz:
            return DOWN
        return LOCAL_PORT


class ExpressXYRouting(RoutingBase):
    """X-Y routing that prefers express channels for long in-dimension runs.

    From a node with an express channel in the productive direction, the
    express channel is taken whenever the remaining distance in that
    dimension is at least the express span; otherwise the normal channel is
    taken.  Both channel types advance monotonically in strict X-then-Y
    order, preserving deadlock freedom.
    """

    def __init__(self, topology: ExpressMesh) -> None:
        self.topology = topology

    def output_port(self, node: int, dst: int) -> str:
        x, y = self.topology.coordinates(node)
        dx, dy = self.topology.coordinates(dst)
        span = self.topology.span
        if x != dx:
            direction = EAST if x < dx else WEST
            if abs(dx - x) >= span:
                express = EXPRESS_FOR[direction]
                if express in self.topology.out_ports[node]:
                    return express
            return direction
        if y != dy:
            direction = SOUTH if y < dy else NORTH
            if abs(dy - y) >= span:
                express = EXPRESS_FOR[direction]
                if express in self.topology.out_ports[node]:
                    return express
            return direction
        return LOCAL_PORT


class TorusXYRouting(RoutingBase):
    """Shortest-direction dimension-ordered routing on a 2D torus, with
    Dally's dateline VC discipline for deadlock freedom.

    In each dimension the packet takes the shorter way around the ring
    (ties go east/south).  Packets request VC 0 until they traverse a
    wrap channel in the current dimension, then VC 1 — the dateline
    split that cuts each ring's cyclic channel dependency.  The router
    consults :meth:`allowed_vcs` at VA time and calls
    :meth:`note_traverse` on every switch traversal.
    """

    #: Routers must ask us for the permitted VCs per packet.
    has_vc_discipline = True
    #: The dateline split needs VC 0 (pre-wrap) and VC 1 (post-wrap).
    required_vcs = 2

    def __init__(self, topology: "Torus2D") -> None:
        if not isinstance(topology, Torus2D):
            raise TypeError("torus routing requires a Torus2D topology")
        self.topology = topology

    def _delta(self, src: int, dst: int, size: int) -> int:
        """Signed shortest step count (+ = increasing coordinate)."""
        forward = (dst - src) % size
        backward = (src - dst) % size
        if forward == 0:
            return 0
        return forward if forward <= backward else -backward

    def output_port(self, node: int, dst: int) -> str:
        x, y = self.topology.coordinates(node)
        dx, dy = self.topology.coordinates(dst)
        step_x = self._delta(x, dx, self.topology.width)
        if step_x > 0:
            return EAST
        if step_x < 0:
            return WEST
        step_y = self._delta(y, dy, self.topology.height)
        if step_y > 0:
            return SOUTH
        if step_y < 0:
            return NORTH
        return LOCAL_PORT

    # -- dateline discipline hooks -----------------------------------------

    def allowed_vcs(self, flit, node: int, out_port: str) -> tuple:
        """VC set the packet may claim on *out_port* at *node*."""
        if out_port in (EAST, WEST):
            return (1,) if flit.wrapped_x else (0,)
        if out_port in (NORTH, SOUTH):
            return (1,) if flit.wrapped_y else (0,)
        return (0, 1)  # ejection: any

    def note_traverse(self, flit, link) -> None:
        """Update dateline state when a wrap channel is crossed."""
        if not link.wrap:
            return
        if link.src_port in (EAST, WEST):
            flit.wrapped_x = True
        else:
            flit.wrapped_y = True


# ---------------------------------------------------------------------------
# Topology -> routing registry
# ---------------------------------------------------------------------------

#: Factory producing the canonical routing function for one topology class.
RoutingFactory = Callable[[Topology], RoutingFunction]

_ROUTING_REGISTRY: Dict[Type[Topology], RoutingFactory] = {}


def register_routing(
    topo_cls: Type[Topology], factory: Optional[RoutingFactory] = None
):
    """Register *factory* as the canonical routing for *topo_cls*.

    Dispatch follows the topology's MRO, so registering a subclass
    shadows its bases and third-party fabrics plug in without editing
    this module::

        register_routing(MyFabric, MyRouting)          # direct
        @register_routing(MyFabric)                    # or as decorator
        def make_routing(topology): ...

    Registering the same class again replaces the previous factory.
    """
    if factory is None:
        def _decorator(fn: RoutingFactory) -> RoutingFactory:
            _ROUTING_REGISTRY[topo_cls] = fn
            return fn

        return _decorator
    _ROUTING_REGISTRY[topo_cls] = factory
    return factory


def registered_routings() -> Dict[Type[Topology], RoutingFactory]:
    """Snapshot of the registry (topology class -> routing factory)."""
    return dict(_ROUTING_REGISTRY)


def routing_for_topology(topology: Topology) -> RoutingFunction:
    """Pick the canonical deterministic routing function for *topology*.

    Walks the topology's MRO through the registry: the most specific
    registered class wins.  Every :class:`~repro.topology.base.Topology`
    subclass resolves — the base-class fallback is the generic
    deadlock-free :class:`~repro.noc.table_routing.TableRouting` — so a
    ``TypeError`` only means *topology* is not a Topology at all.
    """
    for cls in type(topology).__mro__:
        factory = _ROUTING_REGISTRY.get(cls)
        if factory is not None:
            return factory(topology)
    raise TypeError(f"no routing function registered for {type(topology).__name__}")


def _table_routing_factory(topology: Topology) -> RoutingFunction:
    # Imported lazily: table_routing pulls in the CDG checker, which
    # transitively imports this module.
    from repro.noc.table_routing import TableRouting

    return TableRouting(topology)


register_routing(Torus2D, TorusXYRouting)
register_routing(ExpressMesh, ExpressXYRouting)
register_routing(Mesh3D, XYZRouting)
register_routing(Mesh2D, XYRouting)
register_routing(Topology, _table_routing_factory)
