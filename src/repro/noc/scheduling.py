"""Cycle-event scheduling primitives for the network hot loop.

:class:`TimingWheel` replaces the former ``Dict[int, List]`` event
buckets in :class:`~repro.noc.network.Network`.  NoC events land at most
a few cycles in the future (switch+link traversal is 2-3 cycles, credit
return is 1), so a small ring of pre-allocated buckets absorbs all
scheduling without per-cycle dict churn or hashing.  Events pushed
beyond the horizon (debug harnesses, exotic modelled delays) spill into
an overflow dict keyed by absolute cycle — correctness never depends on
the horizon, only speed does.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Default slot count; must exceed the largest in-simulator delay
#: (``ST_LT_SPLIT_CYCLES`` = 3) with room to spare.
DEFAULT_HORIZON = 8


class TimingWheel:
    """Fixed-horizon mapping from absolute cycle to a list of events.

    The caller must drain cycles in non-decreasing order via
    :meth:`pop_due` (the network pops every wheel once per cycle), which
    is what guarantees a ring slot only ever holds events for a single
    cycle at a time.  Pushing an event for a cycle that has already been
    popped is a scheduling bug — the event could never be delivered, yet
    it would keep :meth:`pending` non-zero (and :meth:`__bool__` truthy)
    forever, silently wedging liveness checks.  :meth:`push` therefore
    raises ``ValueError`` on such stale pushes instead of accepting
    them.
    """

    __slots__ = ("_slots", "_size", "_now", "_overflow")

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        if horizon < 2:
            raise ValueError(f"horizon must be >= 2, got {horizon}")
        self._size = horizon
        self._slots: List[List[Any]] = [[] for _ in range(horizon)]
        self._now = 0
        self._overflow: Dict[int, List[Any]] = {}

    def push(self, cycle: int, item: Any) -> None:
        """Schedule *item* to be returned by ``pop_due(cycle)``.

        Raises:
            ValueError: if *cycle* was already popped (a stale push).
                Such an event would never be delivered but would count
                toward :meth:`pending` forever — a silent leak, so it
                is rejected loudly instead.
        """
        delta = cycle - self._now
        if 0 <= delta < self._size:
            self._slots[cycle % self._size].append(item)
        elif delta < 0:
            raise ValueError(
                f"stale push: cycle {cycle} was already popped "
                f"(next poppable cycle is {self._now})"
            )
        else:
            self._overflow.setdefault(cycle, []).append(item)

    def pop_due(self, cycle: int) -> List[Any]:
        """Return and clear every event scheduled for *cycle*."""
        self._now = cycle + 1
        idx = cycle % self._size
        items = self._slots[idx]
        if items:
            self._slots[idx] = []
        if self._overflow:
            extra = self._overflow.pop(cycle, None)
            if extra is not None:
                items = items + extra if items else extra
        return items

    def items(self) -> List[Any]:
        """Every scheduled-but-unpopped event.

        Audit-path helper (:mod:`repro.noc.sanitizer`): the same event
        population :meth:`pending` counts, as a flat list.  Order is
        unspecified; callers must not mutate the returned events.
        """
        out: List[Any] = []
        for slot in self._slots:
            out.extend(slot)
        for events in self._overflow.values():
            out.extend(events)
        return out

    def pending(self) -> int:
        """Events scheduled but not yet popped."""
        count = sum(len(slot) for slot in self._slots)
        for items in self._overflow.values():
            count += len(items)
        return count

    def __bool__(self) -> bool:
        return any(self._slots) or bool(self._overflow)
