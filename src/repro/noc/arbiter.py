"""Arbiters used by the allocation stages.

The paper's VA and SA logic are built from ``V:1`` and ``PV:1`` arbiters
(Sec. 3.2.5, 3.2.6).  We provide the two classic implementations:

* :class:`RoundRobinArbiter` — rotating-priority arbiter, strongly fair.
* :class:`MatrixArbiter` — least-recently-served matrix arbiter, the
  structure whose area model (``n^2`` state bits) backs Table 1.

Both expose the same ``grant(requests)`` interface and are interchangeable
in the allocators.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RoundRobinArbiter:
    """Rotating-priority arbiter over *size* requesters."""

    __slots__ = ("size", "_next")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted *requests*; ``None`` if none asserted.

        The winner becomes the lowest-priority requester for the next
        arbitration, giving round-robin fairness.
        """
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            idx = (self._next + offset) % self.size
            if requests[idx]:
                self._next = (idx + 1) % self.size
                return idx
        return None

    def grant_sole(self, idx: int) -> int:
        """Fast path for a single asserted line: grant *idx* with the
        exact pointer update :meth:`grant` would make, without scanning.

        The caller asserts ``idx`` is the only requester — with one line
        asserted the rotating scan always lands on it regardless of the
        current pointer, so the outcome is bit-identical to the general
        path.
        """
        self._next = (idx + 1) % self.size
        return idx

    def check_sane(self) -> Optional[str]:
        """``None`` when the rotation pointer is in range, else what is
        wrong.  A corrupted pointer silently biases (or, if negative /
        out of range in just the wrong way, wedges) arbitration long
        before anything crashes, so the sanitizer audits it."""
        if not isinstance(self._next, int) or not 0 <= self._next < self.size:
            return (
                f"round-robin pointer {self._next!r} outside "
                f"[0, {self.size})"
            )
        return None


class MatrixArbiter:
    """Least-recently-served matrix arbiter.

    Keeps an ``n x n`` priority matrix: ``m[i][j]`` means requester *i*
    beats requester *j*.  The winner's row is cleared and column set, so it
    drops to lowest priority.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size
        # Upper-triangular initialisation: lower index wins initially.
        self._beats: List[List[bool]] = [
            [i < j for j in range(size)] for i in range(size)
        ]

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.size:
            raise ValueError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        winner: Optional[int] = None
        for i in range(self.size):
            if not requests[i]:
                continue
            if all(
                not (requests[j] and self._beats[j][i])
                for j in range(self.size)
                if j != i
            ):
                winner = i
                break
        if winner is not None:
            for j in range(self.size):
                if j != winner:
                    self._beats[winner][j] = False
                    self._beats[j][winner] = True
        return winner
