"""Per-virtual-channel input buffers.

On-chip routers use small register-file buffers, one FIFO per virtual
channel (Sec. 3.2.1).  The 3DM design splits each buffer word across the
stacked layers (word lines span layers, bit lines stay planar), which is a
physical-layout concern modelled by :mod:`repro.core.layers`; functionally
the buffer remains a bounded FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.noc.packet import Flit


class VirtualChannelBuffer:
    """Bounded flit FIFO for one (input port, virtual channel) pair."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"buffer depth must be >= 1, got {depth}")
        self.depth = depth
        #: Underlying FIFO, front at index 0.  Public so the router's hot
        #: loops can test emptiness (``if unit.buffer.fifo``) without a
        #: method call or a private reach-through; treat it as read-only
        #: outside this class — mutation must go through push()/pop() so
        #: the read/write power counters stay truthful.
        self.fifo: Deque[Flit] = deque()
        #: Cumulative write count, for power accounting.
        self.writes = 0
        #: Cumulative read (dequeue) count.
        self.reads = 0

    def __len__(self) -> int:
        return len(self.fifo)

    @property
    def free_slots(self) -> int:
        return self.depth - len(self.fifo)

    @property
    def is_full(self) -> bool:
        return len(self.fifo) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self.fifo

    def push(self, flit: Flit) -> None:
        """Append *flit*; raises on overflow (a flow-control violation)."""
        if self.is_full:
            raise OverflowError(
                "buffer overflow: credit-based flow control should make this "
                "impossible"
            )
        self.fifo.append(flit)
        self.writes += 1

    def flits(self) -> Tuple[Flit, ...]:
        """Read-only snapshot of the buffered flits, front first.

        Used by audit passes (:mod:`repro.noc.sanitizer`); does not
        count as a read for power accounting.
        """
        return tuple(self.fifo)

    def front(self) -> Optional[Flit]:
        """The flit at the head of the FIFO, or ``None`` when empty."""
        return self.fifo[0] if self.fifo else None

    def pop(self) -> Flit:
        """Remove and return the head flit; raises on underflow."""
        if not self.fifo:
            raise IndexError("pop from empty virtual-channel buffer")
        self.reads += 1
        return self.fifo.popleft()
