"""Coherence message vocabulary and packet mapping.

The network timing model "simulates all kinds of messages such as
invalidates, requests, response, write backs, and acknowledgments"
(Sec. 4.1.2).  Every message is either a one-flit control packet or a
five-flit data packet (64-byte line + header), which is the packet-type
split of Fig. 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.noc.packet import (
    CTRL_PACKET_FLITS,
    DATA_PACKET_FLITS,
    Packet,
    PacketClass,
)


class MessageType(enum.Enum):
    """MESI directory protocol messages."""

    GETS = "GetS"           # read miss request          (ctrl)
    GETM = "GetM"           # write miss request         (ctrl)
    UPGRADE = "Upgrade"     # S -> M permission request  (ctrl)
    DATA_S = "Data"         # shared data response       (data)
    DATA_E = "DataExcl"     # exclusive data response    (data)
    INV = "Inv"             # invalidate / recall        (ctrl)
    INV_ACK = "InvAck"      # invalidation acknowledged  (ctrl)
    WB_DATA = "WbData"      # dirty writeback / recall   (data)
    WB_ACK = "WbAck"        # writeback acknowledged     (ctrl)
    UPGRADE_ACK = "UpgradeAck"  # upgrade granted        (ctrl)
    # MOESI extension: cache-to-cache forwarding (3-hop transactions).
    FWD_GETS = "FwdGetS"    # directory asks owner to forward    (ctrl)
    FWD_DONE = "FwdDone"    # owner forwarded; directory unbusy  (ctrl)
    FWD_MISS = "FwdMiss"    # owner no longer holds the line     (ctrl)


#: Message types that carry a full cache line.
DATA_MESSAGES = frozenset(
    {MessageType.DATA_S, MessageType.DATA_E, MessageType.WB_DATA}
)


@dataclass
class CoherenceMessage:
    """One protocol message travelling between a CPU tile and a bank."""

    mtype: MessageType
    src: int            # network node id
    dst: int            # network node id
    address: int        # line-aligned physical address
    requester: int = -1  # originating CPU index, for responses
    #: Per-flit active word groups for data messages (5 entries), or None.
    payload_groups: Optional[List[int]] = field(default=None)

    @property
    def is_data(self) -> bool:
        return self.mtype in DATA_MESSAGES

    @property
    def size_flits(self) -> int:
        return DATA_PACKET_FLITS if self.is_data else CTRL_PACKET_FLITS

    def to_packet(self, created_cycle: int) -> Packet:
        """Materialise as a network packet."""
        return Packet(
            src=self.src,
            dst=self.dst,
            size_flits=self.size_flits,
            klass=PacketClass.DATA if self.is_data else PacketClass.CTRL,
            created_cycle=created_cycle,
            payload_groups=list(self.payload_groups)
            if self.payload_groups is not None
            else None,
            reply_tag=self,
        )
