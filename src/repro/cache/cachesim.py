"""Set-associative cache arrays with LRU replacement and MESI states.

Used for both the private L1s (32 KB, 4-way, 64 B lines, Table 4) and the
512 KB L2 bank data arrays.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Cache line size in bytes (64 B: four 128-bit flits).
LINE_BYTES = 64
LINE_SHIFT = 6


class LineState(enum.Enum):
    """MESI stable states, plus O for the MOESI protocol variant."""

    MODIFIED = "M"
    #: MOESI owned: dirty but shared; this cache answers forwards and
    #: owes the eventual writeback.
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """Tag-store entry."""

    address: int
    state: LineState


class CacheArray:
    """A set-associative cache with true-LRU replacement.

    Addresses are byte addresses; the array operates on line-aligned tags.
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = LINE_BYTES):
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        # Per set: OrderedDict line_addr -> CacheLine, LRU first.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def line_address(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Find the line holding *address*; updates LRU when *touch*."""
        line_addr = self.line_address(address)
        cache_set = self._sets[self._set_index(address)]
        line = cache_set.get(line_addr)
        if line is None:
            return None
        if touch:
            cache_set.move_to_end(line_addr)
        return line

    def access(self, address: int) -> Optional[CacheLine]:
        """Lookup that also maintains hit/miss statistics."""
        line = self.lookup(address)
        if line is not None and line.state is not LineState.INVALID:
            self.hits += 1
            return line
        self.misses += 1
        return None

    def fill(
        self, address: int, state: LineState
    ) -> Tuple[CacheLine, Optional[CacheLine]]:
        """Insert a line, returning ``(new_line, victim)``.

        The victim (if any) is the evicted line, with its pre-eviction
        state intact so the caller can schedule a writeback for M lines.
        """
        line_addr = self.line_address(address)
        idx = self._set_index(address)
        cache_set = self._sets[idx]
        victim: Optional[CacheLine] = None
        existing = cache_set.pop(line_addr, None)
        if existing is None and len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
            self.evictions += 1
        line = CacheLine(address=line_addr, state=state)
        cache_set[line_addr] = line
        return line, victim

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Drop the line holding *address*; returns it (or None)."""
        line_addr = self.line_address(address)
        cache_set = self._sets[self._set_index(address)]
        return cache_set.pop(line_addr, None)

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def resident_lines(self) -> Dict[int, LineState]:
        """Snapshot of resident line states (for invariants/tests)."""
        out: Dict[int, LineState] = {}
        for cache_set in self._sets:
            for addr, line in cache_set.items():
                out[addr] = line.state
        return out
