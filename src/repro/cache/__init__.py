"""Event-driven NUCA CMP memory hierarchy (Sec. 4.1.2, Table 4).

The paper generates its "MP trace" network workloads by running
applications on Simics through a two-level directory-coherent memory
hierarchy: private write-back L1s, a shared SNUCA L2 split into 28 banks
on the NoC, MESI with distributed directories, and a 400-cycle DRAM
backing store.  This package rebuilds that machinery:

* :mod:`repro.cache.messages` — coherence message vocabulary and its
  mapping onto network packets (control vs data, Fig. 2).
* :mod:`repro.cache.cachesim` — set-associative cache arrays with LRU and
  MESI line states.
* :mod:`repro.cache.cpu` — workload-parameterised synthetic address
  streams (the Simics substitute; see DESIGN.md).
* :mod:`repro.cache.directory` — per-bank MESI directory controllers.
* :mod:`repro.cache.hierarchy` — the event engine binding CPUs, L1s and
  banks through a transport that is either a fixed-latency model (fast
  trace generation) or the real NoC simulator (closed-loop mode).
"""

from repro.cache.messages import CoherenceMessage, MessageType
from repro.cache.cachesim import CacheArray, LineState
from repro.cache.cpu import AddressStream
from repro.cache.directory import DirectoryBank
from repro.cache.hierarchy import (
    CmpSystem,
    HierarchyStats,
    generate_trace,
)

__all__ = [
    "MessageType",
    "CoherenceMessage",
    "CacheArray",
    "LineState",
    "AddressStream",
    "DirectoryBank",
    "CmpSystem",
    "HierarchyStats",
    "generate_trace",
]
