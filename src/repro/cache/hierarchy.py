"""The CMP memory-hierarchy event engine (Sec. 4.1.2).

Binds the pieces together: 8 CPUs with private write-back L1s, 28 shared
SNUCA L2 banks with MESI directories, and a message transport.  The
engine is an event-driven simulator ("implemented as an event driven
simulator to speed up the simulation", Sec. 4.1.2) and supports two
transports:

* **offline** — messages arrive after a fixed estimated network latency;
  used to synthesise MP traces quickly (:func:`generate_trace`);
* **coupled** — the engine is wrapped as a
  :class:`~repro.traffic.base.TrafficSource` so messages ride the real
  cycle-accurate NoC (:class:`CmpTraffic`).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.cachesim import CacheArray, LineState
from repro.cache.cpu import AddressStream
from repro.cache.directory import BANK_LATENCY, DirectoryBank
from repro.cache.messages import CoherenceMessage, MessageType
from repro.core.arch import ArchitectureConfig
from repro.noc.packet import Packet, PacketClass
from repro.traffic.base import BaseTraffic
from repro.traffic.traces import TraceRecord
from repro.traffic.workloads import WorkloadProfile

#: L1 geometry (Table 4): 32 KB, 4-way, 64 B lines.
L1_SIZE_BYTES = 32 * 1024
L1_WAYS = 4
#: Maximum outstanding memory requests per processor (Table 4).
MAX_OUTSTANDING = 16
#: Estimated network latency for the offline transport, cycles.
OFFLINE_NET_LATENCY = 12
#: Retry delay when the MSHR file is full.
MSHR_RETRY_CYCLES = 8


@dataclass
class _Mshr:
    line: int
    wants_write: bool
    issue_cycle: int
    coalesced: int = 0
    #: Set when an invalidation overtook the in-flight data response (the
    #: response was delayed by a DRAM fill while a writer claimed the
    #: line): the data, when it lands, is consumed but not cached.
    squashed: bool = False
    #: A FwdGetS that overtook our in-flight fill (MOESI): served as soon
    #: as the data lands.
    pending_forward: Optional["CoherenceMessage"] = None


@dataclass
class HierarchyStats:
    """Aggregate statistics of one hierarchy run."""

    references: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    upgrades: int = 0
    writebacks: int = 0
    #: MOESI cache-to-cache forwards served by L1 owners.
    cache_to_cache: int = 0
    messages_by_type: Dict[str, int] = field(default_factory=dict)
    data_packets: int = 0
    ctrl_packets: int = 0
    miss_latencies: List[int] = field(default_factory=list)

    def note_message(self, msg: CoherenceMessage) -> None:
        key = msg.mtype.value
        self.messages_by_type[key] = self.messages_by_type.get(key, 0) + 1
        if msg.is_data:
            self.data_packets += 1
        else:
            self.ctrl_packets += 1

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def ctrl_packet_fraction(self) -> float:
        total = self.data_packets + self.ctrl_packets
        return self.ctrl_packets / total if total else 0.0

    @property
    def avg_miss_latency(self) -> float:
        lat = self.miss_latencies
        return sum(lat) / len(lat) if lat else 0.0


class _L1Controller:
    """Private L1 cache + MSHR file for one CPU."""

    def __init__(
        self,
        cpu_index: int,
        node: int,
        system: "CmpSystem",
    ) -> None:
        self.cpu_index = cpu_index
        self.node = node
        self.system = system
        self.cache = CacheArray(L1_SIZE_BYTES, L1_WAYS)
        self.mshrs: Dict[int, _Mshr] = {}

    # -- CPU-side ----------------------------------------------------------

    def access(self, address: int, is_write: bool) -> bool:
        """One memory reference; returns False when stalled on MSHRs."""
        sys = self.system
        stats = sys.stats
        line_addr = self.cache.line_address(address)

        mshr = self.mshrs.get(line_addr)
        if mshr is not None:  # coalesce under the outstanding miss
            mshr.wants_write = mshr.wants_write or is_write
            mshr.coalesced += 1
            stats.references += 1
            stats.l1_hits += 1
            return True

        line = self.cache.lookup(address)
        if line is not None:
            if is_write and line.state in (LineState.SHARED, LineState.OWNED):
                # Write to a shared(-ish) line: upgrade via the directory
                # (an OWNED writer must kill its readers first).
                if len(self.mshrs) >= MAX_OUTSTANDING:
                    return False
                stats.upgrades += 1
                self.mshrs[line_addr] = _Mshr(line_addr, True, sys.now)
                self._request(MessageType.UPGRADE, line_addr)
            elif is_write and line.state is LineState.EXCLUSIVE:
                line.state = LineState.MODIFIED  # silent E -> M
            stats.references += 1
            stats.l1_hits += 1
            self.cache.hits += 1
            return True

        # Miss.
        if len(self.mshrs) >= MAX_OUTSTANDING:
            return False
        stats.references += 1
        stats.l1_misses += 1
        self.cache.misses += 1
        self.mshrs[line_addr] = _Mshr(line_addr, is_write, sys.now)
        self._request(
            MessageType.GETM if is_write else MessageType.GETS, line_addr
        )
        return True

    def _request(self, mtype: MessageType, line_addr: int) -> None:
        bank_node = self.system.home_node(line_addr)
        self.system.send_later(
            CoherenceMessage(
                mtype=mtype,
                src=self.node,
                dst=bank_node,
                address=line_addr,
                requester=self.cpu_index,
            ),
            delay=1,
        )

    # -- network-side --------------------------------------------------------

    def handle(self, msg: CoherenceMessage) -> None:
        handler = {
            MessageType.DATA_S: self._on_data,
            MessageType.DATA_E: self._on_data,
            MessageType.UPGRADE_ACK: self._on_upgrade_ack,
            MessageType.INV: self._on_inv,
            MessageType.WB_ACK: self._on_wb_ack,
            MessageType.FWD_GETS: self._on_fwd_gets,
        }.get(msg.mtype)
        if handler is None:
            raise ValueError(f"cpu {self.cpu_index}: unexpected {msg.mtype}")
        handler(msg)

    def _fill(self, line_addr: int, state: LineState) -> None:
        _, victim = self.cache.fill(line_addr, state)
        if victim is not None and victim.state in (
            LineState.MODIFIED,
            LineState.OWNED,
        ):
            self._writeback(victim.address)

    def _writeback(self, line_addr: int) -> None:
        self.system.stats.writebacks += 1
        self.system.send_later(
            CoherenceMessage(
                mtype=MessageType.WB_DATA,
                src=self.node,
                dst=self.system.home_node(line_addr),
                address=line_addr,
                requester=self.cpu_index,
                payload_groups=self.system.sample_payload(),
            ),
            delay=1,
        )

    def _on_data(self, msg: CoherenceMessage) -> None:
        mshr = self.mshrs.pop(msg.address, None)
        if mshr is None:
            raise RuntimeError(
                f"cpu {self.cpu_index}: data for line {msg.address:#x} "
                "without an outstanding miss"
            )
        self.system.stats.miss_latencies.append(self.system.now - mshr.issue_cycle)
        if mshr.squashed:
            # The line was invalidated while the fill was in flight: hand
            # the data to the CPU but do not cache the stale copy.  A
            # parked forward cannot be served either — tell the home.
            if mshr.pending_forward is not None:
                self._serve_forward(mshr.pending_forward)  # -> FwdMiss
            return
        if msg.mtype is MessageType.DATA_E:
            state = LineState.MODIFIED if mshr.wants_write else LineState.EXCLUSIVE
            self._fill(msg.address, state)
        else:  # DATA_S
            self._fill(msg.address, LineState.SHARED)
            if mshr.wants_write:
                # Read miss that coalesced a write: upgrade now.
                self.mshrs[msg.address] = _Mshr(msg.address, True, self.system.now)
                self.system.stats.upgrades += 1
                self._request(MessageType.UPGRADE, msg.address)
        if mshr.pending_forward is not None:
            self._serve_forward(mshr.pending_forward)

    def _on_upgrade_ack(self, msg: CoherenceMessage) -> None:
        mshr = self.mshrs.pop(msg.address, None)
        if mshr is None:
            raise RuntimeError(
                f"cpu {self.cpu_index}: upgrade ack without outstanding upgrade"
            )
        line = self.cache.lookup(msg.address, touch=False)
        if line is not None:
            line.state = LineState.MODIFIED
            self.system.stats.miss_latencies.append(
                self.system.now - mshr.issue_cycle
            )
        else:
            # The line was invalidated while the upgrade was in flight:
            # fall back to a full GetM.
            self.mshrs[msg.address] = _Mshr(msg.address, True, mshr.issue_cycle)
            self._request(MessageType.GETM, msg.address)

    def _on_inv(self, msg: CoherenceMessage) -> None:
        mshr = self.mshrs.get(msg.address)
        if mshr is not None:
            mshr.squashed = True
        line = self.cache.invalidate(msg.address)
        if line is not None and line.state in (
            LineState.MODIFIED,
            LineState.OWNED,
        ):
            # Recall of a dirty line: respond with the data.
            self.system.send_later(
                CoherenceMessage(
                    mtype=MessageType.WB_DATA,
                    src=self.node,
                    dst=msg.src,
                    address=msg.address,
                    requester=self.cpu_index,
                    payload_groups=self.system.sample_payload(),
                ),
                delay=1,
            )
        else:
            self.system.send_later(
                CoherenceMessage(
                    mtype=MessageType.INV_ACK,
                    src=self.node,
                    dst=msg.src,
                    address=msg.address,
                    requester=self.cpu_index,
                ),
                delay=1,
            )

    def _on_wb_ack(self, msg: CoherenceMessage) -> None:
        pass  # writeback complete; nothing outstanding to release

    def _on_fwd_gets(self, msg: CoherenceMessage) -> None:
        """MOESI: forward our dirty/exclusive line to another CPU.

        A forward can overtake our own in-flight fill (the directory
        granted us the line, then forwarded, and the grant is slow, e.g.
        a DRAM fill): park it on the MSHR and serve it when the data
        lands.
        """
        mshr = self.mshrs.get(msg.address)
        if mshr is not None and self.cache.lookup(msg.address, touch=False) is None:
            mshr.pending_forward = msg
            return
        self._serve_forward(msg)

    def _serve_forward(self, msg: CoherenceMessage) -> None:
        line = self.cache.lookup(msg.address, touch=False)
        if line is not None and line.state in (
            LineState.MODIFIED,
            LineState.EXCLUSIVE,
            LineState.OWNED,
        ):
            line.state = LineState.OWNED
            self.system.stats.cache_to_cache += 1
            self.system.send_later(
                CoherenceMessage(
                    mtype=MessageType.DATA_S,
                    src=self.node,
                    dst=self.system.cpu_nodes[msg.requester],
                    address=msg.address,
                    requester=msg.requester,
                    payload_groups=self.system.sample_payload(),
                ),
                delay=1,
            )
            self.system.send_later(
                CoherenceMessage(
                    mtype=MessageType.FWD_DONE,
                    src=self.node,
                    dst=msg.src,
                    address=msg.address,
                    requester=self.cpu_index,
                ),
                delay=1,
            )
        else:
            self.system.send_later(
                CoherenceMessage(
                    mtype=MessageType.FWD_MISS,
                    src=self.node,
                    dst=msg.src,
                    address=msg.address,
                    requester=self.cpu_index,
                ),
                delay=1,
            )


class CmpSystem:
    """The full CMP: CPUs, L1s, banks, and an internal event clock.

    The system exposes the *message* level: components call
    :meth:`send_later`, messages appear in :attr:`outbox` stamped with
    their send cycle, and whoever drives the system (offline loop or
    coupled traffic adapter) delivers them back via :meth:`dispatch`.
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        profile: WorkloadProfile,
        seed: int = 1,
        protocol: str = "mesi",
    ) -> None:
        if not config.cpu_nodes or not config.cache_nodes:
            raise ValueError("architecture config lacks CPU/cache placement")
        self.config = config
        self.profile = profile
        self.seed = seed
        self.protocol = protocol
        self.now = 0
        self.stats = HierarchyStats()
        self.rng = random.Random((seed << 4) ^ 0xCAFE)
        self._events: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.outbox: List[Tuple[int, CoherenceMessage]] = []

        self.cpu_nodes = list(config.cpu_nodes)
        self.cache_nodes = list(config.cache_nodes)
        self._node_to_cpu = {n: i for i, n in enumerate(self.cpu_nodes)}
        self._node_to_bank = {n: i for i, n in enumerate(self.cache_nodes)}

        self.l1s = [
            _L1Controller(i, node, self) for i, node in enumerate(self.cpu_nodes)
        ]
        self.banks = [
            DirectoryBank(
                bank_index=i,
                node=node,
                cpu_nodes=self.cpu_nodes,
                profile=profile,
                send=self.send_later,
                seed=seed,
                protocol=protocol,
            )
            for i, node in enumerate(self.cache_nodes)
        ]
        for bank in self.banks:
            bank.clock = lambda: self.now
        self.streams = [
            AddressStream(i, len(self.cpu_nodes), profile, seed=seed)
            for i in range(len(self.cpu_nodes))
        ]
        self._issue_horizon: Optional[int] = None
        for i in range(len(self.cpu_nodes)):
            self._schedule_issue(i, first=True)

    # -- engine ------------------------------------------------------------

    def schedule(self, cycle: int, fn: Callable[[], None]) -> None:
        if cycle < self.now:
            raise ValueError(f"cannot schedule into the past ({cycle} < {self.now})")
        heapq.heappush(self._events, (cycle, next(self._seq), fn))

    def advance_to(self, cycle: int) -> None:
        """Run internal events up to and including *cycle*."""
        while self._events and self._events[0][0] <= cycle:
            when, _, fn = heapq.heappop(self._events)
            self.now = when
            fn()
        self.now = max(self.now, cycle)

    def send_later(self, msg: CoherenceMessage, delay: int) -> None:
        """Queue *msg* for network injection ``delay`` cycles from now."""

        def emit() -> None:
            self.stats.note_message(msg)
            self.outbox.append((self.now, msg))

        self.schedule(self.now + delay, emit)

    def drain_outbox(self, up_to_cycle: int) -> List[Tuple[int, CoherenceMessage]]:
        """Remove and return queued messages stamped <= *up_to_cycle*."""
        ready = [(c, m) for c, m in self.outbox if c <= up_to_cycle]
        self.outbox = [(c, m) for c, m in self.outbox if c > up_to_cycle]
        return ready

    def dispatch(self, msg: CoherenceMessage) -> None:
        """Deliver *msg* to its destination component."""
        cpu = self._node_to_cpu.get(msg.dst)
        if cpu is not None:
            self.l1s[cpu].handle(msg)
            return
        bank = self._node_to_bank.get(msg.dst)
        if bank is not None:
            self.banks[bank].handle(msg)
            return
        raise ValueError(f"message to node {msg.dst} which hosts no component")

    # -- address mapping / payloads -----------------------------------------

    def home_node(self, line_addr: int) -> int:
        """SNUCA home bank: low-order line-address bits (Sec. 4.1.2)."""
        bank = (line_addr // 64) % len(self.cache_nodes)
        return self.cache_nodes[bank]

    def sample_payload(self) -> List[int]:
        """Per-flit active groups for a data message payload."""
        from repro.traffic.patterns import line_active_groups

        return [1] + line_active_groups(self.profile.sample_line(self.rng))

    # -- CPU issue ------------------------------------------------------------

    def set_issue_horizon(self, cycle: Optional[int]) -> None:
        """CPUs stop issuing new references after *cycle* (None = never)."""
        self._issue_horizon = cycle

    def _schedule_issue(self, cpu: int, first: bool = False) -> None:
        gap = self.rng.expovariate(self.profile.request_rate)
        delay = max(1, round(gap)) if not first else self.rng.randrange(1, 32)
        self.schedule(self.now + delay, lambda: self._issue(cpu))

    def _issue(self, cpu: int) -> None:
        if self._issue_horizon is not None and self.now > self._issue_horizon:
            return
        address, is_write = self.streams[cpu].next_reference()
        if self.l1s[cpu].access(address, is_write):
            self._schedule_issue(cpu)
        else:  # MSHRs full: retry the same slot later
            self.schedule(
                self.now + MSHR_RETRY_CYCLES, lambda: self._issue_retry(cpu, address, is_write)
            )

    def _issue_retry(self, cpu: int, address: int, is_write: bool) -> None:
        if self.l1s[cpu].access(address, is_write):
            self._schedule_issue(cpu)
        else:
            self.schedule(
                self.now + MSHR_RETRY_CYCLES,
                lambda: self._issue_retry(cpu, address, is_write),
            )

    def pending_events(self) -> int:
        return len(self._events)

    def outstanding_mshrs(self) -> int:
        return sum(len(l1.mshrs) for l1 in self.l1s)


# -- offline trace generation ----------------------------------------------------


def generate_trace(
    config: ArchitectureConfig,
    profile: WorkloadProfile,
    cycles: int,
    seed: int = 1,
    net_latency: int = OFFLINE_NET_LATENCY,
    protocol: str = "mesi",
) -> Tuple[List[TraceRecord], HierarchyStats]:
    """Run the hierarchy with a fixed-latency transport; return the trace.

    This is the paper's trace-generation step (Simics + memory model)
    collapsed into one call: the returned records drive the cycle-accurate
    NoC simulator for the MP-trace experiments (Figs. 11c, 12c).
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    system = CmpSystem(config, profile, seed=seed, protocol=protocol)
    system.set_issue_horizon(cycles)
    records: List[TraceRecord] = []
    horizon = cycles
    # Keep pumping until traffic drains (bounded: horizon + slack).
    hard_stop = cycles + 10 * (net_latency + 500)
    while system.pending_events() and system.now < hard_stop:
        next_cycle = system._events[0][0]
        system.advance_to(next_cycle)
        for send_cycle, msg in system.drain_outbox(next_cycle):
            if send_cycle <= horizon:
                records.append(
                    TraceRecord(
                        cycle=send_cycle,
                        src=msg.src,
                        dst=msg.dst,
                        klass=PacketClass.DATA if msg.is_data else PacketClass.CTRL,
                        payload_groups=tuple(msg.payload_groups)
                        if msg.payload_groups is not None
                        else None,
                    )
                )
            system.schedule(
                system.now + net_latency, lambda m=msg: system.dispatch(m)
            )
    records.sort(key=lambda r: r.cycle)
    return records, system.stats


# -- coupled (closed-loop) mode ----------------------------------------------------


class CmpTraffic(BaseTraffic):
    """Adapter running the CMP hierarchy closed-loop over the real NoC.

    Coherence messages become network packets; packet delivery invokes the
    protocol handlers, whose outgoing messages become future packets.
    """

    def __init__(
        self,
        config: ArchitectureConfig,
        profile: WorkloadProfile,
        seed: int = 1,
        issue_horizon: Optional[int] = None,
        protocol: str = "mesi",
    ) -> None:
        self.system = CmpSystem(config, profile, seed=seed, protocol=protocol)
        if issue_horizon is not None:
            self.system.set_issue_horizon(issue_horizon)
        self._horizon = issue_horizon

    def packets_for_cycle(self, cycle: int) -> Iterable[Packet]:
        self.system.advance_to(cycle)
        return [
            msg.to_packet(created_cycle=max(send_cycle, cycle))
            for send_cycle, msg in self.system.drain_outbox(cycle)
        ]

    def on_delivered(self, packet: Packet, cycle: int) -> Iterable[Packet]:
        msg = packet.reply_tag
        if not isinstance(msg, CoherenceMessage):
            return ()
        self.system.advance_to(cycle)
        self.system.dispatch(msg)
        return ()

    def finished(self, cycle: int) -> bool:
        if self._horizon is None:
            return False
        return (
            cycle > self._horizon
            and not self.system.pending_events()
            and not self.system.outbox
            and self.system.outstanding_mshrs() == 0
        )
