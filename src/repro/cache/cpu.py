"""Synthetic CPU memory-reference streams (the Simics substitute).

Each CPU produces a stream of (address, is_write) references shaped by a
:class:`~repro.traffic.workloads.WorkloadProfile`:

* a private region per CPU plus a shared region touched by all CPUs
  (``sharing_fraction`` of references), which is what creates coherence
  (invalidate/ack) traffic;
* 90/10 hot-set temporal locality inside each region, so L1 hit rates are
  realistic and tunable via the profile's working-set size;
* the profile's read/write mix.

Addresses are line-aligned 64-byte references in a flat physical space;
SNUCA bank interleaving happens downstream on the line address.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.cache.cachesim import LINE_BYTES
from repro.traffic.workloads import WorkloadProfile

#: Lines in the per-CPU hot set: small enough to live in a 32 KB L1.
PRIVATE_HOT_LINES = 160
#: Lines in the shared hot set (touched by every CPU).
SHARED_HOT_LINES = 48


class AddressStream:
    """Reference generator for one CPU.

    The stream is two-level: a hot subset sized to fit in L1 absorbs most
    references, and the remainder scatter over the full working set (which
    dwarfs L1, so they miss).  The hot-access probability is derived from
    the profile's target L1 miss rate, making the *emergent* miss rate of
    the simulated L1 track the published workload characteristics.
    """

    def __init__(
        self,
        cpu_index: int,
        num_cpus: int,
        profile: WorkloadProfile,
        seed: int = 1,
    ) -> None:
        if cpu_index < 0 or cpu_index >= num_cpus:
            raise ValueError(f"cpu_index {cpu_index} out of range")
        self.cpu_index = cpu_index
        self.profile = profile
        self.rng = random.Random((seed << 8) ^ cpu_index)
        lines = profile.working_set_lines
        # Shared region occupies the low addresses; each CPU then gets a
        # private region above it.
        self.shared_lines = max(SHARED_HOT_LINES * 4, int(lines * 0.25))
        self.private_lines = max(PRIVATE_HOT_LINES * 4, lines)
        self.private_base = (
            self.shared_lines + cpu_index * self.private_lines
        ) * LINE_BYTES
        # Cold draws nearly always miss, so the hot-access probability is
        # (1 - target miss rate), slightly compressed for hot-set conflict
        # misses.
        self.hot_access_fraction = max(0.0, 1.0 - profile.l1_miss_rate * 1.05)

    def _pick_line(self, base: int, region_lines: int, hot_lines: int) -> int:
        hot = min(hot_lines, region_lines)
        if self.rng.random() < self.hot_access_fraction:
            line = self.rng.randrange(hot)
        else:
            line = self.rng.randrange(region_lines)
        return base + line * LINE_BYTES

    def next_reference(self) -> Tuple[int, bool]:
        """Produce the next ``(byte_address, is_write)`` reference.

        Writes steer away from the shared region (real workloads mostly
        read shared data); without this damping the small shared hot set
        ping-pongs between CPUs and coherence misses swamp the target
        miss rate.
        """
        is_write = self.rng.random() >= self.profile.read_fraction
        shared_p = self.profile.sharing_fraction * (0.05 if is_write else 1.0)
        if self.rng.random() < shared_p:
            address = self._pick_line(0, self.shared_lines, SHARED_HOT_LINES)
        else:
            address = self._pick_line(
                self.private_base, self.private_lines, PRIVATE_HOT_LINES
            )
        return address, is_write
