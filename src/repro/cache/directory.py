"""MESI directory controller for one shared-L2 bank (Sec. 4.1.2).

Each of the 28 L2 banks keeps the directory slice for the lines it homes:
state I (uncached), S (a sharer set) or EM (one exclusive-or-modified
owner; an E owner may have silently upgraded to M, so recalls handle both
cases).  Transactions that must wait on a recall park in a per-line
pending queue, serialising conflicting requests the way a real directory
does with busy bits.

The bank also models its data array (512 KB, Table 4): a directory miss
in the L2 array pays the 400-cycle DRAM latency before responding.
Inclusion is enforced: evicting an L2 line recalls/invalidates the L1
copies.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set
from collections import deque

from repro.cache.cachesim import CacheArray, LineState
from repro.cache.messages import CoherenceMessage, MessageType
from repro.traffic.patterns import line_active_groups
from repro.traffic.workloads import WorkloadProfile

#: L2 bank access latency in cycles (Table 4).
BANK_LATENCY = 4
#: DRAM access latency in cycles (Table 4).
MEMORY_LATENCY = 400
#: L2 bank geometry (512 KB, 8-way).
BANK_SIZE_BYTES = 512 * 1024
BANK_WAYS = 8


class DirState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "EM"  # exclusive or (silently) modified owner
    #: MOESI: a dirty owner plus read-only sharers (cache-to-cache
    #: forwarding keeps the data out of the L2 until eviction).
    OWNED = "O"


@dataclass
class DirEntry:
    state: DirState = DirState.INVALID
    owner: int = -1                      # CPU index for EM / O
    sharers: Set[int] = field(default_factory=set)
    #: Recall or forward in flight: requests wait until it completes.
    busy: bool = False
    pending: Deque[CoherenceMessage] = field(default_factory=deque)
    #: Requester of the forward in flight (MOESI), -1 when none.
    fwd_requester: int = -1
    #: CPU whose recall response we are waiting for (-1 when no recall);
    #: guards against stale InvAcks from earlier eager sharer kills
    #: resolving a later recall.
    recall_owner: int = -1


#: Signature of the engine hooks a bank needs: ``send(msg, delay_cycles)``.
SendHook = Callable[[CoherenceMessage, int], None]


class DirectoryBank:
    """One L2 bank with its directory slice."""

    def __init__(
        self,
        bank_index: int,
        node: int,
        cpu_nodes: List[int],
        profile: WorkloadProfile,
        send: SendHook,
        seed: int = 1,
        protocol: str = "mesi",
    ) -> None:
        if protocol not in ("mesi", "moesi"):
            raise ValueError(f"protocol must be 'mesi' or 'moesi', got {protocol!r}")
        self.protocol = protocol
        self.bank_index = bank_index
        self.node = node
        self.cpu_nodes = list(cpu_nodes)
        self.profile = profile
        self._send = send
        self.rng = random.Random((seed << 16) ^ 0xD1 ^ bank_index)
        self.array = CacheArray(BANK_SIZE_BYTES, BANK_WAYS)
        self.entries: Dict[int, DirEntry] = {}
        self.recalls_sent = 0
        self.memory_fetches = 0
        self.forwards_sent = 0
        #: Serial bank-port contention: the array serves one access per
        #: BANK_LATENCY window; concurrent requests queue behind it.
        self._port_free_at = 0
        #: Engine clock accessor, wired by the system after construction
        #: (None disables contention modelling — unit tests drive banks
        #: without a clock).
        self.clock: Optional[Callable[[], int]] = None
        self.port_wait_cycles = 0

    # -- helpers -----------------------------------------------------------

    def _entry(self, line: int) -> DirEntry:
        entry = self.entries.get(line)
        if entry is None:
            entry = DirEntry()
            self.entries[line] = entry
        return entry

    def _maybe_gc(self, line: int) -> None:
        entry = self.entries.get(line)
        if (
            entry is not None
            and entry.state is DirState.INVALID
            and not entry.busy
            and not entry.pending
        ):
            del self.entries[line]

    def _payload(self) -> List[int]:
        """Per-flit active groups for a data response: header + line."""
        return [1] + line_active_groups(self.profile.sample_line(self.rng))

    def _data_to(self, cpu: int, mtype: MessageType, address: int, delay: int) -> None:
        self._send(
            CoherenceMessage(
                mtype=mtype,
                src=self.node,
                dst=self.cpu_nodes[cpu],
                address=address,
                requester=cpu,
                payload_groups=self._payload(),
            ),
            delay,
        )

    def _ctrl_to(self, cpu: int, mtype: MessageType, address: int, delay: int) -> None:
        self._send(
            CoherenceMessage(
                mtype=mtype,
                src=self.node,
                dst=self.cpu_nodes[cpu],
                address=address,
                requester=cpu,
            ),
            delay,
        )

    def _array_latency(self, address: int) -> int:
        """Bank latency, plus port queueing and DRAM on an L2 miss."""
        wait = 0
        if self.clock is not None:
            now = self.clock()
            wait = max(0, self._port_free_at - now)
            self._port_free_at = now + wait + BANK_LATENCY
            self.port_wait_cycles += wait
        line = self.array.access(address)
        if line is not None:
            return wait + BANK_LATENCY
        self.memory_fetches += 1
        _, victim = self.array.fill(address, LineState.EXCLUSIVE)
        if victim is not None:
            self._evict_l2_line(victim.address)
        return wait + BANK_LATENCY + MEMORY_LATENCY

    def _evict_l2_line(self, line_addr: int) -> None:
        """Enforce inclusion: invalidate L1 copies of an evicted L2 line."""
        entry = self.entries.get(line_addr)
        if entry is None or entry.state is DirState.INVALID:
            return
        targets = (
            {entry.owner} if entry.state is DirState.EXCLUSIVE else set(entry.sharers)
        )
        for cpu in targets:
            self._ctrl_to(cpu, MessageType.INV, line_addr, BANK_LATENCY)
        entry.state = DirState.INVALID
        entry.owner = -1
        entry.sharers.clear()
        self._maybe_gc(line_addr)

    def _recall(self, entry: DirEntry, address: int) -> None:
        """Ask the EM/O owner to give the line up (flush if dirty)."""
        entry.busy = True
        entry.recall_owner = entry.owner
        self.recalls_sent += 1
        self._ctrl_to(entry.owner, MessageType.INV, address, BANK_LATENCY)
        # An OWNED line also has read-only sharers to kill (eager).
        for sharer in entry.sharers:
            if sharer != entry.owner:
                self._ctrl_to(sharer, MessageType.INV, address, BANK_LATENCY)
        entry.sharers.clear()

    def _forward(self, entry: DirEntry, address: int, requester: int) -> None:
        """MOESI: ask the dirty owner to forward the line to *requester*."""
        entry.busy = True
        entry.fwd_requester = requester
        self.forwards_sent += 1
        # requester names the forward *target*, not the recipient.
        self._send(
            CoherenceMessage(
                mtype=MessageType.FWD_GETS,
                src=self.node,
                dst=self.cpu_nodes[entry.owner],
                address=address,
                requester=requester,
            ),
            BANK_LATENCY,
        )

    # -- request handling ----------------------------------------------------

    def handle(self, msg: CoherenceMessage) -> None:
        """Process one incoming message addressed to this bank."""
        handler = {
            MessageType.GETS: self._on_gets,
            MessageType.GETM: self._on_getm,
            MessageType.UPGRADE: self._on_upgrade,
            MessageType.WB_DATA: self._on_wb_data,
            MessageType.INV_ACK: self._on_inv_ack,
            MessageType.FWD_DONE: self._on_fwd_done,
            MessageType.FWD_MISS: self._on_fwd_miss,
        }.get(msg.mtype)
        if handler is None:
            raise ValueError(f"bank {self.bank_index}: unexpected {msg.mtype}")
        handler(msg)

    def _on_gets(self, msg: CoherenceMessage) -> None:
        line = msg.address
        entry = self._entry(line)
        if entry.busy:
            entry.pending.append(msg)
            return
        cpu = msg.requester
        if entry.state is DirState.EXCLUSIVE:
            if self.protocol == "moesi":
                # Cache-to-cache: the owner forwards, no writeback.
                self._forward(entry, line, cpu)
            else:
                entry.pending.append(msg)
                self._recall(entry, line)
            return
        if entry.state is DirState.OWNED:
            self._forward(entry, line, cpu)
            return
        latency = self._array_latency(line)
        if entry.state is DirState.SHARED:
            entry.sharers.add(cpu)
            self._data_to(cpu, MessageType.DATA_S, line, latency)
        else:  # INVALID: grant exclusive (MESI E state)
            entry.state = DirState.EXCLUSIVE
            entry.owner = cpu
            self._data_to(cpu, MessageType.DATA_E, line, latency)

    def _on_getm(self, msg: CoherenceMessage) -> None:
        line = msg.address
        entry = self._entry(line)
        if entry.busy:
            entry.pending.append(msg)
            return
        cpu = msg.requester
        if (
            entry.state in (DirState.EXCLUSIVE, DirState.OWNED)
            and entry.owner != cpu
        ):
            entry.pending.append(msg)
            self._recall(entry, line)
            return
        if entry.state is DirState.OWNED and entry.owner == cpu:
            # The owner wants write permission back: kill the sharers.
            latency = self._array_latency(line)
            for sharer in entry.sharers:
                if sharer != cpu:
                    self._ctrl_to(sharer, MessageType.INV, line, latency)
            entry.sharers.clear()
            entry.state = DirState.EXCLUSIVE
            self._data_to(cpu, MessageType.DATA_E, line, latency)
            return
        latency = self._array_latency(line)
        if entry.state is DirState.SHARED:
            for sharer in entry.sharers:
                if sharer != cpu:
                    self._ctrl_to(sharer, MessageType.INV, line, latency)
            entry.sharers.clear()
        entry.state = DirState.EXCLUSIVE
        entry.owner = cpu
        self._data_to(cpu, MessageType.DATA_E, line, latency)

    def _on_upgrade(self, msg: CoherenceMessage) -> None:
        line = msg.address
        entry = self._entry(line)
        if entry.busy:
            entry.pending.append(msg)
            return
        cpu = msg.requester
        if entry.state is DirState.SHARED and cpu in entry.sharers:
            latency = self._array_latency(line)
            for sharer in entry.sharers:
                if sharer != cpu:
                    self._ctrl_to(sharer, MessageType.INV, line, latency)
            entry.sharers.clear()
            entry.state = DirState.EXCLUSIVE
            entry.owner = cpu
            self._ctrl_to(cpu, MessageType.UPGRADE_ACK, line, latency)
        else:
            # The sharer lost the line to a concurrent writer: fall back to
            # a full GetM.
            self._on_getm(
                CoherenceMessage(
                    mtype=MessageType.GETM,
                    src=msg.src,
                    dst=msg.dst,
                    address=line,
                    requester=cpu,
                )
            )

    def _resolve_recall(self, line: int, entry: DirEntry) -> None:
        """Owner gave the line up; drain pending requests.

        A pending read is granted SHARED (not EXCLUSIVE): the line is
        demonstrably contended, and re-granting E would make alternating
        readers recall each other forever.
        """
        entry.busy = False
        entry.recall_owner = -1
        entry.state = DirState.INVALID
        entry.owner = -1
        entry.sharers.clear()
        while entry.pending and not entry.busy:
            msg = entry.pending.popleft()
            if msg.mtype is MessageType.GETS and entry.state is DirState.INVALID:
                # Shared grant applies only while the line is still free;
                # if an earlier pending writer re-took it EXCLUSIVE, the
                # read must go through the normal (recall) path.
                latency = self._array_latency(line)
                entry.state = DirState.SHARED
                entry.sharers.add(msg.requester)
                self._data_to(msg.requester, MessageType.DATA_S, line, latency)
            else:
                self.handle(msg)
        self._maybe_gc(line)

    def _on_wb_data(self, msg: CoherenceMessage) -> None:
        line = msg.address
        entry = self.entries.get(line)
        if entry is not None and entry.busy:
            if msg.requester == entry.recall_owner:
                # Recall response carrying dirty data.
                self._resolve_recall(line, entry)
                return
            if entry.fwd_requester >= 0 and msg.requester == entry.owner:
                # The owner voluntarily evicted while our forward request
                # was in flight: the L2 has fresh data now, so it serves
                # the waiting reader itself.  The owner's FwdMiss reply
                # will arrive later and be ignored as stale.
                requester = entry.fwd_requester
                latency = self._array_latency(line)
                entry.owner = -1
                entry.fwd_requester = -1
                entry.state = DirState.SHARED
                entry.sharers.add(requester)
                self._data_to(requester, MessageType.DATA_S, line, latency)
                entry.busy = False
                self._ctrl_to(msg.requester, MessageType.WB_ACK, line, BANK_LATENCY)
                self._drain_pending(line, entry)
                return
            # Stale/racing writeback during an unrelated transaction.
            self._ctrl_to(msg.requester, MessageType.WB_ACK, line, BANK_LATENCY)
            return
        # Voluntary writeback of an evicted M (or MOESI O) line.
        if entry is not None and entry.owner == msg.requester:
            if entry.state is DirState.EXCLUSIVE:
                entry.state = DirState.INVALID
                entry.owner = -1
            elif entry.state is DirState.OWNED:
                # The data is now clean at the L2; sharers keep reading.
                entry.owner = -1
                entry.state = (
                    DirState.SHARED if entry.sharers else DirState.INVALID
                )
            self._maybe_gc(line)
        self._ctrl_to(msg.requester, MessageType.WB_ACK, line, BANK_LATENCY)

    def _drain_pending(self, line: int, entry: DirEntry) -> None:
        while entry.pending and not entry.busy:
            self.handle(entry.pending.popleft())
        self._maybe_gc(line)

    def _on_fwd_done(self, msg: CoherenceMessage) -> None:
        """The owner forwarded the line: adopt the MOESI O state."""
        line = msg.address
        entry = self.entries.get(line)
        if entry is None or not entry.busy or entry.fwd_requester < 0:
            return  # stale completion (line already recalled/evicted)
        entry.state = DirState.OWNED
        entry.sharers.add(entry.fwd_requester)
        entry.fwd_requester = -1
        entry.busy = False
        self._drain_pending(line, entry)

    def _on_fwd_miss(self, msg: CoherenceMessage) -> None:
        """The owner silently evicted its clean copy: the L2 supplies."""
        line = msg.address
        entry = self.entries.get(line)
        if entry is None or not entry.busy or entry.fwd_requester < 0:
            return
        requester = entry.fwd_requester
        latency = self._array_latency(line)
        entry.owner = -1
        entry.fwd_requester = -1
        entry.state = DirState.SHARED
        entry.sharers.add(requester)
        self._data_to(requester, MessageType.DATA_S, line, latency)
        entry.busy = False
        self._drain_pending(line, entry)

    def _on_inv_ack(self, msg: CoherenceMessage) -> None:
        line = msg.address
        entry = self.entries.get(line)
        if (
            entry is not None
            and entry.busy
            and msg.requester == entry.recall_owner
        ):
            # Recall response for a clean (E) line.
            self._resolve_recall(line, entry)
        # Acks for S-invalidations need no bookkeeping (grant was eager),
        # and acks from other CPUs during a recall are likewise eager
        # sharer kills.

    # -- invariants (used by tests) -------------------------------------------

    def check_invariants(self) -> None:
        """Raise if directory state is internally inconsistent."""
        for line, entry in self.entries.items():
            if entry.state is DirState.EXCLUSIVE:
                if entry.owner < 0:
                    raise AssertionError(f"EM line {line:#x} without owner")
                if entry.sharers:
                    raise AssertionError(f"EM line {line:#x} with sharers")
            if entry.state is DirState.OWNED:
                if entry.owner < 0:
                    raise AssertionError(f"O line {line:#x} without owner")
                if entry.owner in entry.sharers:
                    raise AssertionError(f"O line {line:#x}: owner in sharers")
            if entry.state is DirState.SHARED:
                if not entry.sharers:
                    raise AssertionError(f"S line {line:#x} without sharers")
                if entry.owner != -1:
                    raise AssertionError(f"S line {line:#x} with stale owner")
            if entry.state is DirState.INVALID and not entry.busy:
                if not entry.pending:
                    raise AssertionError(f"stale I entry for line {line:#x}")
