"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one-line access to the main flows:

* ``simulate``    — run one architecture under synthetic traffic
* ``compare``     — all six configurations side by side
* ``area``        — the Table 1 component-area breakdown
* ``delays``      — the Table 3 pipeline-merge validation
* ``trace``       — synthesise an MP trace from a workload model
* ``workloads``   — list the calibrated workload profiles
* ``experiment``  — run a named table/figure harness
* ``sweep``       — cached, resumable, fault-tolerant rate sweeps
* ``diagnose``    — congestion forensics: stall attribution, latency
  decomposition, and a hotspot/backpressure report for one run
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.arch import (
    Architecture,
    make_architecture,
    standard_configs,
)
from repro.experiments.config import ExperimentSettings
from repro.experiments.report import format_table
from repro.experiments.runner import run_nuca_point, run_uniform_point
from repro.traffic.workloads import WORKLOADS

_ARCH_BY_NAME = {arch.value: arch for arch in Architecture}

#: ``--topology`` shorthand names for the substrate fabrics.
_TOPOLOGY_ARCHS = {
    "ring": Architecture.RING,
    "chiplet": Architecture.CHIPLET,
    "irregular": Architecture.IRREGULAR,
}


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings.full() if args.full else ExperimentSettings.quick()


def _resolve_arch(name: str) -> Architecture:
    if name not in _ARCH_BY_NAME:
        raise SystemExit(
            f"unknown architecture {name!r}; choose from {sorted(_ARCH_BY_NAME)}"
        )
    return _ARCH_BY_NAME[name]


def _make_config(args: argparse.Namespace):
    """The architecture a simulate/diagnose invocation names.

    ``--topology ring|chiplet|irregular`` overrides ``--arch``;
    irregular fabrics additionally need ``--topology-file``.
    """
    topology = getattr(args, "topology", None)
    arch = _TOPOLOGY_ARCHS[topology] if topology else _resolve_arch(args.arch)
    kwargs = {}
    if arch is Architecture.IRREGULAR:
        topology_file = getattr(args, "topology_file", None)
        if not topology_file:
            raise SystemExit(
                "irregular fabrics need --topology-file JSON (see "
                "`repro topologies`)"
            )
        kwargs["topology_file"] = topology_file
    return make_architecture(arch, **kwargs)


def _parse_channel(text: str) -> tuple:
    """``"SRC:DST"`` -> (src, dst)."""
    try:
        src, dst = (int(part) for part in text.split(":"))
    except ValueError:
        raise SystemExit(f"expected SRC:DST, got {text!r}")
    return src, dst


def _parse_stuck_vc(text: str) -> tuple:
    """``"NODE:PORT:VC"`` -> (node, port, vc)."""
    try:
        node, port, vc = (int(part) for part in text.split(":"))
    except ValueError:
        raise SystemExit(f"expected NODE:PORT:VC, got {text!r}")
    return node, port, vc


def _fault_plan(args: argparse.Namespace, config):
    """Build the FaultPlan the simulate flags describe, or ``None``."""
    if not (args.inject_faults or args.fail_link or args.stick_vc):
        return None
    from repro.resilience.faults import FaultPlan, LinkFault, StuckVCFault

    links = [
        LinkFault(cycle=args.fault_cycle, src=src, dst=dst)
        for src, dst in (_parse_channel(t) for t in args.fail_link or ())
    ]
    if args.inject_faults:
        sampled = FaultPlan.random_links(
            config.build_topology(),
            args.inject_faults,
            args.fault_seed,
            cycle=args.fault_cycle,
            mode=args.fault_mode,
        )
        links.extend(sampled.links)
    vcs = tuple(
        StuckVCFault(cycle=args.fault_cycle, node=node, port=port, vc=vc)
        for node, port, vc in (_parse_stuck_vc(t) for t in args.stick_vc or ())
    )
    return FaultPlan(links=tuple(links), vcs=vcs, mode=args.fault_mode)


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _make_config(args)
    settings = _settings(args)
    telemetry = None
    if args.metrics_out or args.trace_out:
        # Lazy import: telemetry-free invocations never load the package.
        from repro.telemetry.sampler import TelemetryConfig

        telemetry = TelemetryConfig(
            interval=args.metrics_interval,
            metrics_path=args.metrics_out,
            trace_path=args.trace_out,
            trace_sample_rate=args.trace_sample_rate,
            trace_head_tail=args.trace_head_tail,
            trace_seed=args.trace_seed,
            arch_config=config,
        )
    faults = _fault_plan(args, config)
    variation = None
    if args.variation_sigma:
        from repro.resilience.variation import VariationModel

        variation = VariationModel(
            args.variation_sigma, seed=args.variation_seed
        ).sample_for(config)
    if args.traffic == "uniform":
        point = run_uniform_point(
            config, args.rate, settings,
            short_flit_fraction=args.short_flits,
            shutdown_enabled=args.short_flits > 0,
            profile=args.profile,
            sanitize=args.sanitize,
            sanitize_interval=args.sanitize_interval,
            telemetry=telemetry,
            faults=faults,
            variation=variation,
        )
    else:
        point = run_nuca_point(
            config, args.rate, settings,
            short_flit_fraction=args.short_flits,
            shutdown_enabled=args.short_flits > 0,
            profile=args.profile,
            sanitize=args.sanitize,
            sanitize_interval=args.sanitize_interval,
            telemetry=telemetry,
            faults=faults,
            variation=variation,
        )
    print(f"architecture      : {point.arch}")
    print(f"traffic           : {point.label}")
    print(f"avg latency       : {point.avg_latency:.2f} cycles")
    print(f"avg hops          : {point.avg_hops:.2f}")
    print(f"throughput        : {point.sim.throughput:.4f} flits/node/cycle")
    print(f"network power     : {point.total_power_w:.3f} W")
    print(f"power-delay prod. : {point.pdp * 1e9:.3f} W*ns")
    if point.sim.fault_summary is not None:
        fs = point.sim.fault_summary
        print(
            f"faults            : {fs['links_killed']} links killed "
            f"({fs['mode']}), {fs['vcs_stuck']} VCs stuck, "
            f"{point.sim.packets_dropped} packets dropped"
        )
    if variation is not None:
        print(
            f"variation         : sigma {variation.sigma:g} seed "
            f"{variation.seed}, worst delay x"
            f"{variation.worst_delay_multiplier:.3f}, leakage x"
            f"{variation.leakage_multiplier:.3f}"
        )
    if point.sim.saturated:
        print("warning           : network saturated at this load")
    if point.sim.profile is not None:
        print("--- hot-loop profile ---")
        print(point.sim.profile.format())
    if point.sim.sanity is not None:
        print("--- sanitizer ---")
        print(point.sim.sanity.format())
    if point.sim.telemetry is not None:
        print("--- telemetry ---")
        print(point.sim.telemetry.format())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    settings = _settings(args)
    rows = []
    summary = {}
    for config in standard_configs():
        point = run_uniform_point(config, args.rate, settings)
        rows.append(
            [
                config.name,
                f"{point.avg_latency:.2f}",
                f"{point.avg_hops:.2f}",
                f"{point.total_power_w:.3f}",
                f"{point.pdp * 1e9:.3f}",
            ]
        )
        summary[config.name] = {
            "avg_latency": point.avg_latency,
            "avg_hops": point.avg_hops,
            "total_power_w": point.total_power_w,
            "pdp_wns": point.pdp * 1e9,
            "throughput": point.sim.throughput,
            "saturated": point.sim.saturated,
        }
    print(f"uniform random @ {args.rate:g} flits/node/cycle")
    print(
        format_table(
            ["arch", "latency (cyc)", "hops", "power (W)", "PDP (W*ns)"], rows
        )
    )
    if args.json:
        # Machine-readable mirror of the table, same writer convention
        # as `sweep --stats-out` (pretty-printed, sorted, newline).
        import json
        from pathlib import Path

        json_path = Path(args.json)
        if json_path.parent != Path(""):
            json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps({
            "traffic": "uniform",
            "rate": args.rate,
            "archs": summary,
        }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {json_path}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    """Run one point with stall attribution + sampled lifecycle capture
    and print the congestion-forensics report."""
    from repro.telemetry import format_stall_report
    from repro.telemetry.sampler import TelemetryConfig

    config = make_architecture(_resolve_arch(args.arch))
    settings = _settings(args)
    telemetry = TelemetryConfig(
        interval=args.interval,
        attribution=True,
        attribution_top_k=args.top,
        trace_capture=True,
        trace_sample_rate=args.sample_rate,
        trace_head_tail=args.head_tail,
        trace_seed=args.trace_seed,
        arch_config=config,
    )
    run = run_uniform_point if args.traffic == "uniform" else run_nuca_point
    point = run(
        config, args.rate, settings,
        short_flit_fraction=args.short_flits,
        shutdown_enabled=args.short_flits > 0,
        telemetry=telemetry,
    )
    report = point.sim.telemetry.stall_report
    print(f"architecture      : {point.arch}")
    print(f"traffic           : {point.label}")
    print(f"avg latency       : {point.avg_latency:.2f} cycles")
    print(f"throughput        : {point.sim.throughput:.4f} flits/node/cycle")
    if point.sim.saturated:
        print("warning           : network saturated at this load")
    print()
    print(format_stall_report(report))
    if args.json:
        import json
        from pathlib import Path

        json_path = Path(args.json)
        if json_path.parent != Path(""):
            json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {json_path}")
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    from repro.experiments.area_tables import table1_area

    table = table1_area()
    modules = ["RC", "SA1", "SA2", "VA1", "VA2", "Crossbar", "Buffer"]
    rows = []
    for module in modules:
        rows.append(
            [module]
            + [f"{table[a]['model'].per_layer[module]:,.0f}"
               for a in ("2DB", "3DB", "3DM", "3DM-E")]
        )
    rows.append(
        ["Total"]
        + [f"{table[a]['model'].total:,.0f}" for a in ("2DB", "3DB", "3DM", "3DM-E")]
    )
    print("router component area (um^2), Table 1 model")
    print(format_table(["module", "2DB", "3DB", "3DM*", "3DM-E*"], rows))
    return 0


def cmd_delays(args: argparse.Namespace) -> int:
    from repro.experiments.area_tables import table3_delays

    rows = [
        [
            r.name,
            f"{r.xbar_ps:.2f}",
            f"{r.link_ps:.2f}",
            f"{r.combined_ps:.2f}",
            "Yes" if r.can_combine else "No",
        ]
        for r in table3_delays()
    ]
    print("pipeline-merge delay validation (Table 3), 500 ps budget")
    print(format_table(["design", "XBAR ps", "Link ps", "Combined", "merge?"], rows))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.cache.hierarchy import generate_trace
    from repro.traffic.traces import write_trace

    if args.workload not in WORKLOADS:
        raise SystemExit(
            f"unknown workload {args.workload!r}; see `repro workloads`"
        )
    config = make_architecture(_resolve_arch(args.arch))
    records, stats = generate_trace(
        config, WORKLOADS[args.workload], cycles=args.cycles, seed=args.seed
    )
    count = write_trace(args.output, records)
    print(f"wrote {count} packets to {args.output}")
    print(f"L1 miss rate {stats.l1_miss_rate:.3f}, "
          f"{stats.ctrl_packet_fraction:.0%} control packets")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    rows = [
        [
            p.name,
            f"{p.short_flit_fraction:.0%}",
            f"{p.ctrl_packet_fraction:.0%}",
            f"{p.request_rate:g}",
            f"{p.l1_miss_rate:.1%}",
        ]
        for p in WORKLOADS.values()
    ]
    print(
        format_table(
            ["workload", "short flits", "ctrl pkts", "req rate", "L1 miss"], rows
        )
    )
    return 0


def cmd_topologies(args: argparse.Namespace) -> int:
    """List the topology substrate: fabrics, routing dispatch, radix."""
    from repro.core.arch import fabric_configs
    from repro.noc.routing import registered_routings, routing_for_topology

    print("routing registry (most-derived topology class wins):")
    for topo_cls, factory in sorted(
        registered_routings().items(), key=lambda kv: kv[0].__name__
    ):
        factory_name = getattr(factory, "__name__", type(factory).__name__)
        print(f"  {topo_cls.__name__:<14} -> {factory_name}")
    print()
    print("fabric architectures (`repro simulate --topology ...`):")
    rows = []
    for config in fabric_configs():
        topology = config.build_topology()
        routing = routing_for_topology(topology)
        rows.append([
            config.name,
            type(topology).__name__,
            f"{topology.num_nodes}",
            f"{len(topology.links)}",
            f"{topology.max_radix()}",
            getattr(routing, "describe", lambda: type(routing).__name__)(),
        ])
    print(format_table(
        ["arch", "topology", "nodes", "links", "radix", "routing"], rows
    ))
    print()
    print(
        "irregular fabrics: `repro simulate --topology irregular "
        "--topology-file graph.json` (JSON schema: "
        "repro.topology.irregular)"
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Cached, resumable, fault-tolerant sweep over archs x rates."""
    import json

    from repro.experiments.export import export_json, sweep_to_dict
    from repro.experiments.sweep import run_sweep, specs_for_grid

    settings = _settings(args)
    archs = []
    for name in args.archs.split(","):
        arch = _resolve_arch(name.strip())
        if arch is Architecture.IRREGULAR:
            if not args.topology_file:
                raise SystemExit(
                    "sweeping IRREG needs --topology-file JSON"
                )
            archs.append(
                make_architecture(arch, topology_file=args.topology_file)
            )
        else:
            archs.append(arch)
    if args.rates:
        rates = [float(r) for r in args.rates.split(",")]
    else:
        rates = list(
            settings.uniform_rates if args.traffic == "uniform"
            else settings.nuca_rates
        )
    outcome = run_sweep(
        specs_for_grid(archs, rates, kind=args.traffic),
        settings,
        processes=args.processes,
        cache_dir=args.cache_dir,
        journal_path=args.journal,
        resume=args.resume,
        retries=args.retries,
        backoff_s=args.backoff,
        point_timeout=args.point_timeout,
        failure_mode="report",
        telemetry_dir=args.telemetry_dir,
        telemetry_attribution=args.telemetry_attribution,
        progress=args.progress,
        progress_jsonl=args.progress_jsonl,
    )

    rows = []
    for arch, series in outcome.series.items():
        for rate, point in series:
            rows.append([
                arch, f"{rate:g}", f"{point.avg_latency:.2f}",
                f"{point.avg_hops:.2f}", f"{point.total_power_w:.3f}",
            ])
    print(f"{args.traffic} sweep, {len(archs)} arch(s) x {len(rates)} rate(s)")
    print(format_table(
        ["arch", "rate", "latency (cyc)", "hops", "power (W)"], rows
    ))
    print("--- sweep engine ---")
    print(outcome.stats.format())
    for failure in outcome.failures:
        print(f"FAILED: {failure.describe()}")
    if args.out:
        path = export_json(sweep_to_dict(outcome.series), args.out)
        print(f"wrote {path}")
    if args.stats_out:
        from pathlib import Path

        stats_path = Path(args.stats_out)
        if stats_path.parent != Path(""):
            stats_path.parent.mkdir(parents=True, exist_ok=True)
        stats_path.write_text(json.dumps({
            "stats": outcome.stats.to_json(),
            "failures": [f.describe() for f in outcome.failures],
        }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {stats_path}")
    return 0 if outcome.ok else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as exp
    from repro.experiments.report import dict_table, sweep_table

    settings = _settings(args)
    store = None
    if getattr(args, "cache_dir", None):
        from repro.experiments.store import ResultStore

        store = ResultStore(args.cache_dir)
    name = args.name
    if name == "fig11a":
        print(sweep_table(
            exp.fig11a_uniform_latency(settings, store=store), "avg_latency"
        ))
    elif name == "fig11b":
        print(sweep_table(
            exp.fig11b_nuca_latency(settings, store=store), "avg_latency"
        ))
    elif name == "fig11d":
        print(dict_table(exp.fig11d_hop_counts(settings), row_label="traffic"))
    elif name == "fig12a":
        print(sweep_table(
            exp.fig12a_uniform_power(settings, store=store), "total_power_w"
        ))
    elif name == "fig13a":
        fractions = exp.fig13a_short_flit_fractions(settings)
        print(dict_table({"short_flits": fractions}, row_label=""))
    elif name == "fig13b":
        savings = exp.fig13b_shutdown_savings(
            settings=settings,
            analytic=args.analytic_shutdown,
            store=store,
        )
        print(dict_table(
            {
                arch: {f"{s:g} short": v for s, v in by_s.items()}
                for arch, by_s in savings.items()
            },
            row_label="arch",
        ))
    elif name == "fig13c":
        drops = exp.fig13c_temperature_reduction(
            settings,
            store=store,
            analytic_split=args.analytic_shutdown,
        )
        print(dict_table(
            {"temp_drop_k": {f"{r:g}": v for r, v in drops.items()}},
            row_label="rate",
        ))
    elif name == "fig9":
        print(dict_table(exp.fig9_energy_breakdown(), row_label="arch"))
    elif name == "fig1":
        print(dict_table(exp.fig1_data_patterns(), row_label="workload"))
    elif name == "fig_topology":
        results = exp.fig_topology(settings, store=store)
        print("--- layer-shutdown saving by fabric (Fig. 13b protocol) ---")
        print(dict_table(
            {
                arch: {f"{s:g} short": v for s, v in by_s.items()}
                for arch, by_s in results["shutdown"].items()
            },
            row_label="fabric",
        ))
        print("--- uniform-random latency by fabric ---")
        print(dict_table(
            {
                arch: {f"{r:g}": lat for r, lat in series}
                for arch, series in results["latency"].items()
            },
            row_label="fabric",
        ))
    elif name == "fig_resilience":
        variation = exp.fig_resilience_variation(settings, store=store)
        faults = exp.fig_resilience_faults(settings, store=store)
        print("--- variation (latency/power spread over seeds) ---")
        print(dict_table(exp.variation_summary(variation), row_label="arch"))
        print("--- faults (drain-mode link kills) ---")
        for arch, rows in exp.fault_summary_table(faults).items():
            for row in rows:
                print(
                    f"{arch:<10} faults={row['faults']:g} "
                    f"lat={row['avg_latency']:.2f} "
                    f"delivered={row['packets_delivered']:g} "
                    f"dropped={row['packets_dropped']:g}"
                )
    else:
        raise SystemExit(
            "unknown experiment; choose from fig1, fig9, fig11a, fig11b, "
            "fig11d, fig12a, fig13a, fig13b, fig13c, fig_resilience, "
            "fig_topology (run the benchmark suite for the rest)"
        )
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """One-command reproduction: run the benchmark suite, then stitch
    the artifacts into results/REPORT.md."""
    import subprocess
    from pathlib import Path

    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-q", "-p", "no:cacheprovider",
    ]
    if args.filter:
        cmd += ["-k", args.filter]
    print("running:", " ".join(cmd))
    completed = subprocess.run(cmd)
    if completed.returncode != 0:
        print("benchmark suite reported failures; see output above")
    results = Path("results")
    if results.is_dir():
        from repro.experiments.summary import write_report

        try:
            output = write_report(results)
            print(f"wrote {output}")
        except FileNotFoundError:
            print("no artifacts produced; skipping report")
    return completed.returncode


def cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.summary import write_report

    output = write_report(Path(args.results))
    print(f"wrote {output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIRA (ISCA 2008) reproduction toolkit",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the full-scale experiment settings",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate one architecture")
    sim.add_argument("--arch", default="3DM", help="2DB/3DB/3DM/3DM-E/...")
    sim.add_argument(
        "--topology", choices=sorted(_TOPOLOGY_ARCHS), default=None,
        help="simulate a substrate fabric instead of --arch "
        "(see `repro topologies`)",
    )
    sim.add_argument(
        "--topology-file", default=None, metavar="PATH",
        help="JSON link-list file for --topology irregular",
    )
    sim.add_argument("--rate", type=float, default=0.2)
    sim.add_argument("--traffic", choices=["uniform", "nuca"], default="uniform")
    sim.add_argument("--short-flits", type=float, default=0.0)
    sim.add_argument(
        "--profile", action="store_true",
        help="report cycles/sec, active-router ratio and phase wall times",
    )
    sim.add_argument(
        "--sanitize", action="store_true",
        help="audit flit-conservation / credit / VC-state invariants "
        "every cycle and fail fast on the first violation",
    )
    sim.add_argument(
        "--sanitize-interval", type=int, default=1, metavar="N",
        help="with --sanitize: audit every N cycles (default 1)",
    )
    sim.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="stream windowed telemetry metrics to PATH as JSONL",
    )
    sim.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto/chrome://tracing flit-lifecycle trace "
        "to PATH (JSON)",
    )
    sim.add_argument(
        "--metrics-interval", type=int, default=100, metavar="N",
        help="telemetry sampling window in cycles (default 100)",
    )
    sim.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="P",
        help="with --trace-out: capture each packet's lifecycle with "
        "probability P (deterministic seeded id hash; default 1.0 = "
        "capture everything)",
    )
    sim.add_argument(
        "--trace-head-tail", type=int, default=0, metavar="K",
        help="with --trace-out: always capture the first K and last K "
        "packets regardless of the sample rate (default 0)",
    )
    sim.add_argument(
        "--trace-seed", type=int, default=0, metavar="S",
        help="seed for the trace sampling hash: same seed, same "
        "captured packets (default 0)",
    )
    sim.add_argument(
        "--inject-faults", type=int, default=0, metavar="N",
        help="kill N seeded-random directed links (see --fault-seed / "
        "--fault-cycle / --fault-mode)",
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0, metavar="S",
        help="RNG seed for the random link sample (default 0)",
    )
    sim.add_argument(
        "--fault-cycle", type=int, default=0, metavar="C",
        help="cycle the injected faults apply at (default 0)",
    )
    sim.add_argument(
        "--fault-mode", choices=["hard", "drain"], default="hard",
        help="hard = credit-starving electrical failure; drain = "
        "routing-level fence, committed wormholes finish (default hard)",
    )
    sim.add_argument(
        "--fail-link", action="append", metavar="SRC:DST",
        help="kill this directed channel (repeatable)",
    )
    sim.add_argument(
        "--stick-vc", action="append", metavar="NODE:PORT:VC",
        help="freeze this input VC at --fault-cycle (repeatable)",
    )
    sim.add_argument(
        "--variation-sigma", type=float, default=0.0, metavar="S",
        help="process-variation sigma; latency/power reflect the "
        "sampled corner (default 0 = no variation)",
    )
    sim.add_argument(
        "--variation-seed", type=int, default=0, metavar="S",
        help="variation sample seed (default 0)",
    )
    sim.set_defaults(func=cmd_simulate)

    cmp_ = sub.add_parser("compare", help="compare all six configurations")
    cmp_.add_argument("--rate", type=float, default=0.2)
    cmp_.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the comparison as machine-readable JSON "
        "(same convention as `sweep --stats-out`)",
    )
    cmp_.set_defaults(func=cmd_compare)

    diag = sub.add_parser(
        "diagnose",
        help="congestion forensics: stall attribution, latency "
        "decomposition, hotspots and backpressure for one run",
    )
    diag.add_argument("--arch", default="3DM", help="2DB/3DB/3DM/3DM-E/...")
    diag.add_argument(
        "--rate", type=float, default=0.35,
        help="injection rate; defaults high (0.35) so there is "
        "congestion worth diagnosing",
    )
    diag.add_argument(
        "--traffic", choices=["uniform", "nuca"], default="uniform"
    )
    diag.add_argument("--short-flits", type=float, default=0.0)
    diag.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="hotspot links/routers listed in the report (default 5)",
    )
    diag.add_argument(
        "--interval", type=int, default=100, metavar="N",
        help="telemetry sampling window in cycles (default 100)",
    )
    diag.add_argument(
        "--sample-rate", type=float, default=0.25, metavar="P",
        help="fraction of packets whose lifecycles feed the latency "
        "decomposition (default 0.25)",
    )
    diag.add_argument(
        "--head-tail", type=int, default=16, metavar="K",
        help="always decompose the first/last K packets too (default 16)",
    )
    diag.add_argument(
        "--trace-seed", type=int, default=0, metavar="S",
        help="packet-sampling hash seed (default 0)",
    )
    diag.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full stall report as JSON",
    )
    diag.set_defaults(func=cmd_diagnose)

    area = sub.add_parser("area", help="Table 1 area breakdown")
    area.set_defaults(func=cmd_area)

    delays = sub.add_parser("delays", help="Table 3 delay validation")
    delays.set_defaults(func=cmd_delays)

    trace = sub.add_parser("trace", help="generate an MP trace file")
    trace.add_argument("--workload", default="tpcw")
    trace.add_argument("--arch", default="2DB")
    trace.add_argument("--cycles", type=int, default=30000)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--output", default="trace.txt")
    trace.set_defaults(func=cmd_trace)

    wl = sub.add_parser("workloads", help="list workload models")
    wl.set_defaults(func=cmd_workloads)

    topo = sub.add_parser(
        "topologies",
        help="list the topology substrate: fabrics, routing, radix",
    )
    topo.set_defaults(func=cmd_topologies)

    ex = sub.add_parser("experiment", help="run a table/figure harness")
    ex.add_argument("name")
    ex.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="serve simulation points from (and fill) the result cache",
    )
    ex.add_argument(
        "--analytic-shutdown", action="store_true",
        help="use the closed-form shutdown model instead of the "
        "layer-resolved simulated path (fig13b/fig13c)",
    )
    ex.set_defaults(func=cmd_experiment)

    sweep = sub.add_parser(
        "sweep",
        help="cached, resumable, fault-tolerant sweep over archs x rates",
    )
    sweep.add_argument(
        "--archs", default="2DB,3DB,3DM,3DM(NC),3DM-E,3DM-E(NC)",
        help="comma-separated architecture names (fabrics RING, CHIPLET "
        "and IRREG sweep too; see `repro topologies`)",
    )
    sweep.add_argument(
        "--topology-file", default=None, metavar="PATH",
        help="JSON link-list file backing IRREG entries in --archs",
    )
    sweep.add_argument(
        "--rates", default="",
        help="comma-separated injection rates "
        "(default: the scale preset's rate grid)",
    )
    sweep.add_argument(
        "--traffic", choices=["uniform", "nuca"], default="uniform"
    )
    sweep.add_argument("--processes", type=int, default=2)
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache; finished points are "
        "served without simulating",
    )
    sweep.add_argument(
        "--journal", default=None, metavar="PATH",
        help="JSONL run journal checkpointing each completed point",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: append to the journal and "
        "skip points already in the cache (requires --cache-dir)",
    )
    sweep.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry each failed/timed-out point up to N times "
        "with exponential backoff",
    )
    sweep.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="initial retry backoff; doubles per attempt (default 0.5)",
    )
    sweep.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="terminate any point running longer than this "
        "(counts as a failed attempt)",
    )
    sweep.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="per-point windowed telemetry JSONL streams",
    )
    sweep.add_argument(
        "--telemetry-attribution", action="store_true",
        help="with --telemetry-dir: attribute stalled unit-cycles per "
        "point and write <dir>/<point>.stalls.json reports",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="print per-point progress (done/total, retries, cache "
        "hits, ETA) to stderr as the sweep runs",
    )
    sweep.add_argument(
        "--progress-jsonl", default=None, metavar="PATH",
        help="stream per-point progress events to PATH as JSONL",
    )
    sweep.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the sweep series as JSON",
    )
    sweep.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="write cache/retry counters and the failure report as JSON",
    )
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser(
        "report", help="stitch results/ artifacts into REPORT.md"
    )
    report.add_argument("--results", default="results")
    report.set_defaults(func=cmd_report)

    reproduce = sub.add_parser(
        "reproduce",
        help="run the full benchmark suite and write results/REPORT.md",
    )
    reproduce.add_argument(
        "--filter", default="",
        help="pytest -k expression to run a subset (e.g. 'table1')",
    )
    reproduce.set_defaults(func=cmd_reproduce)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
