"""Per-architecture thermal floorplans (Fig. 10 layouts).

A floorplan is a ``layers x ny x nx`` grid of thermal cells with a power
assignment.  Layer 0 is the top layer (heat-sink side) — note this is the
*reverse* of the topology's z axis, where ``z = depth - 1`` is the top.

Power assignment rules follow Sec. 4.2.3:

* each CPU tile dissipates 8 W, each cache tile 0.1 W (static),
* router power comes from the NoC simulation,
* in the multi-layer (3DM/3DM-E) configurations, core and cache power is
  divided equally among the four layers; router power is split according
  to the layer plan (logic concentrated in the top layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.arch import Architecture, ArchitectureConfig
from repro.power import technology as tech

#: Router dynamic-power split across the four layers of a multi-layer
#: router: the top layer holds RC/SA/VA1 plus its datapath slice
#: (Sec. 3.2.7), so it runs hotter than the bottom three.
MULTILAYER_ROUTER_SPLIT = (0.40, 0.20, 0.20, 0.20)


@dataclass
class Floorplan:
    """A thermal grid with power sources.

    Attributes:
        name: architecture tag.
        layers, ny, nx: grid dimensions (layer 0 = top).
        pitch_m: cell edge length in metres.
        power_w: per-cell power array, shape ``(layers, ny, nx)``.
    """

    name: str
    layers: int
    ny: int
    nx: int
    pitch_m: float
    power_w: np.ndarray

    def __post_init__(self) -> None:
        expected = (self.layers, self.ny, self.nx)
        if self.power_w.shape != expected:
            raise ValueError(
                f"power array shape {self.power_w.shape} != grid {expected}"
            )
        if np.any(self.power_w < 0):
            raise ValueError("cell powers must be non-negative")

    @property
    def cell_area_m2(self) -> float:
        return self.pitch_m * self.pitch_m

    @property
    def total_power_w(self) -> float:
        return float(self.power_w.sum())


def _node_powers(
    config: ArchitectureConfig,
    router_power_w: Sequence[float],
    cpu_power_w: float,
    cache_power_w: float,
) -> Dict[int, float]:
    cpu_set = set(config.cpu_nodes)
    powers: Dict[int, float] = {}
    for node in range(config.num_nodes):
        core = cpu_power_w if node in cpu_set else cache_power_w
        powers[node] = core + router_power_w[node]
    return powers


def floorplan_for(
    config: ArchitectureConfig,
    router_power_w: Optional[Sequence[float]] = None,
    cpu_power_w: float = tech.CPU_CORE_POWER_W,
    cache_power_w: float = tech.CACHE_BANK_POWER_W,
    router_layer_power_w: Optional[Sequence[Sequence[float]]] = None,
) -> Floorplan:
    """Build the thermal floorplan for *config*.

    Args:
        router_power_w: per-node router power (W); defaults to zero.
        router_layer_power_w: per-node, per-datapath-layer router power
            (W) from a layer-resolved simulation
            (:meth:`~repro.experiments.runner.PointResult.
            router_layer_power_per_node`).  For multi-layer
            configurations this replaces the constant
            :data:`MULTILAYER_ROUTER_SPLIT` with the split the traffic
            actually produced (datapath layer 0 = thermal layer 0, the
            always-on top group on the heat-sink side); planar/3DB
            floorplans collapse it by summing over layers.  Mutually
            exclusive with ``router_power_w``.
    """
    if router_layer_power_w is not None:
        if router_power_w is not None:
            raise ValueError(
                "pass router_power_w or router_layer_power_w, not both"
            )
        if len(router_layer_power_w) != config.num_nodes:
            raise ValueError(
                f"need {config.num_nodes} router layer-power rows, "
                f"got {len(router_layer_power_w)}"
            )
        router_power_w = [sum(row) for row in router_layer_power_w]
    if router_power_w is None:
        router_power_w = [0.0] * config.num_nodes
    if len(router_power_w) != config.num_nodes:
        raise ValueError(
            f"need {config.num_nodes} router powers, got {len(router_power_w)}"
        )

    if config.arch is Architecture.BASELINE_3D:
        width, height, depth = config.dims
        power = np.zeros((depth, height, width))
        topo_powers = _node_powers(config, router_power_w, cpu_power_w, cache_power_w)
        plane = width * height
        for node, watts in topo_powers.items():
            z, rest = divmod(node, plane)
            y, x = divmod(rest, width)
            thermal_layer = depth - 1 - z  # topology top layer -> layer 0
            power[thermal_layer, y, x] = watts
        return Floorplan(
            name=config.name,
            layers=depth,
            ny=height,
            nx=width,
            pitch_m=config.pitch_mm * 1e-3,
            power_w=power,
        )

    width, height = config.dims
    node_powers = _node_powers(config, router_power_w, cpu_power_w, cache_power_w)
    if not config.is_multilayer:
        power = np.zeros((1, height, width))
        for node, watts in node_powers.items():
            y, x = divmod(node, width)
            power[0, y, x] = watts
        return Floorplan(
            name=config.name,
            layers=1,
            ny=height,
            nx=width,
            pitch_m=config.pitch_mm * 1e-3,
            power_w=power,
        )

    # Multi-layer: cores/caches split evenly across layers, routers per
    # the simulated layer map when one is given, else the layer plan
    # split.
    layers = config.layers
    power = np.zeros((layers, height, width))
    cpu_set = set(config.cpu_nodes)
    split = MULTILAYER_ROUTER_SPLIT
    if len(split) != layers:
        split = tuple(1.0 / layers for _ in range(layers))
    if router_layer_power_w is not None:
        for row in router_layer_power_w:
            if len(row) != layers:
                raise ValueError(
                    f"layer-power rows must have {layers} entries, "
                    f"got {len(row)}"
                )
    for node in range(config.num_nodes):
        y, x = divmod(node, width)
        core = cpu_power_w if node in cpu_set else cache_power_w
        for layer in range(layers):
            router_watts = (
                router_layer_power_w[node][layer]
                if router_layer_power_w is not None
                else router_power_w[node] * split[layer]
            )
            power[layer, y, x] = core / layers + router_watts
    return Floorplan(
        name=config.name,
        layers=layers,
        ny=height,
        nx=width,
        pitch_m=config.pitch_mm * 1e-3,
        power_w=power,
    )
