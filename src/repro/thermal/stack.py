"""Die-stack material and boundary parameters.

Face-to-back TSV stacking (Sec. 2.2): each active silicon layer conducts
laterally and couples vertically to its neighbour through a thinned
silicon + bond interface; the top layer (layer 0 in our numbering)
attaches to the heat spreader / sink.  Values are standard 3D-IC compact
model parameters; the heat-sink resistance is the usual forced-air
package figure.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ambient temperature (K) used by HotSpot-style steady-state solves.
AMBIENT_K = 318.15  # 45 C chassis ambient, HotSpot's default neighbourhood


@dataclass(frozen=True)
class StackParameters:
    """Compact thermal model constants.

    Attributes:
        k_silicon_w_mk: silicon thermal conductivity (W / m K).
        layer_thickness_m: active-layer silicon thickness.
        bond_conductance_w_m2k: vertical conductance per unit area of one
            thinned-silicon + bond interface between adjacent layers.
        sink_resistance_k_m2_w: heat-sink + spreader resistance normalised
            per unit area (K m^2 / W); dividing by cell area gives the
            per-cell conductance.
        ambient_k: ambient temperature (K).
    """

    k_silicon_w_mk: float = 150.0
    layer_thickness_m: float = 50e-6
    bond_conductance_w_m2k: float = 2.0e5
    sink_resistance_k_m2_w: float = 2.5e-5
    ambient_k: float = AMBIENT_K

    def __post_init__(self) -> None:
        if min(
            self.k_silicon_w_mk,
            self.layer_thickness_m,
            self.bond_conductance_w_m2k,
            self.sink_resistance_k_m2_w,
        ) <= 0:
            raise ValueError("all stack parameters must be positive")

    def lateral_conductance(self, pitch_m: float) -> float:
        """Cell-to-cell lateral conductance inside one layer (W/K).

        Conduction cross-section is (thickness x pitch) over a pitch-long
        path, so the pitch cancels: G = k * t.
        """
        del pitch_m
        return self.k_silicon_w_mk * self.layer_thickness_m

    def vertical_conductance(self, cell_area_m2: float) -> float:
        """Layer-to-layer conductance through one bond interface (W/K)."""
        return self.bond_conductance_w_m2k * cell_area_m2

    def sink_conductance(self, cell_area_m2: float) -> float:
        """Top-layer cell to ambient conductance via the heat sink (W/K)."""
        return cell_area_m2 / self.sink_resistance_k_m2_w
