"""Transient thermal simulation (HotSpot's time-domain mode).

Backward-Euler integration of the compact thermal network::

    C dT/dt = -G (T - boundary) + P(t)

with per-cell silicon heat capacity.  The system matrix is factorised
once (the time step is fixed), so stepping through a long power trace is
cheap.  Power traces come from the NoC simulator's activity sampling
(:class:`repro.noc.simulator.Simulator` with ``sample_interval``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.sparse import identity
from scipy.sparse.linalg import splu

from repro.core.arch import ArchitectureConfig
from repro.noc.simulator import SimulationResult
from repro.power import technology as tech
from repro.power.orion import RouterEnergyModel
from repro.thermal.floorplan import Floorplan, floorplan_for
from repro.thermal.solver import ThermalGrid

#: Volumetric heat capacity of silicon, J / (m^3 K).
SILICON_HEAT_CAPACITY = 1.63e6


class TransientSolver:
    """Time-steps a :class:`~repro.thermal.solver.ThermalGrid`."""

    def __init__(self, grid: ThermalGrid, dt_s: float) -> None:
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        self.grid = grid
        self.dt_s = dt_s
        fp = grid.floorplan
        cell_volume = fp.cell_area_m2 * grid.params.layer_thickness_m
        #: Heat capacity per cell (all cells identical), J/K.
        self.cell_capacity = SILICON_HEAT_CAPACITY * cell_volume
        n = fp.layers * fp.ny * fp.nx
        system = grid._matrix + identity(n) * (self.cell_capacity / dt_s)
        self._lu = splu(system.tocsc())
        g_sink = grid.params.sink_conductance(fp.cell_area_m2)
        self._boundary = np.zeros(n)
        self._boundary[: fp.ny * fp.nx] = g_sink * grid.params.ambient_k

    def step(self, temps: np.ndarray, power_w: np.ndarray) -> np.ndarray:
        """One backward-Euler step from *temps* under *power_w*."""
        fp = self.grid.floorplan
        if power_w.shape != fp.power_w.shape:
            raise ValueError(
                f"power shape {power_w.shape} != floorplan {fp.power_w.shape}"
            )
        rhs = (
            (self.cell_capacity / self.dt_s) * temps.ravel()
            + power_w.ravel()
            + self._boundary
        )
        return self._lu.solve(rhs).reshape(temps.shape)

    def run(
        self,
        power_trace: Sequence[np.ndarray],
        initial: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Temperatures after each window of *power_trace*.

        Starts from *initial* (default: steady state under the first
        window's power, the usual HotSpot warm start).
        """
        if not len(power_trace):
            raise ValueError("power_trace must contain at least one window")
        temps = (
            self.grid.solve(power_trace[0]) if initial is None else initial.copy()
        )
        out: List[np.ndarray] = []
        for power in power_trace:
            temps = self.step(temps, power)
            out.append(temps)
        return out


def power_trace_from_activity(
    config: ArchitectureConfig,
    result: SimulationResult,
    sample_interval: int,
    shutdown_short_fraction: float = 0.0,
) -> List[np.ndarray]:
    """Convert simulator activity windows into floorplan power maps.

    Each window's per-router switched-flit count is priced at the
    architecture's per-flit-hop energy (discounted by the expected
    shutdown factor when short flits are present); leakage and CPU/cache
    tile power are added per Sec. 4.2.3.
    """
    if not result.activity_windows:
        raise ValueError(
            "simulation carries no activity windows; run the Simulator "
            "with sample_interval > 0"
        )
    from repro.core.shutdown import shutdown_power_factor
    from repro.power.area import router_area

    model = RouterEnergyModel.for_config(config)
    flit_energy = model.flit_hop_energy_j()
    if shutdown_short_fraction > 0:
        flit_energy *= shutdown_power_factor(shutdown_short_fraction)
    leak_per_router = router_area(config).total_mm2 * tech.LEAKAGE_W_PER_MM2

    # A trailing partial window (measure_cycles not a multiple of the
    # sample interval) spans fewer cycles; scale its power by the true
    # span so it is not underestimated.  Older results without recorded
    # spans fall back to the nominal interval.
    spans = result.activity_window_cycles or [sample_interval] * len(
        result.activity_windows
    )
    trace: List[np.ndarray] = []
    for window, span in zip(result.activity_windows, spans):
        window_s = span * tech.CYCLE_S
        router_power = [
            flits * flit_energy / window_s + leak_per_router for flits in window
        ]
        trace.append(floorplan_for(config, router_power).power_w)
    return trace


def transient_temperatures(
    config: ArchitectureConfig,
    result: SimulationResult,
    sample_interval: int,
    shutdown_short_fraction: float = 0.0,
) -> List[float]:
    """Average chip temperature over time for a simulated run.

    Each activity window is integrated over its *actual* span: when
    ``measure_cycles`` is not a multiple of ``sample_interval`` the
    trailing window is shorter, and stepping it with the nominal
    ``sample_interval`` dt would hold its (already span-corrected) power
    for too long and overshoot the final temperature.  Solvers are
    cached per distinct span, so the common case still factorises the
    system matrix once.
    """
    trace = power_trace_from_activity(
        config, result, sample_interval, shutdown_short_fraction
    )
    floorplan: Floorplan = floorplan_for(config)
    grid = ThermalGrid(floorplan)
    spans = result.activity_window_cycles or [sample_interval] * len(trace)
    solvers: dict = {}
    temps = grid.solve(trace[0])  # HotSpot-style steady-state warm start
    out: List[float] = []
    for power, span in zip(trace, spans):
        solver = solvers.get(span)
        if solver is None:
            solver = solvers[span] = TransientSolver(
                grid, dt_s=span * tech.CYCLE_S
            )
        temps = solver.step(temps, power)
        out.append(float(temps.mean()))
    return out
