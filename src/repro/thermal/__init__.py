"""HotSpot-style thermal model for 2D and stacked 3D chips.

The paper feeds per-component power traces into HotSpot 4.0 (Sec. 4.2.3).
HotSpot is a compact RC-network solver; this package rebuilds the same
physics at tile granularity:

* :mod:`repro.thermal.stack` — the die-stack material parameters
  (silicon layers, inter-layer bonds, heat-sink boundary).
* :mod:`repro.thermal.floorplan` — per-architecture tile grids with power
  assignment (8 W CPU cores, 0.1 W cache banks, simulated router power;
  Fig. 10 layouts).
* :mod:`repro.thermal.solver` — steady-state sparse conductance solve.
* :mod:`repro.thermal.hotspot` — the high-level API used by experiments.
"""

from repro.thermal.stack import StackParameters
from repro.thermal.floorplan import Floorplan, floorplan_for
from repro.thermal.solver import ThermalGrid
from repro.thermal.hotspot import ThermalResult, steady_state, temperature_drop
from repro.thermal.transient import (
    TransientSolver,
    power_trace_from_activity,
    transient_temperatures,
)

__all__ = [
    "TransientSolver",
    "power_trace_from_activity",
    "transient_temperatures",
    "StackParameters",
    "Floorplan",
    "floorplan_for",
    "ThermalGrid",
    "ThermalResult",
    "steady_state",
    "temperature_drop",
]
