"""High-level thermal API (the HotSpot stand-in used by experiments)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.arch import ArchitectureConfig
from repro.thermal.floorplan import floorplan_for
from repro.thermal.solver import ThermalGrid
from repro.thermal.stack import StackParameters


@dataclass(frozen=True)
class ThermalResult:
    """Steady-state chip temperatures (Kelvin)."""

    name: str
    avg_k: float
    max_k: float
    per_layer_avg_k: List[float]
    total_power_w: float


def steady_state(
    config: ArchitectureConfig,
    router_power_w: Optional[Sequence[float]] = None,
    params: StackParameters = StackParameters(),
    router_layer_power_w: Optional[Sequence[Sequence[float]]] = None,
) -> ThermalResult:
    """Solve the steady-state thermal field for one configuration.

    ``router_power_w`` is the per-node router power from the NoC
    simulation (CPU/cache tile power is added per Sec. 4.2.3);
    ``router_layer_power_w`` is the per-node-per-layer alternative from
    a layer-resolved simulation (mutually exclusive — see
    :func:`~repro.thermal.floorplan.floorplan_for`).
    """
    floorplan = floorplan_for(
        config, router_power_w, router_layer_power_w=router_layer_power_w
    )
    grid = ThermalGrid(floorplan, params)
    temps = grid.solve()
    avg, peak, per_layer = grid.stats(temps)
    return ThermalResult(
        name=config.name,
        avg_k=avg,
        max_k=peak,
        per_layer_avg_k=per_layer,
        total_power_w=floorplan.total_power_w,
    )


def temperature_drop(
    config: ArchitectureConfig,
    router_power_base_w: Optional[Sequence[float]] = None,
    router_power_reduced_w: Optional[Sequence[float]] = None,
    params: StackParameters = StackParameters(),
    router_layer_power_base_w: Optional[Sequence[Sequence[float]]] = None,
    router_layer_power_reduced_w: Optional[Sequence[Sequence[float]]] = None,
) -> float:
    """Average temperature reduction when router power drops (Fig. 13c).

    The two power maps are typically the same workload simulated with
    0% and 50% short flits (layer shutdown off/on) — flat per-node
    vectors, or per-node-per-layer maps from the layer-resolved
    simulation path (pass one form per side, not both).
    """
    base = steady_state(
        config, router_power_base_w, params,
        router_layer_power_w=router_layer_power_base_w,
    )
    reduced = steady_state(
        config, router_power_reduced_w, params,
        router_layer_power_w=router_layer_power_reduced_w,
    )
    return base.avg_k - reduced.avg_k
