"""High-level thermal API (the HotSpot stand-in used by experiments)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.arch import ArchitectureConfig
from repro.thermal.floorplan import floorplan_for
from repro.thermal.solver import ThermalGrid
from repro.thermal.stack import StackParameters


@dataclass(frozen=True)
class ThermalResult:
    """Steady-state chip temperatures (Kelvin)."""

    name: str
    avg_k: float
    max_k: float
    per_layer_avg_k: List[float]
    total_power_w: float


def steady_state(
    config: ArchitectureConfig,
    router_power_w: Optional[Sequence[float]] = None,
    params: StackParameters = StackParameters(),
) -> ThermalResult:
    """Solve the steady-state thermal field for one configuration.

    ``router_power_w`` is the per-node router power from the NoC
    simulation (CPU/cache tile power is added per Sec. 4.2.3).
    """
    floorplan = floorplan_for(config, router_power_w)
    grid = ThermalGrid(floorplan, params)
    temps = grid.solve()
    avg, peak, per_layer = grid.stats(temps)
    return ThermalResult(
        name=config.name,
        avg_k=avg,
        max_k=peak,
        per_layer_avg_k=per_layer,
        total_power_w=floorplan.total_power_w,
    )


def temperature_drop(
    config: ArchitectureConfig,
    router_power_base_w: Sequence[float],
    router_power_reduced_w: Sequence[float],
    params: StackParameters = StackParameters(),
) -> float:
    """Average temperature reduction when router power drops (Fig. 13c).

    The two power vectors are typically the same workload simulated with
    0% and 50% short flits (layer shutdown off/on).
    """
    base = steady_state(config, router_power_base_w, params)
    reduced = steady_state(config, router_power_reduced_w, params)
    return base.avg_k - reduced.avg_k
