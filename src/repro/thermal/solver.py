"""Steady-state thermal solve on a stacked conductance grid.

Standard compact thermal modelling (the physics inside HotSpot): each
cell is a node in a resistive network, with lateral conductances inside a
layer, vertical conductances between layers, and a heat-sink conductance
from every top-layer cell to ambient.  Steady state solves ``G T = P``
with ambient folded into the right-hand side.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.sparse import csr_matrix, lil_matrix
from scipy.sparse.linalg import spsolve

from repro.thermal.floorplan import Floorplan
from repro.thermal.stack import StackParameters


class ThermalGrid:
    """Conductance network for one floorplan geometry.

    The matrix is assembled once; :meth:`solve` may be called repeatedly
    with different power maps (the matrix factors are cheap at tile
    granularity, so a plain sparse solve suffices).
    """

    def __init__(
        self, floorplan: Floorplan, params: StackParameters = StackParameters()
    ) -> None:
        self.floorplan = floorplan
        self.params = params
        self._matrix = self._assemble()

    def _index(self, layer: int, y: int, x: int) -> int:
        fp = self.floorplan
        return (layer * fp.ny + y) * fp.nx + x

    def _assemble(self) -> csr_matrix:
        fp = self.floorplan
        params = self.params
        n = fp.layers * fp.ny * fp.nx
        g_lat = params.lateral_conductance(fp.pitch_m)
        g_vert = params.vertical_conductance(fp.cell_area_m2)
        g_sink = params.sink_conductance(fp.cell_area_m2)

        matrix = lil_matrix((n, n))

        def couple(a: int, b: int, g: float) -> None:
            matrix[a, a] += g
            matrix[b, b] += g
            matrix[a, b] -= g
            matrix[b, a] -= g

        for layer in range(fp.layers):
            for y in range(fp.ny):
                for x in range(fp.nx):
                    idx = self._index(layer, y, x)
                    if x + 1 < fp.nx:
                        couple(idx, self._index(layer, y, x + 1), g_lat)
                    if y + 1 < fp.ny:
                        couple(idx, self._index(layer, y + 1, x), g_lat)
                    if layer + 1 < fp.layers:
                        couple(idx, self._index(layer + 1, y, x), g_vert)
                    if layer == 0:
                        # Heat sink to ambient: only the diagonal term; the
                        # ambient contribution lands on the RHS.
                        matrix[idx, idx] += g_sink
        return csr_matrix(matrix)

    def solve(self, power_w: np.ndarray = None) -> np.ndarray:
        """Steady-state temperature field (K), shape ``(layers, ny, nx)``."""
        fp = self.floorplan
        power = fp.power_w if power_w is None else power_w
        if power.shape != fp.power_w.shape:
            raise ValueError(
                f"power shape {power.shape} != floorplan {fp.power_w.shape}"
            )
        rhs = power.ravel().astype(float).copy()
        g_sink = self.params.sink_conductance(fp.cell_area_m2)
        # Ambient folded into the RHS for top-layer cells.
        top = np.zeros_like(rhs)
        top[: fp.ny * fp.nx] = g_sink * self.params.ambient_k
        rhs += top
        temps = spsolve(self._matrix, rhs)
        return temps.reshape((fp.layers, fp.ny, fp.nx))

    def stats(self, temps: np.ndarray) -> Tuple[float, float, list]:
        """(average, maximum, per-layer averages) of a temperature field."""
        per_layer = [float(temps[layer].mean()) for layer in range(temps.shape[0])]
        return float(temps.mean()), float(temps.max()), per_layer
