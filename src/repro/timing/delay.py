"""Per-stage delay computation and ST+LT merge validation (Table 3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.wires import (
    CROSSBAR_WIRE_PITCH_UM,
    repeated_wire_delay_ps,
    unbuffered_crossbar_delay_ps,
)

#: Router clock of the evaluation platform (Sec. 4): 2 GHz -> 500 ps.
DEFAULT_STAGE_BUDGET_PS = 500.0


def crossbar_side_um(ports: int, flit_bits: int, layers: int) -> float:
    """Side length of one per-layer crossbar slice.

    A matrix crossbar routing ``ports`` buses of ``flit_bits / layers``
    bits at :data:`CROSSBAR_WIRE_PITCH_UM` spacing (Sec. 3.2.2, Fig. 5).
    """
    if ports < 1 or flit_bits < 1 or layers < 1:
        raise ValueError("ports, flit_bits and layers must be >= 1")
    if flit_bits % layers:
        raise ValueError(f"flit width {flit_bits} not divisible by {layers} layers")
    return ports * (flit_bits // layers) * CROSSBAR_WIRE_PITCH_UM


def crossbar_delay_ps(
    ports: int, flit_bits: int, layers: int, delay_multiplier: float = 1.0
) -> float:
    """Switch-traversal delay for one crossbar slice.

    ``delay_multiplier`` scales the nominal delay for process variation
    (:class:`repro.resilience.variation.VariationModel`); exactly 1.0 is
    bit-identical to the unscaled value.
    """
    return unbuffered_crossbar_delay_ps(
        crossbar_side_um(ports, flit_bits, layers), delay_multiplier
    )


def link_delay_ps(link_length_mm: float, delay_multiplier: float = 1.0) -> float:
    """Link-traversal delay over a repeated wire of the given length."""
    return repeated_wire_delay_ps(link_length_mm, delay_multiplier)


@dataclass(frozen=True)
class DelayReport:
    """Table 3 row: can ST and LT share one pipeline stage?"""

    name: str
    xbar_ps: float
    link_ps: float
    budget_ps: float

    @property
    def combined_ps(self) -> float:
        return self.xbar_ps + self.link_ps

    @property
    def can_combine(self) -> bool:
        return self.combined_ps <= self.budget_ps


def stage_delay_report(
    name: str,
    ports: int,
    flit_bits: int,
    layers: int,
    link_length_mm: float,
    budget_ps: float = DEFAULT_STAGE_BUDGET_PS,
    delay_multiplier: float = 1.0,
) -> DelayReport:
    """Build the Table 3 delay-validation row for one router design."""
    return DelayReport(
        name=name,
        xbar_ps=crossbar_delay_ps(ports, flit_bits, layers, delay_multiplier),
        link_ps=link_delay_ps(link_length_mm, delay_multiplier),
        budget_ps=budget_ps,
    )


def can_combine_st_lt(
    ports: int,
    flit_bits: int,
    layers: int,
    link_length_mm: float,
    budget_ps: float = DEFAULT_STAGE_BUDGET_PS,
    delay_multiplier: float = 1.0,
) -> bool:
    """True when switch + link traversal fit in one clock stage.

    A slow process corner (``delay_multiplier`` > 1) can push a design
    that nominally merges ST+LT back to the split pipeline — the
    timing-closure consequence of variation the resilience experiments
    measure.
    """
    return stage_delay_report(
        "check",
        ports,
        flit_bits,
        layers,
        link_length_mm,
        budget_ps,
        delay_multiplier,
    ).can_combine
