"""Wire delay primitives at the paper's 90 nm node.

Two wire regimes matter:

* **Inter-router links** use optimally repeated global wires, so delay is
  linear in length.  The effective constant is recovered from Table 3:
  309.48 ps over the 2DB node pitch and 154.74 ps over the 3DM pitch give
  97.94 ps/mm at a 3.16 mm / 1.58 mm pitch.  (Table 2's 254 ps/mm figure
  is the unoptimised reference wire the paper starts from.)

* **Crossbar wires** are unrepeated on-die wires inside the switch, so
  delay grows quadratically with length on top of a fixed gate overhead.
  The quadratic is fitted exactly through the paper's three published
  crossbar delays (378.57 / 142.86 / 182.85 ps for side lengths 480 / 120
  / 216 um).
"""

from __future__ import annotations

#: Crossbar wire pitch (um per bit track); (P*W*pitch)^2 reproduces the
#: paper's crossbar areas exactly (Table 1).
CROSSBAR_WIRE_PITCH_UM = 0.75

#: Effective delay of an optimally repeated link wire, ps per mm.
REPEATED_WIRE_PS_PER_MM = 97.94

#: Unoptimised reference wire delay from Table 2, ps per mm.
REFERENCE_WIRE_PS_PER_MM = 254.0

#: Inverter FO4-ish delay from Table 2 (HSPICE), ps.
INVERTER_DELAY_PS = 9.81

# Quadratic crossbar delay fit t(L) = A*L^2 + B*L + C  (L in um, t in ps),
# solved exactly through the three (side length, delay) points of Table 3.
_XBAR_A = 9.0218e-4
_XBAR_B = 0.11342
_XBAR_C = 116.26


def repeated_wire_delay_ps(length_mm: float, multiplier: float = 1.0) -> float:
    """Delay of a repeated link wire of *length_mm* millimetres.

    ``multiplier`` scales the nominal delay for process variation (a
    slow corner stretches wire RC and repeater drive together); the
    default of exactly 1.0 is bit-identical to the unscaled value.
    """
    if length_mm < 0:
        raise ValueError(f"negative wire length: {length_mm}")
    if multiplier <= 0:
        raise ValueError(f"delay multiplier must be > 0, got {multiplier}")
    return REPEATED_WIRE_PS_PER_MM * length_mm * multiplier


def unbuffered_crossbar_delay_ps(side_um: float, multiplier: float = 1.0) -> float:
    """Delay through a matrix crossbar with side length *side_um*.

    Covers the input/output bus wire RC plus the fixed tri-state buffer
    and control overhead.  ``multiplier`` scales the total for process
    variation; exactly 1.0 is bit-identical to the unscaled value.
    """
    if side_um < 0:
        raise ValueError(f"negative crossbar side: {side_um}")
    if multiplier <= 0:
        raise ValueError(f"delay multiplier must be > 0, got {multiplier}")
    return (_XBAR_A * side_um * side_um + _XBAR_B * side_um + _XBAR_C) * multiplier
