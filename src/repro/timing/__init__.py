"""Wire/crossbar delay models and pipeline-merge validation (Tables 2, 3).

The structural argument at the heart of MIRA (Sec. 3.4.1): splitting the
router over four layers quarters the crossbar wire length and halves the
inter-router link length, so switch traversal plus link traversal fit in a
single 500 ps stage at 2 GHz — one pipeline stage less per hop.
"""

from repro.timing.wires import (
    CROSSBAR_WIRE_PITCH_UM,
    repeated_wire_delay_ps,
    unbuffered_crossbar_delay_ps,
)
from repro.timing.delay import (
    DelayReport,
    can_combine_st_lt,
    crossbar_delay_ps,
    link_delay_ps,
    stage_delay_report,
)

__all__ = [
    "CROSSBAR_WIRE_PITCH_UM",
    "repeated_wire_delay_ps",
    "unbuffered_crossbar_delay_ps",
    "crossbar_delay_ps",
    "link_delay_ps",
    "can_combine_st_lt",
    "stage_delay_report",
    "DelayReport",
]
