"""Power integration: simulator event counts -> watts (Figs. 12a-d).

The cycle-accurate simulator counts micro-architectural events; this
module prices them with the :class:`~repro.power.orion.RouterEnergyModel`
and divides by wall-clock time, adding area-proportional leakage —
exactly the Orion-into-NoC-simulator flow the paper describes (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.arch import ArchitectureConfig
from repro.core.shutdown import DETECTOR_OVERHEAD
from repro.noc.stats import EventCounts
from repro.power import technology as tech
from repro.power.area import router_area
from repro.power.orion import RouterEnergyModel


@dataclass(frozen=True)
class PowerReport:
    """Average network power over a measurement window."""

    name: str
    dynamic_w: float
    leakage_w: float
    breakdown_w: Dict[str, float]

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    def pdp(self, avg_latency_cycles: float) -> float:
        """Power-delay product (W x s), the paper's combined metric."""
        return self.total_w * avg_latency_cycles * tech.CYCLE_S


def power_report(
    config: ArchitectureConfig,
    events: EventCounts,
    window_cycles: int,
    shutdown_enabled: bool = False,
) -> PowerReport:
    """Average power implied by *events* over *window_cycles*.

    When *shutdown_enabled*, the separable-component events arrive already
    activity-weighted from the simulator; the per-layer zero detectors add
    a small overhead proportional to the unweighted separable energy.
    """
    if window_cycles <= 0:
        raise ValueError(f"window_cycles must be positive, got {window_cycles}")
    model = RouterEnergyModel.for_config(config)

    e_buffer = (
        events.buffer_writes_weighted * model.buffer_write_j
        + events.buffer_reads_weighted * model.buffer_read_j
    )
    e_xbar = events.xbar_traversals_weighted * model.xbar_traversal_j
    e_link = sum(
        mm * model.link_j_per_mm for mm in events.link_mm_weighted.values()
    )
    e_arb = (
        events.va_allocations * model.va_allocation_j
        + events.sa_allocations * model.sa_allocation_j
        + events.rc_computations * model.rc_compute_j
    )
    e_control = events.flit_hops * model.control_j

    if shutdown_enabled:
        # Detector overhead: charged on the *full* (unweighted) separable
        # energy every flit would otherwise have switched.
        e_full_sep = (
            events.buffer_writes * model.buffer_write_j
            + events.buffer_reads * model.buffer_read_j
            + events.xbar_traversals * model.xbar_traversal_j
        )
        e_arb += DETECTOR_OVERHEAD * e_full_sep

    window_s = window_cycles * tech.CYCLE_S
    breakdown = {
        "buffer": e_buffer / window_s,
        "crossbar": e_xbar / window_s,
        "link": e_link / window_s,
        "arbitration": e_arb / window_s,
        "control": e_control / window_s,
    }
    dynamic = sum(breakdown.values())
    leakage = (
        router_area(config).total_mm2
        * tech.LEAKAGE_W_PER_MM2
        * config.num_nodes
    )
    return PowerReport(
        name=config.name,
        dynamic_w=dynamic,
        leakage_w=leakage,
        breakdown_w=breakdown,
    )
