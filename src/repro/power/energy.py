"""Power integration: simulator event counts -> watts (Figs. 12a-d).

The cycle-accurate simulator counts micro-architectural events; this
module prices them with the :class:`~repro.power.orion.RouterEnergyModel`
and divides by wall-clock time, adding area-proportional leakage —
exactly the Orion-into-NoC-simulator flow the paper describes (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.core.arch import ArchitectureConfig
from repro.core.shutdown import DETECTOR_OVERHEAD
from repro.noc.stats import EventCounts
from repro.power import technology as tech
from repro.power.area import router_area
from repro.power.orion import RouterEnergyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.variation import VariationSample


def _variation_factors(
    variation: Optional["VariationSample"],
) -> Tuple[float, float]:
    """(dynamic energy multiplier, leakage multiplier) for a sample."""
    if variation is None:
        return 1.0, 1.0
    return variation.dynamic_multiplier, variation.leakage_multiplier


@dataclass(frozen=True)
class PowerReport:
    """Average network power over a measurement window."""

    name: str
    dynamic_w: float
    leakage_w: float
    breakdown_w: Dict[str, float]

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    def pdp(self, avg_latency_cycles: float) -> float:
        """Power-delay product (W x s), the paper's combined metric."""
        return self.total_w * avg_latency_cycles * tech.CYCLE_S


def power_report(
    config: ArchitectureConfig,
    events: EventCounts,
    window_cycles: int,
    shutdown_enabled: bool = False,
    variation: Optional["VariationSample"] = None,
) -> PowerReport:
    """Average power implied by *events* over *window_cycles*.

    When *shutdown_enabled*, the separable-component events arrive already
    activity-weighted from the simulator; the per-layer zero detectors add
    a small overhead proportional to the unweighted separable energy.

    *variation* (a
    :class:`~repro.resilience.variation.VariationSample`) scales dynamic
    per-event energies and leakage for process variation; ``None`` (and a
    sigma-0 sample, whose multipliers are exactly 1.0) is bit-identical
    to the nominal report.
    """
    if window_cycles <= 0:
        raise ValueError(f"window_cycles must be positive, got {window_cycles}")
    dyn_mult, leak_mult = _variation_factors(variation)
    model = RouterEnergyModel.for_config(config, energy_multiplier=dyn_mult)

    e_buffer = (
        events.buffer_writes_weighted * model.buffer_write_j
        + events.buffer_reads_weighted * model.buffer_read_j
    )
    e_xbar = events.xbar_traversals_weighted * model.xbar_traversal_j
    e_link = sum(
        mm * model.link_j_per_mm for mm in events.link_mm_weighted.values()
    )
    e_arb = (
        events.va_allocations * model.va_allocation_j
        + events.sa_allocations * model.sa_allocation_j
        + events.rc_computations * model.rc_compute_j
    )
    e_control = events.flit_hops * model.control_j

    if shutdown_enabled:
        # Detector overhead: charged on the *full* (unweighted) separable
        # energy every flit would otherwise have switched.
        e_full_sep = (
            events.buffer_writes * model.buffer_write_j
            + events.buffer_reads * model.buffer_read_j
            + events.xbar_traversals * model.xbar_traversal_j
        )
        e_arb += DETECTOR_OVERHEAD * e_full_sep

    window_s = window_cycles * tech.CYCLE_S
    breakdown = {
        "buffer": e_buffer / window_s,
        "crossbar": e_xbar / window_s,
        "link": e_link / window_s,
        "arbitration": e_arb / window_s,
        "control": e_control / window_s,
    }
    dynamic = sum(breakdown.values())
    leakage = (
        router_area(config).total_mm2
        * tech.LEAKAGE_W_PER_MM2
        * config.num_nodes
        * leak_mult
    )
    return PowerReport(
        name=config.name,
        dynamic_w=dynamic,
        leakage_w=leakage,
        breakdown_w=breakdown,
    )


@dataclass(frozen=True)
class LayerPowerReport:
    """Average network power resolved per datapath layer.

    The simulated counterpart of the analytic Fig. 13b model: built from
    the layer histograms in :class:`~repro.noc.stats.EventCounts` (one
    count per event per *effective* active-layer count), so the per-layer
    split reflects the traffic the simulator actually carried rather than
    an expected-value formula.  Layer 0 is the always-on top word group;
    non-separable energy (arbitration, control, the zero detectors) is
    charged to it, since that logic lives on the control layer and is
    never gated.
    """

    name: str
    #: Dynamic power per datapath layer (index 0 = top), W.
    layer_dynamic_w: Tuple[float, ...]
    leakage_w: float
    #: Dynamic power the same event stream would have drawn with every
    #: layer switching on every event (raw counts, no detector
    #: overhead) — the shutdown-off baseline from the *same* run.
    all_layers_on_dynamic_w: float
    #: Per-component totals summed over layers (same keys as
    #: :attr:`PowerReport.breakdown_w`).
    breakdown_w: Dict[str, float]

    @property
    def dynamic_w(self) -> float:
        return sum(self.layer_dynamic_w)

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    @property
    def shutdown_saving_fraction(self) -> float:
        """Fraction of dynamic power saved vs the all-layers-on baseline
        (the simulated Fig. 13b quantity; detector overhead included)."""
        if self.all_layers_on_dynamic_w <= 0.0:
            return 0.0
        return 1.0 - self.dynamic_w / self.all_layers_on_dynamic_w


def layer_power_report(
    config: ArchitectureConfig,
    events: EventCounts,
    window_cycles: int,
    shutdown_enabled: bool = True,
    variation: Optional["VariationSample"] = None,
) -> LayerPowerReport:
    """Per-layer average power implied by *events* over *window_cycles*.

    Separable modules (buffers, crossbar, links) are sliced evenly
    across the ``layer_groups`` word groups; a slice on layer ``l``
    switches exactly for the events whose effective active-layer count
    exceeds ``l`` (:meth:`EventCounts.events_at_layer`).  Summed over
    layers this reproduces :func:`power_report`'s weighted totals (up to
    float association order), so the two views stay mutually consistent.
    """
    if window_cycles <= 0:
        raise ValueError(f"window_cycles must be positive, got {window_cycles}")
    dyn_mult, leak_mult = _variation_factors(variation)
    model = RouterEnergyModel.for_config(config, energy_multiplier=dyn_mult)
    groups = max(
        [1]
        + list(events.buffer_writes_by_layers)
        + list(events.buffer_reads_by_layers)
        + list(events.xbar_traversals_by_layers)
        + list(events.link_mm_by_layers)
    )
    window_s = window_cycles * tech.CYCLE_S

    # Non-separable energy rides on the top layer.
    e_arb = (
        events.va_allocations * model.va_allocation_j
        + events.sa_allocations * model.sa_allocation_j
        + events.rc_computations * model.rc_compute_j
    )
    e_control = events.flit_hops * model.control_j
    e_full_sep = (
        events.buffer_writes * model.buffer_write_j
        + events.buffer_reads * model.buffer_read_j
        + events.xbar_traversals * model.xbar_traversal_j
    )
    e_detector = DETECTOR_OVERHEAD * e_full_sep if shutdown_enabled else 0.0

    layer_w = []
    e_buffer = e_xbar = e_link = 0.0
    for layer in range(groups):
        slice_buffer = (
            EventCounts.events_at_layer(events.buffer_writes_by_layers, layer)
            * model.buffer_write_j
            + EventCounts.events_at_layer(events.buffer_reads_by_layers, layer)
            * model.buffer_read_j
        ) / groups
        slice_xbar = (
            EventCounts.events_at_layer(events.xbar_traversals_by_layers, layer)
            * model.xbar_traversal_j
        ) / groups
        slice_link = (
            EventCounts.events_at_layer(events.link_mm_by_layers, layer)
            * model.link_j_per_mm
        ) / groups
        e_buffer += slice_buffer
        e_xbar += slice_xbar
        e_link += slice_link
        e_layer = slice_buffer + slice_xbar + slice_link
        if layer == 0:
            e_layer += e_arb + e_control + e_detector
        layer_w.append(e_layer / window_s)

    # All-layers-on baseline: raw separable counts, raw link millimetres
    # (the per-k histogram summed ignoring k), no detector overhead.
    e_link_raw = sum(events.link_mm_by_layers.values()) * model.link_j_per_mm
    all_on = (e_full_sep + e_link_raw + e_arb + e_control) / window_s
    breakdown = {
        "buffer": e_buffer / window_s,
        "crossbar": e_xbar / window_s,
        "link": e_link / window_s,
        "arbitration": (e_arb + e_detector) / window_s,
        "control": e_control / window_s,
    }
    leakage = (
        router_area(config).total_mm2
        * tech.LEAKAGE_W_PER_MM2
        * config.num_nodes
        * leak_mult
    )
    return LayerPowerReport(
        name=config.name,
        layer_dynamic_w=tuple(layer_w),
        leakage_w=leakage,
        all_layers_on_dynamic_w=all_on,
        breakdown_w=breakdown,
    )
