"""Analytic router component area model (Table 1).

Reproduces the paper's synthesised component areas from design parameters
(ports P, VCs V, flit width W, buffer depth k, layers L):

* crossbar:  ``(P * (W/L) * pitch)^2`` per layer — exact vs Table 1,
* buffer:    register-file bits x cell area — exact vs Table 1,
* RC / VA1 / SA1:  linear in ports / arbiter count — exact vs Table 1,
* VA2 / SA2: quadratic matrix-arbiter model, least-squares fitted to the
  three published design points (within ~13%).

The via budget follows Table 1's note (``2P + PV + Vk`` signal vias for
the multi-layer designs; ``W`` vias per vertical link for 3DB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.arch import Architecture, ArchitectureConfig
from repro.core.layers import VIA_AREA_UM2, signal_vias
from repro.power import technology as tech


def rc_area_um2(ports: int) -> float:
    """Routing-computation logic area (shared per physical channel)."""
    return tech.RC_AREA_PER_PORT * ports


def va1_area_um2(ports: int, vcs: int) -> float:
    """VA stage 1: P*V V:1 arbiters."""
    return tech.VA1_AREA_PER_ARBITER * ports * vcs


def sa1_area_um2(ports: int, vcs: int) -> float:
    """SA stage 1: P*V V:1 arbiters."""
    return tech.SA1_AREA_PER_ARBITER * ports * vcs


def va2_area_um2(ports: int, vcs: int) -> float:
    """VA stage 2: P*V PV:1 matrix arbiters."""
    n = ports * vcs
    per_arbiter = tech.VA2_ARBITER_QUAD * n * n + tech.VA2_ARBITER_LIN * n
    return n * per_arbiter


def sa2_area_um2(ports: int, vcs: int) -> float:
    """SA stage 2: P PV:1 matrix arbiters (speculative VC-level requests)."""
    n = ports * vcs
    per_arbiter = tech.SA2_ARBITER_QUAD * n * n + tech.SA2_ARBITER_LIN * n
    return ports * per_arbiter


def xbar_side_um(ports: int, flit_bits: int, layers: int) -> float:
    """Side length of one per-layer crossbar slice."""
    return ports * (flit_bits / layers) * tech.XBAR_PITCH_UM


def xbar_layer_area_um2(ports: int, flit_bits: int, layers: int) -> float:
    """Per-layer crossbar slice area (Fig. 5)."""
    side = xbar_side_um(ports, flit_bits, layers)
    return side * side


def buffer_layer_area_um2(
    ports: int, vcs: int, depth: int, flit_bits: int, layers: int
) -> float:
    """Per-layer input-buffer slice area."""
    bits = ports * vcs * depth * (flit_bits / layers)
    return bits * tech.BUFFER_AREA_PER_BIT


@dataclass(frozen=True)
class RouterArea:
    """Table 1 row set for one architecture (areas in um^2).

    ``per_layer`` holds the maximum area of each module in any single
    layer (what Table 1 tabulates for the starred columns); ``total`` is
    the full router area summed across layers.
    """

    name: str
    per_layer: Dict[str, float]
    total: float
    total_vias: int
    via_overhead_fraction: float

    @property
    def total_mm2(self) -> float:
        return self.total / 1e6


def router_area(config: ArchitectureConfig) -> RouterArea:
    """Compute the Table 1 area breakdown for *config*."""
    P, V = config.ports, config.vcs
    W, k = config.flit_bits, config.buffer_depth
    L = config.datapath_layers

    rc = rc_area_um2(P)
    sa1 = sa1_area_um2(P, V)
    sa2 = sa2_area_um2(P, V)
    va1 = va1_area_um2(P, V)
    va2_total = va2_area_um2(P, V)
    # VA2 is spread over the bottom L-1 layers in multi-layer designs
    # (Sec. 3.2.7); single-layer designs keep it whole.
    va2_layer = va2_total / (L - 1) if L > 1 else va2_total
    xbar_layer = xbar_layer_area_um2(P, W, L)
    buffer_layer = buffer_layer_area_um2(P, V, k, W, L)

    total = (
        rc
        + sa1
        + sa2
        + va1
        + va2_total
        + L * xbar_layer
        + L * buffer_layer
    )

    if L > 1:
        vias = signal_vias(P, V, k)
    elif config.arch is Architecture.BASELINE_3D:
        vias = W  # one TSV per bit of the vertical link datapath
    else:
        vias = 0
    layer_area = total / L
    via_overhead = (vias * VIA_AREA_UM2) / layer_area if layer_area else 0.0

    return RouterArea(
        name=config.name,
        per_layer={
            "RC": rc,
            "SA1": sa1,
            "SA2": sa2,
            "VA1": va1,
            "VA2": va2_layer,
            "Crossbar": xbar_layer,
            "Buffer": buffer_layer,
        },
        total=total,
        total_vias=vias,
        via_overhead_fraction=via_overhead,
    )


#: The paper's Table 1 values (um^2), for side-by-side reporting.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "2DB": {
        "RC": 1717, "SA1": 1008, "SA2": 6201, "VA1": 2016, "VA2": 29312,
        "Crossbar": 230400, "Buffer": 162973, "Total": 433628,
    },
    "3DB": {
        "RC": 2404, "SA1": 1411, "SA2": 11306, "VA1": 2822, "VA2": 62725,
        "Crossbar": 451584, "Buffer": 228162, "Total": 760416,
    },
    "3DM": {
        "RC": 1717, "SA1": 1008, "SA2": 6201, "VA1": 2016, "VA2": 9770,
        "Crossbar": 14400, "Buffer": 40743, "Total": 260829,
    },
    "3DM-E": {
        "RC": 3092, "SA1": 1814, "SA2": 25024, "VA1": 3629, "VA2": 41842,
        "Crossbar": 46656, "Buffer": 73338, "Total": 639063,
    },
}
