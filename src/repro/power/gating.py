"""Analytic layer-shutdown savings (Fig. 13b).

Separately from the full simulation flow, the paper reports the power
saving of the shutdown technique as a function of the short-flit fraction
(25% and 50% bars in Fig. 13b).  This module gives the closed-form model:
the separable datapath (buffers, crossbar slices, link slices) scales
with the expected active-layer fraction, the rest does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arch import ArchitectureConfig
from repro.core.shutdown import shutdown_power_factor
from repro.power.orion import RouterEnergyModel

#: Word groups a flit is sliced into (also the shutdown granularity for
#: the 2DB word-slice variant the paper evaluates in Fig. 13b).
SHUTDOWN_GROUPS = 4


@dataclass(frozen=True)
class ShutdownSaving:
    """Outcome of the analytic shutdown model."""

    name: str
    short_fraction: float
    separable_share: float
    power_factor: float

    @property
    def saving_fraction(self) -> float:
        """Fraction of dynamic router+link power saved."""
        return 1.0 - self.power_factor


def separable_share(config: ArchitectureConfig) -> float:
    """Share of per-flit-hop dynamic energy in separable modules."""
    breakdown = RouterEnergyModel.for_config(config).flit_hop_breakdown()
    total = sum(breakdown.values())
    separable = breakdown["buffer"] + breakdown["crossbar"] + breakdown["link"]
    return separable / total


def shutdown_saving(
    config: ArchitectureConfig, short_fraction: float
) -> ShutdownSaving:
    """Expected dynamic-power multiplier with layer shutdown active.

    ``power_factor`` multiplies total dynamic power: the separable share
    follows :func:`~repro.core.shutdown.shutdown_power_factor`, the
    non-separable share is unaffected.
    """
    share = separable_share(config)
    sep_factor = shutdown_power_factor(short_fraction, layers=SHUTDOWN_GROUPS)
    factor = share * sep_factor + (1.0 - share)
    return ShutdownSaving(
        name=config.name,
        short_fraction=short_fraction,
        separable_share=share,
        power_factor=factor,
    )
