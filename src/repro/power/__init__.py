"""Orion-style power and area models.

The paper obtains router energy from the Orion power model [19] and
component areas from TSMC 90 nm synthesis (Table 1).  Neither artifact is
available, so this package re-derives both analytically:

* :mod:`repro.power.technology` — 90 nm technology constants, calibrated
  against the paper's published areas (Table 1) and delays (Tables 2, 3).
* :mod:`repro.power.area` — per-component area model reproducing Table 1.
* :mod:`repro.power.orion` — per-event dynamic-energy model (buffer
  read/write, crossbar traversal, arbitration, link traversal).
* :mod:`repro.power.gating` — the layer-shutdown saving model (Fig. 13b).
* :mod:`repro.power.energy` — integrates simulator event counts into
  average power, energy breakdowns (Fig. 9), and power-delay product.
"""

from repro.power.area import RouterArea, router_area
from repro.power.orion import RouterEnergyModel
from repro.power.energy import PowerReport, power_report
from repro.power.gating import shutdown_saving

__all__ = [
    "RouterArea",
    "router_area",
    "RouterEnergyModel",
    "PowerReport",
    "power_report",
    "shutdown_saving",
]
