"""90 nm technology constants.

All constants are calibrated so the analytic models reproduce the paper's
published numbers:

* area constants fit Table 1 (TSMC 90 nm synthesis results),
* delay constants fit Tables 2 and 3 (see :mod:`repro.timing.wires`),
* energy constants produce a 2DB per-flit-hop energy budget whose
  breakdown matches Fig. 9's qualitative shape (link > crossbar > buffer >
  arbitration) and whose architecture ratios land near the paper's
  reported savings.

DESIGN.md's calibration notes record each fit.
"""

from __future__ import annotations

#: Router and core clock (Sec. 4): 2 GHz.
CLOCK_HZ = 2.0e9
CYCLE_S = 1.0 / CLOCK_HZ

# --- area constants (um^2), fitted to Table 1 --------------------------------

#: RC logic area per physical port.
RC_AREA_PER_PORT = 343.4
#: VA stage-1 area per V:1 arbiter (one per input VC).
VA1_AREA_PER_ARBITER = 201.6
#: SA stage-1 area per V:1 arbiter.
SA1_AREA_PER_ARBITER = 100.8
#: VA stage-2 matrix arbiter area: a*n^2 + b*n (least squares on Table 1).
VA2_ARBITER_QUAD = 12.846
VA2_ARBITER_LIN = 152.5
#: SA stage-2 matrix arbiter area: a*n^2 + b*n (least squares on Table 1).
SA2_ARBITER_QUAD = 5.0424
SA2_ARBITER_LIN = 59.31
#: Buffer register-file cell area per bit (read+write ported).
BUFFER_AREA_PER_BIT = 15.9154
#: Crossbar wire pitch (um per bit track); square matrix crossbar.
XBAR_PITCH_UM = 0.75

# --- energy constants ---------------------------------------------------------

#: Crossbar traversal energy per um of bus length per bit (fJ).
XBAR_FJ_PER_UM_BIT = 0.25
#: Repeated link wire energy per um per bit (fJ).
LINK_FJ_PER_UM_BIT = 0.0593
#: Buffer write energy per bit (fJ).
BUFFER_WRITE_FJ_PER_BIT = 50.0
#: Buffer read energy per bit (fJ).
BUFFER_READ_FJ_PER_BIT = 40.0
#: Matrix arbiter energy per arbitration per request line (fJ).
ARBITER_FJ_PER_LINE = 30.0
#: Routing computation energy per head flit (fJ).
RC_FJ_PER_COMPUTE = 120.0
#: Fixed per-flit-hop control/clocking overhead (fJ); not separable, so it
#: damps the architecture-to-architecture energy ratios the way real
#: control logic does.
CONTROL_FJ_PER_FLIT = 3000.0

#: Leakage power density (W per mm^2 of router area) at 90 nm.
LEAKAGE_W_PER_MM2 = 0.02

#: CPU core power (W): Sun Niagara class at 90 nm (Sec. 4.2.3).
CPU_CORE_POWER_W = 8.0
#: 512 KB L2 cache bank power (W), from CACTI (Sec. 4.2.3).
CACHE_BANK_POWER_W = 0.1
