"""Orion-style per-event dynamic energy model (Sec. 3.4.2, Fig. 9).

Orion computes router energy from switched capacitance of each structure.
We keep the same structure-by-structure decomposition, with capacitances
derived from the geometry the area model establishes:

* **crossbar** — energy grows with the bus wire length a bit must drive,
  i.e. with the per-layer crossbar side (quartered in 3DM);
* **link** — energy per mm of repeated wire per bit (halved pitch for the
  multi-layer footprint, near-zero for TSV hops);
* **buffer** — per-bit read/write energies (the same bits are stored
  regardless of layering, so this component barely changes across
  architectures — which is why the paper's 3DM saving is ~35%, not 4x);
* **arbiters / RC** — small per-operation energies scaling with arbiter
  size;
* **control** — a fixed per-flit-hop overhead for clocking and pipeline
  registers (non-separable).

Events can carry an activity weight (active word groups / layers) which
is how layer shutdown discounts the separable components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arch import ArchitectureConfig
from repro.power import technology as tech
from repro.power.area import xbar_side_um


@dataclass(frozen=True)
class RouterEnergyModel:
    """Per-event energies (in joules) for one router architecture."""

    config: ArchitectureConfig
    buffer_write_j: float
    buffer_read_j: float
    xbar_traversal_j: float
    link_j_per_mm: float
    va_allocation_j: float
    sa_allocation_j: float
    rc_compute_j: float
    control_j: float

    @classmethod
    def for_config(
        cls, config: ArchitectureConfig, energy_multiplier: float = 1.0
    ) -> "RouterEnergyModel":
        """Per-event energies for *config*.

        ``energy_multiplier`` scales every dynamic per-event energy for
        switched-capacitance process variation
        (:class:`repro.resilience.variation.VariationModel`); exactly
        1.0 is bit-identical to the unscaled model.
        """
        if energy_multiplier <= 0:
            raise ValueError(
                f"energy multiplier must be > 0, got {energy_multiplier}"
            )
        W = config.flit_bits
        L = config.datapath_layers
        side_um = xbar_side_um(config.ports, W, L)
        # One flit crosses L crossbar slices (one per layer), each carrying
        # W/L bits over a bus of the per-layer side length.
        xbar_j = tech.XBAR_FJ_PER_UM_BIT * side_um * (W / L) * L * 1e-15
        link_j_per_mm = tech.LINK_FJ_PER_UM_BIT * 1e3 * W * 1e-15
        arb_n = config.ports * config.vcs
        m = energy_multiplier
        return cls(
            config=config,
            buffer_write_j=tech.BUFFER_WRITE_FJ_PER_BIT * W * 1e-15 * m,
            buffer_read_j=tech.BUFFER_READ_FJ_PER_BIT * W * 1e-15 * m,
            xbar_traversal_j=xbar_j * m,
            link_j_per_mm=link_j_per_mm * m,
            va_allocation_j=tech.ARBITER_FJ_PER_LINE * arb_n * 2 * 1e-15 * m,
            sa_allocation_j=tech.ARBITER_FJ_PER_LINE * arb_n * 1e-15 * m,
            rc_compute_j=tech.RC_FJ_PER_COMPUTE * 1e-15 * m,
            control_j=tech.CONTROL_FJ_PER_FLIT * 1e-15 * m,
        )

    # -- per-flit-hop breakdown (Fig. 9) ----------------------------------

    def flit_hop_breakdown(self, link_length_mm: float = None) -> dict:
        """Energy per flit per hop, by component (joules).

        ``link_length_mm`` defaults to the architecture's normal link
        pitch.  Buffer energy counts one write and one read; VA/RC are
        charged per packet and amortised over a 5-flit data packet.
        """
        length = (
            self.config.pitch_mm if link_length_mm is None else link_length_mm
        )
        per_packet_flits = 5.0
        return {
            "buffer": self.buffer_write_j + self.buffer_read_j,
            "crossbar": self.xbar_traversal_j,
            "arbitration": self.sa_allocation_j
            + (self.va_allocation_j + self.rc_compute_j) / per_packet_flits,
            "link": self.link_j_per_mm * length,
            "control": self.control_j,
        }

    def flit_hop_energy_j(self, link_length_mm: float = None) -> float:
        """Total energy per flit per hop (joules)."""
        return sum(self.flit_hop_breakdown(link_length_mm).values())
