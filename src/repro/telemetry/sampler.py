"""The network telemetry sampler: windowed metrics + lifecycle traces.

:class:`NetworkTelemetry` attaches to a
:class:`~repro.noc.network.Network` (``Simulator(..., telemetry=...)``,
``Network(..., telemetry=...)``, or the ``--metrics-out`` /
``--trace-out`` CLI flags) and, every ``interval`` cycles, samples a
:class:`~repro.telemetry.metrics.MetricsRegistry` with the signals the
paper's time-resolved claims hang on:

* per-router buffer occupancy and per-VC utilisation,
* per-link-kind and per-channel flit counts (link utilisation),
* injection / ejection / throughput rates and windowed latency
  percentiles (delta accounting via
  :class:`~repro.noc.stats.StatsCursor`),
* the layer-shutdown signal — active-layer fraction and short-flit
  ratio over the window (Sec. 3.2.1),
* windowed Orion energy and transient thermal samples when an
  architecture config is supplied (Sec. 4.2.3's power-trace flow,
  streamed instead of post-processed).

Samples stream to a JSONL file as they are taken; when a trace path is
given the sampler additionally records per-packet pipeline events
(inject -> per-hop RC/VA/SA/ST -> eject) through the network's stage /
traverse / delivery callbacks and renders them as a Perfetto-loadable
``trace.json`` on :meth:`~NetworkTelemetry.finish`.

The sampler never mutates network state, so telemetry-enabled runs are
bit-identical to bare runs; detached (the default) the cost is one
``is None`` check per cycle, the same guard discipline as the profiler
and sanitizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.noc.router import STALL_CAUSE_NAMES
from repro.noc.stats import EventCounts, StatsCursor
from repro.telemetry.attribution import (
    DEFAULT_TOP_K,
    StallAttribution,
    build_stall_report,
    decompose_recorder,
)
from repro.telemetry.export import (
    ChromeTraceBuilder,
    MetricsJsonlWriter,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import DEFAULT_RING_EVENTS, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.noc.packet import Flit, Packet

#: JSONL schema version stamped into every stream's meta record.
SCHEMA_VERSION = 1

#: Default sampling window, in cycles.
DEFAULT_INTERVAL = 100


@dataclass
class TelemetryConfig:
    """What to sample, how often, and where to put it."""

    #: Sampling window in cycles.
    interval: int = DEFAULT_INTERVAL
    #: JSONL metrics stream destination; ``None`` keeps samples
    #: in-memory only (``keep_samples`` governs retention).
    metrics_path: Optional[str] = None
    #: Chrome-trace destination; ``None`` disables lifecycle capture
    #: entirely (no callbacks are registered, zero per-event cost).
    trace_path: Optional[str] = None
    #: Capture lifecycles into the ring recorder *without* writing a
    #: trace file — the sampling knobs below still apply.  Used by
    #: ``repro diagnose``, which needs per-packet stage cycles for the
    #: latency decomposition but no Perfetto artifact.
    trace_capture: bool = False
    #: Attach per-unit stall-cause accounting
    #: (:class:`~repro.telemetry.attribution.StallAttribution`): stall
    #: counters/gauges join the registry and a stall report is built at
    #: ``finish()``.
    attribution: bool = False
    #: Write the stall report as JSON here at ``finish()`` (implies
    #: ``attribution``).
    attribution_path: Optional[str] = None
    #: Hotspot links/routers/backpressure chains per report section.
    attribution_top_k: int = DEFAULT_TOP_K
    #: Retain samples on ``NetworkTelemetry.samples`` (always on when no
    #: metrics_path is given, so an in-memory run is still inspectable).
    keep_samples: bool = False
    #: Include the per-router occupancy vector in samples and emit
    #: per-router counter tracks into the trace.
    per_router: bool = True
    #: Include per-channel flit counts in samples (the channel-load map;
    #: sizeable on big meshes, hence the switch).
    per_channel: bool = True
    #: Lifecycle capture cap: packets beyond this are counted as dropped
    #: and the trace is marked truncated (mirrors PacketTracer).
    max_trace_packets: int = 5000
    #: Deterministic per-packet capture probability (seeded id hash).
    #: 1.0 (the default) captures every packet — the full-trace mode;
    #: production runs use a small rate plus ``trace_head_tail``.
    trace_sample_rate: float = 1.0
    #: Capture the first K and last K packets regardless of the sample
    #: rate (0 disables head/tail capture).
    trace_head_tail: int = 0
    #: Seed for the sampling hash: same seed, same captured packets.
    trace_seed: int = 0
    #: Ring-buffer capacity in event records; the oldest records are
    #: overwritten (and counted) when a run outgrows the ring.
    trace_ring_events: int = DEFAULT_RING_EVENTS
    #: Architecture config enabling windowed Orion energy pricing (and
    #: thermal sampling when ``thermal`` is set).  Kept untyped to avoid
    #: importing the arch/power stack until actually used.
    arch_config: Any = None
    #: Sample transient chip temperature per window (needs arch_config
    #: and scipy; one solver step per window).
    thermal: bool = False

    def validate(self) -> None:
        if self.interval < 1:
            raise ValueError(
                f"telemetry interval must be >= 1, got {self.interval}"
            )
        if self.max_trace_packets < 1:
            raise ValueError(
                "max_trace_packets must be >= 1, got "
                f"{self.max_trace_packets}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                "trace_sample_rate must be in [0, 1], got "
                f"{self.trace_sample_rate}"
            )
        if self.trace_head_tail < 0:
            raise ValueError(
                "trace_head_tail must be >= 0, got "
                f"{self.trace_head_tail}"
            )
        if self.trace_ring_events < 1:
            raise ValueError(
                "trace_ring_events must be >= 1, got "
                f"{self.trace_ring_events}"
            )
        if self.attribution_top_k < 1:
            raise ValueError(
                "attribution_top_k must be >= 1, got "
                f"{self.attribution_top_k}"
            )
        if self.thermal and self.arch_config is None:
            raise ValueError(
                "thermal sampling needs an arch_config to build the "
                "floorplan and power model"
            )

    @property
    def attribution_enabled(self) -> bool:
        return self.attribution or self.attribution_path is not None


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable summary of a telemetered stretch of simulation."""

    #: Sampling window in cycles.
    interval: int
    #: Windows sampled (including a trailing partial window).
    windows: int
    #: Cycles observed while attached.
    cycles: int
    #: Packet lifecycles fully captured into the trace.
    packets_traced: int
    #: Lifecycles still in flight when :meth:`NetworkTelemetry.finish`
    #: ran, rendered into the trace as open-ended spans.  Together with
    #: ``packets_traced`` this accounts for every lifecycle the trace
    #: file contains: 0 before ``finish`` and when tracing was off.
    packets_in_flight: int
    #: Packets beyond ``max_trace_packets`` that were not captured.
    packets_dropped: int
    #: True when any lifecycle was dropped: the trace is a prefix, not
    #: the whole run.
    truncated: bool
    #: Trace events accumulated (0 when tracing was off).
    trace_events: int
    metrics_path: Optional[str] = None
    trace_path: Optional[str] = None
    #: Distinct packets the trace hooks saw (all of them, sampled or
    #: not); 0 when tracing was off.
    packets_seen: int = 0
    #: Packets whose lifecycles were captured (head + hash + final tail
    #: window), before the delivered/in-flight split.
    packets_sampled: int = 0
    #: Packets skipped by the sampling decision (deliberate, not an
    #: error — distinct from ``packets_dropped``, the capture-cap
    #: overflow).
    sampled_out: int = 0
    #: Provisional tail-window captures discarded when newer packets
    #: displaced them.
    tail_evicted: int = 0
    #: Ring records written over the whole run.
    events_recorded: int = 0
    #: Ring records lost to wrap-around (oldest first); nonzero means
    #: early lifecycles render partially.
    events_overwritten: int = 0
    #: The sampling knobs in force (echoed so an artifact is
    #: self-describing).
    sample_rate: float = 1.0
    head_tail: int = 0
    #: CPU seconds spent in the one-time ``finish()`` flush (lifecycle
    #: reconstruction + serialization); bounded by the capture caps,
    #: not by run length.
    finish_cpu_s: float = 0.0
    #: Total stalled unit-cycles attributed (0 when attribution was
    #: off).
    stall_cycles: int = 0
    #: The ``repro diagnose`` stall report
    #: (:func:`~repro.telemetry.attribution.build_stall_report` dict);
    #: ``None`` when attribution was off.
    stall_report: Optional[Dict[str, Any]] = None

    def format(self) -> str:
        """Human-readable block for CLI output."""
        lines = [
            f"window            : {self.interval} cycles",
            f"windows sampled   : {self.windows} ({self.cycles} cycles)",
        ]
        if self.metrics_path:
            lines.append(f"metrics stream    : {self.metrics_path}")
        if self.trace_path:
            lines.append(
                f"trace             : {self.trace_path} "
                f"({self.trace_events} events, "
                f"{self.packets_traced} packets)"
            )
            if self.sample_rate < 1.0 or self.head_tail:
                lines.append(
                    f"sampling          : rate={self.sample_rate:g} "
                    f"head/tail={self.head_tail} -> "
                    f"{self.packets_sampled}/{self.packets_seen} packets "
                    f"kept ({self.sampled_out} sampled out, "
                    f"{self.tail_evicted} tail-evicted)"
                )
            if self.events_overwritten:
                lines.append(
                    f"ring wrapped      : {self.events_overwritten} oldest "
                    "events overwritten"
                )
            if self.packets_in_flight:
                lines.append(
                    f"in flight         : {self.packets_in_flight} "
                    "open-ended packet spans"
                )
        if self.truncated:
            lines.append(
                f"TRUNCATED         : {self.packets_dropped} packet "
                "lifecycles dropped after the cap"
            )
        if self.stall_report is not None:
            lines.append(
                f"stall attribution : {self.stall_cycles} stalled "
                "unit-cycles attributed (repro diagnose for the report)"
            )
        if self.finish_cpu_s:
            lines.append(
                f"flush             : {self.finish_cpu_s * 1e3:.1f} ms "
                "CPU (one-time, at finish)"
            )
        return "\n".join(lines)


class _ThermalProbe:
    """Incremental transient-thermal sampling, one solver step per window.

    The offline flow (:mod:`repro.thermal.transient`) post-processes a
    whole activity trace; this probe runs the same backward-Euler step
    online so temperature appears in the live metric stream.  Solvers
    are cached per window span (the trailing partial window is shorter).
    """

    def __init__(self, arch_config: Any, network: "Network") -> None:
        from repro.power import technology as tech
        from repro.thermal.floorplan import floorplan_for
        from repro.thermal.solver import ThermalGrid

        self._arch_config = arch_config
        self._floorplan_for = floorplan_for
        self._grid = ThermalGrid(floorplan_for(arch_config))
        self._cycle_s = tech.CYCLE_S
        self._last_switched_by_layers = [
            list(r.flits_switched_by_layers) for r in network.routers
        ]
        self._solvers: Dict[int, Any] = {}
        self._temps = None

    def router_layer_power(
        self, network: "Network", span: int, delta: EventCounts
    ) -> List[List[float]]:
        """Per-node, per-layer router power (W) over the last window.

        Mirrors the offline Fig. 13c flow
        (:meth:`repro.experiments.runner.PointResult.router_layer_power_per_node`):
        each datapath layer's windowed dynamic power
        (:func:`~repro.power.energy.layer_power_report` over the window's
        event delta) is split across routers by that layer's own
        activity shares, measured from the per-router
        ``flits_switched_by_layers`` histogram deltas; leakage is split
        evenly over nodes and layers."""
        from repro.power.energy import layer_power_report

        switched = [
            list(r.flits_switched_by_layers) for r in network.routers
        ]
        groups = len(switched[0]) if switched else 1
        # Node n's window flits that drove layer l: effective
        # active-layer count k > l, i.e. histogram indices k-1 >= l.
        layer_flits = [
            [
                sum(now[i] - before[i] for i in range(layer, groups))
                for layer in range(groups)
            ]
            for now, before in zip(switched, self._last_switched_by_layers)
        ]
        self._last_switched_by_layers = switched
        layer_totals = [
            sum(per_node[layer] for per_node in layer_flits)
            for layer in range(groups)
        ]
        lp = layer_power_report(
            self._arch_config, delta, span,
            shutdown_enabled=network.shutdown_enabled,
        )
        n = len(layer_flits) or 1
        leak_each = lp.leakage_w / (n * groups)
        return [
            [
                (
                    lp.layer_dynamic_w[layer]
                    * per_node[layer] / layer_totals[layer]
                    if layer_totals[layer]
                    else 0.0
                )
                + leak_each
                for layer in range(groups)
            ]
            for per_node in layer_flits
        ]

    def sample(
        self, network: "Network", span: int, delta: EventCounts
    ) -> Dict[str, float]:
        from repro.thermal.transient import TransientSolver

        window_s = span * self._cycle_s
        power = self._floorplan_for(
            self._arch_config,
            router_layer_power_w=self.router_layer_power(
                network, span, delta
            ),
        ).power_w
        if self._temps is None:
            # HotSpot-style warm start: steady state under the first
            # window's power.
            self._temps = self._grid.solve(power)
        solver = self._solvers.get(span)
        if solver is None:
            solver = self._solvers[span] = TransientSolver(
                self._grid, dt_s=window_s
            )
        self._temps = solver.step(self._temps, power)
        return {
            "mean_k": float(self._temps.mean()),
            "max_k": float(self._temps.max()),
        }


class NetworkTelemetry:
    """Windowed observability attached to a live network.

    Construction registers the instance as ``network.telemetry`` (the
    hook ``Network.step`` checks) and, when a trace is requested, adds
    read-only stage/traverse/delivery callbacks for lifecycle capture.
    Call :meth:`finish` (the Simulator does) to flush the trailing
    partial window and write the trace file; :meth:`detach` removes
    every hook.
    """

    def __init__(
        self,
        network: "Network",
        config: Optional[TelemetryConfig] = None,
        **kwargs,
    ) -> None:
        if config is None:
            config = TelemetryConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a TelemetryConfig or kwargs, not both")
        config.validate()
        self.network = network
        self.config = config
        self.registry = MetricsRegistry()
        self.samples: List[Dict[str, Any]] = []
        self.windows = 0
        self.cycles_observed = 0
        self._closed = False
        self._cursor = StatsCursor(network.stats)
        self._last_events = network.events.copy()
        self._window_start = network.cycle
        self._cycles_in_window = 0
        self._num_links = sum(
            len(ports) for ports in network.topology.out_ports.values()
        )

        # Metric catalogue.  Everything windowed lives in the registry;
        # vector-valued extras (per-router, per-channel) ride alongside
        # in the sample record.
        reg = self.registry
        self._c_injected = reg.counter("packets.injected")
        self._c_delivered = reg.counter("packets.delivered")
        self._c_flits = reg.counter("flits.delivered")
        self._c_hops = reg.counter("flits.hops")
        self._c_link_flits = reg.counter("links.flits")
        self._g_occ_total = reg.gauge("occupancy.total")
        self._g_occ_mean = reg.gauge("occupancy.mean")
        self._g_occ_max = reg.gauge("occupancy.max")
        self._g_vc_active = reg.gauge("vc.active")
        self._g_vc_frac = reg.gauge("vc.active_fraction")
        self._g_inj_rate = reg.gauge("rate.injection")
        self._g_ej_rate = reg.gauge("rate.ejection")
        self._g_throughput = reg.gauge("rate.throughput")
        self._g_link_util = reg.gauge("link.utilization")
        self._g_layers = reg.gauge("layers.active_fraction")
        #: Per-datapath-layer duty cycle: fraction of the window's
        #: crossbar traversals that actually drove layer i (measured
        #: from the layer-resolved histogram, layer 0 = always-on top).
        self._g_layer_frac = [
            reg.gauge(f"layers.l{i}.active_fraction")
            for i in range(network.layer_groups)
        ]
        self._g_short = reg.gauge("flits.short_ratio")
        self._h_latency = reg.histogram("latency.cycles")
        # Per-stage rollups: windowed event counts straight off the
        # network's own counters (full fidelity — every packet lands
        # here whether or not its lifecycle is sampled into the trace)
        # plus the stage occupancy of the input VCs at window end.
        self._c_stage_rc = reg.counter("stage.rc")
        self._c_stage_va = reg.counter("stage.va")
        self._c_stage_sa = reg.counter("stage.sa")
        self._c_stage_st = reg.counter("stage.st")
        self._g_occ_rc = reg.gauge("stage.occupancy.rc")
        self._g_occ_va = reg.gauge("stage.occupancy.va")
        self._g_occ_active = reg.gauge("stage.occupancy.active")
        if config.arch_config is not None:
            self._g_energy_j = reg.gauge("energy.window_j")
            self._g_dynamic_w = reg.gauge("energy.dynamic_w")
            self._g_total_w = reg.gauge("energy.total_w")
        if config.thermal:
            self._g_temp_mean = reg.gauge("thermal.mean_k")
            self._g_temp_max = reg.gauge("thermal.max_k")
        self._thermal: Optional[_ThermalProbe] = None

        # Stall attribution: adopt an already-attached StallAttribution
        # (ownership stays with whoever built it) or build and own one.
        self._attribution: Optional[StallAttribution] = None
        self._owns_attribution = False
        self.stall_report: Optional[Dict[str, Any]] = None
        if config.attribution_enabled:
            attribution = network.attribution
            if attribution is None:
                attribution = StallAttribution(network)
                self._owns_attribution = True
            self._attribution = attribution
            self._c_stalls = [
                reg.counter(f"stall.{name}") for name in STALL_CAUSE_NAMES
            ]
            self._g_stall_rate = reg.gauge("stall.rate")
            self._h_stall_nodes = reg.histogram("stall.node_cycles")
            self._last_stall_totals = attribution.cause_totals_list()
            self._last_node_stalls = attribution.node_stall_cycles()

        self._recorder: Optional[TraceRecorder] = None
        #: Windowed counter-track points buffered during the run as
        #: plain tuples (name, cycle, key, value); rendered into the
        #: trace builder at finish(), off the hot path.
        self._counter_points: List[Tuple[str, int, str, float]] = []
        self.packets_traced = 0
        self.packets_in_flight = 0
        self._trace_event_total = 0
        #: CPU seconds spent in the ``finish()`` flush (lifecycle
        #: reconstruction + trace/JSONL serialization) — a one-time
        #: teardown cost, bounded by the capture caps.
        self.finish_cpu_s = 0.0
        if config.trace_path is not None or config.trace_capture:
            # Full-fidelity latency rollups: every delivered packet
            # lands in these histograms even when its lifecycle is
            # sampled out of the trace.
            self._h_net_latency = reg.histogram("latency.network")
            self._h_queue_delay = reg.histogram("latency.queue")
            self._c_trace_events = reg.counter("trace.events")
            self._c_trace_packets = reg.counter("trace.packets_seen")
            self._g_trace_captured = reg.gauge("trace.packets_captured")
            self._recorder = TraceRecorder(
                sample_rate=config.trace_sample_rate,
                head_tail=config.trace_head_tail,
                seed=config.trace_seed,
                ring_events=config.trace_ring_events,
                max_packets=config.max_trace_packets,
            )
            self._last_trace_events = 0
            self._last_trace_packets = 0
            # The recorder's own bound methods go straight into the
            # callback lists — one O(1) hop per event, no sampler-level
            # indirection; traversal uses the head-only bucket so body
            # flits never cost a call.  Delivery keeps a sampler wrapper
            # for the hook-consistency guard and the latency rollups.
            network.stage_callbacks.append(self._recorder.on_stage)
            network.head_traverse_callbacks.append(
                self._recorder.on_traverse
            )
            network.delivery_callbacks.append(self._on_delivered)
            # Routers probe this map inline and skip the hooks for
            # sampled-out pids — the zero-call early-out.
            network.trace_drop_filter = self._recorder.drop_filter

        self._writer: Optional[MetricsJsonlWriter] = None
        if config.metrics_path is not None:
            self._writer = MetricsJsonlWriter(config.metrics_path)
            self._writer.write(self._meta_record())

        network.telemetry = self

    # -- metadata ----------------------------------------------------------

    def _meta_record(self) -> Dict[str, Any]:
        net = self.network
        arch = self.config.arch_config
        return {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "interval": self.config.interval,
            "start_cycle": self._window_start,
            "num_nodes": net.topology.num_nodes,
            "num_vcs": net.num_vcs,
            "num_links": self._num_links,
            "buffer_depth": net.buffer_depth,
            "shutdown_enabled": net.shutdown_enabled,
            "arch": getattr(arch, "name", None),
            "metrics": self.registry.names(),
            **(
                {
                    "trace": {
                        "sample_rate": self.config.trace_sample_rate,
                        "head_tail": self.config.trace_head_tail,
                        "seed": self.config.trace_seed,
                        "ring_capacity_events": (
                            self.config.trace_ring_events
                        ),
                    }
                }
                if self._recorder is not None
                else {}
            ),
        }

    # -- lifecycle capture (read-only; hot paths live on the recorder) -----

    def _on_delivered(self, packet: "Packet", cycle: int) -> None:
        if self._recorder is None:
            # A registered delivery callback implies a live recorder; a
            # bare ``assert`` would vanish under ``python -O``.
            raise RuntimeError(
                "delivery callback fired without a trace recorder: "
                "telemetry hooks are inconsistent (was the recorder "
                "cleared while callbacks stayed registered?)"
            )
        self._recorder.on_eject(packet, cycle)
        injected = packet.injected_cycle
        if injected is not None:
            self._h_net_latency.observe(cycle - injected)
            self._h_queue_delay.observe(injected - packet.created_cycle)

    # -- sampling ----------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Per-cycle hook called by ``Network.step`` (end of cycle)."""
        if self._closed:
            return
        self.cycles_observed += 1
        self._cycles_in_window += 1
        if self._cycles_in_window >= self.config.interval:
            self._sample(cycle + 1)

    def _sample(self, end_cycle: int) -> None:
        net = self.network
        config = self.config
        span = self._cycles_in_window
        num_nodes = net.topology.num_nodes

        delta = net.events.delta(self._last_events)
        self._last_events = net.events.copy()
        window = self._cursor.advance()

        self._c_injected.inc(window.packets_injected)
        self._c_delivered.inc(window.packets_delivered)
        self._c_flits.inc(window.flits_delivered)
        self._c_hops.inc(delta.flit_hops)
        link_flits = sum(delta.link_flits.values())
        self._c_link_flits.inc(link_flits)

        occupancy = [router.occupancy() for router in net.routers]
        total_occ = sum(occupancy)
        self._g_occ_total.set(float(total_occ))
        self._g_occ_mean.set(total_occ / len(occupancy))
        self._g_occ_max.set(float(max(occupancy)))

        # Per-VC utilisation and per-stage occupancy: input VCs holding
        # pipeline state, bucketed by which stage they are waiting in
        # (read straight off the flat SoA state arrays).
        active_vcs = 0
        total_vcs = 0
        occ_rc = occ_va = occ_st = 0
        for router in net.routers:
            states = router.vc_state
            total_vcs += len(states)
            for state in states:
                if state:  # != _IDLE
                    active_vcs += 1
                    if state == 1:  # _RC
                        occ_rc += 1
                    elif state == 2:  # _VA
                        occ_va += 1
                    else:  # _ACTIVE
                        occ_st += 1
        self._g_vc_active.set(float(active_vcs))
        self._g_vc_frac.set(active_vcs / total_vcs if total_vcs else 0.0)
        self._g_occ_rc.set(float(occ_rc))
        self._g_occ_va.set(float(occ_va))
        self._g_occ_active.set(float(occ_st))

        # Per-stage windowed event rollups off the network's own
        # counters: full fidelity regardless of trace sampling.
        self._c_stage_rc.inc(delta.rc_computations)
        self._c_stage_va.inc(delta.va_allocations)
        self._c_stage_sa.inc(delta.sa_allocations)
        self._c_stage_st.inc(delta.xbar_traversals)

        node_cycles = num_nodes * span
        self._g_inj_rate.set(window.packets_injected / node_cycles)
        self._g_ej_rate.set(window.packets_delivered / node_cycles)
        self._g_throughput.set(window.flits_delivered / node_cycles)
        self._g_link_util.set(
            link_flits / (self._num_links * span) if self._num_links else 0.0
        )

        # Layer-shutdown signals: mean fraction of word groups actually
        # switched per crossbar traversal, the per-layer duty cycles
        # (both measured from the layer-resolved histogram), and the
        # short-flit share.
        if delta.xbar_traversals:
            self._g_layers.set(
                delta.xbar_traversals_weighted / delta.xbar_traversals
            )
            by_layers = delta.xbar_traversals_by_layers
            for layer, gauge in enumerate(self._g_layer_frac):
                gauge.set(
                    EventCounts.events_at_layer(by_layers, layer)
                    / delta.xbar_traversals
                )
        else:
            self._g_layers.set(None)
            for gauge in self._g_layer_frac:
                gauge.set(None)
        self._g_short.set(
            delta.short_flit_fraction if delta.flit_hops else None
        )

        self._h_latency.observe_many(window.latencies)

        if config.arch_config is not None:
            # Priced exactly like the end-of-run power report, but over
            # this window's event delta (lazy import keeps the power
            # stack out of telemetry-free runs).
            from repro.power import technology as tech
            from repro.power.energy import power_report

            report = power_report(
                config.arch_config, delta, span,
                shutdown_enabled=net.shutdown_enabled,
            )
            self._g_dynamic_w.set(report.dynamic_w)
            self._g_total_w.set(report.total_w)
            self._g_energy_j.set(report.total_w * span * tech.CYCLE_S)

        if config.thermal:
            if self._thermal is None:
                self._thermal = _ThermalProbe(config.arch_config, net)
            temps = self._thermal.sample(net, span, delta)
            self._g_temp_mean.set(temps["mean_k"])
            self._g_temp_max.set(temps["max_k"])

        attribution = self._attribution
        if attribution is not None:
            # Rollup scans are the only recurring attribution cost the
            # sampler adds; timed into the profiler's dedicated
            # ``attribution`` phase when one is attached.
            prof = net.profiler
            t_attr = prof.clock() if prof is not None else 0.0
            totals = attribution.cause_totals_list()
            for counter, now, before in zip(
                self._c_stalls, totals, self._last_stall_totals
            ):
                counter.inc(now - before)
            window_stalls = sum(totals) - sum(self._last_stall_totals)
            self._last_stall_totals = totals
            self._g_stall_rate.set(window_stalls / node_cycles)
            node_stalls = attribution.node_stall_cycles()
            self._h_stall_nodes.observe_many(
                [
                    now - before
                    for now, before in zip(
                        node_stalls, self._last_node_stalls
                    )
                    if now != before
                ]
            )
            self._last_node_stalls = node_stalls
            if prof is not None:
                prof.attribution_wall_s += prof.clock() - t_attr

        recorder = self._recorder
        if recorder is not None:
            self._c_trace_events.inc(
                recorder.events_recorded - self._last_trace_events
            )
            self._last_trace_events = recorder.events_recorded
            self._c_trace_packets.inc(
                recorder.packets_seen - self._last_trace_packets
            )
            self._last_trace_packets = recorder.packets_seen
            self._g_trace_captured.set(float(recorder.packets_captured()))

        record: Dict[str, Any] = {
            "type": "sample",
            "cycle": end_cycle,
            "window": span,
            **self.registry.sample(),
        }
        if config.per_router:
            record["per_router"] = {"occupancy": occupancy}
        if config.per_channel:
            record["channels"] = {
                f"{src}->{dst}": flits
                for (src, dst), flits in sorted(delta.channel_flits.items())
                if flits
            }
        if self._writer is not None:
            self._writer.write(record)
        if self._writer is None or config.keep_samples:
            self.samples.append(record)

        if recorder is not None:
            # Counter-track points are buffered as tuples and rendered
            # into the Chrome trace at finish(), off the hot path.
            points = self._counter_points
            gauges = record["gauges"]
            points.append(
                ("occupancy", end_cycle, "flits", gauges["occupancy.total"])
            )
            points.append(
                (
                    "vc active fraction", end_cycle, "fraction",
                    gauges["vc.active_fraction"],
                )
            )
            points.append(
                (
                    "throughput", end_cycle, "flits/node/cycle",
                    gauges["rate.throughput"],
                )
            )
            layers = gauges["layers.active_fraction"]
            if layers is not None:
                points.append(
                    ("active layer fraction", end_cycle, "fraction", layers)
                )
            if config.per_router:
                for node, occ in enumerate(occupancy):
                    points.append(
                        (f"occupancy r{node}", end_cycle, "flits", occ)
                    )

        self.windows += 1
        self._window_start = end_cycle
        self._cycles_in_window = 0

    # -- teardown ----------------------------------------------------------

    def finish(self) -> None:
        """Flush the trailing partial window and write the trace file.

        Idempotent; called automatically at the end of
        :meth:`~repro.noc.simulator.Simulator.run`.
        """
        if self._closed:
            return
        if self._cycles_in_window:
            # Trailing partial window: emitted with its true span, not
            # dropped (same contract as the activity windows).
            self._sample(self.network.cycle)
        flush_start = time.process_time()
        recorder = self._recorder
        if recorder is not None:
            # Reconstruct lifecycles from the ring and (when a path was
            # given) render the Perfetto trace, all off the hot path.
            # Packets still in flight render as open-ended spans,
            # counted separately from completed lifecycles so the
            # snapshot's split matches both the trace file metadata and
            # its event count.
            lives, orphaned = recorder.lifecycles()
            traced = sum(
                1 for life in lives if life.delivered is not None
            )
            self.packets_traced = traced
            self.packets_in_flight = len(lives) - traced
            if self.config.trace_path is not None:
                trace = ChromeTraceBuilder()
                for life in lives:
                    trace.add_packet(life)
                for name, cycle, key, value in self._counter_points:
                    trace.add_counter(name, cycle, {key: value})
                self._trace_event_total = len(trace.events)
                trace.write(
                    self.config.trace_path,
                    other_data={
                        "packets_traced": traced,
                        "packets_in_flight": self.packets_in_flight,
                        "packets_dropped": len(recorder.dropped_pids),
                        "truncated": bool(recorder.dropped_pids),
                        "windows": self.windows,
                        "sampling": recorder.sampling_meta(orphaned),
                    },
                )
        attribution = self._attribution
        if attribution is not None:
            decompositions = None
            skipped = 0
            if recorder is not None:
                decompositions, skipped = decompose_recorder(
                    recorder, self.network.routers[0]._hop_cycles
                )
            self.stall_report = build_stall_report(
                attribution,
                top_k=self.config.attribution_top_k,
                arch=getattr(self.config.arch_config, "name", None),
                cycles=self.cycles_observed,
                decompositions=decompositions,
                decomposition_skipped=skipped,
            )
            if self.config.attribution_path is not None:
                import json
                import os

                path = self.config.attribution_path
                parent = os.path.dirname(path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(self.stall_report, handle, indent=2)
                    handle.write("\n")
        if self._writer is not None:
            # close() writes the end footer exactly once even if the
            # writer was already closed by a crashed run's __exit__.
            self._writer.close(
                {
                    "type": "end",
                    "cycle": self.network.cycle,
                    "windows": self.windows,
                }
            )
        # The flush (lifecycle reconstruction + trace serialization) is
        # a one-time cost bounded by the capture caps, not by run
        # length; expose it so overhead accounting can separate the
        # per-cycle tax from the teardown.
        self.finish_cpu_s = time.process_time() - flush_start
        prof = self.network.profiler
        if prof is not None:
            # Surface the flush cost in the profiler snapshot so hot-
            # path vs. teardown time reads off one report.
            prof.telemetry_finish_cpu_s = self.finish_cpu_s
        self._closed = True

    def detach(self) -> None:
        """Remove every hook this instance installed on the network."""
        self.finish()
        net = self.network
        hooks = [(net.delivery_callbacks, self._on_delivered)]
        if self._recorder is not None:
            hooks.append((net.stage_callbacks, self._recorder.on_stage))
            hooks.append(
                (net.head_traverse_callbacks, self._recorder.on_traverse)
            )
        for bucket, callback in hooks:
            try:
                bucket.remove(callback)
            except ValueError:
                pass
        if (
            self._recorder is not None
            and net.trace_drop_filter is self._recorder.drop_filter
        ):
            net.trace_drop_filter = None
        if self._owns_attribution and self._attribution is not None:
            self._attribution.detach()
        if net.telemetry is self:
            net.telemetry = None

    def __enter__(self) -> "NetworkTelemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def snapshot(self) -> TelemetrySnapshot:
        recorder = self._recorder
        return TelemetrySnapshot(
            interval=self.config.interval,
            windows=self.windows,
            cycles=self.cycles_observed,
            packets_traced=self.packets_traced,
            packets_in_flight=self.packets_in_flight,
            packets_dropped=(
                len(recorder.dropped_pids) if recorder is not None else 0
            ),
            truncated=(
                bool(recorder.dropped_pids) if recorder is not None else False
            ),
            trace_events=self._trace_event_total,
            metrics_path=self.config.metrics_path,
            trace_path=self.config.trace_path,
            packets_seen=(
                recorder.packets_seen if recorder is not None else 0
            ),
            packets_sampled=(
                recorder.packets_captured() if recorder is not None else 0
            ),
            sampled_out=(
                recorder.sampled_out if recorder is not None else 0
            ),
            tail_evicted=(
                recorder.tail_evicted if recorder is not None else 0
            ),
            events_recorded=(
                recorder.events_recorded if recorder is not None else 0
            ),
            events_overwritten=(
                recorder.events_overwritten if recorder is not None else 0
            ),
            sample_rate=self.config.trace_sample_rate,
            head_tail=self.config.trace_head_tail,
            finish_cpu_s=self.finish_cpu_s,
            stall_cycles=(
                self._attribution.total_stall_cycles()
                if self._attribution is not None
                else 0
            ),
            stall_report=self.stall_report,
        )
