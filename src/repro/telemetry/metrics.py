"""Windowed metric primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is a named catalogue of scalar time series
sampled on a fixed cadence.  Three metric kinds cover the simulator's
needs:

* :class:`Counter` — monotonically increasing total (flits delivered,
  packets injected).  Each sample reports the running total *and* the
  delta accumulated since the previous sample, so consumers get rates
  without re-deriving them.
* :class:`Gauge` — instantaneous value re-set each window (buffer
  occupancy, active-layer fraction, temperature).  A gauge left unset
  during a window samples as ``None`` rather than repeating a stale
  value.
* :class:`Histogram` — a window-scoped distribution (per-window packet
  latencies).  Each sample reports count/mean/min/max plus nearest-rank
  percentiles, then clears for the next window.

The registry is deliberately independent of the NoC model — it holds
whatever the sampler (or a test) feeds it — so it can back any future
subsystem that needs windowed observability.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.noc.stats import nearest_rank_percentile

#: Percentiles every histogram sample reports.
HISTOGRAM_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


class Counter:
    """Monotonic running total with per-window deltas."""

    __slots__ = ("name", "total", "_last_sampled")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self._last_sampled = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.total += amount

    def sample(self) -> Dict[str, float]:
        delta = self.total - self._last_sampled
        self._last_sampled = self.total
        return {"total": self.total, "delta": delta}


class Gauge:
    """Instantaneous value; unset windows sample as ``None``.

    ``set(None)`` is an *explicit clear*: it discards the held value
    AND the window's freshness, so the gauge reads exactly like one
    that was never set this window (``value is None``, ``fresh`` is
    False).  Before this was pinned, ``set(None)`` left the freshness
    flag raised, making "explicitly cleared" and "never set" two
    internal states with one observable meaning — and leaving a stale
    ``value`` readable after a clear.
    """

    __slots__ = ("name", "value", "_set_this_window")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self._set_this_window = False

    def set(self, value: Optional[float]) -> None:
        self.value = value
        self._set_this_window = value is not None

    @property
    def fresh(self) -> bool:
        """True when a non-``None`` value was set this window."""
        return self._set_this_window

    def sample(self) -> Optional[float]:
        value = self.value if self._set_this_window else None
        self._set_this_window = False
        return value


class Histogram:
    """Window-scoped distribution; cleared after every sample.

    The window clear happens **in place** (``values.clear()``), never by
    rebinding ``self.values`` to a fresh list: ``self.values`` is the
    same list object for the metric's whole life, so any caller that
    captured a reference (to batch observations, or to inspect the
    window) stays coherent with the live window instead of silently
    writing into an orphaned list.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self.values.extend(values)

    def sample(self) -> Dict[str, Any]:
        values = self.values
        if not values:
            return {"count": 0}
        ordered = sorted(values)
        values.clear()
        out: Dict[str, Any] = {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
        }
        for p in HISTOGRAM_PERCENTILES:
            out[f"p{p:g}"] = nearest_rank_percentile(ordered, p)
        return out


class MetricsRegistry:
    """Named catalogue of counters, gauges, and histograms.

    Metric accessors are idempotent — asking for an existing name
    returns the existing instance — but re-registering a name as a
    different kind raises, which catches catalogue typos early.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- registration ------------------------------------------------------

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        self._check_unique(name, "counter")
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        self._check_unique(name, "gauge")
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        self._check_unique(name, "histogram")
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def names(self) -> List[str]:
        """Every registered metric name, sorted (the metric catalogue)."""
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    # -- sampling ----------------------------------------------------------

    def sample(self) -> Dict[str, Dict[str, Any]]:
        """One window's worth of every metric, keyed by kind then name.

        Counters report ``{total, delta}``, gauges their value (or
        ``None`` when unset this window), histograms their window
        distribution summary.  Histograms clear; counters move their
        delta mark; gauges reset their freshness flag.
        """
        return {
            "counters": {
                name: c.sample() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.sample() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.sample()
                for name, h in sorted(self._histograms.items())
            },
        }
