"""Sampled ring-buffer trace recorder: production-cost lifecycle capture.

The original trace path allocated a ``PacketLife`` dict entry per packet
and appended Chrome-trace event dicts per pipeline event — measured at a
2.5x simulation slowdown (``BENCH_PR3.json``), unusable always-on.  This
module replaces the live object churn with:

* a **preallocated flat ring buffer** (``array('q')``, fixed four-field
  records) that stage/traverse events are written into with no per-event
  object allocation; when the ring wraps, the oldest events are
  overwritten and counted, never silently lost;
* **packet sampling** — head capture of the first *K* packets, tail
  capture of the last *K* (a sliding reference window, rendered as
  spans), and deterministic probabilistic sampling by a seeded
  packet-id hash; unsampled packets early-out in O(1), and the routers
  skip the hooks for them entirely via
  ``Network.trace_drop_filter`` — the zero-call early-out;
* **deferred rendering** — Perfetto lifecycles are reconstructed from
  the surviving ring records at ``finish()`` time, off the hot path,
  through the same :class:`~repro.telemetry.export.PacketLife` /
  :class:`~repro.telemetry.export.ChromeTraceBuilder` pipeline, so the
  ``trace.json`` dialect is unchanged.

Sampling is reproducible: the keep/drop decision for a packet id is a
pure function of ``(pid, seed)``, so two runs of the same simulation
with the same seed capture the same packets.

The recorder only ever *reads* packet and flit state, preserving the
telemetry layer's bit-identical guarantee.  Captured packets are kept
alive by reference until the recorder is dropped — bounded by
``max_packets`` plus the tail window, not by run length.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.packet import Flit, Packet
    from repro.telemetry.export import PacketLife

#: Fields per ring record: (pid, cycle, node, kind).
RECORD_WIDTH = 4

#: Record kinds (the ``kind`` field).  ``KIND_EJECT`` stamps packet
#: delivery into the ring so the ring alone is a self-contained input
#: for offline latency decomposition
#: (:mod:`repro.telemetry.attribution`); live reconstruction also
#: cross-reads ``packet.delivered_cycle`` off the held object.
KIND_RC, KIND_VA, KIND_ST, KIND_EJECT = 0, 1, 2, 3

#: Default ring capacity, in records (8 MiB of int64 at width 4).
DEFAULT_RING_EVENTS = 1 << 18

#: Per-packet capture decisions.  ``_DROP`` packets early-out in O(1)
#: (and the routers skip their hooks entirely via the drop filter).
#: ``_TAIL`` is a transient admission verdict: tail candidates are
#: stored at ``_DROP`` because their capture is span-only.
_DROP, _HEAD, _HASH, _TAIL = 0, 1, 2, 3

_MASK64 = (1 << 64) - 1


def pid_hash_unit(pid: int, seed: int) -> float:
    """Deterministic uniform-ish value in [0, 1) for ``(pid, seed)``.

    A splitmix64-style finalizer: stable across processes and
    ``PYTHONHASHSEED`` values (unlike ``hash()``), so sampled captures
    are reproducible run to run and machine to machine.
    """
    x = (pid + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


class TraceRecorder:
    """Flat-ring lifecycle recorder with head/tail + hash sampling.

    Capture policy, decided once per packet on first sight:

    1. the first ``head_tail`` packets are captured (head capture);
    2. otherwise the packet is captured when its seeded id hash falls
       under ``sample_rate`` (``1.0`` captures everything — the
       backward-compatible full-trace mode);
    3. otherwise the packet becomes a *tail candidate*: a reference is
       kept in a sliding window and evicted once ``head_tail`` newer
       packets arrive, so whatever survives to ``finish()`` is, by
       construction, the last ``head_tail`` packets.  Tail candidates
       are span-only: their pipeline events are **not** recorded (they
       sit at ``0`` in the drop filter, so the routers skip the hooks
       entirely) — recording hops provisionally for every packet would
       cost half of full tracing.  They render as packet spans with
       injection/delivery timing; hop slices come from head and hash
       captures.

    ``max_packets`` caps permanently captured lifecycles (head + hash);
    packets refused by the cap land in :attr:`dropped_pids` and mark the
    trace truncated, exactly like the pre-ring recorder.

    Captured packets are held by reference (``_packets``); their
    created/injected/delivered cycles are read off the live objects at
    reconstruction time, so the hot path never copies metadata.
    """

    __slots__ = (
        "sample_rate", "head_tail", "seed", "capacity", "max_packets",
        "_size", "_ring", "_w", "events_recorded", "_decisions",
        "_packets", "_tail_window", "packets_seen", "head_captured",
        "hash_sampled", "sampled_out", "tail_evicted", "dropped_pids",
    )

    def __init__(
        self,
        sample_rate: float = 1.0,
        head_tail: int = 0,
        seed: int = 0,
        ring_events: int = DEFAULT_RING_EVENTS,
        max_packets: int = 5000,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"trace sample rate must be in [0, 1], got {sample_rate}"
            )
        if head_tail < 0:
            raise ValueError(f"head/tail depth must be >= 0, got {head_tail}")
        if ring_events < 1:
            raise ValueError(f"ring capacity must be >= 1, got {ring_events}")
        self.sample_rate = sample_rate
        self.head_tail = head_tail
        self.seed = seed
        self.capacity = ring_events
        self.max_packets = max_packets

        self._size = ring_events * RECORD_WIDTH
        self._ring = array("q", bytes(8 * self._size))
        self._w = 0
        #: Total records ever written (monotonic; ``- capacity`` of these
        #: have been overwritten once it exceeds the capacity).
        self.events_recorded = 0

        self._decisions: Dict[int, int] = {}
        #: pid -> captured packet object; insertion order is admission
        #: order, which fixes the rendered track order.
        self._packets: Dict[int, "Packet"] = {}
        self._tail_window: Deque[int] = deque()

        self.packets_seen = 0
        self.head_captured = 0
        self.hash_sampled = 0
        self.sampled_out = 0
        self.tail_evicted = 0
        #: pids refused by ``max_packets`` (the truncation surface).
        self.dropped_pids: Set[int] = set()

    # -- admission (cold path: once per packet) -----------------------------

    def _admit(self, packet: "Packet") -> int:
        pid = packet.pid
        self.packets_seen += 1
        if self.head_captured < self.head_tail:
            code = _HEAD
        elif self.sample_rate >= 1.0 or (
            self.sample_rate > 0.0
            and pid_hash_unit(pid, self.seed) < self.sample_rate
        ):
            code = _HASH
        else:
            code = _TAIL if self.head_tail > 0 else _DROP
        if code in (_HEAD, _HASH):
            if self.head_captured + self.hash_sampled >= self.max_packets:
                self.dropped_pids.add(pid)
                self._decisions[pid] = _DROP
                return _DROP
            if code == _HEAD:
                self.head_captured += 1
            else:
                self.hash_sampled += 1
            self._packets[pid] = packet
        elif code == _TAIL:
            window = self._tail_window
            if len(window) >= self.head_tail:
                evicted = window.popleft()
                del self._packets[evicted]
                self.tail_evicted += 1
            window.append(pid)
            self._packets[pid] = packet
            # Span-only capture: park the pid at _DROP so the hooks
            # (and the routers' call-site filter) skip its events.
            self._decisions[pid] = _DROP
            return _DROP
        else:
            self.sampled_out += 1
        self._decisions[pid] = code
        return code

    @property
    def drop_filter(self) -> Dict[int, int]:
        """The live pid -> capture-code map, for
        ``Network.trace_drop_filter``: routers probe it at the call site
        and skip the hook entirely for pids that map to ``0``.  The
        hooks keep their own early-out, so installing the filter is an
        optimization, never a correctness requirement."""
        return self._decisions

    # -- hot-path hooks (network callbacks) ---------------------------------

    def on_stage(
        self, cycle: int, node: int, flit: "Flit", stage: str
    ) -> None:
        """Stage callback: RC/VA completions of head flits."""
        pid = flit.packet.pid
        code = self._decisions.get(pid)
        if code is None:
            code = self._admit(flit.packet)
        if code == 0:
            return
        w = self._w
        ring = self._ring
        ring[w] = pid
        ring[w + 1] = cycle
        ring[w + 2] = node
        ring[w + 3] = 0 if stage == "rc" else 1
        w += 4
        self._w = 0 if w == self._size else w
        self.events_recorded += 1

    def on_traverse(
        self, cycle: int, node: int, flit: "Flit", out_port: str
    ) -> None:
        """Head-traverse callback: switch traversal (SA grant + ST).

        Registered on ``network.head_traverse_callbacks`` — the router
        filters body flits at the call site, so this is only ever
        invoked for head flits.
        """
        pid = flit.packet.pid
        code = self._decisions.get(pid)
        if code is None:
            code = self._admit(flit.packet)
        if code == 0:
            return
        w = self._w
        ring = self._ring
        ring[w] = pid
        ring[w + 1] = cycle
        ring[w + 2] = node
        ring[w + 3] = 2
        w += 4
        self._w = 0 if w == self._size else w
        self.events_recorded += 1

    def on_eject(self, packet: "Packet", cycle: int) -> None:
        """Delivery record: the packet's tail flit left the network.

        Called from the telemetry sampler's delivery hook (once per
        delivered packet, not per flit), so the cost for sampled-out
        packets is one dict probe.
        """
        code = self._decisions.get(packet.pid)
        if code is None:
            code = self._admit(packet)
        if code == 0:
            return
        w = self._w
        ring = self._ring
        ring[w] = packet.pid
        ring[w + 1] = cycle
        ring[w + 2] = packet.dst
        ring[w + 3] = 3
        w += 4
        self._w = 0 if w == self._size else w
        self.events_recorded += 1

    # -- reconstruction (off the hot path) ----------------------------------

    @property
    def events_overwritten(self) -> int:
        """Records lost to ring wrap-around (oldest first)."""
        return max(0, self.events_recorded - self.capacity)

    def packets_captured(self) -> int:
        """Lifecycles currently held: head + hash + live tail window."""
        return len(self._packets)

    def lifecycles(self) -> Tuple[List["PacketLife"], int]:
        """Rebuild the captured lifecycles from the ring.

        Returns ``(lives, orphaned)`` where *lives* are
        :class:`~repro.telemetry.export.PacketLife` objects in admission
        order and *orphaned* counts surviving ring records whose packet
        is no longer held (skipped, not rendered — defensive; with
        span-only tail capture no code path produces them today).
        Packets whose early events were overwritten by ring wrap render
        as partial lifecycles (missing leading hops) — explicitly
        permitted by the ``HopRecord`` contract; tail-window packets
        render as bare spans with no hop slices.
        """
        from repro.telemetry.export import PacketLife

        lives: Dict[int, PacketLife] = {}
        for pid, packet in self._packets.items():
            lives[pid] = PacketLife(
                pid=pid,
                src=packet.src,
                dst=packet.dst,
                size_flits=packet.size_flits,
                klass=packet.klass.value,
                created=packet.created_cycle,
                injected=packet.injected_cycle,
                delivered=packet.delivered_cycle,
            )

        ring = self._ring
        size = self._size
        count = min(self.events_recorded, self.capacity)
        start = self._w if self.events_recorded > self.capacity else 0
        orphaned = 0
        idx = start
        for _ in range(count):
            if idx == size:
                idx = 0
            life = lives.get(ring[idx])
            if life is None:
                orphaned += 1
                idx += RECORD_WIDTH
                continue
            cycle = ring[idx + 1]
            node = ring[idx + 2]
            kind = ring[idx + 3]
            if kind == KIND_ST:
                life.note_traverse(cycle, node)
            elif kind == KIND_EJECT:
                # Redundant with the live packet's delivered_cycle by
                # construction; authoritative when reconstructing from
                # a ring alone.
                life.delivered = cycle
            else:
                life.note_stage(
                    cycle, node, "rc" if kind == KIND_RC else "va"
                )
            idx += RECORD_WIDTH
        return list(lives.values()), orphaned

    def captured(self) -> Dict[int, "Packet"]:
        """The held pid -> packet map (head + hash + live tail window);
        read-only for consumers like the latency decomposition pass,
        which needs ``packet.hops`` as its completeness bar."""
        return self._packets

    def sampling_meta(self, orphaned: Optional[int] = None) -> Dict[str, Any]:
        """Sampling/truncation metadata for the trace file and snapshot."""
        meta: Dict[str, Any] = {
            "mode": (
                "full"
                if self.sample_rate >= 1.0 and self.head_tail == 0
                else "sampled"
            ),
            "sample_rate": self.sample_rate,
            "head_tail": self.head_tail,
            "seed": self.seed,
            "ring_capacity_events": self.capacity,
            "packets_seen": self.packets_seen,
            "packets_captured": self.packets_captured(),
            "head_captured": self.head_captured,
            "hash_sampled": self.hash_sampled,
            "tail_window": len(self._tail_window),
            "sampled_out": self.sampled_out,
            "tail_evicted": self.tail_evicted,
            "events_recorded": self.events_recorded,
            "events_overwritten": self.events_overwritten,
        }
        if orphaned is not None:
            meta["events_orphaned"] = orphaned
        return meta
