"""Stall attribution and congestion forensics.

Three cooperating pieces answer "*why* was this packet slow?":

* :class:`StallAttribution` — flat per-(port, VC) stall-cause counters
  charged inline by the routers: every cycle a buffered head flit fails
  to advance is billed to exactly one cause (``rc_wait``,
  ``va_conflict``, ``sa_loss``, ``credit_stall``, ``serialization``),
  with rollups per link, per node, and per effective active-layer count
  (the MIRA angle: how the stall mix shifts when short flits gate
  datapath layers).  Credit stalls are additionally billed to the
  starved *output port*, which is what lets a backpressure chain be
  followed upstream link by link.
* :func:`decompose_life` — exact latency decomposition of a sampled
  packet from its :class:`~repro.telemetry.export.PacketLife` record:
  source queueing + per-hop RC/VA/SA waits + link transit + tail
  serialization.  The decomposition is a telescoping identity over the
  recorded stage cycles, so for every completely captured packet the
  components sum to ``packet.latency`` **exactly** — conservation by
  construction, pinned in ``tests/test_attribution.py``.
* :func:`build_stall_report` / :func:`format_stall_report` — the
  diagnosis pass behind ``repro diagnose``: top-K hotspot links and
  routers, backpressure chains, stall-composition tables, and the
  decomposition summary, as a JSON-serialisable dict plus a
  human-readable rendering.

Cost discipline matches the rest of the telemetry stack: detached (the
default) the routers pay one ``is not None`` test on their stall
branches only, and attribution never mutates pipeline state, so enabled
runs are bit-identical (golden e2e digests, all six architectures).

One deliberate exception to "one charge per stalled unit-cycle": under
speculative SA (Fig. 8b) a unit can win VA and lose its same-cycle
crossbar bid.  The unit *did* advance a stage, but the paper's pipeline
charges failed speculation a full cycle, so we bill it to the blocking
downstream cause (``credit_stall`` or ``sa_loss``) in that same cycle.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.noc.router import (
    NUM_STALL_CAUSES,
    STALL_CAUSE_NAMES,
    STALL_CREDIT,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.telemetry.export import PacketLife
    from repro.telemetry.recorder import TraceRecorder

#: Report schema version (validated by benchmarks/validate_telemetry.py).
REPORT_SCHEMA = 1

#: Default number of hotspot links/routers/chains in a report.
DEFAULT_TOP_K = 5

_N = NUM_STALL_CAUSES


class StallAttribution:
    """Flat stall-cause accounting attached to a network's routers.

    Storage is three shared ``array('q')`` blocks (no per-router
    objects on the charge path):

    * ``unit_counts`` — ``NUM_STALL_CAUSES`` counters per (router,
      port, VC) unit, at ``unit_base[node] + unit * N + cause``;
    * ``out_counts`` — one credit-stall counter per (router, output
      port), at ``out_base[node] + port`` (the backpressure feed);
    * ``layer_counts`` — ``NUM_STALL_CAUSES`` counters per effective
      active-layer count ``k`` of the stalled head flit, at
      ``(k - 1) * N + cause``.

    Attach/detach follows the sanitizer convention: construction
    attaches to ``network.attribution`` and aliases the arrays onto
    every router; :meth:`detach` restores the zero-cost state.
    """

    def __init__(self, network: "Network") -> None:
        if network.attribution is not None:
            raise ValueError("network already has a StallAttribution")
        self.network = network
        self._unit_base: List[int] = []
        self._out_base: List[int] = []
        units = 0
        ports = 0
        for router in network.routers:
            self._unit_base.append(units * _N)
            self._out_base.append(ports)
            units += router.num_ports * router.num_vcs
            ports += router.num_ports
        self.unit_counts = array("q", bytes(8 * units * _N))
        self.out_counts = array("q", bytes(8 * ports))
        self.layer_counts = array(
            "q", bytes(8 * network.layer_groups * _N)
        )
        for node, router in enumerate(network.routers):
            router._attrib = self
            router._stall_counts = self.unit_counts
            router._stall_base = self._unit_base[node]
            router._stall_out_counts = self.out_counts
            router._stall_out_base = self._out_base[node]
            router._stall_layer_counts = self.layer_counts
        network.attribution = self

    def detach(self) -> None:
        """Restore the zero-cost detached state (counters survive)."""
        for router in self.network.routers:
            router._attrib = None
            router._stall_counts = None
            router._stall_base = 0
            router._stall_out_counts = None
            router._stall_out_base = 0
            router._stall_layer_counts = None
        if self.network.attribution is self:
            self.network.attribution = None

    # -- rollups (cold path: report / sampling time) ------------------------

    def cause_totals_list(self) -> List[int]:
        """Total stalled cycles per cause id (marginal over layers)."""
        totals = [0] * _N
        counts = self.layer_counts
        for base in range(0, len(counts), _N):
            for c in range(_N):
                totals[c] += counts[base + c]
        return totals

    def cause_totals(self) -> Dict[str, int]:
        return dict(zip(STALL_CAUSE_NAMES, self.cause_totals_list()))

    def total_stall_cycles(self) -> int:
        return sum(self.layer_counts)

    def by_active_layers(self) -> Dict[int, Dict[str, int]]:
        """Stall-cause totals keyed by the stalled head flit's effective
        active-layer count (1..layer_groups)."""
        out: Dict[int, Dict[str, int]] = {}
        counts = self.layer_counts
        for k in range(1, self.network.layer_groups + 1):
            base = (k - 1) * _N
            row = {
                name: counts[base + c]
                for c, name in enumerate(STALL_CAUSE_NAMES)
            }
            if any(row.values()):
                out[k] = row
        return out

    def node_cause_counts(self) -> List[List[int]]:
        """Per-node stall totals by cause (summed over the node's units)."""
        counts = self.unit_counts
        rows: List[List[int]] = []
        for node, router in enumerate(self.network.routers):
            base = self._unit_base[node]
            row = [0] * _N
            for u in range(router.num_ports * router.num_vcs):
                off = base + u * _N
                for c in range(_N):
                    row[c] += counts[off + c]
            rows.append(row)
        return rows

    def node_stall_cycles(self) -> List[int]:
        return [sum(row) for row in self.node_cause_counts()]

    def link_stalls(self) -> Dict[Tuple[int, int], List[int]]:
        """Unit stalls rolled up to the *feeding* in-link.

        A stalled unit on (node, in-port) holds flits that arrived over
        the upstream link into that port, so its stalled cycles are the
        congestion evidence *against that link*.  Local-port units
        (locally injected traffic waiting at its source router) have no
        feeding link and are excluded — they still appear in the
        per-node rollup.
        """
        counts = self.unit_counts
        targets = self.network._credit_targets
        out: Dict[Tuple[int, int], List[int]] = {}
        for node, router in enumerate(self.network.routers):
            base = self._unit_base[node]
            num_vcs = router.num_vcs
            for port in range(router.num_ports):
                upstream = targets[node][port]
                if upstream is None:
                    continue
                link = (upstream[0], node)
                row = out.get(link)
                if row is None:
                    row = out[link] = [0] * _N
                for vc in range(num_vcs):
                    off = base + (port * num_vcs + vc) * _N
                    for c in range(_N):
                        row[c] += counts[off + c]
        return {
            link: row for link, row in out.items() if any(row)
        }

    def credit_stalls_by_link(self) -> Dict[Tuple[int, int], int]:
        """Credit-stalled cycles per starved *output* link (src, dst)."""
        out: Dict[Tuple[int, int], int] = {}
        counts = self.out_counts
        for node, router in enumerate(self.network.routers):
            base = self._out_base[node]
            for port, link in enumerate(router.out_links):
                if link is None:
                    continue
                stalls = counts[base + port]
                if stalls:
                    out[(link.src, link.dst)] = stalls
        return out

    def backpressure_chain(
        self,
        link: Tuple[int, int],
        credit_by_link: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> List[Tuple[int, int]]:
        """Follow a credit stall downstream to the hop it chains to.

        A credit stall on link ``a -> b`` means *b*'s input buffers are
        not draining; if *b* itself is credit-starved on some output,
        the pressure chains onward through *b*'s most-stalled output
        link.  The walk ends at the first router with no credit stalls
        (the true bottleneck — it is losing arbitration or serialising,
        not waiting on buffers) or when it revisits a node (a credit
        cycle, reported as-is).
        """
        if credit_by_link is None:
            credit_by_link = self.credit_stalls_by_link()
        by_src: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
        for (src, dst), stalls in credit_by_link.items():
            by_src.setdefault(src, []).append(((src, dst), stalls))
        chain = [link]
        visited = {link[0]}
        node = link[1]
        while node not in visited:
            visited.add(node)
            options = by_src.get(node)
            if not options:
                break
            nxt = max(options, key=lambda item: (item[1], -item[0][1]))[0]
            chain.append(nxt)
            node = nxt[1]
        return chain


# -- latency decomposition --------------------------------------------------


@dataclass(frozen=True)
class PacketDecomposition:
    """Exact latency split of one completely captured packet.

    ``queue + rc_wait + va_wait + sa_wait + link_transit +
    serialization == latency`` holds as an algebraic identity (see
    :func:`decompose_life`), never approximately.
    """

    pid: int
    src: int
    dst: int
    latency: int
    queue: int
    rc_wait: int
    va_wait: int
    sa_wait: int
    link_transit: int
    serialization: int
    hops: int

    @property
    def components_sum(self) -> int:
        return (
            self.queue + self.rc_wait + self.va_wait + self.sa_wait
            + self.link_transit + self.serialization
        )

    @property
    def exact(self) -> bool:
        return self.components_sum == self.latency

    def components(self) -> Dict[str, int]:
        return {
            "queue": self.queue,
            "rc_wait": self.rc_wait,
            "va_wait": self.va_wait,
            "sa_wait": self.sa_wait,
            "link_transit": self.link_transit,
            "serialization": self.serialization,
        }


def decompose_life(
    life: "PacketLife",
    hop_cycles: int,
    expected_hops: Optional[int] = None,
) -> Optional[PacketDecomposition]:
    """Decompose one sampled lifecycle; ``None`` if incomplete.

    The identity is a telescoping sum over the recorded head-flit
    stage cycles.  With ``a_0 = injected`` and
    ``a_h = st_{h-1} + hop_cycles`` (the arrival cycle at hop *h*):

    * ``queue         = injected - created``
    * ``rc_wait       = sum_h (rc_h - a_h)``
    * ``va_wait       = sum_h (va_h - rc_h)``
    * ``sa_wait       = sum_h (st_h - va_h)``
    * ``link_transit  = (H - 1) * hop_cycles``
    * ``serialization = delivered - st_last`` (body/tail drain + the
      ejection cycle)

    where a hop missing ``rc`` (look-ahead routing) substitutes
    ``rc := a`` and a hop missing ``va`` substitutes ``va := rc`` —
    both keep the telescope exact.  A lifecycle is decomposable only
    when delivered, injected, every hop has its switch traversal, and
    (when *expected_hops* is given) no hop was lost to ring wrap-around
    or span-only tail capture.
    """
    if life.delivered is None or life.injected is None or not life.hops:
        return None
    if expected_hops is not None and len(life.hops) != expected_hops:
        return None
    if any(hop.st is None for hop in life.hops):
        return None
    rc_wait = va_wait = sa_wait = 0
    arrival = life.injected
    for hop in life.hops:
        rc = hop.rc if hop.rc is not None else arrival
        va = hop.va if hop.va is not None else rc
        rc_wait += rc - arrival
        va_wait += va - rc
        sa_wait += hop.st - va
        arrival = hop.st + hop_cycles
    return PacketDecomposition(
        pid=life.pid,
        src=life.src,
        dst=life.dst,
        latency=life.delivered - life.created,
        queue=life.injected - life.created,
        rc_wait=rc_wait,
        va_wait=va_wait,
        sa_wait=sa_wait,
        link_transit=(len(life.hops) - 1) * hop_cycles,
        serialization=life.delivered - life.hops[-1].st,
        hops=len(life.hops),
    )


def decompose_recorder(
    recorder: "TraceRecorder", hop_cycles: int
) -> Tuple[List[PacketDecomposition], int]:
    """Decompose every completely captured packet in *recorder*.

    Returns ``(decompositions, skipped)`` where *skipped* counts
    captured packets that were not decomposable (undelivered, span-only
    tail captures, or lifecycles truncated by ring wrap).  A packet
    traversing ``packet.hops`` links visits ``hops + 1`` routers, which
    is the completeness bar for its hop records.
    """
    lives, _ = recorder.lifecycles()
    packets = recorder.captured()
    decomposed: List[PacketDecomposition] = []
    skipped = 0
    for life in lives:
        packet = packets.get(life.pid)
        expected = packet.hops + 1 if packet is not None else None
        decomp = decompose_life(life, hop_cycles, expected_hops=expected)
        if decomp is None:
            skipped += 1
        else:
            decomposed.append(decomp)
    return decomposed, skipped


# -- the diagnosis report ---------------------------------------------------


def _cause_row(counts: List[int]) -> Dict[str, int]:
    return {
        name: counts[c]
        for c, name in enumerate(STALL_CAUSE_NAMES)
        if counts[c]
    }


def build_stall_report(
    attribution: StallAttribution,
    *,
    top_k: int = DEFAULT_TOP_K,
    arch: Optional[str] = None,
    cycles: Optional[int] = None,
    decompositions: Optional[List[PacketDecomposition]] = None,
    decomposition_skipped: int = 0,
) -> Dict[str, Any]:
    """Turn the rollups into the ``repro diagnose`` report dict.

    JSON-serialisable throughout (link tuples become two-element
    lists); schema checked by ``benchmarks/validate_telemetry.py``.
    """
    totals = attribution.cause_totals_list()
    total = sum(totals)
    causes = dict(zip(STALL_CAUSE_NAMES, totals))
    composition = {
        name: (count / total if total else 0.0)
        for name, count in causes.items()
    }

    link_rows = attribution.link_stalls()
    hotspot_links = [
        {
            "src": src,
            "dst": dst,
            "stalls": sum(row),
            "causes": _cause_row(row),
        }
        for (src, dst), row in sorted(
            link_rows.items(),
            key=lambda item: (-sum(item[1]), item[0]),
        )[:top_k]
    ]

    node_rows = attribution.node_cause_counts()
    hotspot_nodes = [
        {
            "node": node,
            "stalls": sum(row),
            "causes": _cause_row(row),
        }
        for node, row in sorted(
            enumerate(node_rows), key=lambda item: (-sum(item[1]), item[0])
        )[:top_k]
        if any(row)
    ]

    credit_by_link = attribution.credit_stalls_by_link()
    backpressure = []
    for (src, dst), stalls in sorted(
        credit_by_link.items(), key=lambda item: (-item[1], item[0])
    )[:top_k]:
        chain = attribution.backpressure_chain(
            (src, dst), credit_by_link
        )
        backpressure.append(
            {
                "link": [src, dst],
                "credit_stalls": stalls,
                "chain": [[a, b] for a, b in chain],
            }
        )

    report: Dict[str, Any] = {
        "type": "stall_report",
        "schema": REPORT_SCHEMA,
        "arch": arch,
        "cycles": cycles,
        "total_stall_cycles": total,
        "causes": causes,
        "composition": composition,
        "by_active_layers": {
            str(k): {"total": sum(row.values()), "causes": row}
            for k, row in attribution.by_active_layers().items()
        },
        "hotspot_links": hotspot_links,
        "hotspot_nodes": hotspot_nodes,
        "backpressure": backpressure,
        "decomposition": None,
    }

    if decompositions is not None:
        n = len(decompositions)
        exact = sum(1 for d in decompositions if d.exact)
        comp_total: Dict[str, int] = {
            key: 0 for key in (
                "queue", "rc_wait", "va_wait", "sa_wait",
                "link_transit", "serialization",
            )
        }
        latency_total = 0
        for d in decompositions:
            latency_total += d.latency
            for key, value in d.components().items():
                comp_total[key] += value
        report["decomposition"] = {
            "packets": n,
            "skipped_incomplete": decomposition_skipped,
            "conservation_exact": exact,
            "latency_total": latency_total,
            "components_total": comp_total,
            "components_mean": {
                key: (value / n if n else 0.0)
                for key, value in comp_total.items()
            },
            "mean_latency": latency_total / n if n else 0.0,
        }
    return report


def format_stall_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`build_stall_report` dict."""
    lines: List[str] = []
    arch = report.get("arch") or "?"
    cycles = report.get("cycles")
    header = f"stall attribution — arch {arch}"
    if cycles:
        header += f", {cycles} cycles"
    lines.append(header)

    total = report["total_stall_cycles"]
    lines.append(f"  total stalled unit-cycles: {total}")
    lines.append("  cause            cycles     share")
    for name in STALL_CAUSE_NAMES:
        count = report["causes"].get(name, 0)
        share = report["composition"].get(name, 0.0)
        lines.append(f"  {name:<14} {count:>9} {share:>8.1%}")

    by_layers = report.get("by_active_layers") or {}
    if by_layers:
        lines.append("  stall mix by active layer count:")
        for k in sorted(by_layers, key=int):
            row = by_layers[k]
            mix = ", ".join(
                f"{name}={count}"
                for name, count in row["causes"].items()
            )
            lines.append(
                f"    k={k}: {row['total']} cycles ({mix})"
            )

    links = report.get("hotspot_links") or []
    if links:
        lines.append("  hotspot links (stalled cycles charged to the "
                     "feeding link):")
        for entry in links:
            mix = ", ".join(
                f"{name}={count}"
                for name, count in entry["causes"].items()
            )
            lines.append(
                f"    {entry['src']:>3} -> {entry['dst']:<3} "
                f"{entry['stalls']:>8}  ({mix})"
            )
    nodes = report.get("hotspot_nodes") or []
    if nodes:
        lines.append("  hotspot routers:")
        for entry in nodes:
            mix = ", ".join(
                f"{name}={count}"
                for name, count in entry["causes"].items()
            )
            lines.append(
                f"    router {entry['node']:>3} "
                f"{entry['stalls']:>8}  ({mix})"
            )
    chains = report.get("backpressure") or []
    if chains:
        lines.append("  backpressure chains (credit stalls, followed "
                     "downstream):")
        for entry in chains:
            path = " -> ".join(str(a) for a, _ in entry["chain"])
            path += f" -> {entry['chain'][-1][1]}"
            lines.append(
                f"    {entry['credit_stalls']:>8} cycles  {path}"
            )

    decomp = report.get("decomposition")
    if decomp:
        n = decomp["packets"]
        lines.append(
            f"  latency decomposition ({n} sampled packets, "
            f"{decomp['skipped_incomplete']} incomplete skipped):"
        )
        mean_latency = decomp["mean_latency"]
        lines.append("    component       mean cyc    share")
        for name, mean in decomp["components_mean"].items():
            share = mean / mean_latency if mean_latency else 0.0
            lines.append(f"    {name:<14} {mean:>9.2f} {share:>8.1%}")
        mean_sum = sum(decomp["components_mean"].values())
        lines.append(
            f"    conservation: components sum exactly to packet "
            f"latency for {decomp['conservation_exact']}/{n} packets "
            f"(mean {mean_sum:.2f} = {mean_latency:.2f})"
        )
    return "\n".join(lines)
