"""Opt-in observability for the NoC simulator.

Three layers of runtime introspection now exist, each answering a
different question (see ``docs/OBSERVABILITY.md`` for the full guide):

* the **profiler** (:mod:`repro.noc.profiling`) — "how fast is the
  simulator running, and where does host time go?"
* the **sanitizer** (:mod:`repro.noc.sanitizer`) — "is the model's
  internal bookkeeping still correct?"
* **telemetry** (this package) — "what is the simulated network doing
  *over time*?"  Windowed counters/gauges/histograms streamed as JSONL,
  plus Perfetto-loadable per-packet lifecycle traces captured through a
  sampled, preallocated ring buffer (:mod:`repro.telemetry.recorder`)
  cheap enough to leave on in production runs.

Quickstart::

    from repro.telemetry import TelemetryConfig
    sim = Simulator(network, traffic, telemetry=TelemetryConfig(
        interval=100,
        metrics_path="metrics.jsonl",
        trace_path="trace.json",
    ))
    result = sim.run()
    print(result.telemetry.format())

Disabled (the default), telemetry costs one ``is None`` check per
cycle; enabled runs are bit-identical to bare runs because the sampler
only reads network state.
"""

from repro.telemetry.attribution import (
    PacketDecomposition,
    StallAttribution,
    build_stall_report,
    decompose_life,
    decompose_recorder,
    format_stall_report,
)
from repro.telemetry.export import (
    ChromeTraceBuilder,
    HopRecord,
    MetricsJsonlWriter,
    PacketLife,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    DEFAULT_RING_EVENTS,
    TraceRecorder,
    pid_hash_unit,
)
from repro.telemetry.sampler import (
    DEFAULT_INTERVAL,
    NetworkTelemetry,
    TelemetryConfig,
    TelemetrySnapshot,
)

__all__ = [
    "StallAttribution",
    "PacketDecomposition",
    "build_stall_report",
    "format_stall_report",
    "decompose_life",
    "decompose_recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsJsonlWriter",
    "ChromeTraceBuilder",
    "PacketLife",
    "HopRecord",
    "NetworkTelemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "TraceRecorder",
    "pid_hash_unit",
    "DEFAULT_INTERVAL",
    "DEFAULT_RING_EVENTS",
]
