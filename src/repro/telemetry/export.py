"""Structured telemetry export: JSONL metric streams and Chrome traces.

Two durable formats come out of a telemetry-enabled run:

* **JSONL metrics** (:class:`MetricsJsonlWriter`) — one JSON object per
  line: a ``meta`` header, one ``sample`` record per window, and an
  ``end`` footer.  Line-oriented so a stream can be tailed while the
  simulation runs and loaded with two lines of pandas afterwards.
* **Chrome trace events** (:class:`ChromeTraceBuilder`) — the
  ``trace.json`` dialect that Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing`` load directly.  Packet lifecycles render as
  nested slices (packet -> per-hop -> RC/VA/SA/ST) on one track per
  packet, and the sampler's windowed gauges render as counter tracks.

Simulation cycles are written as trace timestamps one-to-one (the
``ts`` unit is nominally microseconds, so one displayed "us" is one
cycle).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

#: Trace process ids: packet lifecycle tracks vs. sampler counter tracks.
PACKETS_PID = 1
METRICS_PID = 2


class MetricsJsonlWriter:
    """Appends one JSON object per line to a metrics stream.

    The stream's contract is *tailable*: every record is flushed to the
    OS as it is written (each write is a window boundary), so ``tail
    -f`` on the file tracks the live simulation instead of an empty
    buffer.  ``close()`` writes the ``end`` footer exactly once — pass
    the footer record via ``end_record``, or let it synthesize a
    minimal one — then closes the file; further ``close()`` calls are
    no-ops, so the footer can never double up.  Used as a context
    manager, ``__exit__`` closes (and therefore foots) the stream even
    when the simulation crashes mid-run, so a crashed run leaves a
    complete, parseable stream rather than a truncated last line.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._file = open(self.path, "w", encoding="utf-8")
        self.records_written = 0
        self.end_written = False

    def write(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            raise RuntimeError(f"metrics stream {self.path} already closed")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self._file.flush()
        self.records_written += 1

    def close(self, end_record: Optional[Dict[str, Any]] = None) -> None:
        if self._file is None:
            return
        if not self.end_written:
            footer = end_record or {
                "type": "end",
                "records": self.records_written,
            }
            self.write(footer)
            self.end_written = True
        self._file.close()
        self._file = None

    def __enter__(self) -> "MetricsJsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class HopRecord:
    """Pipeline-stage cycles of one packet's head flit at one router.

    ``None`` stages did not occur at this hop (look-ahead routing skips
    RC; a record created mid-flight may miss earlier stages).
    """

    node: int
    rc: Optional[int] = None
    va: Optional[int] = None
    st: Optional[int] = None


@dataclass
class PacketLife:
    """Everything the trace emitter needs to render one packet."""

    pid: int
    src: int
    dst: int
    size_flits: int
    klass: str
    created: int
    injected: Optional[int] = None
    delivered: Optional[int] = None
    hops: List[HopRecord] = field(default_factory=list)

    def note_stage(self, cycle: int, node: int, stage: str) -> None:
        """Record an RC/VA event at *node* (head flit only)."""
        hop = self.hops[-1] if self.hops else None
        if hop is None or hop.node != node or hop.st is not None:
            hop = HopRecord(node=node)
            self.hops.append(hop)
        if stage == "rc":
            hop.rc = cycle
        elif stage == "va":
            hop.va = cycle

    def note_traverse(self, cycle: int, node: int) -> None:
        """Record the head flit's switch traversal (SA grant + ST)."""
        hop = self.hops[-1] if self.hops else None
        if hop is None or hop.node != node or hop.st is not None:
            hop = HopRecord(node=node)
            self.hops.append(hop)
        hop.st = cycle

    def end_cycle(self) -> int:
        """Last cycle this packet is known to have been alive at."""
        if self.delivered is not None:
            return self.delivered
        last = self.created
        if self.injected is not None and self.injected > last:
            last = self.injected
        for hop in self.hops:
            for stamp in (hop.rc, hop.va, hop.st):
                if stamp is not None and stamp > last:
                    last = stamp
        return last + 1


class ChromeTraceBuilder:
    """Accumulates Chrome trace events and writes ``trace.json``."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._named_threads: set = set()
        self.packets_added = 0
        self._add_meta(PACKETS_PID, "process_name", name="packets")
        self._add_meta(METRICS_PID, "process_name", name="telemetry samplers")

    # -- low-level emitters ------------------------------------------------

    def _add_meta(self, pid: int, what: str, tid: int = 0, **args) -> None:
        self.events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": what, "args": args}
        )

    def add_complete(
        self,
        pid: int,
        tid: int,
        name: str,
        ts: int,
        dur: int,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "ph": "X", "pid": pid, "tid": tid, "name": name,
            "ts": ts, "dur": max(dur, 1),
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        self.events.append(event)

    def add_instant(
        self, pid: int, tid: int, name: str, ts: int, cat: str = ""
    ) -> None:
        event: Dict[str, Any] = {
            "ph": "i", "pid": pid, "tid": tid, "name": name, "ts": ts,
            "s": "t",
        }
        if cat:
            event["cat"] = cat
        self.events.append(event)

    def add_counter(
        self, name: str, ts: int, values: Dict[str, float]
    ) -> None:
        """One point on a counter track (rendered as a stacked area)."""
        self.events.append(
            {
                "ph": "C", "pid": METRICS_PID, "tid": 0, "name": name,
                "ts": ts, "args": values,
            }
        )

    # -- packet lifecycles -------------------------------------------------

    def add_packet(self, life: PacketLife) -> None:
        """Render one packet's lifecycle as nested slices on its own
        track: packet span -> queued span + per-hop spans -> RC/VA/SA/ST
        slices -> eject instant.  Slices nest by containment, so parents
        are emitted before children."""
        tid = life.pid
        if tid not in self._named_threads:
            self._named_threads.add(tid)
            self._add_meta(
                PACKETS_PID, "thread_name", tid=tid,
                name=f"pkt {life.pid} {life.src}->{life.dst}",
            )
        end = life.end_cycle()
        status = "delivered" if life.delivered is not None else "in-flight"
        self.add_complete(
            PACKETS_PID, tid, f"pkt {life.pid}", life.created,
            end - life.created, cat="packet",
            args={
                "src": life.src, "dst": life.dst,
                "flits": life.size_flits, "class": life.klass,
                "status": status,
            },
        )
        if life.injected is not None and life.injected > life.created:
            self.add_complete(
                PACKETS_PID, tid, "queued", life.created,
                life.injected - life.created, cat="stage",
            )
        for hop in life.hops:
            stamps = [s for s in (hop.rc, hop.va, hop.st) if s is not None]
            if not stamps:
                continue
            start = min(stamps)
            hop_end = (hop.st + 1) if hop.st is not None else max(stamps) + 1
            self.add_complete(
                PACKETS_PID, tid, f"hop@{hop.node}", start,
                hop_end - start, cat="hop", args={"node": hop.node},
            )
            if hop.rc is not None:
                self.add_complete(PACKETS_PID, tid, "RC", hop.rc, 1, "stage")
            if hop.va is not None and hop.va != hop.st:
                self.add_complete(PACKETS_PID, tid, "VA", hop.va, 1, "stage")
            if hop.st is not None:
                if hop.va is not None and hop.st > hop.va + 1:
                    # Cycles spent losing switch allocation (contention).
                    self.add_complete(
                        PACKETS_PID, tid, "SA", hop.va + 1,
                        hop.st - (hop.va + 1), "stage",
                    )
                name = "VA+ST" if hop.va == hop.st else "ST"
                self.add_complete(PACKETS_PID, tid, name, hop.st, 1, "stage")
        if life.delivered is not None:
            self.add_instant(
                PACKETS_PID, tid, "eject", life.delivered, cat="stage"
            )
        self.packets_added += 1

    # -- output ------------------------------------------------------------

    def write(
        self,
        path: Union[str, os.PathLike],
        other_data: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Dump the accumulated events as a Chrome JSON trace file."""
        parent = os.path.dirname(str(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        payload: Dict[str, Any] = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"ts_unit": "simulation cycles", **(other_data or {})},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
